/**
 * @file
 * Pass 1 of the flow-aware analysis: the tree-wide symbol index.
 *
 * A small hand-rolled tokenizer (no std::regex — this pass runs over
 * every indexed TU and must keep the whole-tree scan under the ~2 s
 * pre-commit budget) walks the literal-free code view produced by
 * stripSource and recognizes:
 *
 *  - function definitions and declarations, with their return-type
 *    facts: returns Status/Result<T> by value (the must-check contract
 *    of DESIGN.md §8) and returns std::string by value (an allocation
 *    at every call, for the hot-path analysis of §13);
 *  - per-function call sites, each classified as value-consumed or
 *    discarded (a whole statement whose result is never assigned,
 *    returned, passed on, or tested);
 *  - per-function may-allocate facts: operator new, make_unique /
 *    make_shared, the malloc family, container growth methods, and
 *    string building.
 *
 * The recognizer is deliberately structural, not a full C++ parser: the
 * repo style (return type on its own line, gem5 bracing) keeps the
 * heuristics honest, and the golden fixtures pin every shape it must
 * understand. Local lambda bindings (`auto split = [&](...)`) are
 * recorded per function so a call to such a name resolves inside the
 * body instead of aliasing an unrelated free function (str_util's
 * split(), say). Calls through names the index never saw resolve to
 * nothing and create no edge — the analysis is conservative about code
 * it cannot see.
 */
#include "tools/tlp_lint/lint.h"

#include <algorithm>
#include <cctype>

namespace tlp::lint {

namespace {

/** One lexical token of the code view. */
struct Token
{
    enum class Kind { Ident, Number, Punct };
    Kind kind = Kind::Punct;
    std::string text;
    int line = 0;
};

/** Control-flow / expression keywords that look like calls but are not. */
bool
isCallKeyword(const std::string &word)
{
    static const std::set<std::string> keywords = {
        "if", "while", "for", "switch", "catch", "return", "sizeof",
        "alignof", "alignas", "decltype", "static_cast", "dynamic_cast",
        "const_cast", "reinterpret_cast", "static_assert", "typeid",
        "noexcept", "throw", "new", "delete", "assert", "defined",
    };
    return keywords.count(word) > 0;
}

/** Declaration-specifier keywords stripped from return-type token runs. */
bool
isSpecifierKeyword(const std::string &word)
{
    static const std::set<std::string> specifiers = {
        "static", "inline", "constexpr", "consteval", "constinit",
        "virtual", "explicit", "friend", "extern", "typename", "const",
        "volatile", "mutable", "unsigned", "signed", "struct", "class",
        "enum", "using", "typedef", "template", "operator", "thread_local",
    };
    return specifiers.count(word) > 0;
}

/** Container growth / string building method names (may allocate). */
bool
isGrowthMethod(const std::string &word)
{
    static const std::set<std::string> growth = {
        "push_back", "emplace_back", "resize", "reserve", "insert",
        "assign", "append", "emplace", "push_front", "emplace_front",
    };
    return growth.count(word) > 0;
}

/** Free names whose call is itself an allocation. */
bool
isAllocName(const std::string &word)
{
    static const std::set<std::string> alloc = {
        "make_unique", "make_shared", "malloc", "calloc", "realloc",
        "strdup", "to_string", "ostringstream", "stringstream",
    };
    return alloc.count(word) > 0;
}

/** Tokenize the literal-free code view, preserving line numbers.
 *  Preprocessor lines (and their backslash continuations) are skipped
 *  whole: a function-like macro definition must never register as a
 *  function, and a macro body's braces must never open a bogus region. */
std::vector<Token>
tokenize(const StrippedSource &src)
{
    std::vector<Token> tokens;
    tokens.reserve(1024);
    bool continuation = false;
    for (size_t li = 0; li < src.code.size(); ++li) {
        const std::string &line = src.code[li];
        const int lineno = static_cast<int>(li) + 1;
        const size_t first = line.find_first_not_of(" \t");
        const bool pp = continuation ||
                        (first != std::string::npos && line[first] == '#');
        continuation = pp && !line.empty() && line.back() == '\\';
        if (pp)
            continue;
        size_t i = 0;
        while (i < line.size()) {
            const char c = line[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                size_t j = i;
                while (j < line.size() &&
                       (std::isalnum(static_cast<unsigned char>(
                            line[j])) ||
                        line[j] == '_'))
                    ++j;
                tokens.push_back({Token::Kind::Ident,
                                  line.substr(i, j - i), lineno});
                i = j;
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                size_t j = i;
                while (j < line.size() &&
                       (std::isalnum(static_cast<unsigned char>(
                            line[j])) ||
                        line[j] == '.' || line[j] == '\''))
                    ++j;
                tokens.push_back({Token::Kind::Number,
                                  line.substr(i, j - i), lineno});
                i = j;
                continue;
            }
            // Two-char operators the scanner must see as units.
            if (i + 1 < line.size()) {
                const char n = line[i + 1];
                if ((c == ':' && n == ':') || (c == '-' && n == '>')) {
                    tokens.push_back({Token::Kind::Punct,
                                      line.substr(i, 2), lineno});
                    i += 2;
                    continue;
                }
            }
            tokens.push_back({Token::Kind::Punct, std::string(1, c),
                              lineno});
            ++i;
        }
    }
    return tokens;
}

/** Scanner state shared by the recognizer helpers. */
struct Scanner
{
    const std::vector<Token> &toks;

    bool
    is(size_t i, const char *text) const
    {
        return i < toks.size() && toks[i].text == text;
    }

    bool
    ident(size_t i) const
    {
        return i < toks.size() && toks[i].kind == Token::Kind::Ident;
    }

    /** Index just past the ')' matching the '(' at @p open; npos when
     *  unbalanced (cap keeps hostile input linear). */
    size_t
    matchParen(size_t open) const
    {
        int depth = 0;
        for (size_t i = open; i < toks.size(); ++i) {
            if (toks[i].text == "(")
                ++depth;
            else if (toks[i].text == ")" && --depth == 0)
                return i + 1;
        }
        return std::string::npos;
    }

    /**
     * With toks[close - 1] == ">", walk back over a balanced template
     * argument run to the '<' and return the index of the token before
     * it (the template name) — npos when the run does not look like
     * template arguments (so `a > b (c)` is never misparsed). Bounded
     * lookback keeps this linear.
     */
    size_t
    templateNameBefore(size_t close) const
    {
        int depth = 0;
        size_t steps = 0;
        size_t i = close;
        while (i > 0 && steps++ < 64) {
            --i;
            const Token &t = toks[i];
            if (t.text == ">") {
                ++depth;
                continue;
            }
            if (t.text == "<") {
                if (--depth == 0)
                    return i > 0 && toks[i - 1].kind ==
                                        Token::Kind::Ident
                               ? i - 1
                               : std::string::npos;
                continue;
            }
            if (t.kind == Token::Kind::Ident ||
                t.kind == Token::Kind::Number || t.text == "::" ||
                t.text == "," || t.text == "*" || t.text == "&")
                continue;
            return std::string::npos;
        }
        return std::string::npos;
    }
};

/**
 * Walk back from the first token of a qualified call name to decide
 * whether the call begins its statement. Member chains hop over
 * `expr.` / `expr->` / `ns::` qualifiers, including call results
 * (`io_env().atomicWriteFile(...)`); anything else — an `=`, a `(`,
 * a `,`, `return` — means the value is consumed.
 */
bool
callStartsStatement(const Scanner &sc, size_t name_pos, size_t body_begin)
{
    size_t i = name_pos;
    size_t hops = 0;
    while (hops++ < 64) {
        if (i <= body_begin)
            return true;
        const Token &prev = sc.toks[i - 1];
        if (prev.text == ";" || prev.text == "{" || prev.text == "}")
            return true;
        if (prev.text == "." || prev.text == "->" || prev.text == "::") {
            if (i < 2)
                return false;
            const Token &base = sc.toks[i - 2];
            if (base.kind == Token::Kind::Ident) {
                i -= 2;
                continue;
            }
            if (base.text == ")") {
                // Hop over a call result: find the '(' opening this
                // ')' and continue from the name before it.
                int depth = 0;
                size_t j = i - 1;
                while (j > 0) {
                    --j;
                    if (sc.toks[j].text == ")")
                        ++depth;
                    else if (sc.toks[j].text == "(") {
                        if (depth-- == 0)
                            break;
                    }
                }
                if (j == 0 || sc.toks[j - 1].kind != Token::Kind::Ident)
                    return false;
                i = j - 1;
                continue;
            }
            return false;
        }
        return false;
    }
    return false;
}

/** Return-type facts gathered from the token run before a signature. */
struct ReturnFacts
{
    bool plausible = false;  ///< the run looks like a declaration head
    bool returns_status = false;
    bool returns_string = false;
};

/**
 * Classify the tokens from the previous statement boundary up to the
 * start of the (qualified) function name. An `=` anywhere in the run
 * means this is an initializer, not a declaration.
 */
ReturnFacts
classifyReturnTokens(const Scanner &sc, size_t type_begin,
                     size_t name_begin)
{
    ReturnFacts facts;
    facts.plausible = true;
    bool by_value = true;
    bool has_status = false;
    bool has_string = false;
    for (size_t i = type_begin; i < name_begin; ++i) {
        const Token &t = sc.toks[i];
        if (t.text == "=" || t.text == "(" || t.text == ")") {
            facts.plausible = false;
            return facts;
        }
        if (t.text == "&" || t.text == "*")
            by_value = false;
        if (t.kind == Token::Kind::Ident) {
            if (t.text == "Status" || t.text == "Result")
                has_status = true;
            else if (t.text == "string")
                has_string = true;
        }
    }
    facts.returns_status = has_status && by_value;
    facts.returns_string = has_string && by_value;
    return facts;
}

/** Skip a constructor member-init list: @p i sits on the ':' after the
 *  signature; returns the index of the body '{' or npos. */
size_t
skipInitList(const Scanner &sc, size_t i)
{
    int round = 0;
    int curly = 0;
    size_t steps = 0;
    for (++i; i < sc.toks.size() && steps++ < 4096; ++i) {
        const std::string &t = sc.toks[i].text;
        if (t == "(")
            ++round;
        else if (t == ")")
            --round;
        else if (t == "{") {
            if (round == 0 && curly == 0) {
                // Either the body, or a brace initializer `m_{x}`:
                // an initializer's '{' directly follows an identifier.
                if (i > 0 && sc.toks[i - 1].kind == Token::Kind::Ident &&
                    !sc.is(i - 1, ")"))
                    ++curly;
                else
                    return i;
            } else {
                ++curly;
            }
        } else if (t == "}") {
            if (curly > 0)
                --curly;
        } else if (t == ";") {
            return std::string::npos;
        }
    }
    return std::string::npos;
}

} // namespace

void
indexSource(const std::string &rel_path, const StrippedSource &src,
            SymbolIndex &index)
{
    const std::vector<Token> tokens = tokenize(src);
    const Scanner sc{tokens};

    // Brace regions: a function body attributes calls/allocs to its
    // function; every other '{' (namespace, class, control flow inside
    // a body) is transparent.
    struct Region
    {
        bool body = false;
        size_t fn = std::string::npos;  ///< index into index.functions
    };
    std::vector<Region> stack;
    // Innermost enclosing body function (lambdas and nested blocks all
    // attribute to it).
    auto currentFn = [&]() -> FunctionInfo * {
        for (size_t s = stack.size(); s-- > 0;)
            if (stack[s].body)
                return &index.functions[stack[s].fn];
        return nullptr;
    };
    // Statement boundary of the innermost region, for return-type runs
    // and discard back-scans.
    size_t stmt_begin = 0;

    for (size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        FunctionInfo *fn = currentFn();

        if (tok.text == "{") {
            stack.push_back(Region{});
            stmt_begin = i + 1;
            continue;
        }
        if (tok.text == "}") {
            if (!stack.empty())
                stack.pop_back();
            stmt_begin = i + 1;
            continue;
        }
        if (tok.text == ";") {
            stmt_begin = i + 1;
            continue;
        }

        // May-allocate facts inside a body.
        if (fn != nullptr && tok.kind == Token::Kind::Ident) {
            if (tok.text == "new" && !sc.is(i + 1, "(")) {
                fn->allocs.push_back({tok.line, "new"});
            } else if (isAllocName(tok.text) &&
                       (sc.is(i + 1, "(") || sc.is(i + 1, "<"))) {
                fn->allocs.push_back({tok.line, tok.text});
            } else if (isGrowthMethod(tok.text) && sc.is(i + 1, "(") &&
                       i > 0 &&
                       (sc.is(i - 1, ".") || sc.is(i - 1, "->"))) {
                fn->allocs.push_back({tok.line, "." + tok.text + "()"});
            }
            // Local lambda binding: `name = [...]` resolves locally.
            if (sc.is(i + 1, "=") && sc.is(i + 2, "["))
                fn->locals.insert(tok.text);
        }

        if (tok.text != "(")
            continue;

        // A '(' preceded by a name (possibly with template args) is a
        // call site or, at class/namespace scope, a signature.
        size_t name_pos = std::string::npos;
        if (i > 0 && tokens[i - 1].kind == Token::Kind::Ident)
            name_pos = i - 1;
        else if (i > 0 && tokens[i - 1].text == ">")
            name_pos = sc.templateNameBefore(i);
        if (name_pos == std::string::npos)
            continue;
        const std::string &name = tokens[name_pos].text;
        if (isCallKeyword(name) || isSpecifierKeyword(name))
            continue;

        // The qualified chain start: A::B::name.
        size_t chain_begin = name_pos;
        while (chain_begin >= 2 && tokens[chain_begin - 1].text == "::" &&
               tokens[chain_begin - 2].kind == Token::Kind::Ident)
            chain_begin -= 2;

        const size_t close = sc.matchParen(i);
        if (close == std::string::npos)
            continue;

        if (fn != nullptr) {
            // Call site. Local lambda names resolve inside the body.
            if (fn->locals.count(name))
                continue;
            CallSite call;
            call.name = name;
            call.line = tok.line;
            call.discarded =
                sc.is(close, ";") &&
                callStartsStatement(sc, chain_begin, stmt_begin);
            fn->calls.push_back(std::move(call));
            continue;
        }

        // Signature at class/namespace scope: definition when the
        // parameter list is followed by a body (possibly behind
        // cv-qualifiers, noexcept, override, a trailing return type, or
        // a member-init list), declaration when it ends in ';'.
        size_t after = close;
        while (after < tokens.size()) {
            const std::string &t = tokens[after].text;
            if (t == "const" || t == "noexcept" || t == "override" ||
                t == "final" || t == "mutable" || t == "&" || t == "&&") {
                ++after;
                continue;
            }
            if (t == "(") {  // noexcept(...)
                const size_t skip = sc.matchParen(after);
                if (skip == std::string::npos)
                    break;
                after = skip;
                continue;
            }
            if (t == "->") {  // trailing return type
                after += 2;
                continue;
            }
            break;
        }

        bool defined = false;
        size_t body_open = std::string::npos;
        if (sc.is(after, "{")) {
            defined = true;
            body_open = after;
        } else if (sc.is(after, ":")) {
            body_open = skipInitList(sc, after);
            defined = body_open != std::string::npos;
        } else if (!sc.is(after, ";") && !sc.is(after, "=")) {
            continue;  // expression or macro use, not a declaration
        }
        // `= default` / `= delete` / `= 0` declarations carry no body.

        const ReturnFacts facts =
            classifyReturnTokens(sc, stmt_begin, chain_begin);
        if (!facts.plausible)
            continue;

        FunctionInfo info;
        info.name = name;
        for (size_t q = chain_begin; q <= name_pos; ++q)
            info.qualified += tokens[q].text;
        info.file = rel_path;
        info.line = tokens[name_pos].line;
        info.defined = defined;
        info.returns_status = facts.returns_status;
        info.returns_string = facts.returns_string;
        index.functions.push_back(std::move(info));

        if (defined) {
            // Enter the body: skip to its '{' and push a body region.
            while (i + 1 < tokens.size() && i != body_open)
                ++i;
            stack.push_back(
                Region{true, index.functions.size() - 1});
            stmt_begin = i + 1;
        } else {
            // Resume after the declaration's parameter list, so
            // default-argument expressions never register as calls.
            i = close - 1;
        }
    }
}

void
finalizeIndex(SymbolIndex &index)
{
    index.by_name.clear();
    for (size_t f = 0; f < index.functions.size(); ++f)
        index.by_name[index.functions[f].name].push_back(f);
}

} // namespace tlp::lint
