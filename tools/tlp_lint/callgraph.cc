/**
 * @file
 * Pass 2 of the flow-aware analysis: rule families over the symbol
 * index built by index.cc.
 *
 * unchecked-result — a call to any function the index knows to return
 * Status/Result<T> by value, whose value is discarded (the call is a
 * whole statement), is a finding in every `must-check` scope and every
 * `loader-tu`. The return-type facts are tree-wide, so a dropped Status
 * fires even when the callee's declaration lives in a different TU.
 *
 * hot-call-alloc — the transitive closure of the no-allocation contract
 * (DESIGN.md §13): starting from the manifest's `hot-entry` roots, walk
 * the call graph (breadth-first, deterministic order) and flag every
 * reachable function that may allocate — heap tokens, container growth,
 * or returning std::string by value — unless its body lives in a
 * declared `hot-tu` (those are already covered, line by line, by the
 * per-TU hot-alloc rule and its audited suppressions). Call edges
 * resolve by unqualified name to every known definition (conservative
 * for overloads); names the index never saw create no edge, so code
 * outside the indexed scope is a documented blind spot, not a crash.
 *
 * Findings land on the offending line in the *callee's* file, carrying
 * the call path from the root, so the regular audited-suppression
 * mechanism applies at the allocation site.
 */
#include "tools/tlp_lint/lint.h"

#include <algorithm>
#include <deque>

namespace tlp::lint {

namespace {

/** True when @p file must not drop Status/Result values. */
bool
inMustCheckScope(const std::string &file, const Manifest &manifest)
{
    if (manifest.loader_tus.count(file))
        return true;
    return std::any_of(manifest.must_check.begin(),
                       manifest.must_check.end(),
                       [&](const std::string &prefix) {
                           return pathInScope(file, prefix);
                       });
}

/** True when @p fn matches a `hot-entry` name ("seqKeyOf") or
 *  qualified suffix ("FusedTlpInference::predict"). */
bool
isHotEntry(const FunctionInfo &fn, const Manifest &manifest)
{
    if (manifest.hot_entries.count(fn.name))
        return true;
    return manifest.hot_entries.count(fn.qualified) > 0;
}

} // namespace

std::vector<Finding>
analyzeIndex(const SymbolIndex &index, const Manifest &manifest)
{
    std::vector<Finding> findings;

    // --- unchecked-result ----------------------------------------------
    // Name -> the first declaration site that returns Status/Result, for
    // the finding message. A name is flagged only when *every* indexed
    // overload returns Status/Result: the tree's save/load families pair
    // a Status-returning path wrapper with a void stream overload of the
    // same name, and a by-name index cannot tell those calls apart.
    std::map<std::string, const FunctionInfo *> status_names;
    for (const FunctionInfo &fn : index.functions) {
        if (fn.returns_status && !status_names.count(fn.name))
            status_names.emplace(fn.name, &fn);
    }
    for (const FunctionInfo &fn : index.functions) {
        if (!fn.returns_status)
            status_names.erase(fn.name);
    }
    for (const FunctionInfo &fn : index.functions) {
        if (!fn.defined || !inMustCheckScope(fn.file, manifest))
            continue;
        for (const CallSite &call : fn.calls) {
            if (!call.discarded)
                continue;
            const auto it = status_names.find(call.name);
            if (it == status_names.end())
                continue;
            Finding f;
            f.file = fn.file;
            f.line = call.line;
            f.rule = "unchecked-result";
            f.message =
                "call to " + call.name + "() discards its Status/Result (" +
                it->second->file + ":" +
                std::to_string(it->second->line) +
                "); assign and check it, propagate it, or route it "
                "through artifactFatal";
            findings.push_back(std::move(f));
        }
    }

    // --- hot-call-alloc -------------------------------------------------
    // Deterministic BFS from the hot-entry roots, tracking one shortest
    // call path per function for the finding message.
    std::map<size_t, std::vector<std::string>> reached;  // fn -> path
    std::deque<size_t> queue;
    for (size_t f = 0; f < index.functions.size(); ++f) {
        const FunctionInfo &fn = index.functions[f];
        if (fn.defined && isHotEntry(fn, manifest)) {
            reached.emplace(f, std::vector<std::string>{fn.name});
            queue.push_back(f);
        }
    }
    std::vector<size_t> order;  // visit order, for stable reporting
    while (!queue.empty()) {
        const size_t f = queue.front();
        queue.pop_front();
        order.push_back(f);
        const FunctionInfo &fn = index.functions[f];
        for (const CallSite &call : fn.calls) {
            const auto targets = index.by_name.find(call.name);
            if (targets == index.by_name.end())
                continue;
            for (size_t t : targets->second) {
                if (!index.functions[t].defined || reached.count(t))
                    continue;
                std::vector<std::string> path = reached.at(f);
                path.push_back(index.functions[t].name);
                reached.emplace(t, std::move(path));
                queue.push_back(t);
            }
        }
    }
    std::set<std::pair<std::string, int>> emitted;
    for (size_t f : order) {
        const FunctionInfo &fn = index.functions[f];
        // Hot-TU bodies are the per-TU hot-alloc rule's jurisdiction.
        if (manifest.hot_tus.count(fn.file))
            continue;
        const std::vector<std::string> &path = reached.at(f);
        std::string via = path.front();
        for (size_t p = 1; p < path.size(); ++p)
            via += " -> " + path[p];
        auto emit = [&](int line, const std::string &what) {
            if (!emitted.insert({fn.file, line}).second)
                return;
            Finding finding;
            finding.file = fn.file;
            finding.line = line;
            finding.rule = "hot-call-alloc";
            finding.message =
                what + " in " + fn.name +
                "(), reachable from hot entry via " + via +
                " (DESIGN.md §13): use the Arena / preallocated "
                "storage, or audit warm-up growth with a suppression";
            findings.push_back(std::move(finding));
        };
        for (const AllocSite &alloc : fn.allocs)
            emit(alloc.line, "heap allocation (" + alloc.what + ")");
        if (fn.returns_string)
            emit(fn.line, "std::string returned by value");
    }
    return findings;
}

} // namespace tlp::lint
