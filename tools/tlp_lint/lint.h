/**
 * @file
 * tlp_lint: a self-hosted invariant checker for the TLP tree.
 *
 * The repo's correctness story rests on invariants that used to live only
 * in prose (CLAUDE.md / DESIGN.md): all stochasticity flows through seeded
 * support/rng generators, the TLP feature path never touches lowering
 * (the paper's Fig. 10 asymmetry), artifact loaders return Status /
 * Result<T> instead of aborting, and length-prefixed allocations sit next
 * to remaining-bytes bound checks. tlp_lint machine-enforces them: a small
 * C++ lexer strips comments and string literals (so banned tokens inside
 * doc comments or message strings never fire), and a rule engine driven by
 * a checked-in manifest (tools/lint_manifest.txt) scans the tree.
 *
 * Findings are suppressible only via an audited comment on the offending
 * line or the line above:
 *
 *     // tlp-lint: allow(<rule-id>) -- <reason>
 *
 * A suppression that matches no finding is itself a finding
 * (unused-suppression), so stale audits cannot accumulate.
 *
 * Exit codes follow the CLI contract (DESIGN.md §10): 0 = clean,
 * 1 = unsuppressed findings, 2 = usage / manifest error (TLP_FATAL).
 *
 * Rule catalogue (see DESIGN.md §11 for the full prose):
 *   rand               libc random sources (rand, srand, drand48, ...)
 *   random-device      std::random_device (non-reproducible seeding)
 *   std-engine         any <random> engine or distribution; stochasticity
 *                      must flow through support/rng
 *   wallclock          clock reads (system_clock, steady_clock, time(),
 *                      gettimeofday, ...) outside allowlisted timing TUs
 *   layering           include edge violating the module DAG declared in
 *                      the manifest (`layer` directives)
 *   include-forbidden  file-level include ban (`forbid-include`), e.g.
 *                      features/tlp_* must not see schedule/lower.h
 *   include-required   file-level include mandate (`require-include`),
 *                      e.g. the Ansor extractor must see schedule/lower.h
 *   loader-fatal       TLP_FATAL / TLP_PANIC inside a TU contracted to
 *                      return Status / Result<T> (`loader-tu`)
 *   unbounded-alloc    resize/reserve in a `serialize-consumer` TU with no
 *                      remaining-bytes check in the preceding lines
 *   raw-io             raw std::ofstream / rename on a TU under a
 *                      `forbid-raw-io` prefix that is not a declared
 *                      `raw-io-exempt` TU; artifact bytes must flow
 *                      through the io_env/serialize seam
 *                      (atomicWriteFile, quarantineArtifact) so fault
 *                      injection and crash-consistency guarantees
 *                      cannot be bypassed (DESIGN.md §14)
 *   hot-alloc          heap allocation (new, make_unique/make_shared,
 *                      malloc, or container growth) in a `hot-tu` TU; the
 *                      scoring hot path (DESIGN.md §13) must draw scratch
 *                      from an Arena or storage preallocated at
 *                      construction — one-time sizing carries an audited
 *                      suppression
 *   pragma-once        header missing #pragma once
 *   float-eq           == / != against a floating-point literal (NaN-label
 *                      hazard; use std::isnan or an epsilon)
 *   member-underscore  private/protected data member without the
 *                      trailing_underscore_ style
 *   bad-suppression    malformed tlp-lint comment (missing rule or reason)
 *   unused-suppression suppression that matched no finding
 */
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/result.h"

namespace tlp::lint {

/** One rule violation at a source location. */
struct Finding
{
    std::string file;   ///< root-relative path
    int line = 0;       ///< 1-based; 0 for whole-file findings
    std::string rule;   ///< rule id, e.g. "wallclock"
    std::string message;

    /** "file:line: [rule] message" for terminal output. */
    std::string toString() const;
};

/** One `tlp-lint: allow(rule) -- reason` comment. */
struct Suppression
{
    int line = 0;
    std::string rule;
    std::string reason;
    bool used = false;
};

/**
 * A source file with comments and literal contents blanked out.
 *
 * All views preserve line numbers exactly (same number of lines as the
 * input, bytes replaced by spaces), so rule hits map back to the
 * original file.
 */
struct StrippedSource
{
    /** Comments blanked AND string/char literal contents blanked. Token
     *  rules (rand, wallclock, float-eq, ...) run on this view so a
     *  banned name inside a log message can never fire. */
    std::vector<std::string> code;
    /** Comments blanked, string literals kept. Preprocessor rules
     *  (#include extraction, #pragma once) run on this view. */
    std::vector<std::string> directives;
    /** Parsed suppression comments, in line order. */
    std::vector<Suppression> suppressions;
    /** Malformed tlp-lint comments (reported as bad-suppression). */
    std::vector<Finding> bad_suppressions;
};

/** Strip @p text; never fails (unterminated constructs end at EOF). */
StrippedSource stripSource(const std::string &text);

/** Parsed tools/lint_manifest.txt. All paths are root-relative. */
struct Manifest
{
    /** Path prefixes exempt from the wallclock rule (timing TUs). */
    std::vector<std::string> wallclock_allow;
    /** Path prefixes skipped entirely. */
    std::vector<std::string> excludes;
    /** Module -> modules it may #include from (src/ layering DAG). */
    std::map<std::string, std::set<std::string>> layers;
    /** (file prefix, include substring) bans. */
    std::vector<std::pair<std::string, std::string>> forbid_includes;
    /** (file prefix, include substring) mandates. */
    std::vector<std::pair<std::string, std::string>> require_includes;
    /** TUs contracted to return Status/Result<T> (no FATAL/PANIC). */
    std::set<std::string> loader_tus;
    /** TUs whose resize/reserve must sit near a bound check. */
    std::set<std::string> serialize_consumers;
    /** Hot-path TUs (DESIGN.md §13): no unaudited heap allocation. */
    std::set<std::string> hot_tus;
    /** Prefixes where raw ofstream/rename is banned (DESIGN.md §14). */
    std::vector<std::string> raw_io_scopes;
    /** TUs exempt from the raw-io ban (the seam itself). */
    std::set<std::string> raw_io_exempt;
};

/**
 * Parse manifest text. Returns Invalid with a line number on a syntax
 * error (unknown directive, missing `->`, empty operand).
 */
Result<Manifest> parseManifest(const std::string &text);

/** Convenience: read and parse a manifest file. */
Result<Manifest> loadManifest(const std::string &path);

/**
 * Lint one file. @p rel_path is the root-relative path used for rule
 * scoping (layer membership, allowlists); @p text is the file contents.
 * Returns only unsuppressed findings (plus unused-suppression /
 * bad-suppression findings).
 */
std::vector<Finding> lintFile(const std::string &rel_path,
                              const std::string &text,
                              const Manifest &manifest);

/** Result of walking a tree. */
struct LintReport
{
    std::vector<Finding> findings;
    int files_scanned = 0;
};

/**
 * Lint every *.h / *.cc / *.cpp under @p root joined with each of
 * @p dirs (a dir entry may also name a single file). Files matching a
 * manifest `exclude` prefix are skipped. Deterministic: files are
 * visited in sorted root-relative order. Fails with IoError if a
 * requested dir does not exist.
 */
Result<LintReport> lintTree(const std::string &root,
                            const std::vector<std::string> &dirs,
                            const Manifest &manifest);

} // namespace tlp::lint
