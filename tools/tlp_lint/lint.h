/**
 * @file
 * tlp_lint: a self-hosted invariant checker for the TLP tree.
 *
 * The repo's correctness story rests on invariants that used to live only
 * in prose (CLAUDE.md / DESIGN.md): all stochasticity flows through seeded
 * support/rng generators, the TLP feature path never touches lowering
 * (the paper's Fig. 10 asymmetry), artifact loaders return Status /
 * Result<T> instead of aborting, and length-prefixed allocations sit next
 * to remaining-bytes bound checks. tlp_lint machine-enforces them: a small
 * C++ lexer strips comments and string literals (so banned tokens inside
 * doc comments or message strings never fire), and a rule engine driven by
 * a checked-in manifest (tools/lint_manifest.txt) scans the tree.
 *
 * Since v2 the scan is two-pass and flow-aware: pass 1 builds a tree-wide
 * symbol index from the lexer's token stream (function definitions and
 * declarations with their return-type facts, a per-function call graph,
 * and per-function may-allocate facts), and pass 2 runs cross-TU rule
 * families over that index — a Status/Result<T> dropped at any call site
 * (unchecked-result) and heap allocation transitively reachable from a
 * hot-path entry point (hot-call-alloc) are findings even when caller and
 * callee live in different TUs.
 *
 * Findings are suppressible only via an audited comment on the offending
 * line or the line above:
 *
 *     // tlp-lint: allow(<rule-id>) -- <reason>
 *
 * A suppression that matches no finding is itself a finding
 * (unused-suppression), so stale audits cannot accumulate.
 *
 * Exit codes follow the CLI contract (DESIGN.md §10): 0 = clean,
 * 1 = unsuppressed findings, 2 = usage / manifest error (TLP_FATAL).
 *
 * Rule catalogue (see DESIGN.md §11 for the full prose):
 *   rand               libc random sources (rand, srand, drand48, ...)
 *   random-device      std::random_device (non-reproducible seeding)
 *   std-engine         any <random> engine or distribution; stochasticity
 *                      must flow through support/rng
 *   wallclock          clock reads (system_clock, steady_clock, time(),
 *                      gettimeofday, ...) outside allowlisted timing TUs
 *   layering           include edge violating the module DAG declared in
 *                      the manifest (`layer` directives)
 *   include-forbidden  file-level include ban (`forbid-include`), e.g.
 *                      features/tlp_* must not see schedule/lower.h
 *   include-required   file-level include mandate (`require-include`),
 *                      e.g. the Ansor extractor must see schedule/lower.h
 *   loader-fatal       TLP_FATAL / TLP_PANIC inside a TU contracted to
 *                      return Status / Result<T> (`loader-tu`)
 *   unbounded-alloc    resize/reserve in a `serialize-consumer` TU with no
 *                      remaining-bytes check in the preceding lines
 *   raw-io             raw std::ofstream / rename on a TU under a
 *                      `forbid-raw-io` prefix that is not a declared
 *                      `raw-io-exempt` TU; artifact bytes must flow
 *                      through the io_env/serialize seam
 *                      (atomicWriteFile, quarantineArtifact) so fault
 *                      injection and crash-consistency guarantees
 *                      cannot be bypassed (DESIGN.md §14)
 *   hot-alloc          heap allocation (new, make_unique/make_shared,
 *                      malloc, or container growth) in a `hot-tu` TU; the
 *                      scoring hot path (DESIGN.md §13) must draw scratch
 *                      from an Arena or storage preallocated at
 *                      construction — one-time sizing carries an audited
 *                      suppression
 *   unchecked-result   call to a Status/Result<T>-returning function whose
 *                      value is discarded (not assigned, returned, passed
 *                      as an argument, or tested) inside a `must-check`
 *                      scope or a `loader-tu`; flow-aware: the return
 *                      types come from the tree-wide symbol index, so a
 *                      dropped Status at any call site is caught even when
 *                      the callee lives in another TU
 *   hot-call-alloc     transitive form of hot-alloc: a function reachable
 *                      on the call graph from a manifest-declared
 *                      `hot-entry` root that may allocate (heap tokens,
 *                      container growth, or returning std::string by
 *                      value) is a finding even when its body lives in a
 *                      non-hot TU; functions defined inside `hot-tu` TUs
 *                      are covered by the per-TU hot-alloc rule instead
 *   suppression-budget the tree carries more `tlp-lint: allow(...)`
 *                      audits than the manifest's `suppression-budget N`
 *                      (or --max-suppressions) allows — suppressions may
 *                      only grow deliberately
 *   pragma-once        header missing #pragma once
 *   float-eq           == / != against a floating-point literal (NaN-label
 *                      hazard; use std::isnan or an epsilon)
 *   member-underscore  private/protected data member without the
 *                      trailing_underscore_ style
 *   bad-suppression    malformed tlp-lint comment (missing rule or reason)
 *   unused-suppression suppression that matched no finding
 */
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/result.h"

namespace tlp::lint {

/** One rule violation at a source location. */
struct Finding
{
    std::string file;   ///< root-relative path
    int line = 0;       ///< 1-based; 0 for whole-file findings
    std::string rule;   ///< rule id, e.g. "wallclock"
    std::string message;

    /** "file:line: [rule] message" for terminal output. */
    std::string toString() const;
};

/** One `tlp-lint: allow(rule) -- reason` comment. */
struct Suppression
{
    int line = 0;
    std::string rule;
    std::string reason;
    bool used = false;
};

/**
 * A source file with comments and literal contents blanked out.
 *
 * All views preserve line numbers exactly (same number of lines as the
 * input, bytes replaced by spaces), so rule hits map back to the
 * original file.
 */
struct StrippedSource
{
    /** Comments blanked AND string/char literal contents blanked. Token
     *  rules (rand, wallclock, float-eq, ...) run on this view so a
     *  banned name inside a log message can never fire. */
    std::vector<std::string> code;
    /** Comments blanked, string literals kept. Preprocessor rules
     *  (#include extraction, #pragma once) run on this view. */
    std::vector<std::string> directives;
    /** Parsed suppression comments, in line order. */
    std::vector<Suppression> suppressions;
    /** Malformed tlp-lint comments (reported as bad-suppression). */
    std::vector<Finding> bad_suppressions;
};

/** Strip @p text; never fails (unterminated constructs end at EOF). */
StrippedSource stripSource(const std::string &text);

/** Parsed tools/lint_manifest.txt. All paths are root-relative. */
struct Manifest
{
    /** Path prefixes exempt from the wallclock rule (timing TUs). */
    std::vector<std::string> wallclock_allow;
    /** Path prefixes skipped entirely. */
    std::vector<std::string> excludes;
    /** Module -> modules it may #include from (src/ layering DAG). */
    std::map<std::string, std::set<std::string>> layers;
    /** (file prefix, include substring) bans. */
    std::vector<std::pair<std::string, std::string>> forbid_includes;
    /** (file prefix, include substring) mandates. */
    std::vector<std::pair<std::string, std::string>> require_includes;
    /** TUs contracted to return Status/Result<T> (no FATAL/PANIC). */
    std::set<std::string> loader_tus;
    /** TUs whose resize/reserve must sit near a bound check. */
    std::set<std::string> serialize_consumers;
    /** Hot-path TUs (DESIGN.md §13): no unaudited heap allocation. */
    std::set<std::string> hot_tus;
    /** Prefixes where raw ofstream/rename is banned (DESIGN.md §14). */
    std::vector<std::string> raw_io_scopes;
    /** TUs exempt from the raw-io ban (the seam itself). */
    std::set<std::string> raw_io_exempt;
    /** Prefixes where a discarded Status/Result call is a finding
     *  (loader-tus are always in scope). */
    std::vector<std::string> must_check;
    /** Hot-path roots for transitive allocation tracking; a bare name
     *  ("seqKeyOf") or a Class::method suffix of the qualified name. */
    std::set<std::string> hot_entries;
    /** Max tree-wide `tlp-lint: allow(...)` count; -1 = unlimited. */
    int suppression_budget = -1;
};

/**
 * True when @p path falls under @p prefix at a path-component (or
 * extension) boundary: "src/tuner/session" matches "src/tuner/session",
 * "src/tuner/session.cc" and "src/tuner/session/x.cc" but never
 * "src/tuner/session_extra.cc". A prefix ending in '/' matches every
 * path under that directory.
 */
bool pathInScope(const std::string &path, const std::string &prefix);

/**
 * Parse manifest text. Returns Invalid with a line number on a syntax
 * error (unknown directive, missing `->`, empty operand).
 */
Result<Manifest> parseManifest(const std::string &text);

/** Convenience: read and parse a manifest file. */
Result<Manifest> loadManifest(const std::string &path);

/**
 * Lint one file. @p rel_path is the root-relative path used for rule
 * scoping (layer membership, allowlists); @p text is the file contents.
 * Returns only unsuppressed findings (plus unused-suppression /
 * bad-suppression findings). Per-file rules only: the cross-TU rule
 * families (unchecked-result, hot-call-alloc) need the whole tree and
 * run through lintSources/lintTree.
 */
std::vector<Finding> lintFile(const std::string &rel_path,
                              const std::string &text,
                              const Manifest &manifest);

// --- cross-TU symbol index (pass 1 of the flow-aware analysis) ----------

/** One call site inside a function body. */
struct CallSite
{
    std::string name;       ///< unqualified callee name
    int line = 0;
    /** True when the call is a whole statement whose value is dropped
     *  (not assigned, returned, passed as an argument, or tested). */
    bool discarded = false;
};

/** One may-allocate fact inside a function body. */
struct AllocSite
{
    int line = 0;
    std::string what;       ///< e.g. "make_unique", ".push_back("
};

/** One function definition or declaration seen by the indexer. */
struct FunctionInfo
{
    std::string name;       ///< unqualified, e.g. "parallelFor"
    std::string qualified;  ///< as written, e.g. "ThreadPool::parallelFor"
    std::string file;       ///< root-relative defining/declaring TU
    int line = 0;
    bool defined = false;   ///< has a body (vs a prototype)
    /** Returns Status or Result<T> by value (references/pointers are
     *  accessors and do not count). */
    bool returns_status = false;
    /** Returns std::string by value — an allocation at every call. */
    bool returns_string = false;
    std::vector<CallSite> calls;    ///< body call sites (defined only)
    std::vector<AllocSite> allocs;  ///< body may-allocate facts
    std::set<std::string> locals;   ///< local lambda bindings; calls to
                                    ///< these resolve inside the body
};

/** Tree-wide symbol index: pass 1 of the flow-aware rule families. */
struct SymbolIndex
{
    std::vector<FunctionInfo> functions;
    /** Unqualified name -> indices into functions (finalizeIndex). */
    std::map<std::string, std::vector<size_t>> by_name;
};

/** Append every function of one stripped file to @p index. */
void indexSource(const std::string &rel_path, const StrippedSource &src,
                 SymbolIndex &index);

/** Rebuild by_name after the last indexSource call. */
void finalizeIndex(SymbolIndex &index);

/**
 * Pass 2: run the flow-aware rule families over the finalized index —
 * unchecked-result over `must-check` scopes + loader-tus, and
 * hot-call-alloc over everything reachable from the `hot-entry` roots.
 * Returns raw findings; suppression resolution happens in lintSources.
 */
std::vector<Finding> analyzeIndex(const SymbolIndex &index,
                                  const Manifest &manifest);

/** An in-memory source file for lintSources. */
struct SourceFile
{
    std::string rel_path;
    std::string text;
};

/** Result of walking a tree. */
struct LintReport
{
    std::vector<Finding> findings;
    int files_scanned = 0;
    /** Well-formed `tlp-lint: allow(...)` audits across scanned files. */
    int suppressions = 0;
};

/**
 * Lint a whole in-memory tree: per-file rules, the cross-TU index and
 * flow rules, suppression resolution, and the suppression-budget check.
 * Files matching a manifest `exclude` prefix must already be filtered
 * out by the caller.
 */
Result<LintReport> lintSources(const std::vector<SourceFile> &files,
                               const Manifest &manifest);

/** Every rule id the engine can emit (for fixture-coverage meta-tests). */
std::vector<std::string> allRuleIds();

/**
 * Lint every *.h / *.cc / *.cpp under @p root joined with each of
 * @p dirs (a dir entry may also name a single file). Files matching a
 * manifest `exclude` prefix are skipped. Deterministic: files are
 * visited in sorted root-relative order. Fails with IoError if a
 * requested dir does not exist.
 */
Result<LintReport> lintTree(const std::string &root,
                            const std::vector<std::string> &dirs,
                            const Manifest &manifest);

} // namespace tlp::lint
