/**
 * @file
 * tlp_lint CLI.
 *
 *     tlp_lint --manifest tools/lint_manifest.txt --root . src bench
 *
 * Exit codes follow the repo-wide contract (DESIGN.md §10/§11): 0 when
 * the scanned tree is clean, 1 on any unsuppressed finding, 2 on a
 * usage or manifest error (TLP_FATAL).
 */
#include <iostream>
#include <string>
#include <vector>

#include "support/logging.h"
#include "tools/tlp_lint/lint.h"

namespace {

void
printUsage(std::ostream &os)
{
    os << "usage: tlp_lint --manifest <file> [--root <dir>] "
          "<path> [<path> ...]\n"
          "\n"
          "Scans *.h / *.cc / *.cpp under each <path> (relative to "
          "--root, default \".\")\nand enforces the invariants declared "
          "in the manifest. See DESIGN.md section 11.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifest_path;
    std::string root = ".";
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                TLP_FATAL("flag ", arg, " expects a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (arg == "--manifest") {
            manifest_path = value();
        } else if (arg == "--root") {
            root = value();
        } else if (!arg.empty() && arg[0] == '-') {
            printUsage(std::cerr);
            TLP_FATAL("unknown flag ", arg);
        } else {
            paths.push_back(arg);
        }
    }
    if (manifest_path.empty()) {
        printUsage(std::cerr);
        TLP_FATAL("--manifest is required");
    }
    if (paths.empty()) {
        printUsage(std::cerr);
        TLP_FATAL("no paths to scan");
    }

    const auto manifest = tlp::lint::loadManifest(manifest_path);
    if (!manifest.ok())
        TLP_FATAL(manifest.status().toString());

    const auto report =
        tlp::lint::lintTree(root, paths, manifest.value());
    if (!report.ok())
        TLP_FATAL(report.status().toString());

    for (const tlp::lint::Finding &finding : report.value().findings)
        std::cerr << finding.toString() << "\n";
    const size_t count = report.value().findings.size();
    if (count > 0) {
        std::cerr << "tlp_lint: " << count << " finding(s) in "
                  << report.value().files_scanned
                  << " file(s); suppress only with \"// tlp-lint: "
                     "allow(<rule-id>) -- <reason>\"\n";
        return 1;
    }
    std::cerr << "tlp_lint: clean (" << report.value().files_scanned
              << " files)\n";
    return 0;
}
