/**
 * @file
 * tlp_lint CLI.
 *
 *     tlp_lint --manifest tools/lint_manifest.txt --root . src bench
 *
 * Exit codes follow the repo-wide contract (DESIGN.md §10/§11): 0 when
 * the scanned tree is clean, 1 on any unsuppressed finding, 2 on a
 * usage or manifest error (TLP_FATAL).
 *
 * `--format json` emits a machine-readable report on stdout (CI
 * archives it as an artifact); the human format on stderr stays the
 * default. `--max-suppressions N` overrides the manifest's
 * suppression-budget for the run.
 */
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "support/logging.h"
#include "tools/tlp_lint/lint.h"

namespace {

void
printUsage(std::ostream &os)
{
    os << "usage: tlp_lint --manifest <file> [--root <dir>] "
          "[--format human|json]\n"
          "                [--max-suppressions <n>] <path> [<path> ...]\n"
          "\n"
          "Scans *.h / *.cc / *.cpp under each <path> (relative to "
          "--root, default \".\")\nand enforces the invariants declared "
          "in the manifest. See DESIGN.md section 11.\n";
}

/** JSON string escaping for the --format json report. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
printJson(std::ostream &os, const tlp::lint::LintReport &report)
{
    os << "{\n"
       << "  \"files_scanned\": " << report.files_scanned << ",\n"
       << "  \"suppressions\": " << report.suppressions << ",\n"
       << "  \"findings\": [";
    for (size_t f = 0; f < report.findings.size(); ++f) {
        const tlp::lint::Finding &finding = report.findings[f];
        os << (f ? ",\n    {" : "\n    {")
           << "\"file\": \"" << jsonEscape(finding.file) << "\", "
           << "\"line\": " << finding.line << ", "
           << "\"rule\": \"" << jsonEscape(finding.rule) << "\", "
           << "\"message\": \"" << jsonEscape(finding.message) << "\"}";
    }
    os << (report.findings.empty() ? "]" : "\n  ]") << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifest_path;
    std::string root = ".";
    std::string format = "human";
    int max_suppressions = -1;
    bool have_max_suppressions = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                TLP_FATAL("flag ", arg, " expects a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (arg == "--manifest") {
            manifest_path = value();
        } else if (arg == "--root") {
            root = value();
        } else if (arg == "--format") {
            format = value();
            if (format != "human" && format != "json")
                TLP_FATAL("--format expects 'human' or 'json', got ",
                          format);
        } else if (arg == "--max-suppressions") {
            const std::string text = value();
            try {
                max_suppressions = std::stoi(text);
            } catch (const std::exception &) {
                TLP_FATAL("--max-suppressions expects an integer, got ",
                          text);
            }
            if (max_suppressions < 0)
                TLP_FATAL("--max-suppressions must be >= 0");
            have_max_suppressions = true;
        } else if (!arg.empty() && arg[0] == '-') {
            printUsage(std::cerr);
            TLP_FATAL("unknown flag ", arg);
        } else {
            paths.push_back(arg);
        }
    }
    if (manifest_path.empty()) {
        printUsage(std::cerr);
        TLP_FATAL("--manifest is required");
    }
    if (paths.empty()) {
        printUsage(std::cerr);
        TLP_FATAL("no paths to scan");
    }

    auto manifest = tlp::lint::loadManifest(manifest_path);
    if (!manifest.ok())
        TLP_FATAL(manifest.status().toString());
    if (have_max_suppressions)
        manifest.value().suppression_budget = max_suppressions;

    const auto report =
        tlp::lint::lintTree(root, paths, manifest.value());
    if (!report.ok())
        TLP_FATAL(report.status().toString());

    if (format == "json")
        printJson(std::cout, report.value());

    for (const tlp::lint::Finding &finding : report.value().findings)
        std::cerr << finding.toString() << "\n";
    const size_t count = report.value().findings.size();
    if (count > 0) {
        std::cerr << "tlp_lint: " << count << " finding(s) in "
                  << report.value().files_scanned
                  << " file(s); suppress only with \"// tlp-lint: "
                     "allow(<rule-id>) -- <reason>\"\n";
        return 1;
    }
    std::cerr << "tlp_lint: clean (" << report.value().files_scanned
              << " files)\n";
    return 0;
}
