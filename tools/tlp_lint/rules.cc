/**
 * @file
 * Manifest parser and rule engine for tlp_lint.
 *
 * Every rule runs on the stripped views produced by stripSource (see
 * lexer.cc), so banned tokens inside comments or log-message strings
 * never fire. Rules emit raw findings; suppression resolution happens
 * once at the end of lintFile so that the unused-suppression rule can
 * see the complete picture.
 */
#include "tools/tlp_lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "support/str_util.h"

namespace tlp::lint {

namespace fs = std::filesystem;

std::string
Finding::toString() const
{
    std::ostringstream os;
    os << file << ":" << line << ": [" << rule << "] " << message;
    return os.str();
}

// --- Manifest -----------------------------------------------------------

namespace {

/** Split on runs of whitespace. */
std::vector<std::string>
splitWhitespace(const std::string &text)
{
    std::vector<std::string> tokens;
    std::istringstream is(text);
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    return tokens;
}

Status
manifestError(int line, const std::string &what)
{
    return Status::error(ErrorCode::Invalid,
                         "lint manifest line " + std::to_string(line) +
                             ": " + what);
}

/** Split a directive operand of the form "lhs -> rhs...". */
bool
splitArrow(const std::vector<std::string> &tokens, size_t &arrow_pos)
{
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i] == "->") {
            arrow_pos = i;
            return true;
        }
    }
    return false;
}

} // namespace

Result<Manifest>
parseManifest(const std::string &text)
{
    Manifest manifest;
    std::istringstream is(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        const size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        const std::string line = strip(raw);
        if (line.empty())
            continue;
        const std::vector<std::string> tokens = splitWhitespace(line);
        const std::string &directive = tokens[0];

        if (directive == "exclude" || directive == "allow-wallclock" ||
            directive == "loader-tu" ||
            directive == "serialize-consumer" || directive == "hot-tu" ||
            directive == "forbid-raw-io" ||
            directive == "raw-io-exempt" || directive == "must-check" ||
            directive == "hot-entry") {
            if (tokens.size() != 2) {
                return manifestError(lineno, directive +
                                                 " expects exactly one "
                                                 "path operand");
            }
            const std::string &path = tokens[1];
            if (directive == "exclude")
                manifest.excludes.push_back(path);
            else if (directive == "allow-wallclock")
                manifest.wallclock_allow.push_back(path);
            else if (directive == "loader-tu")
                manifest.loader_tus.insert(path);
            else if (directive == "hot-tu")
                manifest.hot_tus.insert(path);
            else if (directive == "forbid-raw-io")
                manifest.raw_io_scopes.push_back(path);
            else if (directive == "raw-io-exempt")
                manifest.raw_io_exempt.insert(path);
            else if (directive == "must-check")
                manifest.must_check.push_back(path);
            else if (directive == "hot-entry")
                manifest.hot_entries.insert(path);
            else
                manifest.serialize_consumers.insert(path);
            continue;
        }
        if (directive == "suppression-budget") {
            if (tokens.size() != 2 ||
                tokens[1].find_first_not_of("0123456789") !=
                    std::string::npos) {
                return manifestError(lineno,
                                     "suppression-budget expects one "
                                     "non-negative integer");
            }
            if (manifest.suppression_budget >= 0)
                return manifestError(lineno,
                                     "duplicate suppression-budget");
            manifest.suppression_budget = std::stoi(tokens[1]);
            continue;
        }
        if (directive == "layer") {
            size_t arrow = 0;
            if (!splitArrow(tokens, arrow) || arrow != 2) {
                return manifestError(lineno,
                                     "expected \"layer <module> -> "
                                     "[dep ...]\"");
            }
            const std::string &module = tokens[1];
            auto [it, inserted] = manifest.layers.try_emplace(module);
            if (!inserted)
                return manifestError(lineno, "duplicate layer " + module);
            it->second.insert(tokens.begin() + 3, tokens.end());
            continue;
        }
        if (directive == "forbid-include" ||
            directive == "require-include") {
            size_t arrow = 0;
            if (!splitArrow(tokens, arrow) || arrow != 2 ||
                tokens.size() != 4) {
                return manifestError(lineno,
                                     "expected \"" + directive +
                                         " <file-prefix> -> <include>\"");
            }
            auto &list = directive == "forbid-include"
                             ? manifest.forbid_includes
                             : manifest.require_includes;
            list.emplace_back(tokens[1], tokens[3]);
            continue;
        }
        return manifestError(lineno, "unknown directive \"" + directive +
                                         "\"");
    }
    // Layer deps must themselves be declared, so a typo cannot silently
    // open an edge.
    for (const auto &[module, deps] : manifest.layers) {
        for (const std::string &dep : deps) {
            if (!manifest.layers.count(dep)) {
                return Status::error(ErrorCode::Invalid,
                                     "lint manifest: layer " + module +
                                         " depends on undeclared layer " +
                                         dep);
            }
        }
    }
    return manifest;
}

Result<Manifest>
loadManifest(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open lint manifest " + path);
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return parseManifest(buffer.str());
}

// --- Rule helpers -------------------------------------------------------

namespace {

bool
hasPrefix(const std::string &path, const std::string &prefix)
{
    return path.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

bool
pathInScope(const std::string &path, const std::string &prefix)
{
    if (!hasPrefix(path, prefix))
        return false;
    // Match only at a path-component or extension boundary: a prefix
    // "src/tuner/session" covers session.cc / session.h / session/ but
    // never session_extra.cc. A prefix ending in '/' already sits on a
    // boundary.
    if (path.size() == prefix.size() || prefix.empty() ||
        prefix.back() == '/')
        return true;
    const char next = path[prefix.size()];
    return next == '/' || next == '.';
}

namespace {

bool
matchesAnyPrefix(const std::string &path,
                 const std::vector<std::string> &prefixes)
{
    return std::any_of(prefixes.begin(), prefixes.end(),
                       [&](const std::string &p) {
                           return pathInScope(path, p);
                       });
}

/**
 * Longest declared layer owning @p path (a src/-relative file path or
 * an include path), segment-aligned; empty when no declared layer is a
 * prefix. Nested modules ("tuner/service") shadow their parent for the
 * files and includes under them.
 */
std::string
resolveLayer(const std::string &path, const Manifest &manifest)
{
    std::string best;
    for (const auto &[name, deps] : manifest.layers) {
        (void)deps;
        if (name.size() > best.size() && hasPrefix(path, name + "/"))
            best = name;
    }
    return best;
}

/** src/<module>/... -> deepest declared layer (or the first path
 *  segment when none is declared); empty when not under src/. */
std::string
moduleOf(const std::string &rel_path, const Manifest &manifest)
{
    if (!hasPrefix(rel_path, "src/"))
        return "";
    const std::string rest = rel_path.substr(4);
    const std::string declared = resolveLayer(rest, manifest);
    if (!declared.empty())
        return declared;
    const size_t slash = rest.find('/');
    if (slash == std::string::npos)
        return "";
    return rest.substr(0, slash);
}

struct TokenRule
{
    const char *rule;
    std::regex pattern;
    const char *message;
};

const std::vector<TokenRule> &
tokenRules()
{
    static const std::vector<TokenRule> rules = [] {
        std::vector<TokenRule> r;
        r.push_back({"rand",
                     std::regex(R"(\b(rand|srand|rand_r|drand48|lrand48|mrand48)\s*\()"),
                     "libc random source; draw from a seeded "
                     "support/rng Rng instead"});
        r.push_back({"random-device",
                     std::regex(R"(\brandom_device\b)"),
                     "std::random_device is not reproducible; seeds come "
                     "from config, never from entropy"});
        r.push_back({"std-engine",
                     std::regex(R"(\b(mt19937(_64)?|minstd_rand0?|ranlux\w*|knuth_b|default_random_engine|(uniform_int|uniform_real|normal|bernoulli|discrete|poisson|exponential|geometric)_distribution)\b)"),
                     "std <random> engine/distribution; all stochasticity "
                     "must flow through support/rng"});
        r.push_back({"wallclock",
                     std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock|utc_clock|file_clock|gettimeofday|clock_gettime|timespec_get|localtime|gmtime|strftime|mktime|time|clock)\s*(\(|::))"),
                     "clock read outside an allowlisted timing TU; "
                     "determinism requires seeded Rngs, not time"});
        r.push_back({"float-eq",
                     std::regex(R"((==|!=)\s*[-+]?(\d+\.\d*|\.\d+|\d+[eE][-+]?\d+|\d+\.)f?\b|(\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)f?\s*(==|!=))"),
                     "exact comparison against a float literal; NaN "
                     "labels make this a hazard (std::isnan / epsilon)"});
        return r;
    }();
    return rules;
}

const std::regex &
includeRegex()
{
    static const std::regex re(
        R"(^\s*#\s*include\s*[<"]([^">]+)[">])");
    return re;
}

const std::regex &
pragmaOnceRegex()
{
    static const std::regex re(R"(^\s*#\s*pragma\s+once\b)");
    return re;
}

bool
isHeaderPath(const std::string &rel_path)
{
    return rel_path.size() > 2 &&
           rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

// --- member-underscore --------------------------------------------------

/**
 * A deliberately small structural pass: track class/struct bodies and
 * their access sections; inside private/protected sections, a
 * declaration statement (no parentheses, not a type alias) whose last
 * declarator lacks a trailing underscore is flagged.
 */
void
checkMemberStyle(const std::vector<std::string> &code,
                 const std::string &rel_path,
                 std::vector<Finding> &findings)
{
    struct Scope
    {
        bool class_like = false;
        // 'r' private, 'o' protected, 'u' public
        char access = 'u';
    };
    std::vector<Scope> scopes;
    bool pending_class = false;  // saw class/struct, before '{' or ';'
    bool last_was_enum = false;
    std::string statement;       // code since last ; { } or access label
    int statement_line = 0;

    static const std::regex ident(R"([A-Za-z_][A-Za-z0-9_]*)");
    static const std::regex decl_tail(
        R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*(\[[^\]]*\]\s*)?(=[^;=]*|\{[^}]*\})?\s*$)");

    auto flagIfBadMember = [&](int line) {
        if (scopes.empty() || !scopes.back().class_like)
            return;
        if (scopes.back().access == 'u')
            return;
        const std::string stmt = statement;
        if (stmt.find('(') != std::string::npos ||
            stmt.find("using ") != std::string::npos ||
            stmt.find("typedef ") != std::string::npos ||
            stmt.find("friend ") != std::string::npos ||
            stmt.find("template") != std::string::npos ||
            stmt.find("static ") != std::string::npos)
            return;
        // A lone ':' (not part of '::') marks a bitfield — the "name"
        // before it is fine without an underscore check on the width.
        for (size_t k = 0; k < stmt.size(); ++k) {
            if (stmt[k] == ':' &&
                (k == 0 || stmt[k - 1] != ':') &&
                (k + 1 >= stmt.size() || stmt[k + 1] != ':'))
                return;
        }
        std::smatch m;
        if (!std::regex_search(stmt, m, decl_tail))
            return;
        const std::string name = m[1];
        if (name.empty() || name.back() == '_')
            return;
        // A lone identifier is not a declaration (e.g. goto labels,
        // macro invocations already excluded by the '(' check).
        std::sregex_iterator it(stmt.begin(), stmt.end(), ident), end;
        if (std::distance(it, end) < 2)
            return;
        Finding f;
        f.file = rel_path;
        f.line = line;
        f.rule = "member-underscore";
        f.message = "member \"" + name +
                    "\" missing trailing underscore (style: "
                    "trailing_underscore_ members)";
        findings.push_back(f);
    };

    for (size_t li = 0; li < code.size(); ++li) {
        const std::string &line = code[li];
        const int lineno = static_cast<int>(li) + 1;
        for (size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                size_t j = i;
                while (j < line.size() &&
                       (std::isalnum(static_cast<unsigned char>(
                            line[j])) ||
                        line[j] == '_'))
                    ++j;
                const std::string word = line.substr(i, j - i);
                if (word == "enum") {
                    last_was_enum = true;
                } else if (word == "class" || word == "struct") {
                    if (!last_was_enum)
                        pending_class = true;
                    last_was_enum = false;
                } else if ((word == "public" || word == "private" ||
                            word == "protected") &&
                           j < line.size() && line[j] == ':' &&
                           (j + 1 >= line.size() || line[j + 1] != ':') &&
                           !scopes.empty() && scopes.back().class_like) {
                    scopes.back().access =
                        word == "public" ? 'u'
                                         : (word == "private" ? 'r' : 'o');
                    statement.clear();
                    i = j; // consume the ':' too
                    continue;
                } else {
                    last_was_enum = false;
                }
                if (statement.empty())
                    statement_line = lineno;
                statement.append(word);
                statement += ' ';
                i = j - 1;
                continue;
            }
            switch (c) {
            case '{': {
                Scope scope;
                scope.class_like = pending_class;
                // gem5 style: class default-private, struct
                // default-public — but a missing base-clause parse is
                // harmless: we only ever *narrow* to sections that are
                // explicitly private/protected for structs.
                scope.access = pending_class ? 'r' : 'u';
                if (pending_class &&
                    statement.find("struct") != std::string::npos)
                    scope.access = 'u';
                scopes.push_back(scope);
                pending_class = false;
                statement.clear();
                break;
            }
            case '}':
                if (!scopes.empty())
                    scopes.pop_back();
                statement.clear();
                break;
            case ';':
                flagIfBadMember(statement_line);
                pending_class = false;
                statement.clear();
                break;
            default:
                if (!std::isspace(static_cast<unsigned char>(c))) {
                    if (statement.empty())
                        statement_line = lineno;
                    statement += c;
                }
                break;
            }
        }
    }
}

} // namespace

// --- per-file rules -----------------------------------------------------

namespace {

/** Run every per-file rule; returns raw (pre-suppression) findings. */
std::vector<Finding>
collectFileFindings(const std::string &rel_path, const StrippedSource &src,
                    const Manifest &manifest)
{
    std::vector<Finding> raw;

    auto add = [&](int line, const char *rule, std::string message) {
        Finding f;
        f.file = rel_path;
        f.line = line;
        f.rule = rule;
        f.message = std::move(message);
        raw.push_back(std::move(f));
    };

    // (1) determinism + float-eq token rules over literal-free code.
    const bool wallclock_ok =
        matchesAnyPrefix(rel_path, manifest.wallclock_allow);
    for (size_t li = 0; li < src.code.size(); ++li) {
        const std::string &line = src.code[li];
        if (line.find_first_not_of(' ') == std::string::npos)
            continue;
        for (const TokenRule &rule : tokenRules()) {
            if (wallclock_ok && std::string(rule.rule) == "wallclock")
                continue;
            if (std::regex_search(line, rule.pattern))
                add(static_cast<int>(li) + 1, rule.rule, rule.message);
        }
    }

    // (2) include rules over the directive view.
    const std::string module = moduleOf(rel_path, manifest);
    bool saw_pragma_once = false;
    std::vector<std::pair<int, std::string>> includes;
    for (size_t li = 0; li < src.directives.size(); ++li) {
        const std::string &line = src.directives[li];
        std::smatch m;
        if (std::regex_search(line, m, includeRegex()))
            includes.emplace_back(static_cast<int>(li) + 1, m[1]);
        else if (std::regex_search(line, pragmaOnceRegex()))
            saw_pragma_once = true;
    }
    if (!module.empty()) {
        const auto layer = manifest.layers.find(module);
        if (layer == manifest.layers.end()) {
            if (!manifest.layers.empty()) {
                add(1, "layering",
                    "module src/" + module +
                        "/ is not declared in the lint manifest; add a "
                        "\"layer\" directive");
            }
        } else {
            for (const auto &[line, inc] : includes) {
                const size_t slash = inc.find('/');
                if (slash == std::string::npos)
                    continue;
                // A nested declared layer (e.g. tuner/service) claims
                // its includes away from the parent layer.
                const std::string declared = resolveLayer(inc, manifest);
                const std::string target =
                    !declared.empty() ? declared : inc.substr(0, slash);
                if (target == module ||
                    !manifest.layers.count(target))
                    continue;
                if (!layer->second.count(target)) {
                    add(line, "layering",
                        "src/" + module + "/ must not include " + inc +
                            " (allowed deps: " +
                            (layer->second.empty()
                                 ? std::string("none")
                                 : join(std::vector<std::string>(
                                            layer->second.begin(),
                                            layer->second.end()),
                                        ", ")) +
                            ")");
                }
            }
        }
    }
    for (const auto &[prefix, banned] : manifest.forbid_includes) {
        if (!pathInScope(rel_path, prefix))
            continue;
        for (const auto &[line, inc] : includes) {
            if (inc.find(banned) != std::string::npos) {
                add(line, "include-forbidden",
                    rel_path + " must not include " + inc +
                        " (forbid-include " + prefix + " -> " + banned +
                        ")");
            }
        }
    }
    for (const auto &[prefix, required] : manifest.require_includes) {
        if (!pathInScope(rel_path, prefix))
            continue;
        const bool found = std::any_of(
            includes.begin(), includes.end(), [&](const auto &entry) {
                return entry.second.find(required) != std::string::npos;
            });
        if (!found) {
            add(1, "include-required",
                rel_path + " must include " + required +
                    " (require-include " + prefix + " -> " + required +
                    ")");
        }
    }
    if (isHeaderPath(rel_path) && !saw_pragma_once)
        add(1, "pragma-once", "header is missing #pragma once");

    // (3) artifact-safety rules.
    if (manifest.loader_tus.count(rel_path)) {
        static const std::regex fatal(R"(\bTLP_(FATAL|PANIC)\s*\()");
        for (size_t li = 0; li < src.code.size(); ++li) {
            if (std::regex_search(src.code[li], fatal)) {
                add(static_cast<int>(li) + 1, "loader-fatal",
                    "loader TU is contracted to return Status/Result<T>; "
                    "TLP_FATAL/TLP_PANIC aborts the process");
            }
        }
    }
    if (manifest.serialize_consumers.count(rel_path)) {
        static const std::regex alloc(R"(\.(resize|reserve)\s*\()");
        static const std::regex bounded(
            R"(\bremaining\s*\(|\brequireBytes\s*\()");
        static const std::regex size_arg(R"(\.(resize|reserve)\s*\([^;]*\.size\s*\()");
        for (size_t li = 0; li < src.code.size(); ++li) {
            const std::string &line = src.code[li];
            if (!std::regex_search(line, alloc))
                continue;
            if (std::regex_search(line, size_arg))
                continue; // sized from an in-memory container, not a
                          // stream-supplied count
            bool guarded = false;
            const size_t lookback = li >= 10 ? li - 10 : 0;
            for (size_t lj = lookback; lj <= li && !guarded; ++lj)
                guarded = std::regex_search(src.code[lj], bounded);
            if (!guarded) {
                add(static_cast<int>(li) + 1, "unbounded-alloc",
                    "resize/reserve in a serialize-consumer TU with no "
                    "remaining-bytes check in the preceding 10 lines");
            }
        }
    }
    if (matchesAnyPrefix(rel_path, manifest.raw_io_scopes) &&
        !manifest.raw_io_exempt.count(rel_path)) {
        // Artifact bytes reach disk only through the io_env/serialize
        // seam (DESIGN.md §14): a raw ofstream or rename here would
        // bypass fault injection and the crash-consistency drill.
        static const std::regex raw_io(R"(\bofstream\b|\brename\s*\()");
        for (size_t li = 0; li < src.code.size(); ++li) {
            if (std::regex_search(src.code[li], raw_io)) {
                add(static_cast<int>(li) + 1, "raw-io",
                    "raw file write/rename outside the io_env/serialize "
                    "seam; route artifact bytes through atomicWriteFile "
                    "/ quarantineArtifact (DESIGN.md §14)");
            }
        }
    }
    if (manifest.hot_tus.count(rel_path)) {
        // The steady-state scoring path (DESIGN.md §13) must not touch
        // the heap: scratch comes from an Arena, persistent storage is
        // sized once at construction. One-time warm-up growth carries an
        // audited suppression.
        static const std::regex hot_alloc(
            R"(\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<)"
            R"(|\b(malloc|calloc|realloc)\s*\()"
            R"(|\.(push_back|emplace_back|resize|reserve|insert|assign)\s*\()");
        for (size_t li = 0; li < src.code.size(); ++li) {
            if (std::regex_search(src.code[li], hot_alloc)) {
                add(static_cast<int>(li) + 1, "hot-alloc",
                    "heap allocation in a hot TU (DESIGN.md §13): use "
                    "the Arena / preallocated storage, or audit "
                    "one-time sizing with a suppression");
            }
        }
    }

    // (4) member naming style.
    checkMemberStyle(src.code, rel_path, raw);
    return raw;
}

/**
 * Resolve suppressions against the raw findings of one file, marking
 * used audits and reporting unused/malformed ones. Runs once per file,
 * after every rule (per-file and cross-TU) has contributed.
 */
std::vector<Finding>
resolveSuppressions(const std::string &rel_path, StrippedSource &src,
                    std::vector<Finding> raw)
{
    std::vector<Finding> findings;
    for (Finding &f : raw) {
        bool suppressed = false;
        for (Suppression &s : src.suppressions) {
            if (s.rule != f.rule)
                continue;
            const bool whole_file =
                f.rule == "pragma-once" || f.rule == "include-required";
            if (whole_file || s.line == f.line || s.line == f.line - 1) {
                s.used = true;
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            findings.push_back(std::move(f));
    }
    for (const Suppression &s : src.suppressions) {
        if (!s.used) {
            Finding f;
            f.file = rel_path;
            f.line = s.line;
            f.rule = "unused-suppression";
            f.message = "suppression allow(" + s.rule +
                        ") matches no finding; delete it";
            findings.push_back(std::move(f));
        }
    }
    for (Finding f : src.bad_suppressions) {
        f.file = rel_path;
        findings.push_back(std::move(f));
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.line, a.rule) <
                         std::tie(b.line, b.rule);
              });
    return findings;
}

/** True when @p rel_path belongs in the cross-TU symbol index: every
 *  must-check scope plus the declared loader / hot TUs. */
bool
inIndexScope(const std::string &rel_path, const Manifest &manifest)
{
    if (manifest.loader_tus.count(rel_path) ||
        manifest.hot_tus.count(rel_path))
        return true;
    return matchesAnyPrefix(rel_path, manifest.must_check);
}

} // namespace

// --- lintFile -----------------------------------------------------------

std::vector<Finding>
lintFile(const std::string &rel_path, const std::string &text,
         const Manifest &manifest)
{
    StrippedSource src = stripSource(text);
    return resolveSuppressions(
        rel_path, src, collectFileFindings(rel_path, src, manifest));
}

// --- lintSources --------------------------------------------------------

std::vector<std::string>
allRuleIds()
{
    return {
        "rand",           "random-device",     "std-engine",
        "wallclock",      "layering",          "include-forbidden",
        "include-required", "loader-fatal",    "unbounded-alloc",
        "hot-alloc",      "raw-io",            "unchecked-result",
        "hot-call-alloc", "suppression-budget", "pragma-once",
        "float-eq",       "member-underscore", "bad-suppression",
        "unused-suppression",
    };
}

Result<LintReport>
lintSources(const std::vector<SourceFile> &files, const Manifest &manifest)
{
    // Pass 1: per-file rules + the symbol index over in-scope files.
    std::vector<StrippedSource> stripped(files.size());
    std::vector<std::vector<Finding>> raw(files.size());
    SymbolIndex index;
    for (size_t f = 0; f < files.size(); ++f) {
        stripped[f] = stripSource(files[f].text);
        raw[f] = collectFileFindings(files[f].rel_path, stripped[f],
                                     manifest);
        if (inIndexScope(files[f].rel_path, manifest))
            indexSource(files[f].rel_path, stripped[f], index);
    }
    finalizeIndex(index);

    // Pass 2: flow-aware rules, routed back to their file so the
    // audited-suppression mechanism applies at the finding's line.
    std::map<std::string, size_t> file_of;
    for (size_t f = 0; f < files.size(); ++f)
        file_of.emplace(files[f].rel_path, f);
    for (Finding &finding : analyzeIndex(index, manifest)) {
        const auto it = file_of.find(finding.file);
        TLP_CHECK(it != file_of.end(),
                  "cross-TU finding in unscanned file ", finding.file);
        raw[it->second].push_back(std::move(finding));
    }

    LintReport report;
    report.files_scanned = static_cast<int>(files.size());
    for (size_t f = 0; f < files.size(); ++f) {
        report.suppressions +=
            static_cast<int>(stripped[f].suppressions.size());
        std::vector<Finding> findings = resolveSuppressions(
            files[f].rel_path, stripped[f], std::move(raw[f]));
        report.findings.insert(report.findings.end(),
                               std::make_move_iterator(findings.begin()),
                               std::make_move_iterator(findings.end()));
    }

    // The suppression budget: audits may only grow deliberately.
    if (manifest.suppression_budget >= 0 &&
        report.suppressions > manifest.suppression_budget) {
        Finding f;
        f.file = "<tree>";
        f.line = 0;
        f.rule = "suppression-budget";
        f.message = "tree carries " +
                    std::to_string(report.suppressions) +
                    " tlp-lint suppressions, budget is " +
                    std::to_string(manifest.suppression_budget) +
                    "; remove audits or raise suppression-budget / "
                    "--max-suppressions deliberately";
        report.findings.push_back(std::move(f));
    }
    return report;
}

// --- lintTree -----------------------------------------------------------

Result<LintReport>
lintTree(const std::string &root, const std::vector<std::string> &dirs,
         const Manifest &manifest)
{
    std::vector<std::string> files;
    for (const std::string &dir : dirs) {
        const fs::path base = fs::path(root) / dir;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(dir);
            continue;
        }
        if (!fs::is_directory(base, ec)) {
            return Status::error(ErrorCode::IoError,
                                 "lint path does not exist: " +
                                     base.string());
        }
        for (auto it = fs::recursive_directory_iterator(base, ec);
             it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (ec) {
                return Status::error(ErrorCode::IoError,
                                     "cannot walk " + base.string() +
                                         ": " + ec.message());
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".h" && ext != ".cc" && ext != ".cpp")
                continue;
            files.push_back(
                fs::relative(it->path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (const std::string &rel : files) {
        if (matchesAnyPrefix(rel, manifest.excludes))
            continue;
        std::ifstream is(fs::path(root) / rel, std::ios::binary);
        if (!is) {
            return Status::error(ErrorCode::IoError,
                                 "cannot read " + rel);
        }
        std::ostringstream buffer;
        buffer << is.rdbuf();
        sources.push_back({rel, buffer.str()});
    }
    return lintSources(sources, manifest);
}

} // namespace tlp::lint
