/**
 * @file
 * Comment / string-literal stripper for tlp_lint.
 *
 * A single pass over the file produces two line-preserving views (code
 * with literals blanked; directives with literals kept) and the parsed
 * suppression comments. This is not a full C++ lexer: it understands
 * line/block comments, plain and raw string literals, and character
 * literals, which is exactly what is needed so that token rules never
 * fire on prose or on log-message text.
 */
#include "tools/tlp_lint/lint.h"

#include <cctype>
#include <regex>

namespace tlp::lint {

namespace {

/** Split on '\n', preserving an empty trailing line only if text ends
 *  mid-line (mirrors how editors count lines). */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

/**
 * Parse a suppression from one line comment's text. Only `//` comments
 * whose text *starts* with "tlp-lint:" count — prose that merely
 * mentions the syntax (doc comments, this file) never parses as an
 * audit. A comment that starts with the marker but is malformed is a
 * bad-suppression finding.
 */
void
parseSuppressions(const std::string &comment_text, int line,
                  std::vector<Suppression> &out, std::vector<Finding> &bad)
{
    static const std::regex well_formed(
        R"(^\s*tlp-lint:\s*allow\(([A-Za-z0-9-]+)\)\s*--\s*(\S.*?)\s*$)");
    static const std::regex marker(R"(^\s*tlp-lint:)");

    if (!std::regex_search(comment_text, marker))
        return;
    std::smatch m;
    if (std::regex_search(comment_text, m, well_formed)) {
        Suppression s;
        s.line = line;
        s.rule = m[1];
        s.reason = m[2];
        out.push_back(s);
        return;
    }
    Finding f;
    f.line = line;
    f.rule = "bad-suppression";
    f.message = "malformed tlp-lint comment; expected "
                "\"tlp-lint: allow(<rule-id>) -- <reason>\"";
    bad.push_back(f);
}

} // namespace

StrippedSource
stripSource(const std::string &text)
{
    StrippedSource result;
    const std::vector<std::string> lines = splitLines(text);
    result.code.reserve(lines.size());
    result.directives.reserve(lines.size());

    enum class State { Normal, BlockComment, Str, Chr, Raw };
    State state = State::Normal;
    std::string raw_delim; // )delim" terminator for raw strings

    for (size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        const int lineno = static_cast<int>(li) + 1;
        std::string code(line.size(), ' ');
        std::string directive(line.size(), ' ');

        size_t i = 0;
        while (i < line.size()) {
            const char c = line[i];
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            switch (state) {
            case State::Normal:
                if (c == '/' && next == '/') {
                    parseSuppressions(line.substr(i + 2), lineno,
                                      result.suppressions,
                                      result.bad_suppressions);
                    i = line.size();
                    continue;
                }
                if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    i += 2;
                    continue;
                }
                if (c == '"') {
                    // Raw string: an R (possibly u8R/uR/LR) immediately
                    // before the quote.
                    if (i > 0 && line[i - 1] == 'R' &&
                        (i == 1 || !(std::isalnum(static_cast<unsigned char>(
                                         line[i - 2])) ||
                                     line[i - 2] == '_'))) {
                        size_t d = i + 1;
                        while (d < line.size() && line[d] != '(')
                            ++d;
                        raw_delim = ")" +
                                    line.substr(i + 1, d - (i + 1)) + "\"";
                        code[i] = '"';
                        directive[i] = '"';
                        state = State::Raw;
                        i = d + 1;
                        continue;
                    }
                    code[i] = '"';
                    directive[i] = '"';
                    state = State::Str;
                    ++i;
                    continue;
                }
                if (c == '\'') {
                    // Digit separators (1'000'000) are not char literals.
                    if (i > 0 && std::isdigit(static_cast<unsigned char>(
                                     line[i - 1])) &&
                        i + 1 < line.size() &&
                        (std::isdigit(static_cast<unsigned char>(next)) ||
                         std::isxdigit(static_cast<unsigned char>(next)))) {
                        code[i] = c;
                        directive[i] = c;
                        ++i;
                        continue;
                    }
                    code[i] = '\'';
                    directive[i] = '\'';
                    state = State::Chr;
                    ++i;
                    continue;
                }
                code[i] = c;
                directive[i] = c;
                ++i;
                continue;
            case State::BlockComment:
                if (c == '*' && next == '/') {
                    state = State::Normal;
                    i += 2;
                    continue;
                }
                ++i;
                continue;
            case State::Str:
                directive[i] = c;
                if (c == '\\') {
                    if (i + 1 < line.size())
                        directive[i + 1] = next;
                    i += 2;
                    continue;
                }
                if (c == '"') {
                    code[i] = '"';
                    state = State::Normal;
                }
                ++i;
                continue;
            case State::Chr:
                if (c == '\\') {
                    i += 2;
                    continue;
                }
                if (c == '\'') {
                    code[i] = '\'';
                    directive[i] = '\'';
                    state = State::Normal;
                }
                ++i;
                continue;
            case State::Raw:
                if (!raw_delim.empty() &&
                    line.compare(i, raw_delim.size(), raw_delim) == 0) {
                    const size_t end = i + raw_delim.size() - 1;
                    code[end] = '"';
                    directive[end] = '"';
                    state = State::Normal;
                    i = end + 1;
                    continue;
                }
                ++i;
                continue;
            }
        }
        if (state == State::Str || state == State::Chr) {
            // Unterminated plain literal: C++ does not allow a newline
            // here; recover rather than swallowing the rest of the file.
            state = State::Normal;
        }
        result.code.push_back(std::move(code));
        result.directives.push_back(std::move(directive));
    }
    return result;
}

} // namespace tlp::lint
