/**
 * @file
 * Artifact doctor: audit (and optionally repair) a directory of TLP
 * artifacts without rerunning the service that produced them
 * (DESIGN.md §15).
 *
 * Usage: tlp_fsck --dir /tmp/tlp_serve [--repair] [--quiet]
 *
 * The audit classifies every regular file in the directory — the five
 * checksummed artifact formats (dataset, model snapshot, tuning
 * checkpoint, training checkpoint, bench memo) are detected by magic
 * and verified with the same loader-grade checks a consumer would run;
 * curve files are recognized by their text header; atomic-write temp
 * debris and earlier quarantine evidence are classified by name; and
 * anything else is reported but never touched. The report is
 * deterministic (name-sorted, fixed grammar), so two audits of the
 * same directory are byte-identical.
 *
 * --repair contains the damage: corrupt or version-skewed artifacts
 * are renamed to the first free "*.quarantined.N" (every generation of
 * evidence kept), "*.tmp.<pid>.<seq>" debris is swept, and corrupt
 * datasets are salvaged — their intact records re-saved through the
 * atomic-write seam while the damaged original stays quarantined as
 * evidence. After --repair the directory is runnable again: rerunning
 * the same `tlp_serve` command converges to curves byte-identical to
 * an uninterrupted run (CI's fsck-drill job proves it).
 *
 * Exit codes follow the artifact contract: 0 = nothing damaged,
 * 2 = user error (TLP_FATAL), 3 = damage found — also in --repair
 * mode, so scripts can tell "was dirty, now repaired" from "was
 * clean".
 */
#include <cstdio>
#include <filesystem>

#include "artifact/audit.h"
#include "support/argparse.h"
#include "support/logging.h"

using namespace tlp;

int
main(int argc, char **argv)
{
    ArgParser args("audit and repair a directory of TLP artifacts");
    args.addString("dir", "", "directory to audit (required)");
    args.addBool("repair", false,
                 "quarantine damaged artifacts, sweep temp debris, "
                 "salvage datasets");
    args.addBool("no-salvage", false,
                 "with --repair: quarantine corrupt datasets instead "
                 "of salvaging their intact records");
    args.addBool("quiet", false, "summary only, no per-file lines");
    args.parse(argc, argv);

    const std::string dir = args.getString("dir");
    if (dir.empty())
        TLP_FATAL("--dir is required");
    if (!std::filesystem::is_directory(dir))
        TLP_FATAL("not a directory: ", dir);

    const artifact::AuditReport audit = artifact::auditDirectory(dir);
    const std::string report = artifact::formatAuditReport(audit);
    if (args.getBool("quiet")) {
        // Keep only the header and the summary line.
        const size_t summary = report.rfind("summary ");
        std::fputs(report.substr(0, report.find("file ")).c_str(),
                   stdout);
        if (summary != std::string::npos)
            std::fputs(report.substr(summary).c_str(), stdout);
    } else {
        std::fputs(report.c_str(), stdout);
    }

    if (args.getBool("repair") && audit.damaged()) {
        artifact::RepairOptions options;
        options.salvage_datasets = !args.getBool("no-salvage");
        const artifact::RepairReport repaired =
            artifact::repairDirectory(dir, options);
        for (const std::string &action : repaired.actions)
            std::printf("repair %s\n", action.c_str());
        std::printf("repaired quarantined %d swept %d salvaged %d "
                    "(records %lld) failures %d\n",
                    repaired.quarantined, repaired.swept,
                    repaired.salvaged_datasets,
                    static_cast<long long>(repaired.salvaged_records),
                    repaired.failures);
    }

    // Damage found exits 3 even after a successful repair: the caller
    // learns the directory was dirty; a clean follow-up audit is the
    // proof the repair landed.
    return audit.damaged() ? kExitCorruptArtifact : 0;
}
