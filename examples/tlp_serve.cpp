/**
 * @file
 * Crash-safe multi-session tuning service (DESIGN.md §12).
 *
 * Usage: tlp_serve --dir /tmp/tlp_serve --sessions 8
 *                  [--network resnet-18] [--platform i7-10510u]
 *                  [--model random|ansor|guarded-ansor|guarded-tlp]
 *                  [--rounds 4] [--subgraphs 2] [--seed 1]
 *                  [--max-active 8] [--max-queued 16]
 *                  [--deadline 0] [--fault-rate 0] [--ticks 0]
 *                  [--io-fault-rate 0] [--io-fault-seed N]
 *                  [--poison s002] [--poison-after 2]
 *                  [--breaker-limit 12]
 *                  [--swap-model tlp.snap] [--threads 4]
 *
 * Runs a fleet of tuning sessions to completion, one round per tick,
 * writing per-session checkpoints (<name>.ckpt, every round) and final
 * curves (<name>.curve) under --dir. Recovery is automatic: rerunning
 * the same command after a kill -9 verifies the checkpoints left
 * behind, sweeps stale atomic-write temps, resumes every intact
 * session, quarantines damaged ones (renamed *.ckpt.quarantined.N,
 * unique per generation), and converges to curve files bit-identical
 * to an uninterrupted run — the CI service-recovery step diffs exactly
 * that. --ticks > 0 stops after that many scheduler ticks (a
 * deterministic "kill"); --fault-rate injects seeded transient faults
 * that exercise the exponential-backoff path; --io-fault-rate injects
 * seeded disk faults (torn/failed checkpoint and curve writes, failed
 * artifact reads; DESIGN.md §14) that exercise checkpoint-write
 * retries and the checkpointless degraded mode — neither ever
 * perturbs a curve.
 */
#include <cstdio>

#include "support/argparse.h"
#include "support/io_env.h"
#include "support/thread_pool.h"
#include "tuner/service/service.h"

using namespace tlp;

int
main(int argc, char **argv)
{
    ArgParser args("run a crash-safe fleet of tuning sessions");
    args.addString("dir", "/tmp/tlp_serve",
                   "service directory for checkpoints and curves");
    args.addInt("sessions", 8, "fleet size (sessions named s000...)");
    args.addString("network", "resnet-18", "model-zoo network");
    args.addString("platform", "i7-10510u", "hardware preset");
    args.addString("model", "random",
                   "cost model: random|ansor|guarded-ansor|guarded-tlp");
    args.addInt("rounds", 4, "round budget per session");
    args.addInt("subgraphs", 2,
                "tune only the first N subgraphs (0 = all)");
    args.addInt("seed", 1, "base seed; session i uses seed + i");
    args.addInt("max-active", 8, "concurrent active sessions");
    args.addInt("max-queued", 16, "bounded admission queue");
    args.addDouble("deadline", 0.0,
                   "per-session simulated-seconds deadline (0 = none)");
    args.addDouble("fault-rate", 0.0,
                   "seeded transient-fault rate in [0, 1)");
    args.addString("poison", "",
                   "poisoned-session drill: this session faults on "
                   "every round until the circuit breaker trips "
                   "(DESIGN.md §15)");
    args.addInt("poison-after", 0,
                "with --poison: session runs clean until round N");
    args.addInt("breaker-limit", 12,
                "consecutive strikes before a session is "
                "poison-quarantined (0 = breaker disabled)");
    args.addDouble("io-fault-rate", 0.0,
                   "seeded artifact I/O fault rate in [0, 1): torn/"
                   "failed writes and failed reads (DESIGN.md §14; "
                   "overrides TLP_IO_FAULT_RATE)");
    args.addInt("io-fault-seed", 0xd15c,
                "seed for the I/O fault schedule");
    args.addInt("ticks", 0,
                "stop after N scheduler ticks (0 = run to idle)");
    args.addString("swap-model", "",
                   "hot-swap this TLP snapshot before serving "
                   "(rejected snapshots are reported, not fatal)");
    args.addInt("threads", 0,
                "worker threads for kernels/features "
                "(0 = TLP_NUM_THREADS env, default 1)");
    args.addBool("legacy-infer", false,
                 "score with the interpreted TLP forward and no feature "
                 "cache (same curves, slower; overrides TLP_FUSED_INFER "
                 "/ TLP_FEATURE_CACHE)");
    args.addBool("verbose", false, "per-tick service log");
    args.parse(argc, argv);

    const int threads = static_cast<int>(args.getInt("threads"));
    if (threads < 0)
        TLP_FATAL("--threads must be >= 0, got ", threads);
    if (threads > 0)
        ThreadPool::setGlobalThreads(threads);

    const int sessions = static_cast<int>(args.getInt("sessions"));
    if (sessions <= 0)
        TLP_FATAL("--sessions must be positive, got ", sessions);
    const double fault_rate = args.getDouble("fault-rate");
    if (fault_rate < 0.0 || fault_rate >= 1.0)
        TLP_FATAL("--fault-rate must be in [0, 1), got ", fault_rate);
    const double io_fault_rate = args.getDouble("io-fault-rate");
    if (io_fault_rate < 0.0 || io_fault_rate >= 1.0)
        TLP_FATAL("--io-fault-rate must be in [0, 1), got ",
                  io_fault_rate);
    if (io_fault_rate > 0.0) {
        IoFaultProfile chaos;
        chaos.fault_rate = io_fault_rate;
        chaos.seed =
            static_cast<uint64_t>(args.getInt("io-fault-seed"));
        // Crash debris makes the drill strict: faults strand temp
        // files exactly as a dying process would, and recover() must
        // sweep them.
        chaos.crash_debris = true;
        IoEnv::global().setProfile(chaos);
    }
    const auto kind = serve::parseModelKind(args.getString("model"));
    if (!kind.ok())
        TLP_FATAL(kind.status().message());

    serve::ServiceOptions options;
    options.dir = args.getString("dir");
    options.max_active = static_cast<int>(args.getInt("max-active"));
    options.max_queued = static_cast<int>(args.getInt("max-queued"));
    options.faults.transient_rate = fault_rate;
    options.faults.poison_session = args.getString("poison");
    options.faults.poison_after_round =
        static_cast<int>(args.getInt("poison-after"));
    options.breaker_trip_limit =
        static_cast<int>(args.getInt("breaker-limit"));
    if (args.getBool("legacy-infer"))
        options.tlp_infer = model::TlpInferOptions::legacy();
    options.verbose = args.getBool("verbose");
    serve::TuningService service(options);

    const std::string swap = args.getString("swap-model");
    if (!swap.empty()) {
        const Status status = service.swapModel(swap);
        if (status.ok()) {
            std::printf("installed TLP snapshot %s\n", swap.c_str());
        } else {
            // A bad snapshot must not take the service down: sessions
            // fail over through the guarded ladder instead.
            std::printf("snapshot rejected, serving without it: %s\n",
                        status.toString().c_str());
        }
    }

    std::vector<serve::SessionSpec> fleet;
    for (int i = 0; i < sessions; ++i) {
        serve::SessionSpec spec;
        char name[16];
        std::snprintf(name, sizeof(name), "s%03d", i);
        spec.name = name;
        spec.network = args.getString("network");
        spec.platform = args.getString("platform");
        spec.model = kind.value();
        spec.max_subgraphs = static_cast<int>(args.getInt("subgraphs"));
        spec.tune.rounds = static_cast<int>(args.getInt("rounds"));
        spec.tune.seed = static_cast<uint64_t>(args.getInt("seed") + i);
        if (args.getDouble("deadline") > 0.0)
            spec.deadline_simulated_seconds = args.getDouble("deadline");
        fleet.push_back(std::move(spec));
    }

    const auto report = service.recover(fleet);
    const int64_t ticks = service.runUntilIdle(args.getInt("ticks"));

    const auto &stats = service.stats();
    std::printf("served %d sessions in %lld ticks: %lld finished, %lld "
                "deadline-expired, %lld shed\n",
                sessions, static_cast<long long>(ticks),
                static_cast<long long>(stats.finished),
                static_cast<long long>(stats.deadline_expired),
                static_cast<long long>(stats.shed));
    std::printf("recovery: %d resumed (%lld rounds salvaged), %d fresh, "
                "%d quarantined\n",
                report.recovered,
                static_cast<long long>(report.rounds_salvaged),
                report.fresh, report.quarantined);
    if (stats.faults_injected > 0) {
        std::printf("faults: %lld injected, %lld backoff ticks slept\n",
                    static_cast<long long>(stats.faults_injected),
                    static_cast<long long>(stats.backoff_ticks_slept));
    }
    if (io_fault_rate > 0.0 || stats.ckpt_write_failures > 0 ||
        report.stale_temps_swept > 0) {
        std::printf("io-chaos: %lld ckpt write failures, %lld retries "
                    "(%lld ok), %lld checkpointless, %lld curve "
                    "retries, %d stale temps swept\n",
                    static_cast<long long>(stats.ckpt_write_failures),
                    static_cast<long long>(stats.ckpt_retries),
                    static_cast<long long>(stats.ckpt_retry_successes),
                    static_cast<long long>(
                        stats.checkpointless_sessions),
                    static_cast<long long>(stats.curve_write_retries),
                    report.stale_temps_swept);
    }
    if (stats.breaker_trips > 0) {
        std::printf("containment: %lld sessions poison-quarantined "
                    "(evidence *.ckpt.quarantined.N; no curve "
                    "written)\n",
                    static_cast<long long>(stats.breaker_trips));
    }
    if (!service.idle())
        std::printf("stopped by --ticks with work remaining\n");
    return 0;
}
