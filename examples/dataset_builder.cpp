/**
 * @file
 * Build and save a TenSet-style dataset, then print its statistics —
 * the data-engineering side of the paper (Sec. 2, Fig. 6, Table 1).
 *
 * Usage: dataset_builder [--out /tmp/tlp_dataset.bin]
 *                        [--programs 64] [--gpu]
 *        dataset_builder --load /tmp/tlp_dataset.bin [--salvage]
 *
 * --load inspects an existing dataset file instead of collecting one.
 * A corrupt file is one clear fatal message; with --salvage, intact
 * record chunks are recovered and the per-class corruption tallies are
 * printed alongside the statistics.
 */
#include <cstdio>

#include "dataset/collect.h"
#include "hwmodel/platform.h"
#include "ir/model_zoo.h"
#include "support/argparse.h"
#include "support/stats.h"
#include "support/table.h"

using namespace tlp;

namespace {

/** The Fig. 6 / Table 1 / Sec. 4.3 statistics block. */
void
printStats(const data::Dataset &dataset)
{
    // Fig. 6: sequence-length distribution.
    IntHistogram histogram;
    for (const auto &record : dataset.records)
        histogram.add(record.seq.size());
    std::printf("sequence lengths: %lld..%lld, mode %lld\n",
                static_cast<long long>(histogram.minKey()),
                static_cast<long long>(histogram.maxKey()),
                static_cast<long long>(histogram.modeKey()));

    // Table 1: max embedding sizes.
    TextTable table("max embedding size per primitive kind");
    table.setHeader({"primitive", "size"});
    for (const auto &[kind, size] : dataset.maxEmbeddingSizes())
        table.addRow({kind, std::to_string(size)});
    table.print();

    std::printf("repetition rate: %.4f%% (paper: ~1%%)\n",
                100.0 * dataset.repetitionRate());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("collect a tensor-program dataset");
    args.addString("out", "/tmp/tlp_dataset.bin", "output path");
    args.addInt("programs", 64, "programs per subgraph");
    args.addBool("gpu", false, "GPU schedules and platforms");
    args.addString("load", "",
                   "inspect an existing dataset file instead of "
                   "collecting");
    args.addBool("salvage", false,
                 "with --load: skip corrupt record chunks and report "
                 "what was lost");
    args.parse(argc, argv);

    if (!args.getString("load").empty()) {
        const std::string path = args.getString("load");
        data::LoadOptions load_options;
        load_options.salvage = args.getBool("salvage");
        auto loaded = data::Dataset::tryLoad(path, load_options);
        if (!loaded.ok()) {
            if (!load_options.salvage) {
                artifactFatal(loaded.status(), "cannot load dataset ",
                              path,
                              " (rerun with --salvage to recover the "
                              "intact records)");
            }
            artifactFatal(loaded.status(), "cannot load dataset ", path);
        }
        const auto dataset = loaded.take();
        std::printf("loaded %zu records over %zu subgraph groups from "
                    "%s\n",
                    dataset.records.size(), dataset.groups.size(),
                    path.c_str());
        if (!dataset.corruption_counts.empty()) {
            TextTable table("corruption skipped during salvage");
            table.setHeader({"class", "count"});
            for (const auto &[name, count] : dataset.corruption_counts)
                table.addRow({name, std::to_string(count)});
            table.print();
        }
        std::printf("\n");
        printStats(dataset);
        return 0;
    }

    data::CollectOptions options;
    options.networks = ir::allNetworkNames();
    options.platforms = args.getBool("gpu")
                            ? hw::HardwarePlatform::gpuPresetNames()
                            : hw::HardwarePlatform::cpuPresetNames();
    options.is_gpu = args.getBool("gpu");
    options.programs_per_subgraph =
        static_cast<int>(args.getInt("programs"));

    std::printf("collecting %zu networks x %zu platforms...\n",
                options.networks.size(), options.platforms.size());
    const auto dataset = data::collectDataset(options);
    dataset.save(args.getString("out"));
    std::printf("saved %zu records over %zu subgraph groups to %s\n\n",
                dataset.records.size(), dataset.groups.size(),
                args.getString("out").c_str());

    printStats(dataset);
    return 0;
}
