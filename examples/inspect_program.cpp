/**
 * @file
 * Reproduces the view of paper Figs. 2 and 5: one computational
 * subgraph, a schedule primitive sequence applied to it, the generated
 * tensor program (pseudo code), and the TLP feature extraction of that
 * sequence — side by side.
 *
 * Usage: inspect_program [--network resnet-50] [--index 1] [--gpu]
 */
#include <cstdio>

#include "features/tlp_features.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "schedule/lower.h"
#include "sketch/policy.h"
#include "support/argparse.h"

using namespace tlp;

int
main(int argc, char **argv)
{
    ArgParser args("inspect one scheduled tensor program");
    args.addString("network", "resnet-50", "model-zoo network name");
    args.addInt("index", 1, "subgraph index within the network");
    args.addBool("gpu", false, "use GPU sketch rules");
    args.addInt("seed", 1, "schedule sampling seed");
    args.parse(argc, argv);

    const ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork(args.getString("network")));
    const size_t index = static_cast<size_t>(args.getInt("index")) %
                         workload.subgraphs.size();
    const ir::SubgraphPtr subgraph = workload.subgraphs[index];

    std::printf("=== computational subgraph (Fig. 2, left) ===\n%s\n",
                subgraph->toString().c_str());

    Rng rng(static_cast<uint64_t>(args.getInt("seed")));
    sketch::SchedulePolicy policy(subgraph, args.getBool("gpu"));
    const sched::State state = policy.sampleRandom(rng);

    std::printf("=== schedule primitives (Fig. 2, red box — TLP's "
                "feature object) ===\n%s\n",
                state.steps().toString().c_str());

    std::printf("=== generated tensor program (Fig. 2, blue box — what "
                "Ansor/TIRAMISU featurize) ===\n%s\n",
                sched::lower(state).prettyPrint().c_str());

    std::printf("=== TLP extracted features (Fig. 5): first 4 rows ===\n");
    feat::TlpFeatureOptions options;
    const auto features = feat::extractTlpFeatures(state.steps(), options);
    for (int r = 0; r < 4 && r < options.seq_len; ++r) {
        std::printf("prim %d: ", r);
        for (int c = 0; c < options.emb_size; ++c)
            std::printf("%5.2f ",
                        features[static_cast<size_t>(r * options.emb_size +
                                                     c)]);
        std::printf("\n");
    }
    return 0;
}
