/**
 * @file
 * Quickstart: the whole TLP pipeline on one fused subgraph.
 *
 *   1. Build a small compute graph (dense + relu) and partition it.
 *   2. Sample schedules with the Ansor-like policy; look at the
 *      primitive sequence — the "tensor language".
 *   3. Extract TLP features (no lowering needed!).
 *   4. Label schedules with the simulated hardware and train a tiny TLP
 *      cost model.
 *   5. Use the model to pick a schedule and compare against random picks.
 *
 * Runs in a few seconds.
 */
#include <cstdio>

#include "dataset/metrics.h"
#include "features/tlp_features.h"
#include "hwmodel/measurer.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "schedule/lower.h"
#include "sketch/policy.h"

using namespace tlp;

int
main()
{
    // 1. A dense + relu fusion group, like Fig. 2 of the paper.
    ir::ComputeGraph graph("quickstart");
    auto x = graph.input({64, 512});
    auto y = graph.dense(x, 256);
    graph.relu(y);
    const ir::Workload workload = ir::partitionGraph(graph);
    const ir::SubgraphPtr subgraph = workload.subgraphs.at(0);
    std::printf("%s\n", subgraph->toString().c_str());

    // 2. Sample schedules.
    Rng rng(42);
    sketch::SchedulePolicy policy(subgraph, /*is_gpu=*/false);
    auto population = policy.sampleInitPopulation(200, rng);
    std::printf("sampled %zu distinct schedules; first one:\n%s\n",
                population.size(),
                population.front().steps().toString().c_str());

    // 3. TLP features come straight from the primitives.
    const auto features =
        feat::extractTlpFeatures(population.front().steps());
    std::printf("TLP feature matrix: 25 x 22 = %zu floats\n\n",
                features.size());

    // 4. Label with the simulated i7-10510U and train a tiny TLP model.
    hw::Measurer measurer(hw::HardwarePlatform::preset("i7-10510u"));
    std::vector<float> latencies;
    float best = 1e30f;
    for (const auto &state : population) {
        const float latency = static_cast<float>(
            measurer.measureMs(sched::lower(state)));
        latencies.push_back(latency);
        best = std::min(best, latency);
    }

    data::LabeledSet set;
    set.rows = static_cast<int>(population.size());
    set.feature_dim = 25 * 22;
    set.num_tasks = 1;
    for (size_t i = 0; i < population.size(); ++i) {
        const auto row =
            feat::extractTlpFeatures(population[i].steps());
        set.features.insert(set.features.end(), row.begin(), row.end());
        set.labels.push_back(best / latencies[i]);
        set.groups.push_back(0);
    }

    model::TlpNetConfig config;
    config.hidden = 48;
    Rng net_rng(7);
    auto net = std::make_shared<model::TlpNet>(config, net_rng);
    model::TrainOptions options;
    options.epochs = 8;
    options.verbose = true;
    trainTlpNet(*net, set, options);

    // 5. Score fresh schedules and compare model picks vs random picks.
    auto fresh = policy.sampleInitPopulation(100, rng);
    model::TlpCostModel cost_model(net);
    const auto scores = cost_model.scoreStates(0, fresh);
    size_t best_idx = 0;
    for (size_t i = 0; i < scores.size(); ++i)
        if (scores[i] > scores[best_idx])
            best_idx = i;

    const double picked =
        measurer.measureMs(sched::lower(fresh[best_idx]));
    double random_avg = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto &candidate = fresh[static_cast<size_t>(
            rng.randint(static_cast<int64_t>(fresh.size())))];
        random_avg += measurer.measureMs(sched::lower(candidate));
    }
    random_avg /= 10.0;

    std::printf("\nmodel-picked schedule: %.4f ms\n", picked);
    std::printf("random schedule (avg of 10): %.4f ms\n", random_avg);
    std::printf("best seen during training: %.4f ms\n",
                static_cast<double>(best));
    std::printf("\nthe model pick should be close to the best and well "
                "below random.\n");
    return 0;
}
