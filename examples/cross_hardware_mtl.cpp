/**
 * @file
 * Cross-hardware unavailability and MTL-TLP (paper Sec. 5), at example
 * scale: train three cost models for a target platform that has only a
 * small labeled dataset, and compare their top-1/top-5 scores:
 *
 *   a) donor-only    — trained on another platform's data (the
 *                       "offline model across hardware" failure mode),
 *   b) scarce-only   — trained on the target's few labels,
 *   c) MTL-TLP       — shared backbone, one head per platform.
 *
 * Usage: cross_hardware_mtl [--target e5-2673] [--donor platinum-8272]
 */
#include <cstdio>
#include <set>

#include "dataset/collect.h"
#include "dataset/metrics.h"
#include "dataset/splits.h"
#include "models/tlp_model.h"
#include "support/argparse.h"

using namespace tlp;

int
main(int argc, char **argv)
{
    ArgParser args("MTL-TLP cross-hardware demo");
    args.addString("target", "e5-2673", "target platform preset");
    args.addString("donor", "platinum-8272", "donor platform preset");
    args.addInt("scarce", 600, "target-platform labeled records");
    args.parse(argc, argv);

    data::CollectOptions collect;
    collect.networks = {"resnet-18", "vgg-16", "mlp-mixer", "bert-small",
                        "resnet-50", "bert-tiny"};
    collect.platforms = {args.getString("target"),
                         args.getString("donor")};
    collect.programs_per_subgraph = 96;
    const auto dataset = data::collectDataset(collect);
    const std::vector<std::string> test_networks = {"resnet-50",
                                                    "bert-tiny"};
    const auto split = data::makeSplit(dataset, test_networks);
    std::printf("dataset: %zu records, train pool %zu\n",
                dataset.records.size(), split.train_records.size());

    feat::TlpFeatureOptions feature_options;
    auto test_set = data::buildTlpSet(dataset, split.test_records, {0, 1},
                                      feature_options);
    auto evaluate = [&](model::TlpNet &net, int head) {
        const auto scores = predictTlpNet(net, test_set, head);
        return data::topKScores(dataset, test_networks, 0,
                                split.test_records, scores);
    };

    model::TrainOptions options;
    options.epochs = 5;
    const int64_t scarce = args.getInt("scarce");

    // a) Donor-only model evaluated on the target platform.
    {
        auto donor_set = data::buildTlpSet(dataset, split.train_records,
                                           {1}, feature_options);
        Rng rng(1);
        model::TlpNet net(model::TlpNetConfig{}, rng);
        trainTlpNet(net, donor_set, options);
        const auto topk = evaluate(net, 0);
        std::printf("a) donor-only:  top-1 %.4f  top-5 %.4f  "
                    "(cross-hardware unavailability)\n",
                    topk.top1, topk.top5);
    }

    // b) Scarce-target-only model.
    auto scarce_records = split.train_records;
    if (static_cast<int64_t>(scarce_records.size()) > scarce)
        scarce_records.resize(static_cast<size_t>(scarce));
    {
        auto scarce_set = data::buildTlpSet(dataset, scarce_records, {0},
                                            feature_options);
        Rng rng(2);
        model::TlpNet net(model::TlpNetConfig{}, rng);
        trainTlpNet(net, scarce_set, options);
        const auto topk = evaluate(net, 0);
        std::printf("b) scarce-only: top-1 %.4f  top-5 %.4f\n", topk.top1,
                    topk.top5);
    }

    // c) MTL-TLP: scarce target labels + all donor labels.
    {
        auto mtl_set = data::buildTlpSet(dataset, split.train_records,
                                         {0, 1}, feature_options);
        std::set<int> scarce_set_ids(scarce_records.begin(),
                                     scarce_records.end());
        for (size_t i = 0; i < split.train_records.size(); ++i) {
            if (!scarce_set_ids.count(split.train_records[i])) {
                mtl_set.labels[i * 2] =
                    std::numeric_limits<float>::quiet_NaN();
            }
        }
        model::TlpNetConfig config;
        config.num_tasks = 2;
        Rng rng(3);
        model::TlpNet net(config, rng);
        trainTlpNet(net, mtl_set, options);
        const auto topk = evaluate(net, 0);
        std::printf("c) MTL-TLP:     top-1 %.4f  top-5 %.4f  "
                    "(shared backbone + per-platform heads)\n",
                    topk.top1, topk.top5);
    }

    std::printf("\nexpected ordering: MTL-TLP > scarce-only > "
                "donor-only on the target platform.\n");
    return 0;
}
