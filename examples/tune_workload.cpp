/**
 * @file
 * End-to-end auto-tuning of a network on a simulated platform, with a
 * selectable cost model — the Sec. 6.3 experience at example scale.
 *
 * Usage: tune_workload [--network resnet-18] [--platform i7-10510u]
 *                      [--model ansor|random|tlp] [--rounds 20]
 *                      [--subgraphs 2] [--fault-rate 0.1] [--retries 2]
 *                      [--checkpoint tune.ckpt] [--checkpoint-every 5]
 *                      [--resume tune.ckpt]
 *                      [--verify-checkpoint any-artifact.bin]
 *                      [--save-model tlp.snap] [--load-model tlp.snap]
 *                      [--threads 4] [--supervise]
 *                      [--train-fault-rate 0.05] [--guarded]
 *                      [--collapse-after 3]
 *
 * The "tlp" model is pretrained on a freshly collected mini dataset
 * before tuning starts (a minute or so); "ansor" trains online.
 * --save-model persists the pretrained TLP net as a checksummed
 * snapshot and --load-model restores it (skipping pretraining); a
 * corrupt or mismatched snapshot is one clear fatal message.
 * --fault-rate injects deterministic measurement failures (compile
 * errors, timeouts, runtime errors, outliers in equal parts); --resume
 * continues a checkpointed campaign after a crash or kill.
 */
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "artifact/audit.h"
#include "dataset/collect.h"
#include "dataset/splits.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "models/guarded_model.h"
#include "models/snapshot.h"
#include "support/argparse.h"
#include "support/thread_pool.h"
#include "tuner/session.h"

using namespace tlp;

int
main(int argc, char **argv)
{
    ArgParser args("auto-tune a network with a chosen cost model");
    args.addString("network", "resnet-18", "model-zoo network");
    args.addString("platform", "i7-10510u", "hardware preset");
    args.addString("model", "ansor", "cost model: ansor|random|tlp");
    args.addInt("rounds", 20, "tuning rounds");
    args.addInt("seed", 1, "search seed");
    args.addDouble("fault-rate", 0.0,
                   "injected measurement fault rate in [0, 1)");
    args.addInt("retries", 2, "retries for transient measurement faults");
    args.addString("checkpoint", "",
                   "checkpoint file written every few rounds");
    args.addInt("checkpoint-every", 5,
                "rounds between checkpoint writes");
    args.addString("resume", "",
                   "resume from this checkpoint (implies --checkpoint)");
    args.addString("verify-checkpoint", "",
                   "integrity-check this artifact (any of the five "
                   "formats, auto-detected by magic) and exit "
                   "(0 = intact, 3 = damaged)");
    args.addInt("subgraphs", 0,
                "tune only the first N subgraphs (0 = all)");
    args.addString("save-model", "",
                   "save the pretrained TLP model snapshot here");
    args.addString("load-model", "",
                   "load a TLP model snapshot instead of pretraining");
    args.addInt("threads", 0,
                "worker threads for kernels/features "
                "(0 = TLP_NUM_THREADS env, default 1)");
    args.addBool("legacy-infer", false,
                 "score with the interpreted TLP forward and no feature "
                 "cache (same results, slower; overrides TLP_FUSED_INFER "
                 "/ TLP_FEATURE_CACHE)");
    args.addBool("supervise", false,
                 "wrap pretraining in the TrainSupervisor "
                 "(rollback-retry on numeric anomalies)");
    args.addDouble("train-fault-rate", 0.0,
                   "injected training fault rate in [0, 1) "
                   "(implies --supervise)");
    args.addBool("guarded", false,
                 "run the search behind the cost-model fallback ladder "
                 "(model > ansor-online > random)");
    args.addInt("collapse-after", 0,
                "inject cost-model score collapse after N online "
                "updates (needs --guarded)");
    args.parse(argc, argv);

    // Artifact triage mode: no tuning, just the §8 integrity check with
    // the standard exit-code contract (0 intact, 3 damaged). The audit
    // module auto-detects the format by magic, so any of the five
    // artifacts (or a curve file) can be handed to the same flag.
    const std::string verify = args.getString("verify-checkpoint");
    if (!verify.empty()) {
        const artifact::VerifyOutcome outcome =
            artifact::verifyArtifactFile(verify);
        const char *kind = artifact::artifactKindName(outcome.kind);
        if (!outcome.status.ok()) {
            if (outcome.kind == artifact::ArtifactKind::Unknown)
                artifactFatal(outcome.status, "cannot verify ", verify);
            artifactFatal(outcome.status, "damaged ", kind,
                          " artifact ", verify);
        }
        std::printf("%s: intact (%s)\n", verify.c_str(), kind);
        return 0;
    }

    const int threads = static_cast<int>(args.getInt("threads"));
    if (threads < 0)
        TLP_FATAL("--threads must be >= 0, got ", threads);
    if (threads > 0)
        ThreadPool::setGlobalThreads(threads);
    std::printf("threads: %d\n", ThreadPool::global().numThreads());

    const auto platform =
        hw::HardwarePlatform::preset(args.getString("platform"));
    ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork(args.getString("network")));
    const int subgraphs = static_cast<int>(args.getInt("subgraphs"));
    if (subgraphs < 0)
        TLP_FATAL("--subgraphs must be >= 0, got ", subgraphs);
    if (subgraphs > 0 &&
        static_cast<size_t>(subgraphs) < workload.subgraphs.size()) {
        workload.name += "-slice" + std::to_string(subgraphs);
        workload.subgraphs.resize(static_cast<size_t>(subgraphs));
        workload.weights.resize(static_cast<size_t>(subgraphs));
    }
    std::printf("tuning %s on %s: %zu tasks\n",
                args.getString("network").c_str(), platform.name.c_str(),
                workload.subgraphs.size());

    std::unique_ptr<model::CostModel> cost_model;
    const std::string which = args.getString("model");
    const std::string save_model = args.getString("save-model");
    const std::string load_model = args.getString("load-model");
    if ((!save_model.empty() || !load_model.empty()) && which != "tlp")
        TLP_FATAL("--save-model/--load-model require --model tlp");
    if (which == "ansor") {
        cost_model = std::make_unique<model::AnsorOnlineCostModel>();
    } else if (which == "random") {
        cost_model = std::make_unique<model::RandomCostModel>();
    } else if (which == "tlp") {
        std::shared_ptr<model::TlpNet> net;
        if (!load_model.empty()) {
            auto loaded = model::loadTlpSnapshot(load_model);
            if (!loaded.ok()) {
                artifactFatal(loaded.status(),
                              "cannot load model snapshot ", load_model);
            }
            net = loaded.take();
            std::printf("loaded pretrained TLP snapshot from %s\n",
                        load_model.c_str());
        } else {
            std::printf("pretraining TLP on a mini offline dataset...\n");
            data::CollectOptions collect;
            collect.networks = {"resnet-34", "vgg-16", "bert-small"};
            collect.platforms = {platform.name};
            collect.is_gpu = platform.is_gpu;
            collect.programs_per_subgraph = 64;
            const auto dataset = data::collectDataset(collect);
            std::vector<int> all_records;
            for (size_t r = 0; r < dataset.records.size(); ++r)
                all_records.push_back(static_cast<int>(r));
            auto set = data::buildTlpSet(dataset, all_records, {0});
            Rng rng(7);
            net = std::make_shared<model::TlpNet>(model::TlpNetConfig{},
                                                  rng);
            model::TrainOptions options;
            options.epochs = 4;
            options.verbose = true;
            const double train_fault_rate =
                args.getDouble("train-fault-rate");
            if (train_fault_rate < 0.0 || train_fault_rate >= 1.0) {
                TLP_FATAL("--train-fault-rate must be in [0, 1), got ",
                          train_fault_rate);
            }
            if (args.getBool("supervise") || train_fault_rate > 0.0) {
                options.supervisor.enabled = true;
                options.supervisor.faults =
                    model::TrainFaultProfile::uniform(train_fault_rate);
            }
            model::HealthCounters train_health;
            options.supervisor.health_out = &train_health;
            trainTlpNet(*net, set, options);
            if (options.supervisor.enabled) {
                std::printf("training health: %s\n",
                            train_health.toString().c_str());
            }
        }
        if (!save_model.empty()) {
            const Status status = model::saveTlpSnapshot(save_model, *net);
            if (!status.ok()) {
                TLP_FATAL("cannot save model snapshot ", save_model, ": ",
                          status.toString());
            }
            std::printf("saved TLP snapshot to %s\n", save_model.c_str());
        }
        cost_model = std::make_unique<model::TlpCostModel>(
            net, feat::TlpFeatureOptions{}, 0,
            args.getBool("legacy-infer")
                ? model::TlpInferOptions::legacy()
                : model::TlpInferOptions::fromEnv());
    } else {
        TLP_FATAL("unknown --model: ", which);
    }

    // Degraded-mode search: the chosen model becomes the top rung of a
    // fallback ladder that survives NaN scores / output collapse / lost
    // rank correlation by quarantining the sick rung.
    std::shared_ptr<model::GuardedCostModel> guarded;
    model::HealthCounters search_health;
    const int collapse_after =
        static_cast<int>(args.getInt("collapse-after"));
    if (collapse_after > 0 && !args.getBool("guarded"))
        TLP_FATAL("--collapse-after needs --guarded");
    if (args.getBool("guarded")) {
        std::shared_ptr<model::CostModel> top = std::move(cost_model);
        if (collapse_after > 0) {
            top = std::make_shared<model::FaultInjectedCostModel>(
                std::move(top), collapse_after);
        }
        model::GuardOptions guard_options;
        guard_options.health_out = &search_health;
        guarded = model::makeGuardedLadder(std::move(top), guard_options);
    }

    tune::TuneOptions options;
    // Every task needs at least one round before the workload latency
    // (sum over tasks) becomes finite.
    options.rounds =
        std::max(static_cast<int>(args.getInt("rounds")),
                 static_cast<int>(workload.subgraphs.size()));
    options.seed = static_cast<uint64_t>(args.getInt("seed"));
    options.verbose = true;
    const double fault_rate = args.getDouble("fault-rate");
    if (fault_rate < 0.0 || fault_rate >= 1.0)
        TLP_FATAL("--fault-rate must be in [0, 1), got ", fault_rate);
    if (fault_rate > 0.0)
        options.measure.faults = hw::FaultProfile::uniform(fault_rate);
    options.measure.max_retries = static_cast<int>(args.getInt("retries"));
    options.checkpoint_path = args.getString("checkpoint");
    options.checkpoint_every =
        static_cast<int>(args.getInt("checkpoint-every"));
    if (options.checkpoint_every <= 0)
        TLP_FATAL("--checkpoint-every must be positive");
    if (!args.getString("resume").empty()) {
        options.checkpoint_path = args.getString("resume");
        options.resume = true;
        // Damaged checkpoints are an artifact problem (exit 3), not a
        // usage problem: verify up front instead of dying mid-resume.
        std::ifstream probe(options.checkpoint_path, std::ios::binary);
        if (probe) {
            const Status status = tune::verifyCheckpoint(probe);
            if (!status.ok()) {
                artifactFatal(status, "cannot resume from checkpoint ",
                              options.checkpoint_path);
            }
        }
    }
    model::CostModel &search_model =
        guarded ? static_cast<model::CostModel &>(*guarded) : *cost_model;
    const auto result =
        tune::tuneWorkload(workload, platform, search_model, options);

    std::printf("\nbest workload latency: %.4f ms after %lld "
                "measurements\n",
                result.best_workload_latency_ms,
                static_cast<long long>(result.total_measurements));
    std::printf("search time: %.1f s simulated measurement + %.2f s "
                "model/features\n",
                result.measure_seconds, result.model_seconds);
    if (result.failed_measurements > 0) {
        std::printf("measurement failures: %lld (%.1f s wasted, %lld "
                    "candidates quarantined)\n",
                    static_cast<long long>(result.failed_measurements),
                    result.wasted_measure_seconds,
                    static_cast<long long>(result.quarantined_candidates));
    }
    if (guarded) {
        std::printf("cost model: %s (active: %s); search health: %s\n",
                    result.cost_model_name.c_str(),
                    guarded->activeName().c_str(),
                    search_health.toString().c_str());
    }
    return 0;
}
