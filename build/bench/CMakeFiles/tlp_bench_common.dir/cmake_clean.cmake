file(REMOVE_RECURSE
  "CMakeFiles/tlp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tlp_bench_common.dir/bench_common.cc.o.d"
  "libtlp_bench_common.a"
  "libtlp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
