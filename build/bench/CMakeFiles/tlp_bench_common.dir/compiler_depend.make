# Empty compiler generated dependencies file for tlp_bench_common.
# This may be replaced when dependencies are built.
