file(REMOVE_RECURSE
  "libtlp_bench_common.a"
)
