# Empty compiler generated dependencies file for bench_fig9_mtl_data_size.
# This may be replaced when dependencies are built.
