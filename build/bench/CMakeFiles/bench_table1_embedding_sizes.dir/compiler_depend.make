# Empty compiler generated dependencies file for bench_table1_embedding_sizes.
# This may be replaced when dependencies are built.
