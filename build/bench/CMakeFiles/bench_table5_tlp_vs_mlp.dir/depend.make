# Empty dependencies file for bench_table5_tlp_vs_mlp.
# This may be replaced when dependencies are built.
