file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_tlp_vs_mlp.dir/bench_table5_tlp_vs_mlp.cc.o"
  "CMakeFiles/bench_table5_tlp_vs_mlp.dir/bench_table5_tlp_vs_mlp.cc.o.d"
  "bench_table5_tlp_vs_mlp"
  "bench_table5_tlp_vs_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tlp_vs_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
