# Empty dependencies file for bench_table8_transfer_methods.
# This may be replaced when dependencies are built.
