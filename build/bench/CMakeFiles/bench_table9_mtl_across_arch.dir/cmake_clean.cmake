file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_mtl_across_arch.dir/bench_table9_mtl_across_arch.cc.o"
  "CMakeFiles/bench_table9_mtl_across_arch.dir/bench_table9_mtl_across_arch.cc.o.d"
  "bench_table9_mtl_across_arch"
  "bench_table9_mtl_across_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_mtl_across_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
