# Empty compiler generated dependencies file for bench_table9_mtl_across_arch.
# This may be replaced when dependencies are built.
