file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_search_time_vs_tenset.dir/bench_fig12_search_time_vs_tenset.cc.o"
  "CMakeFiles/bench_fig12_search_time_vs_tenset.dir/bench_fig12_search_time_vs_tenset.cc.o.d"
  "bench_fig12_search_time_vs_tenset"
  "bench_fig12_search_time_vs_tenset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_search_time_vs_tenset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
