# Empty compiler generated dependencies file for bench_table6_mtl_cpu.
# This may be replaced when dependencies are built.
