# Empty compiler generated dependencies file for bench_table4_feature_crop.
# This may be replaced when dependencies are built.
