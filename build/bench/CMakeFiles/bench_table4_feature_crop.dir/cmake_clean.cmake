file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_feature_crop.dir/bench_table4_feature_crop.cc.o"
  "CMakeFiles/bench_table4_feature_crop.dir/bench_table4_feature_crop.cc.o.d"
  "bench_table4_feature_crop"
  "bench_table4_feature_crop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_feature_crop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
