# Empty dependencies file for bench_fig13_search_time_vs_ansor.
# This may be replaced when dependencies are built.
