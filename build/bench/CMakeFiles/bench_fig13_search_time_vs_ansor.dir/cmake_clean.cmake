file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_search_time_vs_ansor.dir/bench_fig13_search_time_vs_ansor.cc.o"
  "CMakeFiles/bench_fig13_search_time_vs_ansor.dir/bench_fig13_search_time_vs_ansor.cc.o.d"
  "bench_fig13_search_time_vs_ansor"
  "bench_fig13_search_time_vs_ansor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_search_time_vs_ansor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
