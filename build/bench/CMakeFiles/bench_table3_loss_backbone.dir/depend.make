# Empty dependencies file for bench_table3_loss_backbone.
# This may be replaced when dependencies are built.
