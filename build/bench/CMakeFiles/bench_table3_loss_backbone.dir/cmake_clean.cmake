file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_loss_backbone.dir/bench_table3_loss_backbone.cc.o"
  "CMakeFiles/bench_table3_loss_backbone.dir/bench_table3_loss_backbone.cc.o.d"
  "bench_table3_loss_backbone"
  "bench_table3_loss_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_loss_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
