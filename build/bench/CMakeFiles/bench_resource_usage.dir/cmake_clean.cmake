file(REMOVE_RECURSE
  "CMakeFiles/bench_resource_usage.dir/bench_resource_usage.cc.o"
  "CMakeFiles/bench_resource_usage.dir/bench_resource_usage.cc.o.d"
  "bench_resource_usage"
  "bench_resource_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
