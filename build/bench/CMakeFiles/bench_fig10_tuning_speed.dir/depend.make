# Empty dependencies file for bench_fig10_tuning_speed.
# This may be replaced when dependencies are built.
