file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tuning_speed.dir/bench_fig10_tuning_speed.cc.o"
  "CMakeFiles/bench_fig10_tuning_speed.dir/bench_fig10_tuning_speed.cc.o.d"
  "bench_fig10_tuning_speed"
  "bench_fig10_tuning_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tuning_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
