# Empty compiler generated dependencies file for bench_fig11_tuning_curves.
# This may be replaced when dependencies are built.
