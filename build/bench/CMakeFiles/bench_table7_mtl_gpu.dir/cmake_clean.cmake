file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_mtl_gpu.dir/bench_table7_mtl_gpu.cc.o"
  "CMakeFiles/bench_table7_mtl_gpu.dir/bench_table7_mtl_gpu.cc.o.d"
  "bench_table7_mtl_gpu"
  "bench_table7_mtl_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_mtl_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
