# Empty dependencies file for bench_table7_mtl_gpu.
# This may be replaced when dependencies are built.
