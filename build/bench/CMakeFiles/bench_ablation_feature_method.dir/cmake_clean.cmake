file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_feature_method.dir/bench_ablation_feature_method.cc.o"
  "CMakeFiles/bench_ablation_feature_method.dir/bench_ablation_feature_method.cc.o.d"
  "bench_ablation_feature_method"
  "bench_ablation_feature_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_feature_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
