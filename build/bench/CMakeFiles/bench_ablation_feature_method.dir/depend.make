# Empty dependencies file for bench_ablation_feature_method.
# This may be replaced when dependencies are built.
