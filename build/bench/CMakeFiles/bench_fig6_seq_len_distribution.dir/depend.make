# Empty dependencies file for bench_fig6_seq_len_distribution.
# This may be replaced when dependencies are built.
