file(REMOVE_RECURSE
  "CMakeFiles/cross_hardware_mtl.dir/cross_hardware_mtl.cpp.o"
  "CMakeFiles/cross_hardware_mtl.dir/cross_hardware_mtl.cpp.o.d"
  "cross_hardware_mtl"
  "cross_hardware_mtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_hardware_mtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
