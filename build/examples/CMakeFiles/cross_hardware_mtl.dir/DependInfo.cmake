
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cross_hardware_mtl.cpp" "examples/CMakeFiles/cross_hardware_mtl.dir/cross_hardware_mtl.cpp.o" "gcc" "examples/CMakeFiles/cross_hardware_mtl.dir/cross_hardware_mtl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/tlp_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tlp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/tlp_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tlp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/tlp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/tlp_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/tlp_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/tlp_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tlp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tlp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
