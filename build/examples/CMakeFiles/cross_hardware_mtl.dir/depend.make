# Empty dependencies file for cross_hardware_mtl.
# This may be replaced when dependencies are built.
