# Empty dependencies file for dataset_builder.
# This may be replaced when dependencies are built.
