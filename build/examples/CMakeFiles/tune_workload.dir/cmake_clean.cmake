file(REMOVE_RECURSE
  "CMakeFiles/tune_workload.dir/tune_workload.cpp.o"
  "CMakeFiles/tune_workload.dir/tune_workload.cpp.o.d"
  "tune_workload"
  "tune_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
