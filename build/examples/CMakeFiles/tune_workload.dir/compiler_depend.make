# Empty compiler generated dependencies file for tune_workload.
# This may be replaced when dependencies are built.
