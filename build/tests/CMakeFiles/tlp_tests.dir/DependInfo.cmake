
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dataset.cc" "tests/CMakeFiles/tlp_tests.dir/test_dataset.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_dataset.cc.o.d"
  "/root/repo/tests/test_features.cc" "tests/CMakeFiles/tlp_tests.dir/test_features.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_features.cc.o.d"
  "/root/repo/tests/test_hwmodel.cc" "tests/CMakeFiles/tlp_tests.dir/test_hwmodel.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_hwmodel.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/tlp_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/tlp_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_models.cc" "tests/CMakeFiles/tlp_tests.dir/test_models.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_models.cc.o.d"
  "/root/repo/tests/test_nn.cc" "tests/CMakeFiles/tlp_tests.dir/test_nn.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_nn.cc.o.d"
  "/root/repo/tests/test_partition.cc" "tests/CMakeFiles/tlp_tests.dir/test_partition.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_partition.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/tlp_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_schedule.cc" "tests/CMakeFiles/tlp_tests.dir/test_schedule.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_schedule.cc.o.d"
  "/root/repo/tests/test_sketch.cc" "tests/CMakeFiles/tlp_tests.dir/test_sketch.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_sketch.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/tlp_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_tuner.cc" "tests/CMakeFiles/tlp_tests.dir/test_tuner.cc.o" "gcc" "tests/CMakeFiles/tlp_tests.dir/test_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/tlp_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tlp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/tlp_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/tlp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tlp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/tlp_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/tlp_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/tlp_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tlp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tlp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
