file(REMOVE_RECURSE
  "CMakeFiles/tlp_tests.dir/test_dataset.cc.o"
  "CMakeFiles/tlp_tests.dir/test_dataset.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_features.cc.o"
  "CMakeFiles/tlp_tests.dir/test_features.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_hwmodel.cc.o"
  "CMakeFiles/tlp_tests.dir/test_hwmodel.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_integration.cc.o"
  "CMakeFiles/tlp_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_ir.cc.o"
  "CMakeFiles/tlp_tests.dir/test_ir.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_models.cc.o"
  "CMakeFiles/tlp_tests.dir/test_models.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_nn.cc.o"
  "CMakeFiles/tlp_tests.dir/test_nn.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_partition.cc.o"
  "CMakeFiles/tlp_tests.dir/test_partition.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_properties.cc.o"
  "CMakeFiles/tlp_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_schedule.cc.o"
  "CMakeFiles/tlp_tests.dir/test_schedule.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_sketch.cc.o"
  "CMakeFiles/tlp_tests.dir/test_sketch.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_support.cc.o"
  "CMakeFiles/tlp_tests.dir/test_support.cc.o.d"
  "CMakeFiles/tlp_tests.dir/test_tuner.cc.o"
  "CMakeFiles/tlp_tests.dir/test_tuner.cc.o.d"
  "tlp_tests"
  "tlp_tests.pdb"
  "tlp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
