# Empty dependencies file for tlp_tests.
# This may be replaced when dependencies are built.
