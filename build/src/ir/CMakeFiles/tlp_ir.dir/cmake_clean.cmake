file(REMOVE_RECURSE
  "CMakeFiles/tlp_ir.dir/dtype.cc.o"
  "CMakeFiles/tlp_ir.dir/dtype.cc.o.d"
  "CMakeFiles/tlp_ir.dir/graph.cc.o"
  "CMakeFiles/tlp_ir.dir/graph.cc.o.d"
  "CMakeFiles/tlp_ir.dir/loops.cc.o"
  "CMakeFiles/tlp_ir.dir/loops.cc.o.d"
  "CMakeFiles/tlp_ir.dir/model_zoo.cc.o"
  "CMakeFiles/tlp_ir.dir/model_zoo.cc.o.d"
  "CMakeFiles/tlp_ir.dir/op.cc.o"
  "CMakeFiles/tlp_ir.dir/op.cc.o.d"
  "CMakeFiles/tlp_ir.dir/partition.cc.o"
  "CMakeFiles/tlp_ir.dir/partition.cc.o.d"
  "CMakeFiles/tlp_ir.dir/subgraph.cc.o"
  "CMakeFiles/tlp_ir.dir/subgraph.cc.o.d"
  "libtlp_ir.a"
  "libtlp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
