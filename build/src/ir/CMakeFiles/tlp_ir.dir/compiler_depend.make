# Empty compiler generated dependencies file for tlp_ir.
# This may be replaced when dependencies are built.
