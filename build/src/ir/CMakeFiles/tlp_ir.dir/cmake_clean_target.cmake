file(REMOVE_RECURSE
  "libtlp_ir.a"
)
