# Empty dependencies file for tlp_ir.
# This may be replaced when dependencies are built.
