
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/dtype.cc" "src/ir/CMakeFiles/tlp_ir.dir/dtype.cc.o" "gcc" "src/ir/CMakeFiles/tlp_ir.dir/dtype.cc.o.d"
  "/root/repo/src/ir/graph.cc" "src/ir/CMakeFiles/tlp_ir.dir/graph.cc.o" "gcc" "src/ir/CMakeFiles/tlp_ir.dir/graph.cc.o.d"
  "/root/repo/src/ir/loops.cc" "src/ir/CMakeFiles/tlp_ir.dir/loops.cc.o" "gcc" "src/ir/CMakeFiles/tlp_ir.dir/loops.cc.o.d"
  "/root/repo/src/ir/model_zoo.cc" "src/ir/CMakeFiles/tlp_ir.dir/model_zoo.cc.o" "gcc" "src/ir/CMakeFiles/tlp_ir.dir/model_zoo.cc.o.d"
  "/root/repo/src/ir/op.cc" "src/ir/CMakeFiles/tlp_ir.dir/op.cc.o" "gcc" "src/ir/CMakeFiles/tlp_ir.dir/op.cc.o.d"
  "/root/repo/src/ir/partition.cc" "src/ir/CMakeFiles/tlp_ir.dir/partition.cc.o" "gcc" "src/ir/CMakeFiles/tlp_ir.dir/partition.cc.o.d"
  "/root/repo/src/ir/subgraph.cc" "src/ir/CMakeFiles/tlp_ir.dir/subgraph.cc.o" "gcc" "src/ir/CMakeFiles/tlp_ir.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
