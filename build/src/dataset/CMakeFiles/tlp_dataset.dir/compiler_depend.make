# Empty compiler generated dependencies file for tlp_dataset.
# This may be replaced when dependencies are built.
