file(REMOVE_RECURSE
  "CMakeFiles/tlp_dataset.dir/collect.cc.o"
  "CMakeFiles/tlp_dataset.dir/collect.cc.o.d"
  "CMakeFiles/tlp_dataset.dir/dataset.cc.o"
  "CMakeFiles/tlp_dataset.dir/dataset.cc.o.d"
  "CMakeFiles/tlp_dataset.dir/metrics.cc.o"
  "CMakeFiles/tlp_dataset.dir/metrics.cc.o.d"
  "CMakeFiles/tlp_dataset.dir/splits.cc.o"
  "CMakeFiles/tlp_dataset.dir/splits.cc.o.d"
  "libtlp_dataset.a"
  "libtlp_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
