file(REMOVE_RECURSE
  "libtlp_dataset.a"
)
