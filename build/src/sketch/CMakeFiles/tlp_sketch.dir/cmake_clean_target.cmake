file(REMOVE_RECURSE
  "libtlp_sketch.a"
)
