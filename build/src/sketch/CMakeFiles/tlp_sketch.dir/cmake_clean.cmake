file(REMOVE_RECURSE
  "CMakeFiles/tlp_sketch.dir/policy.cc.o"
  "CMakeFiles/tlp_sketch.dir/policy.cc.o.d"
  "CMakeFiles/tlp_sketch.dir/tiles.cc.o"
  "CMakeFiles/tlp_sketch.dir/tiles.cc.o.d"
  "libtlp_sketch.a"
  "libtlp_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
