
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/policy.cc" "src/sketch/CMakeFiles/tlp_sketch.dir/policy.cc.o" "gcc" "src/sketch/CMakeFiles/tlp_sketch.dir/policy.cc.o.d"
  "/root/repo/src/sketch/tiles.cc" "src/sketch/CMakeFiles/tlp_sketch.dir/tiles.cc.o" "gcc" "src/sketch/CMakeFiles/tlp_sketch.dir/tiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/tlp_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tlp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tlp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
