# Empty compiler generated dependencies file for tlp_sketch.
# This may be replaced when dependencies are built.
