file(REMOVE_RECURSE
  "CMakeFiles/tlp_tuner.dir/evolution.cc.o"
  "CMakeFiles/tlp_tuner.dir/evolution.cc.o.d"
  "CMakeFiles/tlp_tuner.dir/session.cc.o"
  "CMakeFiles/tlp_tuner.dir/session.cc.o.d"
  "libtlp_tuner.a"
  "libtlp_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
