file(REMOVE_RECURSE
  "libtlp_tuner.a"
)
