# Empty dependencies file for tlp_tuner.
# This may be replaced when dependencies are built.
