# Empty dependencies file for tlp_support.
# This may be replaced when dependencies are built.
