file(REMOVE_RECURSE
  "libtlp_support.a"
)
