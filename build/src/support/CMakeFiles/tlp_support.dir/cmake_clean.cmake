file(REMOVE_RECURSE
  "CMakeFiles/tlp_support.dir/argparse.cc.o"
  "CMakeFiles/tlp_support.dir/argparse.cc.o.d"
  "CMakeFiles/tlp_support.dir/config.cc.o"
  "CMakeFiles/tlp_support.dir/config.cc.o.d"
  "CMakeFiles/tlp_support.dir/logging.cc.o"
  "CMakeFiles/tlp_support.dir/logging.cc.o.d"
  "CMakeFiles/tlp_support.dir/rng.cc.o"
  "CMakeFiles/tlp_support.dir/rng.cc.o.d"
  "CMakeFiles/tlp_support.dir/serialize.cc.o"
  "CMakeFiles/tlp_support.dir/serialize.cc.o.d"
  "CMakeFiles/tlp_support.dir/stats.cc.o"
  "CMakeFiles/tlp_support.dir/stats.cc.o.d"
  "CMakeFiles/tlp_support.dir/str_util.cc.o"
  "CMakeFiles/tlp_support.dir/str_util.cc.o.d"
  "CMakeFiles/tlp_support.dir/table.cc.o"
  "CMakeFiles/tlp_support.dir/table.cc.o.d"
  "libtlp_support.a"
  "libtlp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
