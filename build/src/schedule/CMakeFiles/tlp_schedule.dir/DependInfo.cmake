
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/lower.cc" "src/schedule/CMakeFiles/tlp_schedule.dir/lower.cc.o" "gcc" "src/schedule/CMakeFiles/tlp_schedule.dir/lower.cc.o.d"
  "/root/repo/src/schedule/primitive.cc" "src/schedule/CMakeFiles/tlp_schedule.dir/primitive.cc.o" "gcc" "src/schedule/CMakeFiles/tlp_schedule.dir/primitive.cc.o.d"
  "/root/repo/src/schedule/state.cc" "src/schedule/CMakeFiles/tlp_schedule.dir/state.cc.o" "gcc" "src/schedule/CMakeFiles/tlp_schedule.dir/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/tlp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tlp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
