# Empty dependencies file for tlp_schedule.
# This may be replaced when dependencies are built.
