file(REMOVE_RECURSE
  "CMakeFiles/tlp_schedule.dir/lower.cc.o"
  "CMakeFiles/tlp_schedule.dir/lower.cc.o.d"
  "CMakeFiles/tlp_schedule.dir/primitive.cc.o"
  "CMakeFiles/tlp_schedule.dir/primitive.cc.o.d"
  "CMakeFiles/tlp_schedule.dir/state.cc.o"
  "CMakeFiles/tlp_schedule.dir/state.cc.o.d"
  "libtlp_schedule.a"
  "libtlp_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
