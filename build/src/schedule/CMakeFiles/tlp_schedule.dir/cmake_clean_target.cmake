file(REMOVE_RECURSE
  "libtlp_schedule.a"
)
