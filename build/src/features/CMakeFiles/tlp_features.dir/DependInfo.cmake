
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/ansor_features.cc" "src/features/CMakeFiles/tlp_features.dir/ansor_features.cc.o" "gcc" "src/features/CMakeFiles/tlp_features.dir/ansor_features.cc.o.d"
  "/root/repo/src/features/tlp_features.cc" "src/features/CMakeFiles/tlp_features.dir/tlp_features.cc.o" "gcc" "src/features/CMakeFiles/tlp_features.dir/tlp_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/tlp_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tlp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tlp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
