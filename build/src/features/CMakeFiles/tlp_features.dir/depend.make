# Empty dependencies file for tlp_features.
# This may be replaced when dependencies are built.
