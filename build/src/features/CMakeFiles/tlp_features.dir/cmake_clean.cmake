file(REMOVE_RECURSE
  "CMakeFiles/tlp_features.dir/ansor_features.cc.o"
  "CMakeFiles/tlp_features.dir/ansor_features.cc.o.d"
  "CMakeFiles/tlp_features.dir/tlp_features.cc.o"
  "CMakeFiles/tlp_features.dir/tlp_features.cc.o.d"
  "libtlp_features.a"
  "libtlp_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
