file(REMOVE_RECURSE
  "libtlp_features.a"
)
