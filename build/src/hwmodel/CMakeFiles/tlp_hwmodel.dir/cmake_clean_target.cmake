file(REMOVE_RECURSE
  "libtlp_hwmodel.a"
)
