# Empty dependencies file for tlp_hwmodel.
# This may be replaced when dependencies are built.
