file(REMOVE_RECURSE
  "CMakeFiles/tlp_hwmodel.dir/measurer.cc.o"
  "CMakeFiles/tlp_hwmodel.dir/measurer.cc.o.d"
  "CMakeFiles/tlp_hwmodel.dir/platform.cc.o"
  "CMakeFiles/tlp_hwmodel.dir/platform.cc.o.d"
  "CMakeFiles/tlp_hwmodel.dir/simulator.cc.o"
  "CMakeFiles/tlp_hwmodel.dir/simulator.cc.o.d"
  "libtlp_hwmodel.a"
  "libtlp_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
