file(REMOVE_RECURSE
  "CMakeFiles/tlp_nn.dir/losses.cc.o"
  "CMakeFiles/tlp_nn.dir/losses.cc.o.d"
  "CMakeFiles/tlp_nn.dir/modules.cc.o"
  "CMakeFiles/tlp_nn.dir/modules.cc.o.d"
  "CMakeFiles/tlp_nn.dir/ops.cc.o"
  "CMakeFiles/tlp_nn.dir/ops.cc.o.d"
  "CMakeFiles/tlp_nn.dir/optim.cc.o"
  "CMakeFiles/tlp_nn.dir/optim.cc.o.d"
  "CMakeFiles/tlp_nn.dir/tensor.cc.o"
  "CMakeFiles/tlp_nn.dir/tensor.cc.o.d"
  "libtlp_nn.a"
  "libtlp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
