file(REMOVE_RECURSE
  "libtlp_nn.a"
)
