# Empty compiler generated dependencies file for tlp_nn.
# This may be replaced when dependencies are built.
