file(REMOVE_RECURSE
  "libtlp_models.a"
)
