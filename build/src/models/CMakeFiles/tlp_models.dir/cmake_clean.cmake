file(REMOVE_RECURSE
  "CMakeFiles/tlp_models.dir/cost_model.cc.o"
  "CMakeFiles/tlp_models.dir/cost_model.cc.o.d"
  "CMakeFiles/tlp_models.dir/gbdt.cc.o"
  "CMakeFiles/tlp_models.dir/gbdt.cc.o.d"
  "CMakeFiles/tlp_models.dir/pretrain.cc.o"
  "CMakeFiles/tlp_models.dir/pretrain.cc.o.d"
  "CMakeFiles/tlp_models.dir/tenset_mlp.cc.o"
  "CMakeFiles/tlp_models.dir/tenset_mlp.cc.o.d"
  "CMakeFiles/tlp_models.dir/tlp_model.cc.o"
  "CMakeFiles/tlp_models.dir/tlp_model.cc.o.d"
  "libtlp_models.a"
  "libtlp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
