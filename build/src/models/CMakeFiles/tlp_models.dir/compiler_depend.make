# Empty compiler generated dependencies file for tlp_models.
# This may be replaced when dependencies are built.
