/**
 * @file
 * Deterministic corruption fuzzer for every on-disk artifact format:
 * datasets, model snapshots, tuning checkpoints, and bench memos.
 *
 * Each format's golden bytes are mutated >= 500 times with seeded byte
 * flips, truncations (random and at section boundaries), zeroed spans,
 * and inflated length prefixes; every mutant must come back as a clean
 * Status (or, rarely, as a still-valid artifact) — never a crash, hang,
 * or allocation proportional to a hostile length field. Salvage-mode
 * recovery and version-skew reporting are pinned down exactly.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

#include "bench/bench_common.h"
#include "dataset/collect.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "models/snapshot.h"
#include "models/supervisor.h"
#include "support/io_env.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "tuner/session.h"

namespace tlp {
namespace {

constexpr int kMutationsPerFormat = 500;

// --- golden artifacts (built once, reused across mutations) ------------

const data::Dataset &
goldenDataset()
{
    static const data::Dataset dataset = [] {
        data::CollectOptions options;
        options.networks = {"resnet-18"};
        options.platforms = {"platinum-8272"};
        options.programs_per_subgraph = 48;   // > 256 records: 2+ chunks
        options.seed = 11;
        return data::collectDataset(options);
    }();
    return dataset;
}

/** A second, smaller dataset: the "previous generation" in the
 *  write-side crash drills (distinct bytes from the golden one). */
const data::Dataset &
tinyDataset()
{
    static const data::Dataset dataset = [] {
        data::CollectOptions options;
        options.networks = {"resnet-18"};
        options.platforms = {"platinum-8272"};
        options.programs_per_subgraph = 4;
        options.seed = 12;
        return data::collectDataset(options);
    }();
    return dataset;
}

std::string
goldenDatasetBytes()
{
    std::ostringstream os;
    goldenDataset().save(os);
    return os.str();
}

std::string
goldenSnapshotBytes()
{
    Rng rng(3);
    model::TlpNet net(model::TlpNetConfig{}, rng);
    std::ostringstream os;
    model::saveTlpSnapshot(os, net);
    return os.str();
}

std::string
goldenCheckpointBytes()
{
    static const std::string bytes = [] {
        const std::string path = "/tmp/tlp_test_corruption.ckpt";
        std::remove(path.c_str());
        ir::Workload full =
            ir::partitionGraph(ir::buildNetwork("resnet-18"));
        ir::Workload slim;
        slim.name = "resnet-18-slice";
        for (size_t i = 0; i < 2 && i < full.subgraphs.size(); ++i) {
            slim.subgraphs.push_back(full.subgraphs[i]);
            slim.weights.push_back(full.weights[i]);
        }
        tune::TuneOptions options;
        options.rounds = 4;
        options.measures_per_round = 4;
        options.evolution.population = 16;
        options.evolution.iterations = 1;
        options.evolution.children_per_iter = 8;
        options.checkpoint_path = path;
        options.checkpoint_every = 2;
        model::RandomCostModel cost_model(5);
        tune::tuneWorkload(slim,
                           hw::HardwarePlatform::preset("platinum-8272"),
                           cost_model, options);
        std::ifstream is(path, std::ios::binary);
        std::string contents((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
        std::remove(path.c_str());
        return contents;
    }();
    return bytes;
}

constexpr uint64_t kMemoFingerprint = 0xf00dface;

std::string
goldenMemoBytes()
{
    std::ostringstream os;
    bench::writeBenchMemo(os, kMemoFingerprint, goldenDataset());
    return os.str();
}

std::string
goldenTrainCheckpointBytes()
{
    static const std::string bytes = [] {
        Rng rng(13);
        nn::Tensor w = nn::Tensor::randn({8}, rng, 1.0);
        nn::Adam adam({w}, {.lr = 0.01});
        model::SupervisorOptions options;
        options.enabled = true;
        model::TrainSupervisor supervisor({w}, adam, options);
        for (int i = 0; i < 3; ++i) {
            supervisor.step([&] {
                adam.zeroGrad();
                auto &grad = w.grad();
                for (size_t j = 0; j < grad.size(); ++j)
                    grad[j] = 0.1f * static_cast<float>(j + 1);
                return 1.0 + 0.1 * i;
            });
        }
        std::ostringstream os(std::ios::binary);
        model::writeTrainCheckpoint(os, supervisor.makeCheckpoint(2));
        return os.str();
    }();
    return bytes;
}

// --- section walking (for boundary-targeted mutations) ------------------

/** One section frame located in a byte string. */
struct Frame
{
    size_t offset = 0;        ///< of the tag field
    size_t payload_offset = 0;
    uint64_t payload_size = 0;
    uint32_t tag = 0;
};

/**
 * Walk the section frames of @p bytes starting just past a @p header
 * bytes long prefix. Stops at the first frame that doesn't fit.
 */
std::vector<Frame>
walkFrames(const std::string &bytes, size_t header)
{
    std::vector<Frame> frames;
    size_t at = header;
    while (at + 16 <= bytes.size()) {
        Frame frame;
        frame.offset = at;
        std::memcpy(&frame.tag, bytes.data() + at, 4);
        std::memcpy(&frame.payload_size, bytes.data() + at + 4, 8);
        frame.payload_offset = at + 16;
        if (frame.payload_size > bytes.size() - frame.payload_offset)
            break;
        frames.push_back(frame);
        at = frame.payload_offset + frame.payload_size;
    }
    return frames;
}

// --- the mutation engine -------------------------------------------------

/** Apply one seeded mutation; @p header is the fixed prefix size. */
std::string
mutate(const std::string &golden, size_t header, Rng &rng)
{
    std::string bytes = golden;
    const auto offset = [&] {
        return static_cast<size_t>(rng.randint(
            static_cast<int64_t>(bytes.size())));
    };
    switch (rng.randint(6)) {
      case 0:   // flip 1..8 random bytes
        for (int64_t i = 0, n = rng.randint(1, 8); i < n; ++i)
            bytes[offset()] ^= static_cast<char>(rng.randint(1, 255));
        break;
      case 1:   // truncate to a random prefix
        bytes.resize(offset());
        break;
      case 2: { // truncate at or just past a section boundary
        const auto frames = walkFrames(bytes, header);
        if (frames.empty()) {
            bytes.resize(offset());
            break;
        }
        const Frame &frame = frames[static_cast<size_t>(
            rng.randint(static_cast<int64_t>(frames.size())))];
        const size_t cut = frame.offset + static_cast<size_t>(rng.randint(
                                              17));   // inside the frame
        bytes.resize(std::min(cut, bytes.size()));
        break;
      }
      case 3: { // inflate a section length field
        const auto frames = walkFrames(bytes, header);
        const uint64_t huge = 1ull << rng.randint(20, 62);
        if (frames.empty()) {
            // No parseable frame: plant the hostile length anywhere.
            const size_t at = offset();
            std::memcpy(bytes.data() + at, &huge,
                        std::min<size_t>(8, bytes.size() - at));
            break;
        }
        const Frame &frame = frames[static_cast<size_t>(
            rng.randint(static_cast<int64_t>(frames.size())))];
        std::memcpy(bytes.data() + frame.offset + 4, &huge, 8);
        break;
      }
      case 4: { // zero a 16-byte span
        const size_t at = offset();
        for (size_t i = at; i < std::min(at + 16, bytes.size()); ++i)
            bytes[i] = 0;
        break;
      }
      default: { // scribble over the version field
        if (bytes.size() >= 8) {
            const uint32_t version =
                static_cast<uint32_t>(rng.randint(0, 1000));
            std::memcpy(bytes.data() + 4, &version, 4);
        }
        break;
      }
    }
    return bytes;
}

/**
 * Fuzz @p load with kMutationsPerFormat seeded mutants of @p golden.
 * @p load returns true when the mutant still parsed OK (possible when a
 * flip lands in dead bytes); all other outcomes must be clean Statuses,
 * which the callee asserts. Returns the number of surviving mutants.
 */
template <typename LoadFn>
int
fuzzFormat(const std::string &golden, size_t header, uint64_t seed,
           LoadFn &&load)
{
    Rng rng(seed);
    int survivors = 0;
    for (int i = 0; i < kMutationsPerFormat; ++i)
        survivors += load(mutate(golden, header, rng)) ? 1 : 0;
    return survivors;
}

// --- fuzzing: every mutant parses or fails cleanly ----------------------

TEST(CorruptionFuzz, DatasetNeverCrashes)
{
    const std::string golden = goldenDatasetBytes();
    const int survivors =
        fuzzFormat(golden, 8, 0xda7a1, [](const std::string &bytes) {
            std::istringstream is(bytes);
            return data::Dataset::tryLoad(is).ok();
        });
    // Corruption overwhelmingly loses: the CRCs catch nearly everything.
    EXPECT_LT(survivors, kMutationsPerFormat / 10);
}

TEST(CorruptionFuzz, DatasetSalvageNeverCrashes)
{
    const std::string golden = goldenDatasetBytes();
    fuzzFormat(golden, 8, 0xda7a2, [&](const std::string &bytes) {
        std::istringstream is(bytes);
        data::LoadOptions options;
        options.salvage = true;
        auto result = data::Dataset::tryLoad(is, options);
        if (!result.ok())
            return false;
        // Whatever survived salvage must be internally consistent.
        const auto dataset = result.take();
        for (const auto &record : dataset.records) {
            EXPECT_LT(record.group, dataset.groups.size());
            EXPECT_EQ(record.latency_ms.size(), dataset.platforms.size());
        }
        return true;
    });
}

TEST(CorruptionFuzz, SnapshotNeverCrashes)
{
    const std::string golden = goldenSnapshotBytes();
    const int survivors =
        fuzzFormat(golden, 8, 0x5a95, [](const std::string &bytes) {
            std::istringstream is(bytes);
            return model::loadTlpSnapshot(is).ok();
        });
    EXPECT_LT(survivors, kMutationsPerFormat / 10);
}

TEST(CorruptionFuzz, CheckpointNeverCrashes)
{
    const std::string golden = goldenCheckpointBytes();
    ASSERT_FALSE(golden.empty());
    const int survivors =
        fuzzFormat(golden, 8, 0xc4ec, [](const std::string &bytes) {
            std::istringstream is(bytes);
            return tune::verifyCheckpoint(is).ok();
        });
    EXPECT_LT(survivors, kMutationsPerFormat / 10);
}

TEST(CorruptionFuzz, TrainCheckpointNeverCrashes)
{
    const std::string golden = goldenTrainCheckpointBytes();
    ASSERT_FALSE(golden.empty());
    const int survivors =
        fuzzFormat(golden, 8, 0x717c, [](const std::string &bytes) {
            std::istringstream is(bytes);
            return model::verifyTrainCheckpoint(is).ok();
        });
    EXPECT_LT(survivors, kMutationsPerFormat / 10);
}

TEST(CorruptionFuzz, BenchMemoNeverCrashes)
{
    const std::string golden = goldenMemoBytes();
    // Frames start past the memo header (16) plus the embedded dataset
    // header (8).
    const int survivors =
        fuzzFormat(golden, 24, 0x3e30, [](const std::string &bytes) {
            std::istringstream is(bytes);
            return bench::loadBenchMemo(is, kMemoFingerprint).ok();
        });
    EXPECT_LT(survivors, kMutationsPerFormat / 10);
}

// --- golden sanity: the unmutated bytes round-trip ----------------------

TEST(Corruption, GoldenArtifactsLoadCleanly)
{
    {
        std::istringstream is(goldenDatasetBytes());
        auto result = data::Dataset::tryLoad(is);
        ASSERT_TRUE(result.ok()) << result.status().toString();
        EXPECT_EQ(result.value().records.size(),
                  goldenDataset().records.size());
        EXPECT_TRUE(result.value().corruption_counts.empty());
    }
    {
        std::istringstream is(goldenSnapshotBytes());
        auto result = model::loadTlpSnapshot(is);
        ASSERT_TRUE(result.ok()) << result.status().toString();
    }
    {
        std::istringstream is(goldenCheckpointBytes());
        const Status status = tune::verifyCheckpoint(is);
        EXPECT_TRUE(status.ok()) << status.toString();
    }
    {
        std::istringstream is(goldenMemoBytes());
        auto result = bench::loadBenchMemo(is, kMemoFingerprint);
        ASSERT_TRUE(result.ok()) << result.status().toString();
    }
    {
        std::istringstream is(goldenTrainCheckpointBytes());
        auto result = model::loadTrainCheckpoint(is);
        ASSERT_TRUE(result.ok()) << result.status().toString();
        EXPECT_EQ(result.value().epoch, 2);
        EXPECT_EQ(result.value().steps_done, 3);
    }
}

// --- salvage semantics ---------------------------------------------------

/** Serialized bytes of one record, for bit-identity comparison. */
std::string
recordBytes(const data::ProgramRecord &record)
{
    std::ostringstream os;
    BinaryWriter writer(os);
    writer.writePod(record.group);
    record.seq.serialize(writer);
    writer.writeVector(record.latency_ms);
    return os.str();
}

TEST(Corruption, SalvageKeepsPrefixBitIdenticallyAndSkipsBadChunk)
{
    const data::Dataset &original = goldenDataset();
    ASSERT_GT(original.records.size(), 512u);   // at least 3 chunks

    std::string bytes = goldenDatasetBytes();
    const auto frames = walkFrames(bytes, 8);
    std::vector<const Frame *> record_frames;
    for (const auto &frame : frames)
        if (frame.tag == sectionTag("RECS"))
            record_frames.push_back(&frame);
    ASSERT_GE(record_frames.size(), 3u);

    // Flip one payload byte in the SECOND record chunk.
    bytes[record_frames[1]->payload_offset + 40] ^= 0x20;

    // Strict load refuses; the message names the failing section.
    {
        std::istringstream is(bytes);
        auto strict = data::Dataset::tryLoad(is);
        ASSERT_FALSE(strict.ok());
        EXPECT_EQ(strict.status().code(), ErrorCode::Corrupt);
        EXPECT_NE(strict.status().message().find("records"),
                  std::string::npos);
    }

    // Salvage skips exactly that chunk and keeps everything else.
    std::istringstream is(bytes);
    data::LoadOptions options;
    options.salvage = true;
    auto result = data::Dataset::tryLoad(is, options);
    ASSERT_TRUE(result.ok()) << result.status().toString();
    const auto salvaged = result.take();

    EXPECT_EQ(salvaged.corruption_counts.at("records_crc"), 1);
    EXPECT_EQ(salvaged.records.size(), original.records.size() - 256);

    // Every record before the corrupted chunk is bit-identical...
    for (size_t r = 0; r < 256; ++r) {
        ASSERT_EQ(recordBytes(salvaged.records[r]),
                  recordBytes(original.records[r]))
            << "record " << r;
    }
    // ...and the chunks after it were recovered too, shifted left.
    for (size_t r = 256; r < salvaged.records.size(); ++r) {
        ASSERT_EQ(recordBytes(salvaged.records[r]),
                  recordBytes(original.records[r + 256]))
            << "record " << r;
    }
}

TEST(Corruption, SalvageSurvivesTruncationAfterFirstChunk)
{
    const data::Dataset &original = goldenDataset();
    std::string bytes = goldenDatasetBytes();
    const auto frames = walkFrames(bytes, 8);
    std::vector<const Frame *> record_frames;
    for (const auto &frame : frames)
        if (frame.tag == sectionTag("RECS"))
            record_frames.push_back(&frame);
    ASSERT_GE(record_frames.size(), 2u);

    // Cut the file in the middle of the second record chunk.
    bytes.resize(record_frames[1]->payload_offset + 10);

    std::istringstream is(bytes);
    data::LoadOptions options;
    options.salvage = true;
    auto result = data::Dataset::tryLoad(is, options);
    ASSERT_TRUE(result.ok()) << result.status().toString();
    const auto salvaged = result.take();

    EXPECT_EQ(salvaged.records.size(), 256u);
    EXPECT_FALSE(salvaged.corruption_counts.empty());
    for (size_t r = 0; r < salvaged.records.size(); ++r) {
        ASSERT_EQ(recordBytes(salvaged.records[r]),
                  recordBytes(original.records[r]));
    }
}

TEST(Corruption, SalvageCannotRecoverWithoutTheSpine)
{
    // Corrupt the META section: no salvage is possible without the
    // platform axis.
    std::string bytes = goldenDatasetBytes();
    const auto frames = walkFrames(bytes, 8);
    ASSERT_FALSE(frames.empty());
    ASSERT_EQ(frames[0].tag, sectionTag("META"));
    bytes[frames[0].payload_offset] ^= 0xff;

    std::istringstream is(bytes);
    data::LoadOptions options;
    options.salvage = true;
    auto result = data::Dataset::tryLoad(is, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::Corrupt);
    EXPECT_NE(result.status().message().find("meta"), std::string::npos);
}

// --- version skew: every format reports it cleanly ----------------------

/** Overwrite the version field (bytes 4..7 after @p at) of @p bytes. */
std::string
withVersion(std::string bytes, uint32_t version, size_t at = 4)
{
    std::memcpy(bytes.data() + at, &version, 4);
    return bytes;
}

TEST(Corruption, DatasetVersionSkewIsClean)
{
    // A future (v+1) file and an ancient v1 file both get VersionSkew.
    for (const uint32_t version :
         {data::Dataset::kFormatVersion + 1, 1u}) {
        std::istringstream is(withVersion(goldenDatasetBytes(), version));
        auto result = data::Dataset::tryLoad(is);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), ErrorCode::VersionSkew)
            << result.status().toString();
        EXPECT_NE(result.status().message().find("version"),
                  std::string::npos);
    }
}

TEST(Corruption, SnapshotVersionSkewIsClean)
{
    for (const uint32_t version : {model::kSnapshotVersion + 1, 0u}) {
        std::istringstream is(withVersion(goldenSnapshotBytes(), version));
        auto result = model::loadTlpSnapshot(is);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), ErrorCode::VersionSkew)
            << result.status().toString();
    }
}

TEST(Corruption, CheckpointVersionSkewIsClean)
{
    // v2 (pre-guarded-search) checkpoints still load; v5 and v1 do not.
    for (const uint32_t version : {5u, 1u}) {
        std::istringstream is(
            withVersion(goldenCheckpointBytes(), version));
        const Status status = tune::verifyCheckpoint(is);
        ASSERT_FALSE(status.ok());
        EXPECT_EQ(status.code(), ErrorCode::VersionSkew)
            << status.toString();
    }
}

/** Hand-built v3 checkpoint bytes (narrow curve points, no phase byte);
 *  a valid-but-different artifact for skew and crash-drill tests. */
std::string
v3CheckpointBytes()
{
    struct NarrowCurvePoint
    {
        int64_t measurements;
        double search_seconds;
        double workload_latency_ms;
    };
    std::ostringstream os;
    BinaryWriter writer(os);
    writeHeader(writer, 0x544c5053, 3);
    writeSection(writer, sectionTag("STAT"), [&](BinaryWriter &w) {
        w.writePod<uint64_t>(0xfeedULL);    // digest (unchecked on verify)
        w.writePod<int32_t>(2);             // rounds_done
        Rng rng(7);
        rng.serialize(w);
        hw::Measurer measurer(hw::HardwarePlatform::preset("i7-10510u"),
                              hw::MeasureOptions{}, 7);
        measurer.serializeState(w);
        w.writePod<double>(0.25);           // model_seconds
        w.writePod<int64_t>(8);             // total_measurements
        std::vector<NarrowCurvePoint> curve{{4, 0.5, 9.0}, {8, 1.0, 7.5}};
        w.writeVector(curve);
        std::vector<double> best{7.5};
        w.writeVector(best);
        w.writePod<uint32_t>(1);            // num_tasks
        w.writePod<double>(7.5);            // best_ms
        w.writePod<int32_t>(2);             // rounds_done
        w.writePod<double>(0.1);            // last_improvement
        std::vector<uint64_t> hashes{1, 2, 3};
        w.writeVector(hashes);
        w.writePod<uint64_t>(0);            // num history rounds
        w.writeString("random:5");          // v3: model name
        w.writeString("");                  // v3: model state blob
    });
    return os.str();
}

TEST(Corruption, CheckpointV3StillLoads)
{
    // The format bump to v4 must not orphan existing v3 checkpoints.
    std::istringstream is(v3CheckpointBytes());
    const Status status = tune::verifyCheckpoint(is);
    EXPECT_TRUE(status.ok()) << status.toString();
}

TEST(Corruption, TrainCheckpointVersionSkewIsClean)
{
    for (const uint32_t version :
         {model::kTrainCheckpointVersion + 1, 0u}) {
        std::istringstream is(
            withVersion(goldenTrainCheckpointBytes(), version));
        const Status status = model::verifyTrainCheckpoint(is);
        ASSERT_FALSE(status.ok());
        EXPECT_EQ(status.code(), ErrorCode::VersionSkew)
            << status.toString();
    }
}

TEST(Corruption, BenchMemoVersionSkewIsClean)
{
    for (const uint32_t version : {bench::kMemoVersion + 1, 1u}) {
        std::istringstream is(withVersion(goldenMemoBytes(), version));
        auto result = bench::loadBenchMemo(is, kMemoFingerprint);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), ErrorCode::VersionSkew)
            << result.status().toString();
    }
}

TEST(Corruption, BenchMemoStaleFingerprintIsClean)
{
    std::istringstream is(goldenMemoBytes());
    auto result = bench::loadBenchMemo(is, kMemoFingerprint + 1);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::Invalid);
    EXPECT_NE(result.status().message().find("stale"), std::string::npos);
}

// --- write-side crash consistency (DESIGN.md §14) ------------------------
//
// For every artifact format: save generation 1, then attempt a
// generation-2 overwrite under every injectable fault point — open
// failure, torn write truncated at each section boundary +/- 1 byte,
// flush failure, rename failure, each leaving crash debris. After every
// fault the on-disk file must still be gen-1 bit for bit and must still
// load cleanly: a torn artifact must never be observable through the
// loaders.

/** Every interesting truncation point of @p bytes: file edges plus each
 *  frame's tag / payload / end offsets, each +/- 1. */
std::vector<size_t>
tornCuts(const std::string &bytes, size_t header)
{
    std::set<size_t> cuts{0, 1, header};
    for (const Frame &frame : walkFrames(bytes, header)) {
        const size_t marks[3] = {
            frame.offset, frame.payload_offset,
            frame.payload_offset +
                static_cast<size_t>(frame.payload_size)};
        for (const size_t mark : marks) {
            if (mark > 0)
                cuts.insert(mark - 1);
            cuts.insert(mark);
            cuts.insert(mark + 1);
        }
    }
    std::vector<size_t> out;
    for (const size_t cut : cuts)
        if (cut <= bytes.size())
            out.push_back(cut);
    return out;
}

/**
 * Run the full save-fault enumeration for one format. @p load is the
 * real path-level loader; it must succeed on an intact artifact and
 * report a clean Status otherwise.
 */
void
runSaveDrill(const std::string &name, const std::string &gen1,
             const std::string &gen2, size_t header,
             const std::function<Status(const std::string &)> &load)
{
    namespace fs = std::filesystem;
    ASSERT_FALSE(gen1.empty());
    ASSERT_FALSE(gen2.empty());
    ASSERT_NE(gen1, gen2);

    const std::string path = "/tmp/tlp_test_io_drill_" + name + ".bin";
    std::remove(path.c_str());
    sweepStaleTempsFor(path);
    ScopedIoFaults scope{IoFaultProfile{}};   // chaos off; counters reset

    IoEnv &env = IoEnv::global();
    const auto write = [&](const std::string &bytes) {
        return atomicWriteFile(path, [&](std::ostream &os) {
            os.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
        });
    };
    const auto readBack = [&] {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        return os.str();
    };

    // Fault during the very first save: no artifact may appear, and the
    // loader reports a clean miss — never a parse of torn bytes.
    IoFaultDecision first;
    first.kind = IoFaultKind::TornWrite;
    first.torn_at = static_cast<int64_t>(gen1.size() / 2);
    first.crash_debris = true;
    env.armNextWrite(first);
    EXPECT_FALSE(write(gen1).ok());
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(load(path).ok());

    ASSERT_TRUE(write(gen1).ok());
    ASSERT_EQ(readBack(), gen1);
    {
        const Status loaded = load(path);
        ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.toString();
    }

    // Every fault point of the gen-2 overwrite, with crash debris.
    std::vector<IoFaultDecision> points;
    for (const IoFaultKind kind :
         {IoFaultKind::OpenFail, IoFaultKind::FlushFail,
          IoFaultKind::RenameFail}) {
        IoFaultDecision decision;
        decision.kind = kind;
        decision.crash_debris = true;
        points.push_back(decision);
    }
    for (const size_t cut : tornCuts(gen2, header)) {
        IoFaultDecision decision;
        decision.kind = IoFaultKind::TornWrite;
        decision.torn_at = static_cast<int64_t>(cut);
        decision.crash_debris = true;
        points.push_back(decision);
    }

    for (const IoFaultDecision &decision : points) {
        env.armNextWrite(decision);
        const Status status = write(gen2);
        const std::string what = name + std::string(" under ") +
                                 ioFaultKindName(decision.kind) +
                                 " torn_at=" +
                                 std::to_string(decision.torn_at);
        EXPECT_FALSE(status.ok()) << what;
        ASSERT_EQ(readBack(), gen1) << what;
        const Status loaded = load(path);
        ASSERT_TRUE(loaded.ok()) << what << ": " << loaded.toString();
    }

    // Every fault past open stranded a debris temp; OpenFail never made
    // one but the first-save fault did, so the tally is points.size().
    const int swept = sweepStaleTempsFor(path);
    EXPECT_EQ(swept, static_cast<int>(points.size()));
    EXPECT_TRUE(fs::exists(path));

    // With chaos gone the overwrite commits and loads as gen-2.
    ASSERT_TRUE(write(gen2).ok());
    EXPECT_EQ(readBack(), gen2);
    {
        const Status loaded = load(path);
        EXPECT_TRUE(loaded.ok()) << name << ": " << loaded.toString();
    }
    EXPECT_EQ(env.counters().writes_committed, 2);
    std::remove(path.c_str());
}

TEST(CrashConsistency, DatasetSaveFaultsKeepPreviousArtifact)
{
    std::ostringstream os;
    tinyDataset().save(os);
    runSaveDrill("dataset", os.str(), goldenDatasetBytes(), 8,
                 [](const std::string &path) {
                     return data::Dataset::tryLoad(path).status();
                 });
}

TEST(CrashConsistency, SnapshotSaveFaultsKeepPreviousArtifact)
{
    Rng rng(21);
    model::TlpNet net(model::TlpNetConfig{}, rng);
    std::ostringstream os;
    model::saveTlpSnapshot(os, net);
    runSaveDrill("snapshot", os.str(), goldenSnapshotBytes(), 8,
                 [](const std::string &path) {
                     return model::loadTlpSnapshot(path).status();
                 });
}

TEST(CrashConsistency, CheckpointSaveFaultsKeepPreviousArtifact)
{
    runSaveDrill("checkpoint", v3CheckpointBytes(),
                 goldenCheckpointBytes(), 8,
                 [](const std::string &path) {
                     return tune::verifyCheckpoint(path);
                 });
}

TEST(CrashConsistency, TrainCheckpointSaveFaultsKeepPreviousArtifact)
{
    Rng rng(14);
    nn::Tensor w = nn::Tensor::randn({8}, rng, 1.0);
    nn::Adam adam({w}, {.lr = 0.01});
    model::SupervisorOptions options;
    options.enabled = true;
    model::TrainSupervisor supervisor({w}, adam, options);
    supervisor.step([&] {
        adam.zeroGrad();
        auto &grad = w.grad();
        for (size_t j = 0; j < grad.size(); ++j)
            grad[j] = 0.2f * static_cast<float>(j + 1);
        return 2.0;
    });
    std::ostringstream os(std::ios::binary);
    model::writeTrainCheckpoint(os, supervisor.makeCheckpoint(1));
    runSaveDrill("train_ckpt", os.str(), goldenTrainCheckpointBytes(), 8,
                 [](const std::string &path) {
                     return model::loadTrainCheckpoint(path).status();
                 });
}

TEST(CrashConsistency, BenchMemoSaveFaultsKeepPreviousArtifact)
{
    std::ostringstream os;
    bench::writeBenchMemo(os, kMemoFingerprint, tinyDataset());
    runSaveDrill("memo", os.str(), goldenMemoBytes(), 24,
                 [](const std::string &path) {
                     return bench::loadBenchMemo(path, kMemoFingerprint)
                         .status();
                 });
}

// --- model snapshots: cross-architecture and dimension bombs ------------

TEST(Corruption, SnapshotArchMismatchIsClean)
{
    Rng rng(5);
    model::TensetMlpNet mlp(model::MlpConfig{}, rng);
    std::ostringstream os;
    model::saveMlpSnapshot(os, mlp);

    std::istringstream is(os.str());
    auto result = model::loadTlpSnapshot(is);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::Invalid);
    EXPECT_NE(result.status().message().find("architecture"),
              std::string::npos);
}

TEST(Corruption, SnapshotRoundTripPredictsIdentically)
{
    Rng rng(9);
    model::TlpNet net(model::TlpNetConfig{}, rng);
    std::ostringstream os;
    model::saveTlpSnapshot(os, net);
    std::istringstream is(os.str());
    auto result = model::loadTlpSnapshot(is);
    ASSERT_TRUE(result.ok()) << result.status().toString();

    // Same config and bit-identical parameters => identical bytes when
    // saved again.
    std::ostringstream os2;
    model::saveTlpSnapshot(os2, *result.value());
    EXPECT_EQ(os.str(), os2.str());
}

} // namespace
} // namespace tlp
