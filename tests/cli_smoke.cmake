# CLI exit-code smoke test, run via `cmake -P` (see tests/CMakeLists.txt).
#
# The contract (DESIGN.md "Training & search robustness", src/support/
# logging.h): user errors exit 2 (TLP_FATAL), damaged artifacts exit 3
# (artifactFatal), so scripts can tell "you called it wrong" apart from
# "your file is damaged". This drives the real installed binaries the way
# a shell script would — the in-process death tests cannot see argv
# parsing or main()'s artifact probing.

if(NOT DEFINED TUNE_WORKLOAD OR NOT DEFINED DATASET_BUILDER
   OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR
            "usage: cmake -DTUNE_WORKLOAD=... -DDATASET_BUILDER=... "
            "-DWORK_DIR=... -P cli_smoke.cmake")
endif()

# --- user error (bad argument) must exit 2, before any heavy work -------

execute_process(
    COMMAND "${TUNE_WORKLOAD}" --threads -1
    RESULT_VARIABLE user_error_code
    OUTPUT_QUIET ERROR_VARIABLE user_error_output)
if(NOT user_error_code EQUAL 2)
    message(FATAL_ERROR
            "tune_workload --threads -1: expected exit 2 (user error), "
            "got '${user_error_code}'. stderr: ${user_error_output}")
endif()
if(NOT user_error_output MATCHES "--threads")
    message(FATAL_ERROR
            "tune_workload --threads -1: fatal message does not name the "
            "offending flag. stderr: ${user_error_output}")
endif()

# --- corrupt artifact must exit 3, with a Status-shaped message ---------

set(garbage "${WORK_DIR}/cli_smoke_garbage.bin")
file(WRITE "${garbage}" "this is not a TLP artifact, just prose\n")

execute_process(
    COMMAND "${DATASET_BUILDER}" --load "${garbage}"
    RESULT_VARIABLE corrupt_code
    OUTPUT_QUIET ERROR_VARIABLE corrupt_output)
file(REMOVE "${garbage}")
if(NOT corrupt_code EQUAL 3)
    message(FATAL_ERROR
            "dataset_builder --load <garbage>: expected exit 3 (corrupt "
            "artifact), got '${corrupt_code}'. stderr: ${corrupt_output}")
endif()
if(NOT corrupt_output MATCHES "cannot load dataset")
    message(FATAL_ERROR
            "dataset_builder --load <garbage>: message does not explain "
            "the failure. stderr: ${corrupt_output}")
endif()

message(STATUS "cli exit-code contract holds: user error=2, corrupt=3")
