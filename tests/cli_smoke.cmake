# CLI exit-code smoke test, run via `cmake -P` (see tests/CMakeLists.txt).
#
# The contract (DESIGN.md "Training & search robustness", src/support/
# logging.h): user errors exit 2 (TLP_FATAL), damaged artifacts exit 3
# (artifactFatal), so scripts can tell "you called it wrong" apart from
# "your file is damaged". This drives the real installed binaries the way
# a shell script would — the in-process death tests cannot see argv
# parsing or main()'s artifact probing.

if(NOT DEFINED TUNE_WORKLOAD OR NOT DEFINED DATASET_BUILDER
   OR NOT DEFINED TLP_LINT OR NOT DEFINED TLP_FSCK
   OR NOT DEFINED LINT_FIXTURE_DIR OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR
            "usage: cmake -DTUNE_WORKLOAD=... -DDATASET_BUILDER=... "
            "-DTLP_LINT=... -DTLP_FSCK=... -DLINT_FIXTURE_DIR=... "
            "-DWORK_DIR=... -P cli_smoke.cmake")
endif()

# --- user error (bad argument) must exit 2, before any heavy work -------

execute_process(
    COMMAND "${TUNE_WORKLOAD}" --threads -1
    RESULT_VARIABLE user_error_code
    OUTPUT_QUIET ERROR_VARIABLE user_error_output)
if(NOT user_error_code EQUAL 2)
    message(FATAL_ERROR
            "tune_workload --threads -1: expected exit 2 (user error), "
            "got '${user_error_code}'. stderr: ${user_error_output}")
endif()
if(NOT user_error_output MATCHES "--threads")
    message(FATAL_ERROR
            "tune_workload --threads -1: fatal message does not name the "
            "offending flag. stderr: ${user_error_output}")
endif()

# --- corrupt artifact must exit 3, with a Status-shaped message ---------

set(garbage "${WORK_DIR}/cli_smoke_garbage.bin")
file(WRITE "${garbage}" "this is not a TLP artifact, just prose\n")

execute_process(
    COMMAND "${DATASET_BUILDER}" --load "${garbage}"
    RESULT_VARIABLE corrupt_code
    OUTPUT_QUIET ERROR_VARIABLE corrupt_output)
file(REMOVE "${garbage}")
if(NOT corrupt_code EQUAL 3)
    message(FATAL_ERROR
            "dataset_builder --load <garbage>: expected exit 3 (corrupt "
            "artifact), got '${corrupt_code}'. stderr: ${corrupt_output}")
endif()
if(NOT corrupt_output MATCHES "cannot load dataset")
    message(FATAL_ERROR
            "dataset_builder --load <garbage>: message does not explain "
            "the failure. stderr: ${corrupt_output}")
endif()

# --- checkpoint triage: --verify-checkpoint exits 0 intact / 3 damaged -

# Build a real (tiny) checkpoint first: 1 subgraph, 1 round.
set(smoke_ckpt "${WORK_DIR}/cli_smoke_verify.ckpt")
file(REMOVE "${smoke_ckpt}")
execute_process(
    COMMAND "${TUNE_WORKLOAD}" --model random --rounds 1 --subgraphs 1
        --checkpoint "${smoke_ckpt}" --checkpoint-every 1
    RESULT_VARIABLE mk_ckpt_code
    OUTPUT_QUIET ERROR_VARIABLE mk_ckpt_output)
if(NOT mk_ckpt_code EQUAL 0)
    message(FATAL_ERROR
            "tune_workload (building the smoke checkpoint): expected "
            "exit 0, got '${mk_ckpt_code}'. stderr: ${mk_ckpt_output}")
endif()

execute_process(
    COMMAND "${TUNE_WORKLOAD}" --verify-checkpoint "${smoke_ckpt}"
    RESULT_VARIABLE verify_ok_code
    OUTPUT_VARIABLE verify_ok_output ERROR_QUIET)
if(NOT verify_ok_code EQUAL 0)
    message(FATAL_ERROR
            "tune_workload --verify-checkpoint <intact>: expected exit "
            "0, got '${verify_ok_code}'. stdout: ${verify_ok_output}")
endif()
if(NOT verify_ok_output MATCHES "intact")
    message(FATAL_ERROR
            "tune_workload --verify-checkpoint <intact>: output does "
            "not say intact. stdout: ${verify_ok_output}")
endif()

set(bad_ckpt "${WORK_DIR}/cli_smoke_verify_bad.ckpt")
file(WRITE "${bad_ckpt}" "definitely not a TLPS checkpoint\n")
execute_process(
    COMMAND "${TUNE_WORKLOAD}" --verify-checkpoint "${bad_ckpt}"
    RESULT_VARIABLE verify_bad_code
    OUTPUT_QUIET ERROR_VARIABLE verify_bad_output)
file(REMOVE "${bad_ckpt}" "${smoke_ckpt}")
if(NOT verify_bad_code EQUAL 3)
    message(FATAL_ERROR
            "tune_workload --verify-checkpoint <garbage>: expected exit "
            "3 (damaged artifact), got '${verify_bad_code}'. stderr: "
            "${verify_bad_output}")
endif()
if(NOT verify_bad_output MATCHES "damaged tuning-checkpoint")
    message(FATAL_ERROR
            "tune_workload --verify-checkpoint <garbage>: message does "
            "not name the damaged format. stderr: ${verify_bad_output}")
endif()

# A missing file is also an artifact problem (exit 3), not a crash.
execute_process(
    COMMAND "${TUNE_WORKLOAD}" --verify-checkpoint
        "${WORK_DIR}/cli_smoke_no_such_file.ckpt"
    RESULT_VARIABLE verify_missing_code
    OUTPUT_QUIET ERROR_QUIET)
if(NOT verify_missing_code EQUAL 3)
    message(FATAL_ERROR
            "tune_workload --verify-checkpoint <missing>: expected exit "
            "3, got '${verify_missing_code}'")
endif()

# --- tlp_fsck exit codes: 0 = clean, 2 = user error, 3 = damage found --

execute_process(
    COMMAND "${TLP_FSCK}"
    RESULT_VARIABLE fsck_usage_code
    OUTPUT_QUIET ERROR_QUIET)
if(NOT fsck_usage_code EQUAL 2)
    message(FATAL_ERROR
            "tlp_fsck without --dir: expected exit 2 (user error), got "
            "'${fsck_usage_code}'")
endif()

set(fsck_dir "${WORK_DIR}/cli_smoke_fsck")
file(REMOVE_RECURSE "${fsck_dir}")
file(MAKE_DIRECTORY "${fsck_dir}")
execute_process(
    COMMAND "${TLP_FSCK}" --dir "${fsck_dir}"
    RESULT_VARIABLE fsck_clean_code
    OUTPUT_VARIABLE fsck_clean_output ERROR_QUIET)
if(NOT fsck_clean_code EQUAL 0)
    message(FATAL_ERROR
            "tlp_fsck on an empty directory: expected exit 0, got "
            "'${fsck_clean_code}'. stdout: ${fsck_clean_output}")
endif()

# Plant damage (a garbage checkpoint) and debris (a stale atomic temp):
# the audit must exit 3, --repair must contain both, and a follow-up
# audit must come back clean.
file(WRITE "${fsck_dir}/s000.ckpt" "definitely not a TLPS checkpoint\n")
file(WRITE "${fsck_dir}/s001.ckpt.tmp.12345.6" "stranded temp bytes")
execute_process(
    COMMAND "${TLP_FSCK}" --dir "${fsck_dir}"
    RESULT_VARIABLE fsck_dirty_code
    OUTPUT_VARIABLE fsck_dirty_output ERROR_QUIET)
if(NOT fsck_dirty_code EQUAL 3)
    message(FATAL_ERROR
            "tlp_fsck on a damaged directory: expected exit 3, got "
            "'${fsck_dirty_code}'. stdout: ${fsck_dirty_output}")
endif()
if(NOT fsck_dirty_output MATCHES "state corrupt"
   OR NOT fsck_dirty_output MATCHES "state stale-temp")
    message(FATAL_ERROR
            "tlp_fsck report does not classify the planted damage. "
            "stdout: ${fsck_dirty_output}")
endif()

execute_process(
    COMMAND "${TLP_FSCK}" --dir "${fsck_dir}" --repair
    RESULT_VARIABLE fsck_repair_code
    OUTPUT_VARIABLE fsck_repair_output ERROR_QUIET)
if(NOT fsck_repair_code EQUAL 3)
    message(FATAL_ERROR
            "tlp_fsck --repair on a damaged directory: expected exit 3 "
            "(damage was found), got '${fsck_repair_code}'. stdout: "
            "${fsck_repair_output}")
endif()
if(NOT EXISTS "${fsck_dir}/s000.ckpt.quarantined.1")
    message(FATAL_ERROR
            "tlp_fsck --repair did not quarantine the damaged "
            "checkpoint as s000.ckpt.quarantined.1")
endif()
if(EXISTS "${fsck_dir}/s001.ckpt.tmp.12345.6")
    message(FATAL_ERROR "tlp_fsck --repair did not sweep the stale temp")
endif()

execute_process(
    COMMAND "${TLP_FSCK}" --dir "${fsck_dir}"
    RESULT_VARIABLE fsck_after_code
    OUTPUT_VARIABLE fsck_after_output ERROR_QUIET)
file(REMOVE_RECURSE "${fsck_dir}")
if(NOT fsck_after_code EQUAL 0)
    message(FATAL_ERROR
            "tlp_fsck after --repair: expected exit 0 (evidence is not "
            "damage), got '${fsck_after_code}'. stdout: "
            "${fsck_after_output}")
endif()

# --- tlp_lint exit codes: 0 = clean tree, 1 = findings, 2 = bad config -

execute_process(
    COMMAND "${TLP_LINT}"
        --manifest "${LINT_FIXTURE_DIR}/clean/manifest.txt"
        --root "${LINT_FIXTURE_DIR}/clean" .
    RESULT_VARIABLE lint_clean_code
    OUTPUT_QUIET ERROR_VARIABLE lint_clean_output)
if(NOT lint_clean_code EQUAL 0)
    message(FATAL_ERROR
            "tlp_lint on the clean fixture dir: expected exit 0, got "
            "'${lint_clean_code}'. stderr: ${lint_clean_output}")
endif()

execute_process(
    COMMAND "${TLP_LINT}"
        --manifest "${LINT_FIXTURE_DIR}/dirty/manifest.txt"
        --root "${LINT_FIXTURE_DIR}/dirty" .
    RESULT_VARIABLE lint_dirty_code
    OUTPUT_QUIET ERROR_VARIABLE lint_dirty_output)
if(NOT lint_dirty_code EQUAL 1)
    message(FATAL_ERROR
            "tlp_lint on the dirty fixture dir: expected exit 1 "
            "(findings), got '${lint_dirty_code}'. stderr: "
            "${lint_dirty_output}")
endif()
if(NOT lint_dirty_output MATCHES "include-forbidden")
    message(FATAL_ERROR
            "tlp_lint dirty output does not name the Fig. 10 "
            "include-forbidden finding. stderr: ${lint_dirty_output}")
endif()
foreach(flow_rule unchecked-result hot-call-alloc suppression-budget)
    if(NOT lint_dirty_output MATCHES "${flow_rule}")
        message(FATAL_ERROR
                "tlp_lint dirty output does not name the flow-aware "
                "${flow_rule} finding. stderr: ${lint_dirty_output}")
    endif()
endforeach()

# --format json emits the machine-readable report on stdout and keeps
# the human summary (and exit code) intact.
execute_process(
    COMMAND "${TLP_LINT}"
        --manifest "${LINT_FIXTURE_DIR}/clean/manifest.txt"
        --root "${LINT_FIXTURE_DIR}/clean" --format json .
    RESULT_VARIABLE lint_json_code
    OUTPUT_VARIABLE lint_json_stdout
    ERROR_QUIET)
if(NOT lint_json_code EQUAL 0)
    message(FATAL_ERROR
            "tlp_lint --format json on the clean fixture dir: expected "
            "exit 0, got '${lint_json_code}'")
endif()
if(NOT lint_json_stdout MATCHES "\"files_scanned\""
   OR NOT lint_json_stdout MATCHES "\"suppressions\"")
    message(FATAL_ERROR
            "tlp_lint --format json stdout is missing report fields: "
            "${lint_json_stdout}")
endif()

# --max-suppressions overrides the manifest budget: the clean fixture
# carries audited suppressions, so a zero budget must flip it to exit 1.
execute_process(
    COMMAND "${TLP_LINT}"
        --manifest "${LINT_FIXTURE_DIR}/clean/manifest.txt"
        --root "${LINT_FIXTURE_DIR}/clean" --max-suppressions 0 .
    RESULT_VARIABLE lint_budget_code
    OUTPUT_QUIET ERROR_VARIABLE lint_budget_output)
if(NOT lint_budget_code EQUAL 1
   OR NOT lint_budget_output MATCHES "suppression-budget")
    message(FATAL_ERROR
            "tlp_lint --max-suppressions 0 on the clean fixture dir: "
            "expected exit 1 with a suppression-budget finding, got "
            "'${lint_budget_code}'. stderr: ${lint_budget_output}")
endif()

execute_process(
    COMMAND "${TLP_LINT}"
        --manifest "${LINT_FIXTURE_DIR}/badmanifest/manifest.txt"
        --root "${LINT_FIXTURE_DIR}/badmanifest" .
    RESULT_VARIABLE lint_bad_code
    OUTPUT_QUIET ERROR_VARIABLE lint_bad_output)
if(NOT lint_bad_code EQUAL 2)
    message(FATAL_ERROR
            "tlp_lint with a broken manifest: expected exit 2 (config "
            "error), got '${lint_bad_code}'. stderr: ${lint_bad_output}")
endif()

message(STATUS "cli exit-code contract holds: user error=2, corrupt=3, "
               "verify-checkpoint 0/3, fsck 0/2/3, lint clean=0 / "
               "findings=1 / bad manifest=2")
