/**
 * @file
 * Unit tests for the autograd NN library: op forward values, numeric
 * gradient checks, module training behaviour, and the optimizer.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "nn/losses.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace tlp::nn {
namespace {

/**
 * Numeric gradient check: f builds a scalar loss from the given leaf.
 * Compares autograd gradients against central differences.
 */
void
checkGradient(Tensor leaf, const std::function<Tensor(const Tensor &)> &f,
              double tol = 2e-2)
{
    Tensor loss = f(leaf);
    loss.backward();
    const std::vector<float> analytic = leaf.grad();

    const float eps = 1e-3f;
    for (size_t i = 0; i < leaf.value().size();
         i += std::max<size_t>(1, leaf.value().size() / 7)) {
        const float saved = leaf.value()[i];
        leaf.value()[i] = saved + eps;
        const float up = f(leaf).value()[0];
        leaf.value()[i] = saved - eps;
        const float down = f(leaf).value()[0];
        leaf.value()[i] = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(analytic[i], numeric,
                    tol * std::max(1.0, std::abs(numeric)))
            << "index " << i;
    }
}

TEST(Tensor, ConstructorsAndShape)
{
    Tensor z = Tensor::zeros({2, 3});
    EXPECT_EQ(z.numel(), 6);
    EXPECT_EQ(z.dim(1), 3);
    Tensor d = Tensor::fromData({2}, {1.0f, 2.0f});
    EXPECT_FLOAT_EQ(d.value()[1], 2.0f);
    Rng rng(1);
    Tensor r = Tensor::randn({16, 16}, rng, 0.1);
    EXPECT_TRUE(r.requiresGrad());
}

TEST(Ops, AddAndMulForward)
{
    Tensor a = Tensor::fromData({2}, {1.0f, 2.0f});
    Tensor b = Tensor::fromData({2}, {3.0f, 4.0f});
    EXPECT_FLOAT_EQ(add(a, b).value()[1], 6.0f);
    EXPECT_FLOAT_EQ(mul(a, b).value()[1], 8.0f);
}

TEST(Ops, MatmulForward)
{
    Tensor a = Tensor::fromData({2, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::fromData({2, 2}, {5, 6, 7, 8});
    const Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.value()[0], 19.0f);
    EXPECT_FLOAT_EQ(c.value()[3], 50.0f);
}

TEST(Ops, BmmForwardMatchesMatmulPerBatch)
{
    Rng rng(2);
    Tensor a = Tensor::randn({3, 4, 5}, rng, 1.0, false);
    Tensor b = Tensor::randn({3, 5, 2}, rng, 1.0, false);
    const Tensor c = bmm(a, b);
    for (int s = 0; s < 3; ++s) {
        Tensor as = Tensor::fromData(
            {4, 5}, std::vector<float>(a.value().begin() + s * 20,
                                       a.value().begin() + (s + 1) * 20));
        Tensor bs = Tensor::fromData(
            {5, 2}, std::vector<float>(b.value().begin() + s * 10,
                                       b.value().begin() + (s + 1) * 10));
        const Tensor cs = matmul(as, bs);
        for (int i = 0; i < 8; ++i)
            EXPECT_NEAR(c.value()[static_cast<size_t>(s * 8 + i)],
                        cs.value()[static_cast<size_t>(i)], 1e-4);
    }
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(3);
    Tensor x = Tensor::randn({4, 7}, rng, 2.0, false);
    const Tensor y = softmaxLastDim(x);
    for (int r = 0; r < 4; ++r) {
        float sum = 0.0f;
        for (int c = 0; c < 7; ++c)
            sum += y.value()[static_cast<size_t>(r * 7 + c)];
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Ops, TransposeAndPermuteAreInverses)
{
    Rng rng(4);
    Tensor x = Tensor::randn({2, 3, 4, 5}, rng, 1.0, false);
    const Tensor p = permute0213(permute0213(x));
    EXPECT_EQ(p.value(), x.value());
    Tensor m = Tensor::randn({3, 4}, rng, 1.0, false);
    const Tensor t = transposeLast2(transposeLast2(m));
    EXPECT_EQ(t.value(), m.value());
}

TEST(Ops, GradMatmul)
{
    Rng rng(5);
    Tensor a = Tensor::randn({3, 4}, rng, 1.0);
    Tensor b = Tensor::randn({4, 2}, rng, 1.0, false);
    checkGradient(a, [&](const Tensor &leaf) {
        return sumAll(matmul(leaf, b));
    });
}

TEST(Ops, GradBmm)
{
    Rng rng(6);
    Tensor a = Tensor::randn({2, 3, 4}, rng, 1.0);
    Tensor b = Tensor::randn({2, 4, 3}, rng, 1.0, false);
    checkGradient(a, [&](const Tensor &leaf) {
        return sumAll(tanhT(bmm(leaf, b)));
    });
}

TEST(Ops, GradSoftmaxChain)
{
    Rng rng(7);
    Tensor x = Tensor::randn({3, 5}, rng, 1.0);
    Tensor w = Tensor::randn({5, 5}, rng, 0.5, false);
    checkGradient(x, [&](const Tensor &leaf) {
        return sumAll(mul(softmaxLastDim(matmul(leaf, w)),
                          softmaxLastDim(leaf)));
    });
}

TEST(Ops, CausalSoftmaxMasksStrictUpperTriangle)
{
    Rng rng(23);
    Tensor x = Tensor::randn({2, 4, 4}, rng, 1.0, false);
    const Tensor y = softmaxLastDimCausal(x);
    for (int b = 0; b < 2; ++b) {
        for (int r = 0; r < 4; ++r) {
            float sum = 0.0f;
            for (int c = 0; c < 4; ++c) {
                const float v =
                    y.value()[static_cast<size_t>((b * 4 + r) * 4 + c)];
                if (c > r)
                    EXPECT_FLOAT_EQ(v, 0.0f);
                sum += v;
            }
            EXPECT_NEAR(sum, 1.0f, 1e-5);
        }
    }
}

TEST(Ops, GradCausalSoftmax)
{
    Rng rng(24);
    Tensor x = Tensor::randn({1, 4, 4}, rng, 1.0);
    Tensor w = Tensor::randn({1, 4, 4}, rng, 0.5, false);
    checkGradient(x, [&](const Tensor &leaf) {
        return sumAll(mul(softmaxLastDimCausal(leaf), w));
    });
}

TEST(Ops, GradPermute0213)
{
    Rng rng(25);
    Tensor x = Tensor::randn({2, 3, 2, 4}, rng, 1.0);
    checkGradient(x, [&](const Tensor &leaf) {
        Tensor p = permute0213(leaf);
        return sumAll(mul(p, p));
    });
}

TEST(Ops, GradTransposeLast2)
{
    Rng rng(26);
    Tensor x = Tensor::randn({2, 3, 4}, rng, 1.0);
    Tensor w = Tensor::randn({2, 4, 3}, rng, 0.5, false);
    checkGradient(x, [&](const Tensor &leaf) {
        return sumAll(mul(transposeLast2(leaf), w));
    });
}

TEST(Ops, GradActivations)
{
    Rng rng(8);
    Tensor x = Tensor::randn({4, 4}, rng, 1.0);
    checkGradient(x, [&](const Tensor &leaf) {
        return sumAll(add(relu(leaf), add(tanhT(leaf), sigmoidT(leaf))));
    });
}

TEST(Ops, GradLayerNorm)
{
    Rng rng(9);
    Tensor x = Tensor::randn({3, 8}, rng, 1.0);
    Tensor gamma = Tensor::fromData({8}, std::vector<float>(8, 1.5f));
    Tensor beta = Tensor::fromData({8}, std::vector<float>(8, 0.2f));
    checkGradient(x, [&](const Tensor &leaf) {
        return sumAll(mul(layerNorm(leaf, gamma, beta), leaf));
    }, 5e-2);
}

TEST(Ops, GradSliceStackSelect)
{
    Rng rng(10);
    Tensor x = Tensor::randn({2, 3, 4}, rng, 1.0);
    checkGradient(x, [&](const Tensor &leaf) {
        Tensor t0 = selectAxis1(leaf, 0);
        Tensor t2 = selectAxis1(leaf, 2);
        Tensor stacked = stackAxis1({t0, t2, t0});
        return sumAll(mul(stacked, stacked));
    });
}

TEST(Ops, GradSliceCols)
{
    Rng rng(11);
    Tensor x = Tensor::randn({3, 8}, rng, 1.0);
    checkGradient(x, [&](const Tensor &leaf) {
        return sumAll(mul(sliceCols(leaf, 2, 4), sliceCols(leaf, 0, 4)));
    });
}

TEST(Ops, GradAddBiasAndReshape)
{
    Rng rng(12);
    Tensor x = Tensor::randn({2, 3, 4}, rng, 1.0);
    Tensor b = Tensor::fromData({4}, {0.1f, 0.2f, 0.3f, 0.4f});
    checkGradient(x, [&](const Tensor &leaf) {
        Tensor y = addBias(leaf, b);
        y = reshape(y, {6, 4});
        return sumAll(mul(y, y));
    });
}

TEST(Ops, DropoutTrainVsEval)
{
    Rng rng(13);
    Tensor x = Tensor::fromData({4}, {1, 1, 1, 1});
    Rng drop_rng(14);
    const Tensor eval = dropout(x, 0.5, drop_rng, false);
    EXPECT_EQ(eval.value(), x.value());
    // Training mode: scaled mask of zeros and 2s.
    const Tensor train = dropout(x, 0.5, drop_rng, true);
    for (float v : train.value())
        // tlp-lint: allow(float-eq) -- dropout writes exact 0.0f into masked slots; the test pins that
        EXPECT_TRUE(v == 0.0f || std::abs(v - 2.0f) < 1e-6);
}

TEST(Losses, MseValueAndGrad)
{
    Tensor pred = Tensor::fromData({2}, {1.0f, 3.0f}, true);
    Tensor loss = mseLoss(pred, {0.0f, 1.0f});
    EXPECT_NEAR(loss.value()[0], (1.0 + 4.0) / 2.0, 1e-6);
    loss.backward();
    EXPECT_NEAR(pred.grad()[0], 1.0f, 1e-5);
    EXPECT_NEAR(pred.grad()[1], 2.0f, 1e-5);
}

TEST(Losses, RankLossOrderingSignal)
{
    // Element 0 has a higher label but a lower score: the gradient must
    // push score 0 up (negative grad) and score 1 down.
    Tensor pred = Tensor::fromData({2}, {0.0f, 1.0f}, true);
    Tensor loss = rankLoss(pred, {1.0f, 0.2f}, {0, 0});
    EXPECT_GT(loss.value()[0], 0.0f);
    loss.backward();
    EXPECT_LT(pred.grad()[0], 0.0f);
    EXPECT_GT(pred.grad()[1], 0.0f);
}

TEST(Losses, RankLossRespectsGroups)
{
    // Cross-group pairs contribute nothing.
    Tensor pred = Tensor::fromData({2}, {0.0f, 1.0f}, true);
    Tensor loss = rankLoss(pred, {1.0f, 0.0f}, {0, 1});
    EXPECT_FLOAT_EQ(loss.value()[0], 0.0f);
}

TEST(Losses, NanTargetsContributeNoLossOrGradient)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();

    // MSE: the NaN element must affect neither value nor gradient, and
    // the mean must be over the valid elements only.
    Tensor pred = Tensor::fromData({3}, {1.0f, 3.0f, 2.0f}, true);
    Tensor loss = mseLoss(pred, {0.0f, nan, 1.0f});
    EXPECT_NEAR(loss.value()[0], (1.0 + 1.0) / 2.0, 1e-6);
    loss.backward();
    EXPECT_NEAR(pred.grad()[0], 1.0f, 1e-5);
    EXPECT_FLOAT_EQ(pred.grad()[1], 0.0f);
    EXPECT_NEAR(pred.grad()[2], 1.0f, 1e-5);

    // Rank: pairs touching a NaN label are dropped.
    Tensor scores = Tensor::fromData({2}, {0.0f, 1.0f}, true);
    Tensor rank = rankLoss(scores, {nan, 0.2f}, {0, 0});
    EXPECT_FLOAT_EQ(rank.value()[0], 0.0f);
    rank.backward();
    EXPECT_FLOAT_EQ(scores.grad()[0], 0.0f);
    EXPECT_FLOAT_EQ(scores.grad()[1], 0.0f);
}

TEST(Losses, AllNanTargetsGiveZeroFiniteLoss)
{
    // A record labeled on no platform (every measurement failed) must be
    // a clean no-op: zero loss, zero gradients, nothing non-finite.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    Tensor pred = Tensor::fromData({3}, {1.0f, -2.0f, 0.5f}, true);
    Tensor loss = mseLoss(pred, {nan, nan, nan});
    EXPECT_FLOAT_EQ(loss.value()[0], 0.0f);
    loss.backward();
    for (float g : pred.grad()) {
        EXPECT_TRUE(std::isfinite(g));
        EXPECT_FLOAT_EQ(g, 0.0f);
    }

    Tensor scores = Tensor::fromData({3}, {1.0f, -2.0f, 0.5f}, true);
    Tensor rank = rankLoss(scores, {nan, nan, nan}, {0, 0, 0});
    EXPECT_FLOAT_EQ(rank.value()[0], 0.0f);
    rank.backward();
    for (float g : scores.grad())
        EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(Modules, LinearShapes)
{
    Rng rng(15);
    Linear linear(8, 3, rng);
    Tensor x = Tensor::randn({5, 8}, rng, 1.0, false);
    EXPECT_EQ(linear.forward(x).shape(), (std::vector<int>{5, 3}));
    Tensor x3 = Tensor::randn({2, 5, 8}, rng, 1.0, false);
    EXPECT_EQ(linear.forward(x3).shape(), (std::vector<int>{2, 5, 3}));
    EXPECT_EQ(linear.numParameters(), 8 * 3 + 3);
}

TEST(Modules, AttentionPreservesShape)
{
    Rng rng(16);
    MultiHeadSelfAttention attn(16, 4, rng);
    Tensor x = Tensor::randn({3, 6, 16}, rng, 1.0, false);
    EXPECT_EQ(attn.forward(x).shape(), (std::vector<int>{3, 6, 16}));
}

TEST(Modules, LstmShapes)
{
    Rng rng(17);
    Lstm lstm(8, 12, rng);
    Tensor x = Tensor::randn({4, 5, 8}, rng, 1.0, false);
    EXPECT_EQ(lstm.forward(x).shape(), (std::vector<int>{4, 5, 12}));
}

TEST(Modules, SaveLoadRoundTrip)
{
    Rng rng(18);
    Linear a(6, 6, rng), b(6, 6, rng);
    std::stringstream ss;
    BinaryWriter writer(ss);
    a.saveParameters(writer);
    BinaryReader reader(ss);
    b.loadParameters(reader);
    Tensor x = Tensor::randn({2, 6}, rng, 1.0, false);
    EXPECT_EQ(a.forward(x).value(), b.forward(x).value());
}

TEST(Training, LinearRegressionConverges)
{
    Rng rng(19);
    Linear model(4, 1, rng);
    Adam adam(model.parameters(), {.lr = 0.05});
    // Ground truth: y = 2x0 - x1 + 0.5x2 + 3.
    auto target = [](const float *x) {
        return 2 * x[0] - x[1] + 0.5f * x[2] + 3.0f;
    };
    double last_loss = 0.0;
    for (int step = 0; step < 300; ++step) {
        Tensor x = Tensor::randn({16, 4}, rng, 1.0, false);
        std::vector<float> labels(16);
        for (int i = 0; i < 16; ++i)
            labels[static_cast<size_t>(i)] =
                target(x.value().data() + i * 4);
        Tensor pred = reshape(model.forward(x), {16});
        Tensor loss = mseLoss(pred, labels);
        adam.zeroGrad();
        loss.backward();
        adam.step();
        last_loss = loss.value()[0];
    }
    EXPECT_LT(last_loss, 0.05);
}

TEST(Training, AttentionLearnsPositionSum)
{
    // Learn to score sequences by a weighted sum of one feature — sanity
    // that gradients flow through the full attention stack.
    Rng rng(20);
    Linear up(4, 16, rng);
    MultiHeadSelfAttention attn(16, 4, rng);
    Linear head(16, 1, rng);
    std::vector<Tensor> params;
    for (Module *m :
         std::initializer_list<Module *>{&up, &attn, &head})
        for (Tensor &p : m->parameters())
            params.push_back(p);
    Adam adam(params, {.lr = 0.01});

    double last_loss = 1e9;
    for (int step = 0; step < 150; ++step) {
        Tensor x = Tensor::randn({8, 5, 4}, rng, 1.0, false);
        std::vector<float> labels(8, 0.0f);
        for (int i = 0; i < 8; ++i)
            for (int t = 0; t < 5; ++t)
                labels[static_cast<size_t>(i)] +=
                    0.2f * x.value()[static_cast<size_t>((i * 5 + t) * 4)];
        Tensor h = attn.forward(up.forward(x));
        Tensor scores = head.forward(h);              // [8, 5, 1]
        Tensor pred = sumAxis1(reshape(scores, {8, 5}));
        Tensor loss = mseLoss(pred, labels);
        adam.zeroGrad();
        loss.backward();
        adam.step();
        last_loss = loss.value()[0];
    }
    EXPECT_LT(last_loss, 0.4);
}

TEST(Optim, WeightDecayShrinksWeights)
{
    Rng rng(21);
    Tensor w = Tensor::randn({4}, rng, 1.0);
    Adam adam({w}, {.lr = 0.1, .weight_decay = 0.5});
    const float before = std::abs(w.value()[0]);
    // Zero gradient step: only decay acts.
    w.grad();
    adam.step();
    EXPECT_LT(std::abs(w.value()[0]), before);
}

} // namespace
} // namespace tlp::nn
