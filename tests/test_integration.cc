/**
 * @file
 * Cross-module integration tests: the full paper pipeline at miniature
 * scale, plus regression-style checks that tie the subsystems together.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "dataset/collect.h"
#include "dataset/metrics.h"
#include "dataset/splits.h"
#include "hwmodel/measurer.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "schedule/lower.h"
#include "sketch/policy.h"
#include "support/stats.h"
#include "tuner/session.h"

namespace tlp {
namespace {

TEST(Integration, FullPipelineTinyScale)
{
    // Collect -> split -> train TLP -> evaluate -> tune with the model.
    data::CollectOptions collect;
    collect.networks = {"resnet-18", "bert-tiny"};
    collect.platforms = {"e5-2673"};
    collect.programs_per_subgraph = 32;
    collect.seed = 99;
    const auto dataset = data::collectDataset(collect);
    const auto split = data::makeSplit(dataset, {"bert-tiny"});

    auto train_set = data::buildTlpSet(dataset, split.train_records, {0});
    Rng rng(1);
    model::TlpNetConfig config;
    config.hidden = 32;
    auto net = std::make_shared<model::TlpNet>(config, rng);
    model::TrainOptions options;
    options.epochs = 2;
    trainTlpNet(*net, train_set, options);

    // Tune a tiny workload with the trained model; the session must use
    // the model without lowering (needsLowering() == false).
    model::TlpCostModel cost_model(net);
    EXPECT_FALSE(cost_model.needsLowering());

    ir::Workload workload;
    workload.name = "tiny";
    workload.subgraphs = {dataset.groups[0].subgraph,
                          dataset.groups[1].subgraph};
    workload.weights = {2, 1};

    tune::TuneOptions tune_options;
    tune_options.rounds = 4;
    tune_options.measures_per_round = 4;
    tune_options.evolution.population = 16;
    tune_options.evolution.iterations = 1;
    const auto result = tune::tuneWorkload(
        workload, hw::HardwarePlatform::preset("e5-2673"), cost_model,
        tune_options);
    EXPECT_TRUE(std::isfinite(result.best_workload_latency_ms));
    EXPECT_GT(result.model_seconds, 0.0);
}

TEST(Integration, DatasetLabelsMatchSimulatorUpToNoise)
{
    // Replaying a record and simulating it must land within measurement
    // noise of the stored label.
    data::CollectOptions collect;
    collect.networks = {"resnet-18"};
    collect.platforms = {"platinum-8272"};
    collect.programs_per_subgraph = 12;
    collect.seed = 5;
    const auto dataset = data::collectDataset(collect);

    hw::LatencySimulator sim(
        hw::HardwarePlatform::preset("platinum-8272"));
    for (size_t r = 0; r < dataset.records.size(); r += 13) {
        const auto &record = dataset.records[r];
        const auto &group = dataset.groups[record.group];
        const auto state =
            sched::replaySteps(group.subgraph, false, record.seq);
        const double simulated = sim.latencyMs(sched::lower(state));
        const double stored = record.latency_ms[0];
        EXPECT_NEAR(stored, simulated, simulated * 0.15)
            << group.key << " record " << r;
    }
}

TEST(Integration, TlpFeaturesAreLosslessEnoughForIdentity)
{
    // Distinct schedules of one subgraph map to distinct TLP features
    // (at full, uncropped width) — the near-one-to-one property that
    // Sec. 4.3 argues for.
    const auto workload = ir::partitionGraph(ir::buildNetwork("vgg-16"));
    Rng rng(31);
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    const auto population = policy.sampleInitPopulation(64, rng);
    feat::TlpFeatureOptions options;
    options.seq_len = 60;
    options.emb_size = 48;
    std::set<std::vector<float>> distinct;
    for (const auto &state : population)
        distinct.insert(feat::extractTlpFeatures(state.steps(), options));
    EXPECT_EQ(distinct.size(), population.size());
}

TEST(Integration, CrossPlatformLabelsDiverge)
{
    // The domain gap (Sec. 5.1): normalized labels on two platforms are
    // correlated but materially different.
    data::CollectOptions collect;
    collect.networks = {"resnet-18"};
    collect.platforms = {"platinum-8272", "graviton2"};
    collect.programs_per_subgraph = 48;
    collect.seed = 17;
    const auto dataset = data::collectDataset(collect);

    std::vector<double> a, b;
    for (size_t r = 0; r < dataset.records.size(); ++r) {
        a.push_back(dataset.label(static_cast<int>(r), 0));
        b.push_back(dataset.label(static_cast<int>(r), 1));
    }
    const double rho = spearman(a, b);
    EXPECT_GT(rho, 0.2);
    EXPECT_LT(rho, 0.98);
}

TEST(Integration, OnlineModelImprovesWithinSession)
{
    // After a tuning session, the online GBDT's scores must correlate
    // with true quality on fresh candidates of a task it measured.
    const auto workload = ir::partitionGraph(ir::buildNetwork("vgg-16"));
    ir::Workload slim;
    slim.name = "slim";
    slim.subgraphs = {workload.subgraphs[0]};
    slim.weights = {1};

    model::AnsorOnlineCostModel online;
    tune::TuneOptions options;
    options.rounds = 6;
    options.measures_per_round = 8;
    options.evolution.population = 24;
    options.evolution.iterations = 1;
    tuneWorkload(slim, hw::HardwarePlatform::preset("e5-2673"), online,
                 options);

    Rng rng(3);
    sketch::SchedulePolicy policy(slim.subgraphs[0], false);
    const auto fresh = policy.sampleInitPopulation(32, rng);
    const auto scores = online.scoreStates(0, fresh);
    hw::LatencySimulator sim(hw::HardwarePlatform::preset("e5-2673"));
    std::vector<double> neg_latency;
    for (const auto &state : fresh)
        neg_latency.push_back(-sim.latencyMs(sched::lower(state)));
    EXPECT_GT(spearman(scores, neg_latency), 0.25);
}

TEST(Integration, GpuAndCpuSchedulesUseExpectedPrimitiveSets)
{
    // Sec. 4.2: 11-ish primitive kinds per device class, mostly shared.
    const auto workload =
        ir::partitionGraph(ir::buildNetwork("resnet-18"));
    Rng rng(41);
    std::set<sched::PrimKind> cpu_kinds, gpu_kinds;
    for (const auto &subgraph : workload.subgraphs) {
        for (bool gpu : {false, true}) {
            sketch::SchedulePolicy policy(subgraph, gpu);
            for (int trial = 0; trial < 4; ++trial) {
                const auto state = policy.sampleRandom(rng);
                for (const auto &prim : state.steps().prims)
                    (gpu ? gpu_kinds : cpu_kinds).insert(prim.kind);
            }
        }
    }
    EXPECT_GE(cpu_kinds.size(), 8u);
    EXPECT_GE(gpu_kinds.size(), 8u);
    // GPU-only kinds exist (bindings / shared staging).
    EXPECT_TRUE(gpu_kinds.count(sched::PrimKind::CHR));
    EXPECT_FALSE(cpu_kinds.count(sched::PrimKind::CHR));
    // CPU uses rfactor; both use the shared core.
    for (auto kind : {sched::PrimKind::SP, sched::PrimKind::RE,
                      sched::PrimKind::FU, sched::PrimKind::AN,
                      sched::PrimKind::PR}) {
        EXPECT_TRUE(cpu_kinds.count(kind));
        EXPECT_TRUE(gpu_kinds.count(kind));
    }
}

TEST(Integration, MeasurerAndSimulatorAgreeOnOrdering)
{
    const auto workload =
        ir::partitionGraph(ir::buildNetwork("squeezenet"));
    Rng rng(53);
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    const auto population = policy.sampleInitPopulation(24, rng);

    hw::LatencySimulator sim(hw::HardwarePlatform::preset("i7-10510u"));
    hw::Measurer measurer(hw::HardwarePlatform::preset("i7-10510u"));
    std::vector<double> simulated, measured;
    for (const auto &state : population) {
        const auto nest = sched::lower(state);
        simulated.push_back(sim.latencyMs(nest));
        measured.push_back(measurer.measureMs(nest));
    }
    EXPECT_GT(spearman(simulated, measured), 0.95);
}

} // namespace
} // namespace tlp
