/**
 * @file
 * Unit and integration tests for the cost models: TLP net, MTL-TLP,
 * TenSet MLP, GBDT, self-supervised pretraining, and the search-facing
 * wrappers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "dataset/collect.h"
#include "dataset/metrics.h"
#include "dataset/splits.h"
#include "models/cost_model.h"
#include "hwmodel/simulator.h"
#include "models/pretrain.h"
#include "schedule/lower.h"
#include "sketch/policy.h"
#include "support/stats.h"

namespace tlp::model {
namespace {

const data::Dataset &
sharedDataset()
{
    static const data::Dataset ds = [] {
        data::CollectOptions options;
        options.networks = {"resnet-18", "mlp-mixer", "bert-tiny"};
        options.platforms = {"platinum-8272", "graviton2"};
        options.programs_per_subgraph = 80;
        options.seed = 21;
        return data::collectDataset(options);
    }();
    return ds;
}

TEST(TlpNet, ForwardShapesAndParams)
{
    Rng rng(1);
    TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    TlpNet net(config, rng);
    EXPECT_GT(net.numParameters(), 1000);

    nn::Tensor x = nn::Tensor::randn({3, 25 * 22}, rng, 1.0, false);
    const nn::Tensor scores = net.forwardTask(x, 0);
    EXPECT_EQ(scores.shape(), (std::vector<int>{3}));
}

TEST(TlpNet, LstmBackboneVariant)
{
    Rng rng(2);
    TlpNetConfig config;
    config.hidden = 32;
    config.lstm_backbone = true;
    TlpNet net(config, rng);
    nn::Tensor x = nn::Tensor::randn({2, 25 * 22}, rng, 1.0, false);
    EXPECT_EQ(net.forwardTask(x, 0).shape(), (std::vector<int>{2}));
}

TEST(TlpNet, MultiTaskHeadsAreIndependent)
{
    Rng rng(3);
    TlpNetConfig config;
    config.hidden = 32;
    config.num_tasks = 3;
    TlpNet net(config, rng);
    nn::Tensor x = nn::Tensor::randn({2, 25 * 22}, rng, 1.0, false);
    const auto s0 = net.forwardTask(x, 0).value();
    const auto s1 = net.forwardTask(x, 1).value();
    EXPECT_NE(s0, s1);
    EXPECT_EQ(net.headParameters(0).size(), net.headParameters(1).size());
    EXPECT_GT(net.backboneParameters().size(), 0u);
}

TEST(TlpNet, TrainingImprovesTopK)
{
    const auto &ds = sharedDataset();
    const auto split = data::makeSplit(ds, {"bert-tiny"});
    auto train = data::buildTlpSet(ds, split.train_records, {0});
    auto test = data::buildTlpSet(ds, split.test_records, {0});

    Rng rng(4);
    TlpNetConfig config;
    config.hidden = 48;
    TlpNet net(config, rng);

    // Random-score reference.
    Rng score_rng(40);
    std::vector<double> random_scores(split.test_records.size());
    for (auto &s : random_scores)
        s = score_rng.uniform();
    const auto tk_random = data::topKScores(ds, {"bert-tiny"}, 0,
                                            split.test_records,
                                            random_scores);

    TrainOptions options;
    options.epochs = 6;
    trainTlpNet(net, train, options);
    const auto after = predictTlpNet(net, test);
    const auto tk_after = data::topKScores(ds, {"bert-tiny"}, 0,
                                           split.test_records, after);
    EXPECT_GT(tk_after.top1, tk_random.top1);
    EXPECT_GT(tk_after.top1, 0.6);
    EXPECT_GT(tk_after.top5, 0.85);
}

TEST(TlpNet, MtlMaskedLabelsTrain)
{
    const auto &ds = sharedDataset();
    const auto split = data::makeSplit(ds, {"bert-tiny"});
    auto train = data::buildTlpSet(ds, split.train_records, {0, 1});
    // Mask 70% of task-0 labels (the scarce target platform).
    Rng mask_rng(5);
    for (int r = 0; r < train.rows; ++r) {
        if (mask_rng.bernoulli(0.7))
            train.labels[static_cast<size_t>(r) * 2] =
                std::numeric_limits<float>::quiet_NaN();
    }
    Rng rng(6);
    TlpNetConfig config;
    config.hidden = 48;
    config.num_tasks = 2;
    TlpNet net(config, rng);
    TrainOptions options;
    options.epochs = 4;
    const double loss = trainTlpNet(net, train, options);
    EXPECT_TRUE(std::isfinite(loss));

    auto test = data::buildTlpSet(ds, split.test_records, {0, 1});
    const auto scores = predictTlpNet(net, test, 0);
    const auto tk = data::topKScores(ds, {"bert-tiny"}, 0,
                                     split.test_records, scores);
    EXPECT_GT(tk.top1, 0.45);
    EXPECT_GT(tk.top5, 0.8);
}

TEST(TlpNet, SaveLoadPreservesPredictions)
{
    Rng rng(7);
    TlpNetConfig config;
    config.hidden = 32;
    TlpNet a(config, rng), b(config, rng);
    std::stringstream ss;
    BinaryWriter writer(ss);
    a.saveParameters(writer);
    BinaryReader reader(ss);
    b.loadParameters(reader);
    nn::Tensor x = nn::Tensor::randn({4, 25 * 22}, rng, 1.0, false);
    EXPECT_EQ(a.forwardTask(x, 0).value(), b.forwardTask(x, 0).value());
}

TEST(Mlp, TrainsOnAnsorFeatures)
{
    const auto &ds = sharedDataset();
    const auto split = data::makeSplit(ds, {"bert-tiny"});
    std::vector<int> train_subset(
        split.train_records.begin(),
        split.train_records.begin() +
            std::min<size_t>(600, split.train_records.size()));
    auto train = data::buildAnsorSet(ds, train_subset, 0);
    auto test = data::buildAnsorSet(ds, split.test_records, 0);

    Rng rng(8);
    MlpConfig config;
    config.hidden = 64;
    TensetMlpNet net(config, rng);
    TrainOptions options;
    options.epochs = 4;
    trainMlp(net, train, options);
    const auto scores = predictMlp(net, test);
    const auto tk = data::topKScores(ds, {"bert-tiny"}, 0,
                                     split.test_records, scores);
    EXPECT_GT(tk.top1, 0.6);
}

TEST(GbdtModel, FitsSimpleFunction)
{
    // y = 2*x0 + step(x1): trees should capture both.
    Rng rng(9);
    const int rows = 400, dim = 5;
    std::vector<float> features(static_cast<size_t>(rows * dim));
    std::vector<float> targets(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
        for (int f = 0; f < dim; ++f)
            features[static_cast<size_t>(i * dim + f)] =
                static_cast<float>(rng.uniform(-1, 1));
        targets[static_cast<size_t>(i)] =
            2.0f * features[static_cast<size_t>(i * dim)] +
            (features[static_cast<size_t>(i * dim + 1)] > 0 ? 1.0f : 0.0f);
    }
    Gbdt gbdt;
    gbdt.fit(features, rows, dim, targets);
    EXPECT_TRUE(gbdt.fitted());
    double sse = 0.0;
    const auto preds = gbdt.predict(features, rows, dim);
    for (int i = 0; i < rows; ++i) {
        const double d = preds[static_cast<size_t>(i)] -
                         targets[static_cast<size_t>(i)];
        sse += d * d;
    }
    EXPECT_LT(sse / rows, 0.05);
}

TEST(GbdtModel, PredictBeforeFitIsSafe)
{
    Gbdt gbdt;
    EXPECT_FALSE(gbdt.fitted());
}

TEST(Pretrain, GptAndBertLossesDecrease)
{
    const auto &ds = sharedDataset();
    const auto split = data::makeSplit(ds, {"bert-tiny"});
    std::vector<int> subset(
        split.train_records.begin(),
        split.train_records.begin() +
            std::min<size_t>(400, split.train_records.size()));
    auto set = data::buildTlpSet(ds, subset, {0});

    for (bool gpt : {true, false}) {
        Rng rng(10);
        TlpNetConfig config;
        config.hidden = 32;
        TlpNet net(config, rng);
        PretrainOptions options;
        options.epochs = 1;
        const double first = gpt ? gptPretrain(net, set, options)
                                 : bertPretrain(net, set, options);
        options.epochs = 3;
        Rng rng2(10);
        TlpNet net2(config, rng2);
        const double later = gpt ? gptPretrain(net2, set, options)
                                 : bertPretrain(net2, set, options);
        EXPECT_LT(later, first * 1.05) << (gpt ? "gpt" : "bert");
        EXPECT_TRUE(std::isfinite(later));
    }
}

TEST(CostModels, TlpScoresWithoutLowering)
{
    const auto &ds = sharedDataset();
    Rng rng(11);
    TlpNetConfig config;
    config.hidden = 32;
    auto net = std::make_shared<TlpNet>(config, rng);
    TlpCostModel cost_model(net);
    EXPECT_FALSE(cost_model.needsLowering());

    sketch::SchedulePolicy policy(ds.groups[0].subgraph, false);
    auto states = policy.sampleInitPopulation(8, rng);
    const auto scores = cost_model.scoreStates(0, states);
    EXPECT_EQ(scores.size(), states.size());
}

TEST(CostModels, AnsorOnlineLearnsFromMeasurements)
{
    const auto &ds = sharedDataset();
    Rng rng(12);
    sketch::SchedulePolicy policy(ds.groups[0].subgraph, false);
    auto states = policy.sampleInitPopulation(32, rng);

    hw::LatencySimulator sim(hw::HardwarePlatform::preset("e5-2673"));
    std::vector<const sched::State *> pointers;
    std::vector<double> latencies;
    for (const auto &state : states) {
        pointers.push_back(&state);
        latencies.push_back(sim.latencyMs(sched::lower(state)));
    }

    AnsorOnlineCostModel model;
    auto before = model.scoreStates(0, states);
    EXPECT_EQ(before, std::vector<double>(states.size(), 0.0));
    model.update(0, pointers, latencies);
    auto after = model.scoreStates(0, states);

    // Scores should correlate with the (inverse) latencies after update.
    std::vector<double> inv;
    for (double latency : latencies)
        inv.push_back(-latency);
    EXPECT_GT(spearman(after, inv), 0.5);
}

TEST(CostModels, RandomModelInRange)
{
    const auto &ds = sharedDataset();
    Rng rng(13);
    sketch::SchedulePolicy policy(ds.groups[0].subgraph, false);
    auto states = policy.sampleInitPopulation(8, rng);
    RandomCostModel model;
    const auto scores = model.scoreStates(0, states);
    for (double s : scores) {
        EXPECT_GE(s, 0.0);
        EXPECT_LT(s, 1.0);
    }
}

} // namespace
} // namespace tlp::model
