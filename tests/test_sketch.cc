/**
 * @file
 * Unit and property tests for the schedule generation policy.
 */
#include <gtest/gtest.h>

#include <set>

#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "sketch/policy.h"
#include "sketch/tiles.h"

namespace tlp::sketch {
namespace {

ir::SubgraphPtr
firstHeavySubgraph(const std::string &network)
{
    const auto w = ir::partitionGraph(ir::buildNetwork(network));
    for (const auto &sg : w.subgraphs)
        if (sg->anchorIndex() >= 0 && ir::isHeavyAnchor(sg->anchor().kind))
            return sg;
    ADD_FAILURE() << "no heavy subgraph in " << network;
    return nullptr;
}

TEST(Tiles, DivisorsSorted)
{
    EXPECT_EQ(divisorsOf(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(divisorsOf(1), (std::vector<int64_t>{1}));
}

TEST(Tiles, SampledLengthsRespectExtent)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const int64_t extent = rng.randint(1, 512);
        const auto lengths = sampleTileLengths(rng, extent, 3);
        int64_t product = 1;
        for (int64_t len : lengths) {
            EXPECT_GE(len, 1);
            product *= len;
        }
        EXPECT_LE(product, std::max<int64_t>(extent, 1) * 2)
            << "extent=" << extent;
    }
}

TEST(Tiles, UnrollStepsAreAnsorCandidates)
{
    Rng rng(5);
    std::set<int64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(sampleUnrollStep(rng));
    for (int64_t v : seen)
        EXPECT_TRUE(v == 0 || v == 16 || v == 64 || v == 512);
    EXPECT_GE(seen.size(), 3u);
}

TEST(Policy, HeavyCpuScheduleIsWellFormed)
{
    auto sg = firstHeavySubgraph("resnet-18");
    SchedulePolicy policy(sg, false);
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const sched::State state = policy.sampleRandom(rng);
        EXPECT_GT(state.steps().size(), 5);
        // Some stage must be parallel-annotated.
        bool has_parallel = false;
        for (const auto &stage : state.stages())
            for (const auto &iter : stage.iters)
                has_parallel |= iter.ann == sched::Annotation::Parallel;
        EXPECT_TRUE(has_parallel);
    }
}

TEST(Policy, HeavyGpuScheduleBindsBlockAndThread)
{
    auto sg = firstHeavySubgraph("resnet-18");
    SchedulePolicy policy(sg, true);
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const sched::State state = policy.sampleRandom(rng);
        bool has_block = false, has_thread = false;
        for (const auto &stage : state.stages()) {
            for (const auto &iter : stage.iters) {
                has_block |= iter.ann == sched::Annotation::BlockX;
                has_thread |= iter.ann == sched::Annotation::ThreadX;
            }
        }
        EXPECT_TRUE(has_block);
        EXPECT_TRUE(has_thread);
    }
}

TEST(Policy, PopulationIsDeduplicated)
{
    auto sg = firstHeavySubgraph("resnet-18");
    SchedulePolicy policy(sg, false);
    Rng rng(3);
    const auto population = policy.sampleInitPopulation(32, rng);
    EXPECT_GE(population.size(), 16u);
    std::set<uint64_t> hashes;
    for (const auto &state : population)
        hashes.insert(state.steps().hash());
    EXPECT_EQ(hashes.size(), population.size());
}

TEST(Policy, MutationChangesSequenceButReplays)
{
    auto sg = firstHeavySubgraph("resnet-34");
    SchedulePolicy policy(sg, false);
    Rng rng(4);
    const sched::State base = policy.sampleRandom(rng);
    int changed = 0;
    for (int trial = 0; trial < 10; ++trial) {
        auto mutated = policy.mutate(base, rng);
        ASSERT_TRUE(mutated.has_value());
        EXPECT_EQ(mutated->steps().size(), base.steps().size());
        if (mutated->steps().hash() != base.steps().hash())
            ++changed;
    }
    EXPECT_GT(changed, 0);
}

TEST(Policy, SchedulesEveryResnetSubgraph)
{
    const auto w = ir::partitionGraph(ir::buildNetwork("resnet-18"));
    Rng rng(5);
    for (const auto &sg : w.subgraphs) {
        SchedulePolicy policy(sg, false);
        const sched::State state = policy.sampleRandom(rng);
        EXPECT_GT(state.steps().size(), 0) << sg->key();
    }
}

TEST(Policy, SchedulesEveryBertSubgraphOnGpu)
{
    const auto w = ir::partitionGraph(ir::buildNetwork("bert-tiny"));
    Rng rng(6);
    for (const auto &sg : w.subgraphs) {
        SchedulePolicy policy(sg, true);
        const sched::State state = policy.sampleRandom(rng);
        EXPECT_GT(state.steps().size(), 0) << sg->key();
    }
}

TEST(Policy, SequenceLengthsInPaperRange)
{
    // Paper Fig. 6: sequences up to ~54 primitives, mode around ~21.
    Rng rng(7);
    int64_t max_len = 0;
    for (const auto &name : {"resnet-18", "bert-small", "mobilenet-v2"}) {
        const auto w = ir::partitionGraph(ir::buildNetwork(name));
        for (const auto &sg : w.subgraphs) {
            SchedulePolicy policy(sg, false);
            for (int trial = 0; trial < 3; ++trial) {
                const auto state = policy.sampleRandom(rng);
                max_len = std::max<int64_t>(max_len, state.steps().size());
                EXPECT_LE(state.steps().size(), 80);
            }
        }
    }
    EXPECT_GE(max_len, 15);
}

TEST(Policy, ReplayedMutantsHaveConsistentStages)
{
    auto sg = firstHeavySubgraph("vgg-16");
    SchedulePolicy policy(sg, false);
    Rng rng(8);
    const auto base = policy.sampleRandom(rng);
    for (int trial = 0; trial < 5; ++trial) {
        const auto mutated = policy.mutate(base, rng);
        ASSERT_TRUE(mutated.has_value());
        EXPECT_EQ(mutated->numStages(), base.numStages());
    }
}

} // namespace
} // namespace tlp::sketch
