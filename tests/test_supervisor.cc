/**
 * @file
 * Tests for the training-run supervisor and the degraded-mode search:
 * numeric-anomaly detection, rollback-retry, budget watchdogs, TLPT
 * training checkpoints, and the guarded cost-model fallback ladder.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "models/guarded_model.h"
#include "models/pretrain.h"
#include "models/supervisor.h"
#include "sketch/policy.h"
#include "tuner/session.h"

namespace tlp::model {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// --- HealthCounters ------------------------------------------------------

TEST(SupervisorHealth, ToStringAndTotal)
{
    HealthCounters health;
    EXPECT_EQ(health.total(), 0);
    EXPECT_EQ(health.toString(), "none");

    health[HealthEvent::NanGrad] = 2;
    health[HealthEvent::Rollback] = 3;
    EXPECT_EQ(health.total(), 5);
    const std::string str = health.toString();
    EXPECT_NE(str.find("nan_grad=2"), std::string::npos);
    EXPECT_NE(str.find("rollback=3"), std::string::npos);
}

TEST(SupervisorHealth, SerializeRoundTrip)
{
    HealthCounters health;
    for (int e = 0; e < kNumHealthEvents; ++e)
        health.counts[static_cast<size_t>(e)] = 100 + e;

    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(ss);
    health.serialize(writer);
    BinaryReader reader(ss);
    const HealthCounters loaded = HealthCounters::deserialize(reader);
    EXPECT_EQ(loaded, health);
}

TEST(SupervisorHealth, DeserializeToleratesFewerCountersRejectsMore)
{
    // Fewer counters (an older artifact): prefix-filled, rest zero.
    {
        std::stringstream ss(std::ios::in | std::ios::out |
                             std::ios::binary);
        BinaryWriter writer(ss);
        writer.writePod<uint32_t>(3);
        for (int64_t v : {7, 8, 9})
            writer.writePod<int64_t>(v);
        BinaryReader reader(ss);
        const HealthCounters loaded = HealthCounters::deserialize(reader);
        EXPECT_EQ(loaded[HealthEvent::NanLoss], 7);
        EXPECT_EQ(loaded[HealthEvent::GradExplosion], 9);
        EXPECT_EQ(loaded.total(), 24);
    }
    // More counters than this build knows: version skew.
    {
        std::stringstream ss(std::ios::in | std::ios::out |
                             std::ios::binary);
        BinaryWriter writer(ss);
        writer.writePod<uint32_t>(
            static_cast<uint32_t>(kNumHealthEvents + 1));
        for (int e = 0; e < kNumHealthEvents + 1; ++e)
            writer.writePod<int64_t>(0);
        BinaryReader reader(ss);
        const Status status = guardedParse(
            [&] { HealthCounters::deserialize(reader); });
        EXPECT_EQ(status.code(), ErrorCode::VersionSkew);
    }
    // An absurd count is corruption, not skew.
    {
        std::stringstream ss(std::ios::in | std::ios::out |
                             std::ios::binary);
        BinaryWriter writer(ss);
        writer.writePod<uint32_t>(100000);
        BinaryReader reader(ss);
        const Status status = guardedParse(
            [&] { HealthCounters::deserialize(reader); });
        EXPECT_EQ(status.code(), ErrorCode::Corrupt);
    }
}

// --- TrainFaultProfile ---------------------------------------------------

TEST(SupervisorFaults, DrawsAreDeterministicAndKeyed)
{
    const TrainFaultProfile profile = TrainFaultProfile::uniform(0.4);
    EXPECT_TRUE(profile.enabled());
    EXPECT_DOUBLE_EQ(profile.nan_grad_prob, 0.2);
    EXPECT_DOUBLE_EQ(profile.loss_spike_prob, 0.2);

    // Same key => same draw, every time.
    for (int64_t step = 0; step < 50; ++step) {
        EXPECT_EQ(profile.draw(step, 0, 1, 0.2),
                  profile.draw(step, 0, 1, 0.2));
    }
    // The empirical rate over many keys is close to the probability.
    int fires = 0;
    for (int64_t step = 0; step < 2000; ++step)
        fires += profile.draw(step, 0, 1, 0.2) ? 1 : 0;
    EXPECT_NEAR(fires / 2000.0, 0.2, 0.05);
    // The attempt index changes the draw: retries can escape a fault.
    int differs = 0;
    for (int64_t step = 0; step < 200; ++step) {
        if (profile.draw(step, 0, 1, 0.5) != profile.draw(step, 1, 1, 0.5))
            ++differs;
    }
    EXPECT_GT(differs, 0);
    // Zero probability never fires; a disabled profile reports so.
    EXPECT_FALSE(profile.draw(0, 0, 1, 0.0));
    EXPECT_FALSE(TrainFaultProfile{}.enabled());
    // Different parameters make a different digest.
    EXPECT_NE(profile.digest(), TrainFaultProfile::uniform(0.2).digest());
}

// --- TrainSupervisor: a hand-driven optimizer rig ------------------------

/** One weight tensor + Adam + supervisor, with scripted attempts. */
struct Rig
{
    explicit Rig(SupervisorOptions options, double lr = 0.05)
        : rng(11), w(nn::Tensor::randn({6}, rng, 1.0)),
          adam({w}, {.lr = lr}),
          supervisor({w}, adam, std::move(options))
    {}

    /** An attempt with well-behaved gradients and the given loss. */
    std::function<double()>
    healthy(double loss = 1.0, float scale = 0.1f)
    {
        return [this, loss, scale] {
            adam.zeroGrad();
            auto &grad = w.grad();
            for (size_t i = 0; i < grad.size(); ++i)
                grad[i] = scale * static_cast<float>(i + 1);
            return loss;
        };
    }

    Rng rng;
    nn::Tensor w;
    nn::Adam adam;
    TrainSupervisor supervisor;
};

SupervisorOptions
enabledOptions()
{
    SupervisorOptions options;
    options.enabled = true;
    return options;
}

TEST(Supervisor, DisabledPassThroughStepsOptimizer)
{
    Rig rig(SupervisorOptions{});
    const std::vector<float> before = rig.w.value();
    EXPECT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);
    EXPECT_NE(rig.w.value(), before);
    EXPECT_EQ(rig.adam.stepCount(), 1);
    EXPECT_EQ(rig.supervisor.stepsDone(), 1);
    EXPECT_EQ(rig.supervisor.health().total(), 0);
}

TEST(Supervisor, RollbackRestoresLastGoodBitIdentically)
{
    SupervisorOptions options = enabledOptions();
    options.max_retries = 1;
    Rig rig(options);

    ASSERT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);
    const std::vector<float> good = rig.w.value();
    const int64_t good_steps = rig.adam.stepCount();

    // Every attempt of this step comes back with a NaN loss.
    auto poisoned = [&] {
        rig.adam.zeroGrad();
        return kNan;
    };
    EXPECT_EQ(rig.supervisor.step(poisoned), StepOutcome::Skipped);

    // The weights and the optimizer trajectory are the last-good ones,
    // bit for bit, and the schedule learning rate is restored.
    EXPECT_EQ(rig.w.value(), good);
    EXPECT_EQ(rig.adam.stepCount(), good_steps);
    EXPECT_DOUBLE_EQ(rig.adam.lr(), 0.05);

    const HealthCounters &health = rig.supervisor.health();
    EXPECT_EQ(health[HealthEvent::NanLoss], 2);   // 1 + max_retries
    EXPECT_EQ(health[HealthEvent::Rollback], 2);
    EXPECT_EQ(health[HealthEvent::RetryExhausted], 1);

    // The run is not stopped: a later healthy step still applies.
    EXPECT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);
    EXPECT_EQ(rig.supervisor.stepsDone(), 2);
}

TEST(Supervisor, DetectsNanGradAndGradExplosion)
{
    SupervisorOptions options = enabledOptions();
    options.max_retries = 0;
    Rig rig(options);

    auto nan_grad = [&] {
        rig.adam.zeroGrad();
        rig.w.grad()[0] = std::numeric_limits<float>::quiet_NaN();
        return 1.0;
    };
    EXPECT_EQ(rig.supervisor.step(nan_grad), StepOutcome::Skipped);
    EXPECT_EQ(rig.supervisor.health()[HealthEvent::NanGrad], 1);

    // Finite but absurd gradients trip the global-norm limit (checked on
    // the raw gradients, before Adam's own clipping).
    auto exploding = rig.healthy(1.0, 1e7f);
    EXPECT_EQ(rig.supervisor.step(exploding), StepOutcome::Skipped);
    EXPECT_EQ(rig.supervisor.health()[HealthEvent::GradExplosion], 1);
    EXPECT_EQ(rig.supervisor.stepsDone(), 0);
}

TEST(Supervisor, DetectsLossDivergenceAgainstEwma)
{
    SupervisorOptions options = enabledOptions();
    options.max_retries = 0;
    Rig rig(options);

    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(rig.supervisor.step(rig.healthy(1.0)), StepOutcome::Ok);
    EXPECT_EQ(rig.supervisor.step(rig.healthy(1e5)), StepOutcome::Skipped);
    EXPECT_EQ(rig.supervisor.health()[HealthEvent::LossDivergence], 1);
    // A loss just above the trend is NOT divergence.
    EXPECT_EQ(rig.supervisor.step(rig.healthy(2.0)), StepOutcome::Ok);
}

TEST(Supervisor, LrBackoffAppliesDuringRetryOnly)
{
    SupervisorOptions options = enabledOptions();
    options.max_retries = 2;
    options.lr_backoff = 0.5;
    Rig rig(options);

    int calls = 0;
    double retry_lr = 0.0;
    auto flaky = [&] {
        rig.adam.zeroGrad();
        ++calls;
        if (calls == 1)
            return kNan;
        retry_lr = rig.adam.lr();
        auto &grad = rig.w.grad();
        for (size_t i = 0; i < grad.size(); ++i)
            grad[i] = 0.1f;
        return 1.0;
    };
    EXPECT_EQ(rig.supervisor.step(flaky), StepOutcome::Ok);
    EXPECT_EQ(calls, 2);
    // The retry ran at lr_backoff x schedule lr (with jitter in [0.9, 1]).
    EXPECT_GE(retry_lr, 0.05 * 0.5 * 0.9 - 1e-12);
    EXPECT_LE(retry_lr, 0.05 * 0.5 + 1e-12);
    // After the step resolves, the schedule lr is back — not sticky.
    EXPECT_DOUBLE_EQ(rig.adam.lr(), 0.05);
}

TEST(Supervisor, AbortOnFaultPolicyStopsAtFirstFault)
{
    SupervisorOptions options = enabledOptions();
    options.policy = RecoveryPolicy::AbortOnFault;
    Rig rig(options);

    ASSERT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);
    const std::vector<float> good = rig.w.value();

    auto poisoned = [&] {
        rig.adam.zeroGrad();
        return kNan;
    };
    EXPECT_EQ(rig.supervisor.step(poisoned), StepOutcome::Stop);
    EXPECT_TRUE(rig.supervisor.stopped());
    EXPECT_EQ(rig.w.value(), good);   // stopped WITH last-good weights
    EXPECT_EQ(rig.supervisor.health()[HealthEvent::AbortPolicy], 1);

    // Once stopped, everything is Stop.
    EXPECT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Stop);
}

TEST(Supervisor, StepBudgetStopsTheRun)
{
    SupervisorOptions options = enabledOptions();
    options.max_steps = 2;
    Rig rig(options);

    EXPECT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);
    EXPECT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);
    EXPECT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Stop);
    EXPECT_TRUE(rig.supervisor.stopped());
    EXPECT_EQ(rig.supervisor.health()[HealthEvent::StepBudget], 1);
    EXPECT_EQ(rig.supervisor.stepsDone(), 2);
}

TEST(Supervisor, WallClockBudgetStopsTheRun)
{
    SupervisorOptions options = enabledOptions();
    options.max_wall_seconds = 1e-9;
    Rig rig(options);
    EXPECT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Stop);
    EXPECT_EQ(rig.supervisor.health()[HealthEvent::WallClockBudget], 1);
}

TEST(Supervisor, InjectedFaultsRecoverDeterministically)
{
    // With a fault profile, the same seeds produce the same recovery
    // trajectory and the same final weights, twice.
    auto run = [] {
        SupervisorOptions options;
        options.enabled = true;
        options.faults = TrainFaultProfile::uniform(0.5, 0x77);
        Rig rig(options);
        for (int i = 0; i < 20; ++i)
            rig.supervisor.step(rig.healthy(1.0 + 0.01 * i));
        return std::make_pair(rig.w.value(), rig.supervisor.health());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_TRUE(a.second == b.second);
    // The 50% profile must actually have fired and been recovered from.
    EXPECT_GT(a.second[HealthEvent::Rollback], 0);
    for (float v : a.first)
        EXPECT_TRUE(std::isfinite(v));
}

// --- TLPT training checkpoints -------------------------------------------

TEST(SupervisorCheckpoint, RoundTripPreservesEverything)
{
    SupervisorOptions options = enabledOptions();
    Rig rig(options);
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(rig.supervisor.step(rig.healthy(2.0)), StepOutcome::Ok);

    const TrainCheckpoint ckpt = rig.supervisor.makeCheckpoint(5);
    std::ostringstream os(std::ios::binary);
    writeTrainCheckpoint(os, ckpt);
    std::istringstream is(os.str());
    auto loaded = loadTrainCheckpoint(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();

    const TrainCheckpoint &got = loaded.value();
    EXPECT_EQ(got.epoch, 5);
    EXPECT_EQ(got.steps_done, 3);
    EXPECT_DOUBLE_EQ(got.loss_ewma, ckpt.loss_ewma);
    EXPECT_TRUE(got.ewma_ready);
    EXPECT_TRUE(got.health == ckpt.health);
    ASSERT_EQ(got.params.size(), 1u);
    EXPECT_EQ(got.params[0], rig.w.value());
    EXPECT_EQ(got.optimizer_state, ckpt.optimizer_state);
}

TEST(SupervisorCheckpoint, EndEpochWritesLoadableFile)
{
    const std::string path =
        ::testing::TempDir() + "tlp_train_test.ckpt";
    std::remove(path.c_str());

    SupervisorOptions options = enabledOptions();
    options.checkpoint_path = path;
    options.checkpoint_every = 2;
    Rig rig(options);
    ASSERT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);

    rig.supervisor.endEpoch(1);   // 1 % 2 != 0: no write
    {
        std::ifstream probe(path, std::ios::binary);
        EXPECT_FALSE(probe.good());
    }
    rig.supervisor.endEpoch(2);
    EXPECT_EQ(rig.supervisor.health()[HealthEvent::CheckpointWritten], 1);

    auto loaded = loadTrainCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().epoch, 2);
    EXPECT_EQ(loaded.value().steps_done, 1);
    std::remove(path.c_str());
}

TEST(SupervisorCheckpoint, CorruptionComesBackAsStatus)
{
    SupervisorOptions options = enabledOptions();
    Rig rig(options);
    ASSERT_EQ(rig.supervisor.step(rig.healthy()), StepOutcome::Ok);
    std::ostringstream os(std::ios::binary);
    writeTrainCheckpoint(os, rig.supervisor.makeCheckpoint(0));
    std::string bytes = os.str();
    bytes[bytes.size() / 2] ^= 0x40;

    std::istringstream is(bytes);
    const Status status = verifyTrainCheckpoint(is);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::Corrupt);
}

// --- end-to-end training loops -------------------------------------------

/** A small synthetic single-task regression set. */
data::LabeledSet
syntheticSet(int rows, int dim, uint64_t seed)
{
    data::LabeledSet set;
    set.rows = rows;
    set.feature_dim = dim;
    set.num_tasks = 1;
    Rng rng(seed);
    set.features.resize(static_cast<size_t>(rows) *
                        static_cast<size_t>(dim));
    for (float &f : set.features)
        f = static_cast<float>(rng.uniform(-1.0, 1.0));
    set.labels.resize(static_cast<size_t>(rows));
    set.groups.resize(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) {
        double y = 0.0;
        for (int d = 0; d < dim; ++d) {
            y += (d % 2 == 0 ? 1.0 : -1.0) *
                 set.features[static_cast<size_t>(r) *
                                  static_cast<size_t>(dim) +
                              static_cast<size_t>(d)];
        }
        set.labels[static_cast<size_t>(r)] = static_cast<float>(y);
        set.groups[static_cast<size_t>(r)] = r / 16;
    }
    return set;
}

std::vector<std::vector<float>>
parameterValues(nn::Module &net)
{
    std::vector<std::vector<float>> values;
    for (nn::Tensor &param : net.parameters())
        values.push_back(param.value());
    return values;
}

TEST(SupervisorChaos, FaultyMlpTrainingCompletesViaRollbackRetry)
{
    const auto set = syntheticSet(64, 8, 31);
    MlpConfig config;
    config.input = 8;
    config.hidden = 16;
    config.layers = 1;

    auto run = [&] {
        Rng rng(6);
        TensetMlpNet net(config, rng);
        TrainOptions options;
        options.epochs = 4;
        options.batch_size = 16;
        options.use_rank_loss = false;
        options.supervisor.enabled = true;
        options.supervisor.faults = TrainFaultProfile::uniform(0.4, 0x91);
        HealthCounters health;
        options.supervisor.health_out = &health;
        const double loss = trainMlp(net, set, options);
        return std::make_tuple(loss, parameterValues(net), health);
    };

    const auto [loss, params, health] = run();
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(health[HealthEvent::Rollback], 0);
    for (const auto &param : params)
        for (float v : param)
            EXPECT_TRUE(std::isfinite(v));

    // Seeded faults => the whole chaotic run replays bit-identically.
    const auto [loss2, params2, health2] = run();
    EXPECT_DOUBLE_EQ(loss, loss2);
    EXPECT_EQ(params, params2);
    EXPECT_TRUE(health == health2);
}

TEST(SupervisorChaos, FaultyPretrainingCompletesViaRollbackRetry)
{
    TlpNetConfig config;
    config.hidden = 16;
    config.heads = 4;
    const auto set =
        syntheticSet(32, config.seq_len * config.emb_size, 33);

    Rng rng(7);
    TlpNet net(config, rng);
    PretrainOptions options;
    options.epochs = 2;
    options.batch_size = 16;
    options.supervisor.enabled = true;
    options.supervisor.faults = TrainFaultProfile::uniform(0.5, 0x92);
    HealthCounters health;
    options.supervisor.health_out = &health;

    const double loss = bertPretrain(net, set, options);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(health[HealthEvent::Rollback], 0);
    for (const auto &param : parameterValues(net))
        for (float v : param)
            EXPECT_TRUE(std::isfinite(v));
}

TEST(Supervisor, CleanRunIsBitIdenticalToUnsupervised)
{
    const auto set = syntheticSet(64, 8, 35);
    MlpConfig config;
    config.input = 8;
    config.hidden = 16;
    config.layers = 1;

    auto train = [&](bool supervised) {
        Rng rng(9);
        TensetMlpNet net(config, rng);
        TrainOptions options;
        options.epochs = 3;
        options.batch_size = 16;
        options.supervisor.enabled = supervised;
        const double loss = trainMlp(net, set, options);
        return std::make_pair(loss, parameterValues(net));
    };

    const auto plain = train(false);
    const auto supervised = train(true);
    // A healthy supervised run is pure observation: same losses, and the
    // trained weights are bit-identical to the unsupervised loop's.
    EXPECT_DOUBLE_EQ(plain.first, supervised.first);
    EXPECT_EQ(plain.second, supervised.second);
}

TEST(Supervisor, CleanTlpTrainingIsBitIdenticalToUnsupervised)
{
    TlpNetConfig config;
    config.hidden = 16;
    config.heads = 4;
    const auto set =
        syntheticSet(32, config.seq_len * config.emb_size, 37);

    auto train = [&](bool supervised) {
        Rng rng(8);
        TlpNet net(config, rng);
        TrainOptions options;
        options.epochs = 2;
        options.batch_size = 16;
        options.supervisor.enabled = supervised;
        trainTlpNet(net, set, options);
        return parameterValues(net);
    };
    EXPECT_EQ(train(false), train(true));
}

// --- the guarded cost-model ladder ---------------------------------------

ir::Workload
tinyWorkload()
{
    ir::Workload full = ir::partitionGraph(ir::buildNetwork("resnet-18"));
    ir::Workload slim;
    slim.name = "resnet-18-slice";
    for (size_t i = 0; i < 3 && i < full.subgraphs.size(); ++i) {
        slim.subgraphs.push_back(full.subgraphs[i]);
        slim.weights.push_back(full.weights[i]);
    }
    return slim;
}

tune::TuneOptions
quickOptions()
{
    tune::TuneOptions options;
    options.rounds = 6;
    options.measures_per_round = 4;
    options.evolution.population = 24;
    options.evolution.iterations = 2;
    options.evolution.children_per_iter = 12;
    options.measure.seconds_per_measure = 0.25;
    return options;
}

/** @p n sampled schedule states of the first tiny-workload subgraph. */
std::vector<sched::State>
someStates(int n)
{
    static const std::vector<sched::State> pool = [] {
        const ir::Workload workload = tinyWorkload();
        sketch::SchedulePolicy policy(workload.subgraphs[0], false);
        RandomCostModel sampler(3);
        Rng rng(4);
        tune::EvolutionOptions options;
        options.population = 16;
        options.iterations = 1;
        const auto round =
            tune::evolveOneRound(policy, sampler, 0, 6, {}, options, rng);
        return round.candidates;
    }();
    std::vector<sched::State> states;
    states.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        states.push_back(pool[static_cast<size_t>(i) % pool.size()]);
    return states;
}

TEST(GuardedModel, FailsOverOnCollapsedScores)
{
    auto sick = std::make_shared<FaultInjectedCostModel>(
        std::make_shared<RandomCostModel>(21), 1);
    auto fallback = std::make_shared<RandomCostModel>(22);
    GuardOptions options;
    options.min_probe_candidates = 2;
    HealthCounters health;
    options.health_out = &health;
    GuardedCostModel guarded({sick, fallback}, options);
    EXPECT_EQ(guarded.name(), "guarded:random>random");
    EXPECT_EQ(guarded.activeIndex(), 0);

    auto states = someStates(4);
    std::vector<const sched::State *> ptrs{&states[0], &states[1]};
    guarded.update(0, ptrs, {1.0, 2.0});   // trips the injected collapse

    const auto scores = guarded.scoreStates(0, states);
    EXPECT_EQ(guarded.activeIndex(), 1);
    EXPECT_EQ(guarded.activeName(), "random");
    EXPECT_EQ(health[HealthEvent::ConstantScore], 1);
    EXPECT_EQ(health[HealthEvent::Failover], 1);
    ASSERT_EQ(scores.size(), states.size());
    for (double s : scores)
        EXPECT_TRUE(std::isfinite(s));
}

TEST(GuardedModel, FailsOverOnNanScores)
{
    auto sick = std::make_shared<FaultInjectedCostModel>(
        std::make_shared<RandomCostModel>(23), 2);
    auto fallback = std::make_shared<RandomCostModel>(24);
    HealthCounters health;
    GuardOptions options;
    options.health_out = &health;
    GuardedCostModel guarded({sick, fallback}, options);

    auto states = someStates(4);
    std::vector<const sched::State *> ptrs{&states[0], &states[1]};
    guarded.update(0, ptrs, {1.0, 2.0});
    guarded.update(0, ptrs, {1.5, 2.5});   // updates_seen_ = 2: NaN mode

    const auto scores = guarded.scoreStates(0, states);
    EXPECT_EQ(guarded.activeIndex(), 1);
    EXPECT_EQ(health[HealthEvent::NanScore], 1);
    for (double s : scores)
        EXPECT_TRUE(std::isfinite(s));
}

TEST(GuardedModel, LastRungIsTrustedUnconditionally)
{
    auto sick = std::make_shared<FaultInjectedCostModel>(
        std::make_shared<RandomCostModel>(25), 1);
    HealthCounters health;
    GuardOptions options;
    options.health_out = &health;
    GuardedCostModel guarded({sick}, options);

    auto states = someStates(3);
    std::vector<const sched::State *> ptrs{&states[0]};
    guarded.update(0, ptrs, {1.0});

    // A single-rung ladder has nothing to fail over to: scores pass
    // through unjudged and the position never moves.
    guarded.scoreStates(0, states);
    EXPECT_EQ(guarded.activeIndex(), 0);
    EXPECT_EQ(health[HealthEvent::Failover], 0);
}

TEST(GuardedModel, StateRoundTripRestoresPositionHealthAndRngs)
{
    auto makeLadder = [] {
        std::vector<std::shared_ptr<CostModel>> ladder;
        ladder.push_back(std::make_shared<FaultInjectedCostModel>(
            std::make_shared<RandomCostModel>(27), 1));
        ladder.push_back(std::make_shared<RandomCostModel>(28));
        return ladder;
    };
    GuardOptions options;
    options.min_probe_candidates = 2;
    GuardedCostModel guarded(makeLadder(), options);

    auto states = someStates(4);
    std::vector<const sched::State *> ptrs{&states[0], &states[1]};
    guarded.update(0, ptrs, {1.0, 2.0});
    guarded.scoreStates(0, states);   // forces the failover
    ASSERT_EQ(guarded.activeIndex(), 1);

    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(ss);
    guarded.serializeState(writer);

    GuardedCostModel restored(makeLadder(), options);
    BinaryReader reader(ss);
    restored.deserializeState(reader);
    EXPECT_EQ(restored.activeIndex(), guarded.activeIndex());
    EXPECT_TRUE(restored.health() == guarded.health());
    // The active rung's rng cursor came back too: scoring continues
    // bit-identically.
    EXPECT_EQ(restored.scoreStates(0, states),
              guarded.scoreStates(0, states));
}

TEST(GuardedModel, RejectsForeignLadderState)
{
    GuardedCostModel guarded({std::make_shared<RandomCostModel>(29)}, {});

    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(ss);
    writer.writePod<int32_t>(5);   // fallback position out of range
    writer.writePod<int64_t>(0);
    HealthCounters{}.serialize(writer);
    writer.writePod<uint32_t>(1);
    writer.writeString("");

    BinaryReader reader(ss);
    const Status status =
        guardedParse([&] { guarded.deserializeState(reader); });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::Invalid);
    EXPECT_EQ(guarded.activeIndex(), 0);   // nothing was committed
}

TEST(GuardedModel, SearchSurvivesMidCampaignCollapse)
{
    // The preferred model dies after 2 online updates; the campaign must
    // finish its full budget in degraded mode instead of aborting.
    const auto workload = tinyWorkload();
    HealthCounters health;
    GuardOptions guard_options;
    guard_options.health_out = &health;
    auto sick = std::make_shared<FaultInjectedCostModel>(
        std::make_shared<RandomCostModel>(31), 2);
    auto guarded = makeGuardedLadder(sick, guard_options);

    tune::TuneOptions options = quickOptions();
    options.rounds = 8;
    const auto result =
        tune::tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                           *guarded, options);

    EXPECT_TRUE(std::isfinite(result.best_workload_latency_ms));
    EXPECT_GT(result.total_measurements, 0);
    EXPECT_GE(guarded->activeIndex(), 1);
    EXPECT_GE(health[HealthEvent::Failover], 1);
    EXPECT_EQ(result.cost_model_name, guarded->name());
    double last = std::numeric_limits<double>::infinity();
    for (const auto &point : result.curve) {
        if (std::isfinite(point.workload_latency_ms)) {
            EXPECT_LE(point.workload_latency_ms, last + 1e-9);
            last = point.workload_latency_ms;
        }
    }
}

TEST(GuardedModel, CheckpointResumePreservesDegradedState)
{
    const auto workload = tinyWorkload();
    const std::string ckpt =
        ::testing::TempDir() + "tlp_guarded_resume_test.ckpt";
    std::remove(ckpt.c_str());

    auto makeGuarded = [](HealthCounters *health_out) {
        GuardOptions guard_options;
        guard_options.health_out = health_out;
        auto sick = std::make_shared<FaultInjectedCostModel>(
            std::make_shared<RandomCostModel>(33), 2);
        return makeGuardedLadder(sick, guard_options);
    };

    tune::TuneOptions options = quickOptions();
    options.rounds = 8;
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 2;

    // Reference: one uninterrupted degraded campaign.
    HealthCounters reference_health;
    auto reference_model = makeGuarded(&reference_health);
    const auto reference =
        tune::tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                           *reference_model, options);
    ASSERT_GE(reference_model->activeIndex(), 1);

    // "Killed" run: half the rounds, leaving a checkpoint behind.
    std::remove(ckpt.c_str());
    tune::TuneOptions half = options;
    half.rounds = 4;
    HealthCounters killed_health;
    auto killed_model = makeGuarded(&killed_health);
    tune::tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                       *killed_model, half);

    // Resume with a FRESH ladder: the checkpoint must restore the
    // fallback position, the health counters, and the rng cursors.
    tune::TuneOptions resumed_options = options;
    resumed_options.resume = true;
    HealthCounters resumed_health;
    auto resumed_model = makeGuarded(&resumed_health);
    const auto resumed =
        tune::tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                           *resumed_model, resumed_options);

    EXPECT_EQ(resumed_model->activeIndex(),
              reference_model->activeIndex());
    EXPECT_TRUE(resumed_model->health() == reference_model->health())
        << "resumed: " << resumed_model->health().toString()
        << " reference: " << reference_model->health().toString();
    EXPECT_EQ(resumed.total_measurements, reference.total_measurements);
    EXPECT_DOUBLE_EQ(resumed.measure_seconds, reference.measure_seconds);
    EXPECT_DOUBLE_EQ(resumed.best_workload_latency_ms,
                     reference.best_workload_latency_ms);
    ASSERT_EQ(resumed.curve.size(), reference.curve.size());
    for (size_t i = 0; i < reference.curve.size(); ++i) {
        EXPECT_EQ(resumed.curve[i].measurements,
                  reference.curve[i].measurements);
        EXPECT_DOUBLE_EQ(resumed.curve[i].workload_latency_ms,
                         reference.curve[i].workload_latency_ms);
    }
    std::remove(ckpt.c_str());
}

TEST(GuardedModel, ResumeRejectsDifferentCostModelName)
{
    const auto workload = tinyWorkload();
    const std::string ckpt =
        ::testing::TempDir() + "tlp_guarded_name_test.ckpt";
    std::remove(ckpt.c_str());

    tune::TuneOptions options = quickOptions();
    options.rounds = 2;
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 1;
    RandomCostModel original(35);
    tune::tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                       original, options);

    tune::TuneOptions resumed = options;
    resumed.resume = true;
    AnsorOnlineCostModel different;
    EXPECT_EXIT(tune::tuneWorkload(workload,
                                   hw::HardwarePlatform::preset("e5-2673"),
                                   different, resumed),
                ::testing::ExitedWithCode(kExitUserError), "cost model");
    std::remove(ckpt.c_str());
}

// --- concurrent atomic writes --------------------------------------------

TEST(AtomicWrite, ConcurrentWritersNeverInterleave)
{
    // The pid+sequence temp suffix must keep racing writers of one
    // destination from streaming into each other's temp file: the final
    // file is exactly one writer's full payload, and no temp litter
    // survives.
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "tlp_atomic_race.bin";
    std::remove(path.c_str());

    constexpr int kThreads = 8;
    constexpr int kWritesPerThread = 16;
    constexpr size_t kPayload = 4096;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kWritesPerThread; ++i) {
                const std::string payload(
                    kPayload, static_cast<char>('a' + t));
                const Status status =
                    atomicWriteFile(path, [&](std::ostream &os) {
                        os.write(payload.data(),
                                 static_cast<std::streamsize>(
                                     payload.size()));
                    });
                EXPECT_TRUE(status.ok()) << status.toString();
            }
        });
    }
    for (auto &writer : writers)
        writer.join();

    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::string final_bytes((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
    ASSERT_EQ(final_bytes.size(), kPayload);
    for (char c : final_bytes)
        EXPECT_EQ(c, final_bytes[0]);   // one writer's payload, unmixed

    int leftovers = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().find(
                "tlp_atomic_race.bin.tmp") == 0)
            ++leftovers;
    }
    EXPECT_EQ(leftovers, 0);
    std::remove(path.c_str());
}

// --- CLI exit-code contract ----------------------------------------------

using ExitCodes = ::testing::Test;

TEST(ExitCodes, FatalExitsWithUserErrorCode)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(TLP_FATAL("simulated user error"),
                ::testing::ExitedWithCode(kExitUserError),
                "simulated user error");
}

TEST(ExitCodes, ArtifactFatalExitsWithCorruptArtifactCode)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Status status =
        Status::error(ErrorCode::Corrupt, "bad checksum");
    EXPECT_EXIT(artifactFatal(status, "cannot load artifact"),
                ::testing::ExitedWithCode(kExitCorruptArtifact),
                "bad checksum");
}

TEST(GuardedModel, AnsorOnlineRefitIgnoresNonFiniteLatencies)
{
    AnsorOnlineCostModel model;
    auto states = someStates(4);
    std::vector<const sched::State *> ptrs;
    for (const auto &state : states)
        ptrs.push_back(&state);

    // A batch of entirely unusable measurements must not poison the fit.
    model.update(0, ptrs,
                 {kNan, -1.0, std::numeric_limits<double>::infinity(),
                  0.0});
    for (double s : model.scoreStates(0, states))
        EXPECT_TRUE(std::isfinite(s));

    // Good measurements afterwards fit normally.
    model.update(0, ptrs, {1.0, 2.0, 3.0, 4.0});
    for (double s : model.scoreStates(0, states))
        EXPECT_TRUE(std::isfinite(s));
    EXPECT_EQ(model.refitRejections(), 0);
}

} // namespace
} // namespace tlp::model
