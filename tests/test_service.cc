/**
 * @file
 * Fleet-level fault drill for the multi-session tuning service
 * (DESIGN.md §12): crash-safe recovery to bit-identical curves,
 * quarantine of damaged checkpoints, deterministic admission/shedding,
 * seeded transient-fault backoff, and snapshot hot-swap probing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "models/snapshot.h"
#include "models/tlp_model.h"
#include "support/io_env.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "tuner/service/service.h"

namespace tlp::serve {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory under /tmp for one test. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = "/tmp/tlp_test_service_" + name;
    fs::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/**
 * A fleet of @p n quick sessions with mixed cost models. Identical
 * specs must yield identical trajectories in any service, so every
 * test builds its fleet through this one helper.
 */
std::vector<SessionSpec>
quickFleet(int n)
{
    const ModelKind kinds[4] = {ModelKind::Ansor, ModelKind::Random,
                                ModelKind::GuardedAnsor,
                                ModelKind::Random};
    std::vector<SessionSpec> fleet;
    for (int i = 0; i < n; ++i) {
        SessionSpec spec;
        char name[16];
        std::snprintf(name, sizeof(name), "s%03d", i);
        spec.name = name;
        spec.network = "resnet-18";
        spec.platform = i % 2 == 0 ? "i7-10510u" : "platinum-8272";
        spec.model = kinds[i % 4];
        spec.max_subgraphs = 2;
        spec.tune.rounds = 4;
        spec.tune.measures_per_round = 4;
        spec.tune.evolution.population = 24;
        spec.tune.evolution.iterations = 2;
        spec.tune.evolution.children_per_iter = 12;
        spec.tune.measure.seconds_per_measure = 0.25;
        spec.tune.seed = 0x900d + static_cast<uint64_t>(i);
        fleet.push_back(std::move(spec));
    }
    return fleet;
}

ServiceOptions
quickService(const std::string &dir, int fleet_size)
{
    ServiceOptions options;
    options.dir = dir;
    options.max_active = fleet_size;
    options.max_queued = fleet_size;
    return options;
}

/** Golden run: the whole fleet, uninterrupted, in its own directory. */
void
runGolden(const std::string &dir, const std::vector<SessionSpec> &fleet,
          std::vector<tune::TuneResult> &results)
{
    TuningService service(quickService(dir,
                                       static_cast<int>(fleet.size())));
    service.recover(fleet);
    service.runUntilIdle();
    ASSERT_TRUE(service.idle());
    for (const SessionSpec &spec : fleet) {
        ASSERT_EQ(service.status(spec.name), SessionStatus::Finished);
        results.push_back(service.result(spec.name));
    }
}

/** The deterministic curve fields must agree point-for-point. */
void
expectSameCurve(const tune::TuneResult &want, const tune::TuneResult &got,
                const std::string &name)
{
    EXPECT_EQ(want.total_measurements, got.total_measurements) << name;
    ASSERT_EQ(want.curve.size(), got.curve.size()) << name;
    for (size_t i = 0; i < want.curve.size(); ++i) {
        EXPECT_EQ(want.curve[i].measurements, got.curve[i].measurements)
            << name << " point " << i;
        EXPECT_DOUBLE_EQ(want.curve[i].workload_latency_ms,
                         got.curve[i].workload_latency_ms)
            << name << " point " << i;
        EXPECT_DOUBLE_EQ(want.curve[i].measure_seconds,
                         got.curve[i].measure_seconds)
            << name << " point " << i;
    }
}

TEST(Service, FleetKillDrillRecoversBitIdenticalCurves)
{
    // Golden: 8 concurrent sessions, uninterrupted.
    const auto fleet = quickFleet(8);
    const std::string golden_dir = scratchDir("golden");
    std::vector<tune::TuneResult> golden;
    runGolden(golden_dir, fleet, golden);

    // Drill: same fleet, a seeded sequence of kill points. Each pass
    // constructs a fresh service over the surviving checkpoints, runs a
    // seeded number of ticks, and is destroyed mid-flight — so every
    // session is abandoned at a different round each pass.
    const std::string drill_dir = scratchDir("drill");
    int64_t total_salvaged = 0;
    {
        const int64_t kills[3] = {11, 9, 13};
        for (int pass = 0; pass < 3; ++pass) {
            TuningService service(quickService(drill_dir, 8));
            const auto report = service.recover(fleet);
            EXPECT_EQ(report.quarantined, 0);
            total_salvaged += report.rounds_salvaged;
            service.runUntilIdle(kills[pass]);
            // destroyed here, mid-run: the "kill"
        }
    }
    EXPECT_GT(total_salvaged, 0);

    // Final incarnation recovers and finishes everything.
    TuningService service(quickService(drill_dir, 8));
    const auto report = service.recover(fleet);
    EXPECT_EQ(report.quarantined, 0);
    EXPECT_GT(report.recovered, 0);
    service.runUntilIdle();
    ASSERT_TRUE(service.idle());

    for (size_t i = 0; i < fleet.size(); ++i) {
        const std::string &name = fleet[i].name;
        ASSERT_EQ(service.status(name), SessionStatus::Finished);
        expectSameCurve(golden[i], service.result(name), name);
        // The on-disk curve files (what CI diffs) match byte-for-byte.
        EXPECT_EQ(readFile(golden_dir + "/" + name + ".curve"),
                  readFile(drill_dir + "/" + name + ".curve"))
            << name;
    }
}

TEST(Service, DamagedCheckpointIsQuarantinedNotFatal)
{
    const auto fleet = quickFleet(4);
    const std::string golden_dir = scratchDir("q_golden");
    std::vector<tune::TuneResult> golden;
    runGolden(golden_dir, fleet, golden);

    const std::string dir = scratchDir("quarantine");
    {
        TuningService service(quickService(dir, 4));
        service.recover(fleet);
        service.runUntilIdle(17);
    }
    // Corrupt one checkpoint the way a torn disk would: flip bytes in
    // the middle of the file.
    const std::string victim = dir + "/s001.ckpt";
    {
        std::string bytes = readFile(victim);
        ASSERT_GT(bytes.size(), 64u);
        for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 16; ++i)
            bytes[i] = static_cast<char>(~bytes[i]);
        std::ofstream os(victim, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }

    TuningService service(quickService(dir, 4));
    const auto report = service.recover(fleet);
    EXPECT_EQ(report.quarantined, 1);
    EXPECT_EQ(report.outcomes.at("s001"), RecoveryOutcome::Quarantined);
    EXPECT_TRUE(fs::exists(victim + ".quarantined.1"));
    service.runUntilIdle();

    // The quarantined session restarted from round 0 and still matches
    // the golden curve; nothing aborted.
    for (size_t i = 0; i < fleet.size(); ++i) {
        const std::string &name = fleet[i].name;
        ASSERT_EQ(service.status(name), SessionStatus::Finished);
        expectSameCurve(golden[i], service.result(name), name);
    }
}

TEST(Service, AdmissionControlShedsDeterministically)
{
    for (int repeat = 0; repeat < 2; ++repeat) {
        const std::string dir =
            scratchDir("admit" + std::to_string(repeat));
        ServiceOptions options = quickService(dir, 6);
        options.max_active = 2;
        options.max_queued = 2;
        TuningService service(options);
        const auto fleet = quickFleet(6);
        EXPECT_EQ(service.submit(fleet[0]), AdmitOutcome::Active);
        EXPECT_EQ(service.submit(fleet[1]), AdmitOutcome::Active);
        EXPECT_EQ(service.submit(fleet[2]), AdmitOutcome::Queued);
        EXPECT_EQ(service.submit(fleet[3]), AdmitOutcome::Queued);
        EXPECT_EQ(service.submit(fleet[4]), AdmitOutcome::Shed);
        EXPECT_EQ(service.submit(fleet[5]), AdmitOutcome::Shed);
        EXPECT_EQ(service.stats().shed, 2);
        EXPECT_EQ(service.status("s004"), SessionStatus::Shed);

        service.runUntilIdle();
        // Queued sessions were promoted and finished; shed ones never
        // ran and never wrote files.
        EXPECT_EQ(service.stats().finished, 4);
        EXPECT_EQ(service.status("s002"), SessionStatus::Finished);
        EXPECT_EQ(service.status("s003"), SessionStatus::Finished);
        EXPECT_FALSE(fs::exists(dir + "/s004.ckpt"));
        EXPECT_FALSE(fs::exists(dir + "/s004.curve"));
    }
}

TEST(Service, QueuedSessionMatchesUnqueuedTrajectory)
{
    // Admission timing must not leak into trajectories: a session that
    // waited in the queue produces the same curve as one admitted
    // immediately.
    const auto fleet = quickFleet(4);
    const std::string golden_dir = scratchDir("queue_golden");
    std::vector<tune::TuneResult> golden;
    runGolden(golden_dir, fleet, golden);

    const std::string dir = scratchDir("queue_narrow");
    ServiceOptions options = quickService(dir, 4);
    options.max_active = 1;    // strictly serial, everyone else queues
    TuningService service(options);
    for (const SessionSpec &spec : fleet)
        service.submit(spec);
    service.runUntilIdle();
    for (size_t i = 0; i < fleet.size(); ++i) {
        ASSERT_EQ(service.status(fleet[i].name),
                  SessionStatus::Finished);
        expectSameCurve(golden[i], service.result(fleet[i].name),
                        fleet[i].name);
    }
}

TEST(Service, TransientFaultsBackOffWithoutPerturbingCurves)
{
    const auto fleet = quickFleet(4);
    const std::string golden_dir = scratchDir("fault_golden");
    std::vector<tune::TuneResult> golden;
    runGolden(golden_dir, fleet, golden);

    const std::string dir = scratchDir("faulty");
    ServiceOptions options = quickService(dir, 4);
    options.faults.transient_rate = 0.4;
    options.faults.seed = 0xfa171;
    options.backoff_base_ticks = 1;
    options.backoff_cap_ticks = 4;
    TuningService service(options);
    service.recover(fleet);
    service.runUntilIdle();

    EXPECT_GT(service.stats().faults_injected, 0);
    EXPECT_GT(service.stats().backoff_ticks_slept, 0);
    for (size_t i = 0; i < fleet.size(); ++i) {
        ASSERT_EQ(service.status(fleet[i].name),
                  SessionStatus::Finished);
        expectSameCurve(golden[i], service.result(fleet[i].name),
                        fleet[i].name);
    }

    // The fault schedule itself is seeded: the same service re-run
    // injects the same number of faults at the same ticks.
    const std::string dir2 = scratchDir("faulty2");
    ServiceOptions options2 = options;
    options2.dir = dir2;
    TuningService service2(options2);
    service2.recover(fleet);
    service2.runUntilIdle();
    EXPECT_EQ(service.stats().faults_injected,
              service2.stats().faults_injected);
    EXPECT_EQ(service.stats().ticks, service2.stats().ticks);
}

TEST(Service, DeadlineFinalizesEarly)
{
    const std::string dir = scratchDir("deadline");
    TuningService service(quickService(dir, 2));
    auto fleet = quickFleet(2);
    fleet[0].deadline_simulated_seconds = 1e-3;   // expires immediately
    service.recover(fleet);
    service.runUntilIdle();

    EXPECT_EQ(service.status("s000"), SessionStatus::DeadlineExpired);
    EXPECT_EQ(service.status("s001"), SessionStatus::Finished);
    EXPECT_EQ(service.stats().deadline_expired, 1);
    // The expired session still produced a (short) result and curve.
    EXPECT_LE(service.result("s000").curve.size(),
              service.result("s001").curve.size());
    EXPECT_TRUE(fs::exists(dir + "/s000.curve"));
}

TEST(Service, SnapshotHotSwapProbesHealth)
{
    const std::string dir = scratchDir("swap");
    TuningService service(quickService(dir, 2));

    // A healthy snapshot installs.
    model::TlpNetConfig config;
    config.hidden = 16;
    config.head_hidden = 16;
    config.residual_blocks = 1;
    Rng rng(11);
    model::TlpNet net(config, rng);
    const std::string good = dir + "/good.snap";
    ASSERT_TRUE(model::saveTlpSnapshot(good, net).ok());
    EXPECT_TRUE(service.swapModel(good).ok());
    EXPECT_EQ(service.stats().snapshot_swaps, 1);
    EXPECT_EQ(service.stats().snapshot_swap_failures, 0);

    // A zero-parameter snapshot loads (valid framing!) but fails the
    // health probe: degenerate constant scores.
    model::TlpNet zeroed(config, rng);
    for (nn::Tensor &param : zeroed.parameters())
        std::fill(param.value().begin(), param.value().end(), 0.0f);
    const std::string flat = dir + "/flat.snap";
    ASSERT_TRUE(model::saveTlpSnapshot(flat, zeroed).ok());
    const Status degenerate = service.swapModel(flat);
    EXPECT_FALSE(degenerate.ok());
    EXPECT_NE(degenerate.message().find("probe"), std::string::npos);

    // A corrupt snapshot is rejected by the loader.
    std::string bytes = readFile(good);
    for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 8; ++i)
        bytes[i] = static_cast<char>(~bytes[i]);
    const std::string bad = dir + "/bad.snap";
    {
        std::ofstream os(bad, std::ios::binary);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_FALSE(service.swapModel(bad).ok());
    EXPECT_EQ(service.stats().snapshot_swap_failures, 2);

    // Bad swaps never blocked admission: guarded-tlp sessions run (on
    // the degraded ladder or the good snapshot, whichever is current).
    auto fleet = quickFleet(1);
    fleet[0].model = ModelKind::GuardedTlp;
    fleet[0].tune.rounds = 2;
    service.recover(fleet);
    service.runUntilIdle();
    EXPECT_EQ(service.status("s000"), SessionStatus::Finished);
}

TEST(Service, InferenceHotPathNeverPerturbsCurves)
{
    // DESIGN.md §13: the fused forward and the feature/score cache are
    // pure accelerators. A guarded-tlp fleet must produce byte-identical
    // curve files with them on or off — including when the accelerated
    // fleet is killed mid-run and recovered from checkpoints (a
    // recovered session restarts with a cold cache, which may only
    // change speed, never values).
    auto fleet = quickFleet(4);
    for (SessionSpec &spec : fleet) {
        spec.model = ModelKind::GuardedTlp;
        spec.tune.rounds = 3;
    }
    model::TlpNetConfig config;
    config.hidden = 16;
    config.head_hidden = 16;
    config.residual_blocks = 1;
    Rng rng(13);
    model::TlpNet net(config, rng);
    const std::string snap = scratchDir("infer_snap") + "/tlp.snap";
    fs::create_directories(fs::path(snap).parent_path());
    ASSERT_TRUE(model::saveTlpSnapshot(snap, net).ok());

    // Golden: legacy inference (interpreted forward, no cache).
    const std::string legacy_dir = scratchDir("infer_legacy");
    std::vector<tune::TuneResult> golden;
    {
        ServiceOptions options = quickService(legacy_dir, 4);
        options.tlp_infer = model::TlpInferOptions::legacy();
        TuningService service(options);
        ASSERT_TRUE(service.swapModel(snap).ok());
        service.recover(fleet);
        service.runUntilIdle();
        ASSERT_TRUE(service.idle());
        for (const SessionSpec &spec : fleet)
            golden.push_back(service.result(spec.name));
    }

    // Accelerated: fused + cached, killed twice and recovered.
    const std::string fast_dir = scratchDir("infer_fast");
    ServiceOptions fast_options = quickService(fast_dir, 4);
    fast_options.tlp_infer = model::TlpInferOptions{true, 512};
    for (int64_t kill_ticks : {7, 5}) {
        TuningService service(fast_options);
        ASSERT_TRUE(service.swapModel(snap).ok());
        service.recover(fleet);
        service.runUntilIdle(kill_ticks);
        // destroyed here, mid-run: the "kill"
    }
    TuningService service(fast_options);
    ASSERT_TRUE(service.swapModel(snap).ok());
    const auto report = service.recover(fleet);
    EXPECT_EQ(report.quarantined, 0);
    service.runUntilIdle();
    ASSERT_TRUE(service.idle());

    for (size_t i = 0; i < fleet.size(); ++i) {
        const std::string &name = fleet[i].name;
        ASSERT_EQ(service.status(name), SessionStatus::Finished);
        expectSameCurve(golden[i], service.result(name), name);
        EXPECT_EQ(readFile(legacy_dir + "/" + name + ".curve"),
                  readFile(fast_dir + "/" + name + ".curve"))
            << name;
    }
}

TEST(Service, QuarantineKeepsEveryGeneration)
{
    // Two successive quarantines of the same session must leave two
    // distinct evidence files; a fixed suffix would silently overwrite
    // the first (the bug this pins).
    const auto fleet = quickFleet(2);
    const std::string dir = scratchDir("quarantine_gen");
    const std::string victim = dir + "/s001.ckpt";

    auto corrupt = [&]() {
        std::string bytes = readFile(victim);
        ASSERT_GT(bytes.size(), 64u);
        for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 16; ++i)
            bytes[i] = static_cast<char>(~bytes[i]);
        std::ofstream os(victim, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    };

    {
        TuningService service(quickService(dir, 2));
        service.recover(fleet);
        service.runUntilIdle(9);
    }
    corrupt();
    {
        TuningService service(quickService(dir, 2));
        const auto report = service.recover(fleet);
        EXPECT_EQ(report.quarantined, 1);
        EXPECT_TRUE(fs::exists(victim + ".quarantined.1"));
        service.runUntilIdle(9);
    }
    corrupt();
    {
        TuningService service(quickService(dir, 2));
        const auto report = service.recover(fleet);
        EXPECT_EQ(report.quarantined, 1);
        // Both generations of evidence survive, and they differ (they
        // were taken at different rounds).
        ASSERT_TRUE(fs::exists(victim + ".quarantined.1"));
        ASSERT_TRUE(fs::exists(victim + ".quarantined.2"));
        service.runUntilIdle();
        for (const SessionSpec &spec : fleet)
            EXPECT_EQ(service.status(spec.name),
                      SessionStatus::Finished);
    }
}

TEST(Service, RecoverSweepsStrandedTempFiles)
{
    // A crash between atomicWriteFile's open and rename strands
    // "<name>.tmp.<pid>.<seq>" files; recover() must reap them (and
    // only them).
    const auto fleet = quickFleet(2);
    const std::string dir = scratchDir("sweep");
    fs::create_directories(dir);
    const auto plant = [&](const std::string &name) {
        std::ofstream os(dir + "/" + name, std::ios::binary);
        os << "stranded";
    };
    plant("s000.ckpt.tmp.12345.0");
    plant("s001.ckpt.tmp.999.17");
    plant("s000.curve.tmp.1.2");
    plant("keep.ckpt");            // not a temp: must survive
    plant("odd.tmp.x.1");          // non-numeric pid: must survive

    TuningService service(quickService(dir, 2));
    const auto report = service.recover(fleet);
    EXPECT_EQ(report.stale_temps_swept, 3);
    EXPECT_EQ(service.stats().stale_temps_swept, 3);
    EXPECT_FALSE(fs::exists(dir + "/s000.ckpt.tmp.12345.0"));
    EXPECT_FALSE(fs::exists(dir + "/s001.ckpt.tmp.999.17"));
    EXPECT_FALSE(fs::exists(dir + "/s000.curve.tmp.1.2"));
    EXPECT_TRUE(fs::exists(dir + "/keep.ckpt"));
    EXPECT_TRUE(fs::exists(dir + "/odd.tmp.x.1"));
    service.runUntilIdle();
    for (const SessionSpec &spec : fleet)
        EXPECT_EQ(service.status(spec.name), SessionStatus::Finished);
}

TEST(Service, CheckpointWriteFaultsRetryThenDegradeWithoutCurveDrift)
{
    // DESIGN.md §14: with the I/O chaos env failing checkpoint and
    // curve writes (crash debris and all), the fleet's curves must stay
    // byte-identical to a fault-free run — checkpoint persistence may
    // degrade, trajectories may not.
    const auto fleet = quickFleet(4);
    const std::string golden_dir = scratchDir("io_golden");
    std::vector<tune::TuneResult> golden;
    runGolden(golden_dir, fleet, golden);

    const std::string dir = scratchDir("io_chaos");
    IoFaultProfile chaos;
    chaos.fault_rate = 0.7;
    chaos.seed = 0x10c4a0;
    chaos.crash_debris = true;
    ScopedIoFaults scope(chaos);

    ServiceOptions options = quickService(dir, 4);
    options.ckpt_retry_limit = 2;
    {
        // First incarnation dies mid-run with faults raging.
        TuningService service(options);
        service.recover(fleet);
        service.runUntilIdle(13);
    }
    TuningService service(options);
    service.recover(fleet);   // sweeps debris, adopts what survived
    service.runUntilIdle();
    ASSERT_TRUE(service.idle());

    const ServiceStats &stats = service.stats();
    EXPECT_GT(stats.ckpt_write_failures, 0);
    EXPECT_GT(stats.ckpt_retries, 0);
    EXPECT_GT(stats.checkpointless_sessions, 0);

    for (size_t i = 0; i < fleet.size(); ++i) {
        const std::string &name = fleet[i].name;
        ASSERT_EQ(service.status(name), SessionStatus::Finished);
        expectSameCurve(golden[i], service.result(name), name);
        EXPECT_EQ(readFile(golden_dir + "/" + name + ".curve"),
                  readFile(dir + "/" + name + ".curve"))
            << name;
    }
}

TEST(Service, IoChaosScheduleIsSeededAndReplayable)
{
    // The same profile over the same fleet injects the identical fault
    // schedule: counters match run-for-run (the I/O analogue of the
    // transient-fault determinism test above).
    const auto fleet = quickFleet(2);
    IoFaultProfile chaos;
    chaos.fault_rate = 0.5;
    chaos.seed = 0xabc;
    int64_t failures[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
        // Same directory both passes: draws are keyed by the path
        // fingerprint, so the schedule replays only on identical paths.
        const std::string dir = scratchDir("io_replay");
        ScopedIoFaults scope(chaos);
        TuningService service(quickService(dir, 2));
        service.recover(fleet);
        service.runUntilIdle();
        failures[pass] = service.stats().ckpt_write_failures;
    }
    EXPECT_GT(failures[0], 0);
    EXPECT_EQ(failures[0], failures[1]);
}

TEST(Service, PoisonedSessionIsContainedWithoutCurveDrift)
{
    // DESIGN.md §15: tripping the circuit breaker on one poisoned
    // session must leave every other session's curve bytes identical
    // to a fleet where the poisoned spec never existed — at any
    // thread count.
    auto drill_fleet = quickFleet(5);
    auto golden_fleet = drill_fleet;
    golden_fleet.erase(golden_fleet.begin() + 2);   // a world without s002

    const std::string golden_dir = scratchDir("poison_golden");
    std::vector<tune::TuneResult> golden;
    runGolden(golden_dir, golden_fleet, golden);

    for (const int threads : {1, 3}) {
        ThreadPool::setGlobalThreads(threads);
        const std::string dir =
            scratchDir("poison_drill" + std::to_string(threads));
        ServiceOptions options = quickService(dir, 5);
        options.faults.poison_session = "s002";
        options.faults.poison_after_round = 1;
        options.breaker_trip_limit = 3;
        options.backoff_base_ticks = 1;
        options.backoff_cap_ticks = 2;
        TuningService service(options);
        service.recover(drill_fleet);
        service.runUntilIdle();
        ASSERT_TRUE(service.idle());

        // The poisoned session is terminal, curveless, and its last
        // checkpoint was renamed aside as evidence.
        EXPECT_EQ(service.status("s002"),
                  SessionStatus::PoisonQuarantined);
        EXPECT_EQ(service.stats().breaker_trips, 1);
        EXPECT_FALSE(fs::exists(dir + "/s002.curve"));
        EXPECT_FALSE(fs::exists(dir + "/s002.ckpt"));
        EXPECT_TRUE(fs::exists(dir + "/s002.ckpt.quarantined.1"));

        // Everyone else finished exactly as if s002 never enrolled.
        for (size_t i = 0; i < golden_fleet.size(); ++i) {
            const std::string &name = golden_fleet[i].name;
            ASSERT_EQ(service.status(name), SessionStatus::Finished);
            expectSameCurve(golden[i], service.result(name), name);
            EXPECT_EQ(readFile(golden_dir + "/" + name + ".curve"),
                      readFile(dir + "/" + name + ".curve"))
                << name << " at " << threads << " threads";
        }
    }
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());
}

TEST(Service, BreakerTripFreesSlotForQueuedSession)
{
    // A tripped session must release its active slot like any other
    // terminal state: the queued session behind it gets promoted and
    // runs to completion.
    const auto fleet = quickFleet(2);
    const std::string dir = scratchDir("breaker_slot");
    ServiceOptions options = quickService(dir, 2);
    options.max_active = 1;
    options.faults.poison_session = "s000";
    options.faults.poison_after_round = 0;
    options.breaker_trip_limit = 2;
    options.backoff_base_ticks = 1;
    options.backoff_cap_ticks = 2;
    TuningService service(options);
    EXPECT_EQ(service.submit(fleet[0]), AdmitOutcome::Active);
    EXPECT_EQ(service.submit(fleet[1]), AdmitOutcome::Queued);
    service.runUntilIdle();

    EXPECT_EQ(service.status("s000"), SessionStatus::PoisonQuarantined);
    EXPECT_EQ(service.status("s001"), SessionStatus::Finished);
    EXPECT_EQ(service.stats().breaker_trips, 1);
    EXPECT_EQ(service.stats().finished, 1);
    // Poisoned before its first checkpoint: no evidence, just no file.
    EXPECT_FALSE(fs::exists(dir + "/s000.curve"));
    EXPECT_TRUE(fs::exists(dir + "/s001.curve"));
}

TEST(Service, DisabledBreakerNeverTripsUnderPoison)
{
    // breaker_trip_limit = 0 turns containment off: the poisoned
    // session retries (with backoff) until the tick budget expires,
    // and is still Active when the service is stopped.
    const auto fleet = quickFleet(2);
    const std::string dir = scratchDir("breaker_off");
    ServiceOptions options = quickService(dir, 2);
    options.faults.poison_session = "s000";
    options.faults.poison_after_round = 0;
    options.breaker_trip_limit = 0;
    options.backoff_base_ticks = 1;
    options.backoff_cap_ticks = 2;
    TuningService service(options);
    service.recover(fleet);
    service.runUntilIdle(200);

    EXPECT_EQ(service.stats().breaker_trips, 0);
    // Stopped mid-backoff, not quarantined: the session is still live.
    EXPECT_EQ(service.status("s000"), SessionStatus::BackedOff);
    EXPECT_EQ(service.status("s001"), SessionStatus::Finished);
    EXPECT_GT(service.stats().faults_injected, 0);
    EXPECT_FALSE(service.idle());
}

TEST(Service, RecoverQuarantineSkipsPlantedEvidenceGenerations)
{
    // Evidence from earlier incidents may be non-contiguous (operators
    // delete nothing, but crashes can). recover() must slot new
    // evidence into the first free generation and never overwrite.
    const auto fleet = quickFleet(2);
    const std::string dir = scratchDir("evidence_gaps");
    {
        TuningService service(quickService(dir, 2));
        service.recover(fleet);
        service.runUntilIdle(9);
    }
    const std::string victim = dir + "/s001.ckpt";
    ASSERT_TRUE(fs::exists(victim));
    {
        std::string bytes = readFile(victim);
        for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 16; ++i)
            bytes[i] = static_cast<char>(~bytes[i]);
        std::ofstream os(victim, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    const auto plant = [&](const std::string &name,
                           const std::string &body) {
        std::ofstream os(dir + "/" + name, std::ios::binary);
        os << body;
    };
    plant("s001.ckpt.quarantined.1", "incident one");
    plant("s001.ckpt.quarantined.3", "incident three");

    TuningService service(quickService(dir, 2));
    const auto report = service.recover(fleet);
    EXPECT_EQ(report.quarantined, 1);
    EXPECT_TRUE(fs::exists(victim + ".quarantined.2"));
    EXPECT_EQ(readFile(victim + ".quarantined.1"), "incident one");
    EXPECT_EQ(readFile(victim + ".quarantined.3"), "incident three");
    service.runUntilIdle();
    for (const SessionSpec &spec : fleet)
        EXPECT_EQ(service.status(spec.name), SessionStatus::Finished);
}

TEST(Service, ModelKindNamesRoundTrip)
{
    for (const ModelKind kind :
         {ModelKind::Random, ModelKind::Ansor, ModelKind::GuardedAnsor,
          ModelKind::GuardedTlp}) {
        const auto parsed = parseModelKind(modelKindName(kind));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), kind);
    }
    EXPECT_FALSE(parseModelKind("xgboost").ok());
}

} // namespace
} // namespace tlp::serve
