/**
 * @file
 * Tests for the inference hot path (DESIGN.md §13): the Arena scratch
 * allocator, the in-place feature extractor, the fused forward, and the
 * primitive-seq feature/score cache. The load-bearing claim everywhere
 * is bit-identity — fused or interpreted, cached or cold, the model
 * must predict the exact same bits.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "features/tlp_features.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "models/feature_cache.h"
#include "models/fused_infer.h"
#include "sketch/policy.h"
#include "support/arena.h"

namespace tlp {
namespace {

TEST(Arena, AlignsAndBumps)
{
    Arena arena(256);
    float *a = arena.allocFloats(3);
    float *b = arena.allocFloats(5);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % Arena::kAlign, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % Arena::kAlign, 0u);
    EXPECT_NE(a, b);
    a[0] = 1.0f;
    b[0] = 2.0f;
    EXPECT_EQ(a[0], 1.0f);
}

TEST(Arena, RewindReusesTheSamePointers)
{
    Arena arena(1024);
    const Arena::Mark mark = arena.checkpoint();
    float *first = arena.allocFloats(64);
    arena.rewind(mark);
    float *second = arena.allocFloats(64);
    // The whole point: the steady state recycles identical storage.
    EXPECT_EQ(first, second);
    EXPECT_EQ(arena.blockCount(), 1u);
}

TEST(Arena, GrowsAcrossBlocksAndStopsGrowingAtSteadyState)
{
    Arena arena(128);
    const Arena::Mark mark = arena.checkpoint();
    for (int round = 0; round < 8; ++round) {
        arena.rewind(mark);
        for (int i = 0; i < 10; ++i)
            arena.allocFloats(100);   // ~4 KB live, first block is 128 B
    }
    const size_t blocks = arena.blockCount();
    const size_t reserved = arena.reservedBytes();
    EXPECT_GT(blocks, 1u);
    for (int round = 0; round < 8; ++round) {
        arena.rewind(mark);
        for (int i = 0; i < 10; ++i)
            arena.allocFloats(100);
    }
    // Same workload after warm-up: no new blocks, no new reservation.
    EXPECT_EQ(arena.blockCount(), blocks);
    EXPECT_EQ(arena.reservedBytes(), reserved);
    EXPECT_GE(arena.highWaterBytes(), 10u * 100u * sizeof(float));
}

TEST(Arena, ResetKeepsCapacity)
{
    Arena arena(64);
    arena.allocFloats(1000);
    const size_t reserved = arena.reservedBytes();
    arena.reset();
    EXPECT_EQ(arena.reservedBytes(), reserved);
    float *p = arena.allocFloats(1000);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(arena.reservedBytes(), reserved);
}

/**
 * Deterministic candidate schedules from the real sketch policy. Small
 * subgraphs dedup to few unique schedules, so pool across the
 * workload's subgraphs until @p n states are gathered.
 */
std::vector<sched::State>
samplePopulation(size_t n, uint64_t seed)
{
    static const ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork("mlp-mixer"));
    Rng rng(seed);
    std::vector<sched::State> states;
    while (states.size() < n) {
        for (const auto &subgraph : workload.subgraphs) {
            sketch::SchedulePolicy policy(subgraph, false);
            for (auto &state : policy.sampleInitPopulation(
                     static_cast<int>(n), rng)) {
                if (states.size() < n)
                    states.push_back(std::move(state));
            }
        }
    }
    return states;
}

TEST(TlpFeatures, ExtractIntoMatchesReturningExtractor)
{
    const auto states = samplePopulation(8, 41);
    ASSERT_FALSE(states.empty());
    feat::TlpFeatureOptions options;
    const size_t dim = static_cast<size_t>(options.seq_len) *
                       static_cast<size_t>(options.emb_size);
    std::vector<float> row(dim);
    for (const sched::State &state : states) {
        const auto expect =
            feat::extractTlpFeatures(state.steps(), options);
        ASSERT_EQ(expect.size(), dim);
        feat::extractTlpFeaturesInto(state.steps(), options, row.data());
        EXPECT_EQ(std::memcmp(row.data(), expect.data(),
                              dim * sizeof(float)),
                  0);
    }
}

TEST(SeqKey, DistinguishesSequencesAndIsStable)
{
    const auto states = samplePopulation(16, 42);
    ASSERT_GE(states.size(), 2u);
    std::vector<model::SeqKey> keys;
    for (const sched::State &state : states)
        keys.push_back(model::seqKeyOf(state.steps()));
    for (size_t i = 0; i < keys.size(); ++i) {
        EXPECT_TRUE(keys[i] == model::seqKeyOf(states[i].steps()));
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_FALSE(keys[i] == keys[j]);
    }
}

/** Fresh TlpNet of @p config, seeded deterministically. */
std::shared_ptr<model::TlpNet>
makeNet(const model::TlpNetConfig &config, uint64_t seed = 7)
{
    Rng rng(seed);
    return std::make_shared<model::TlpNet>(config, rng);
}

/** predictBatch through a model built with @p options. */
std::vector<double>
scoresWith(std::shared_ptr<model::TlpNet> net,
           const model::TlpInferOptions &options,
           const std::vector<sched::State> &states, int task = 0)
{
    model::TlpCostModel cost_model(std::move(net), {}, task, options);
    return cost_model.predictBatch(task, states);
}

TEST(FusedInfer, MatchesInterpretedBitForBit)
{
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    config.head_hidden = 16;
    auto net = makeNet(config);
    // Row counts straddling the block size: partial, exact, multi-block.
    for (int n : {1, 5, 16, 33}) {
        const auto states = samplePopulation(n, 43);
        ASSERT_FALSE(states.empty());
        const auto legacy =
            scoresWith(net, model::TlpInferOptions::legacy(), states);
        const auto fused =
            scoresWith(net, model::TlpInferOptions{true, 0}, states);
        EXPECT_EQ(legacy, fused) << "rows=" << n;
    }
}

TEST(FusedInfer, MatchesInterpretedAcrossConfigs)
{
    std::vector<model::TlpNetConfig> configs(3);
    configs[0].hidden = 32;
    configs[0].heads = 4;
    configs[1].hidden = 48;
    configs[1].heads = 6;
    configs[1].residual_blocks = 1;
    configs[1].head_hidden = 24;
    configs[2].hidden = 32;
    configs[2].heads = 8;
    configs[2].num_tasks = 3;
    const auto states = samplePopulation(20, 44);
    for (const auto &config : configs) {
        auto net = makeNet(config, 11);
        for (int task = 0; task < config.num_tasks; ++task) {
            const auto legacy = scoresWith(
                net, model::TlpInferOptions::legacy(), states, task);
            const auto fused = scoresWith(
                net, model::TlpInferOptions{true, 0}, states, task);
            EXPECT_EQ(legacy, fused)
                << "hidden=" << config.hidden << " task=" << task;
        }
    }
}

TEST(FusedInfer, AllOptionCombinationsAgree)
{
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    auto net = makeNet(config);
    const auto states = samplePopulation(24, 45);
    const auto baseline =
        scoresWith(net, model::TlpInferOptions::legacy(), states);
    EXPECT_EQ(baseline,
              scoresWith(net, model::TlpInferOptions{false, 64}, states));
    EXPECT_EQ(baseline,
              scoresWith(net, model::TlpInferOptions{true, 0}, states));
    EXPECT_EQ(baseline,
              scoresWith(net, model::TlpInferOptions{true, 64}, states));
}

TEST(FusedInfer, LstmBackboneFallsBackToInterpreted)
{
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    config.lstm_backbone = true;
    auto net = makeNet(config);
    const auto states = samplePopulation(6, 46);
    // fused=true must silently use the interpreted path (and still may
    // cache): identical scores, no crash.
    const auto legacy =
        scoresWith(net, model::TlpInferOptions::legacy(), states);
    EXPECT_EQ(legacy,
              scoresWith(net, model::TlpInferOptions{true, 64}, states));
}

TEST(FeatureCache, InterleavedGenerationsMatchUncached)
{
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    auto net = makeNet(config);
    model::TlpCostModel cached(net, {}, 0,
                               model::TlpInferOptions{true, 256});
    model::TlpCostModel uncached(net, {}, 0,
                                 model::TlpInferOptions{true, 0});

    // Evolution-shaped workload: each generation keeps survivors from
    // the previous one (score-memo hits), mutates some (fresh rows), and
    // injects duplicates (same-batch slot sharing).
    static const ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork("mlp-mixer"));
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    Rng rng(47);
    std::vector<sched::State> population =
        policy.sampleInitPopulation(24, rng);
    ASSERT_FALSE(population.empty());
    for (int generation = 0; generation < 4; ++generation) {
        // Duplicates inside one batch exercise the two-phase fill.
        std::vector<sched::State> batch = population;
        batch.push_back(population[0]);
        batch.push_back(population[population.size() / 2]);
        const auto hot = cached.predictBatch(0, batch);
        const auto cold = uncached.predictBatch(0, batch);
        ASSERT_EQ(hot, cold) << "generation " << generation;
        // Survivors + mutants for the next round.
        std::vector<sched::State> next(population.begin(),
                                       population.begin() +
                                           population.size() / 2);
        for (const sched::State &state : population) {
            if (auto mutant = policy.mutate(state, rng))
                next.push_back(std::move(*mutant));
        }
        population = std::move(next);
    }
    const auto stats = cached.cacheStats();
    EXPECT_GT(stats.score_hits, 0u);     // survivors + in-batch dups
    EXPECT_GT(stats.misses, 0u);         // fresh mutants
    EXPECT_EQ(uncached.cacheStats().score_hits, 0u);
}

TEST(FeatureCache, TinyCapacityEvictsButNeverChangesScores)
{
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    auto net = makeNet(config);
    model::TlpCostModel tiny(net, {}, 0, model::TlpInferOptions{true, 4});
    const auto states = samplePopulation(32, 48);
    ASSERT_GT(states.size(), 4u);
    const auto baseline =
        scoresWith(net, model::TlpInferOptions::legacy(), states);
    // Thrash the 4-entry cache repeatedly; every pass must match.
    for (int pass = 0; pass < 3; ++pass)
        EXPECT_EQ(tiny.predictBatch(0, states), baseline) << pass;
    EXPECT_GT(tiny.cacheStats().evictions, 0u);
}

TEST(FeatureCache, ScoreMemosInvalidateWhenParametersChange)
{
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    auto net = makeNet(config);
    model::TlpCostModel cached(net, {}, 0,
                               model::TlpInferOptions{true, 256});
    const auto states = samplePopulation(12, 49);
    const auto before = cached.predictBatch(0, states);
    EXPECT_EQ(before, cached.predictBatch(0, states));

    // Perturb the head's output bias in place — what continued training
    // does; this bias shifts every score, so the change must show.
    net->parameters().back().value()[0] += 0.25f;
    const auto after = cached.predictBatch(0, states);
    const auto fresh =
        scoresWith(net, model::TlpInferOptions::legacy(), states);
    EXPECT_EQ(after, fresh);
    EXPECT_NE(after, before);
}

TEST(FeatureCache, EvictionUnitSemantics)
{
    const auto states = samplePopulation(8, 50);
    ASSERT_GE(states.size(), 5u);
    model::FeatureCache cache(4, 2);
    std::vector<model::SeqKey> keys;
    for (const sched::State &state : states)
        keys.push_back(model::seqKeyOf(state.steps()));

    const int64_t s0 = cache.insert(keys[0]);
    const int64_t s1 = cache.insert(keys[1]);
    EXPECT_EQ(cache.find(keys[0]), s0);
    EXPECT_EQ(cache.find(keys[1]), s1);
    cache.storeScore(s0, 0, 9, 1.5);
    double score = 0.0;
    EXPECT_TRUE(cache.scoreAt(s0, 0, 9, &score));
    EXPECT_EQ(score, 1.5);
    EXPECT_FALSE(cache.scoreAt(s0, 1, 9, &score));  // other task
    EXPECT_FALSE(cache.scoreAt(s0, 0, 8, &score));  // other epoch

    // Third insert evicts the oldest (keys[0]) and reuses its slot —
    // including clearing the score memo.
    const int64_t s2 = cache.insert(keys[2]);
    EXPECT_EQ(s2, s0);
    EXPECT_EQ(cache.find(keys[0]), -1);
    EXPECT_EQ(cache.find(keys[2]), s2);
    EXPECT_FALSE(cache.scoreAt(s2, 0, 9, &score));
    EXPECT_EQ(cache.stats().evictions, 1u);

    // Hammer it: many inserts over a 2-entry cache stay consistent.
    for (int round = 0; round < 50; ++round) {
        const model::SeqKey &key =
            keys[static_cast<size_t>(round) % keys.size()];
        if (cache.find(key) < 0)
            cache.insert(key);
        EXPECT_GE(cache.find(key), 0);
    }
    EXPECT_EQ(cache.size(), 2);
}

} // namespace
} // namespace tlp
