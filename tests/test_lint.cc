/**
 * @file
 * Tests for tools/tlp_lint: the lexer, the manifest parser, each rule
 * id against golden fixtures (in-memory and on-disk under
 * tests/lint_fixtures/), the suppression contract, and the Fig. 10
 * asymmetry the layering rules encode.
 *
 * The deliberate-violation snippets below live inside raw string
 * literals, which is itself a regression test for the real-tree lint
 * job: the lexer blanks string contents, so scanning THIS file must
 * produce no findings.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "tools/tlp_lint/lint.h"

using namespace tlp;
using namespace tlp::lint;

namespace {

/** Rule ids present in a finding list. */
std::set<std::string>
ruleSet(const std::vector<Finding> &findings)
{
    std::set<std::string> rules;
    for (const Finding &f : findings)
        rules.insert(f.rule);
    return rules;
}

/** A manifest mirroring the real tree's structure for in-memory tests. */
Manifest
testManifest()
{
    const char *text = R"(
layer support ->
layer schedule -> support
layer features -> schedule support
layer nn -> support
layer tuner -> nn schedule support
layer tuner/service -> tuner support
forbid-include src/features/tlp_features -> schedule/lower.h
require-include src/features/ansor_features -> schedule/lower.h
loader-tu src/loader.cc
serialize-consumer src/consumer.cc
hot-tu src/hot.cc
allow-wallclock bench/timing.cc
forbid-raw-io src/
forbid-raw-io bench/
raw-io-exempt src/support/serialize.cc
must-check src/
hot-entry hotLoop
)";
    auto result = parseManifest(text);
    EXPECT_TRUE(result.ok()) << result.status().toString();
    return result.take();
}

} // namespace

// --- lexer --------------------------------------------------------------

TEST(LintLexer, BlanksCommentsAndStringsButKeepsLineNumbers)
{
    const std::string text =
        "int a; // rand()\n"
        "/* system_clock\n"
        "   rand() */ int b;\n"
        "const char *s = \"rand()\";\n";
    const StrippedSource src = stripSource(text);
    ASSERT_EQ(src.code.size(), 4u);
    for (const std::string &line : src.code)
        EXPECT_EQ(line.find("rand"), std::string::npos) << line;
    EXPECT_NE(src.code[0].find("int a;"), std::string::npos);
    EXPECT_NE(src.code[2].find("int b;"), std::string::npos);
    // The directive view keeps string contents (for #include paths).
    EXPECT_NE(src.directives[3].find("rand()"), std::string::npos);
}

TEST(LintLexer, RawStringsAndDigitSeparators)
{
    const std::string text =
        "auto s = R\"(rand() mt19937)\";\n"
        "long big = 1'000'000; int c = 'x';\n";
    const StrippedSource src = stripSource(text);
    EXPECT_EQ(src.code[0].find("mt19937"), std::string::npos);
    EXPECT_NE(src.code[1].find("1'000'000"), std::string::npos);
}

TEST(LintLexer, ParsesWellFormedSuppressions)
{
    const std::string text =
        "// tlp-lint: allow(wallclock) -- budget timing is intentional\n"
        "int x;\n";
    const StrippedSource src = stripSource(text);
    ASSERT_EQ(src.suppressions.size(), 1u);
    EXPECT_EQ(src.suppressions[0].line, 1);
    EXPECT_EQ(src.suppressions[0].rule, "wallclock");
    EXPECT_EQ(src.suppressions[0].reason, "budget timing is intentional");
}

TEST(LintLexer, ProseMentioningTheSyntaxIsNotASuppression)
{
    // Only `//` comments *starting* with the marker parse; doc prose
    // and block comments never do.
    const std::string text =
        "// see the tlp-lint: allow(...) syntax in DESIGN.md\n"
        "/* tlp-lint: allow(rand) -- block comments do not count */\n";
    const StrippedSource src = stripSource(text);
    EXPECT_TRUE(src.suppressions.empty());
    EXPECT_TRUE(src.bad_suppressions.empty());
}

TEST(LintLexer, MalformedSuppressionIsAFinding)
{
    const StrippedSource src =
        stripSource("// tlp-lint: allow rand, because\n");
    ASSERT_EQ(src.bad_suppressions.size(), 1u);
    EXPECT_EQ(src.bad_suppressions[0].rule, "bad-suppression");
}

TEST(LintLexer, MissingReasonIsMalformed)
{
    const StrippedSource src =
        stripSource("// tlp-lint: allow(rand)\n");
    EXPECT_TRUE(src.suppressions.empty());
    ASSERT_EQ(src.bad_suppressions.size(), 1u);
}

// --- manifest -----------------------------------------------------------

TEST(LintManifest, ParsesDirectives)
{
    const Manifest m = testManifest();
    EXPECT_EQ(m.layers.size(), 6u);
    EXPECT_TRUE(m.layers.at("tuner").count("nn"));
    EXPECT_TRUE(m.layers.at("support").empty());
    ASSERT_EQ(m.forbid_includes.size(), 1u);
    EXPECT_EQ(m.forbid_includes[0].second, "schedule/lower.h");
    EXPECT_TRUE(m.loader_tus.count("src/loader.cc"));
    EXPECT_TRUE(m.hot_tus.count("src/hot.cc"));
}

TEST(LintManifest, UnknownDirectiveFailsWithLineNumber)
{
    const auto result = parseManifest("layer a ->\nfrobnicate b\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().toString().find("line 2"),
              std::string::npos);
}

TEST(LintManifest, LayerMissingArrowFails)
{
    EXPECT_FALSE(parseManifest("layer broken support\n").ok());
}

TEST(LintManifest, UndeclaredLayerDependencyFails)
{
    EXPECT_FALSE(parseManifest("layer a -> ghost\n").ok());
}

// --- determinism rules --------------------------------------------------

TEST(LintRules, DeterminismTokensFire)
{
    const Manifest m = testManifest();
    const char *text = R"(
#include <random>
int a() { return rand(); }
std::random_device rd;
std::mt19937 gen(rd());
std::uniform_real_distribution<double> dist(0, 1);
long t() { return time(nullptr); }
)";
    const auto rules = ruleSet(lintFile("src/support/bad.cc", text, m));
    EXPECT_TRUE(rules.count("rand"));
    EXPECT_TRUE(rules.count("random-device"));
    EXPECT_TRUE(rules.count("std-engine"));
    EXPECT_TRUE(rules.count("wallclock"));
}

TEST(LintRules, BannedTokensInStringsAndCommentsDoNotFire)
{
    const Manifest m = testManifest();
    const char *text = R"(
// calling rand() here would break determinism
const char *kMessage = "mt19937 and system_clock are banned";
int fine() { return 7; }
)";
    EXPECT_TRUE(lintFile("src/support/fine.cc", text, m).empty());
}

TEST(LintRules, WallclockAllowlistHonored)
{
    const Manifest m = testManifest();
    const char *text =
        "#include <chrono>\n"
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(ruleSet(lintFile("src/support/t.cc", text, m))
                  .count("wallclock"),
              1u);
    EXPECT_TRUE(lintFile("bench/timing.cc", text, m).empty());
}

TEST(LintRules, SeededRngUseIsClean)
{
    // The sanctioned pattern: explicit seeds, support/rng draws.
    const Manifest m = testManifest();
    const char *text = R"(
#include "support/rng.h"
double draw(tlp::Rng &rng) { return rng.uniform(); }
tlp::Rng forked = rng.fork();
)";
    EXPECT_TRUE(lintFile("src/support/good.cc", text, m).empty());
}

// --- layering + Fig. 10 asymmetry ---------------------------------------

TEST(LintRules, LayeringRejectsUpwardInclude)
{
    const Manifest m = testManifest();
    const auto findings = lintFile("src/nn/bad.cc",
                                   "#include \"tuner/evolution.h\"\n", m);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "layering");
    EXPECT_EQ(findings[0].line, 1);
}

TEST(LintRules, LayeringAcceptsDeclaredEdge)
{
    const Manifest m = testManifest();
    EXPECT_TRUE(lintFile("src/tuner/fine.cc",
                         "#include \"nn/tensor.h\"\n"
                         "#include \"schedule/state.h\"\n",
                         m)
                    .empty());
}

TEST(LintRules, NestedLayerOwnsItsFilesAndIncludes)
{
    // A declared nested layer (tuner/service) shadows its parent: its
    // files resolve to the nested module and may use the nested deps.
    const Manifest m = testManifest();
    EXPECT_TRUE(lintFile("src/tuner/service/service.cc",
                         "#include \"tuner/service/service.h\"\n"
                         "#include \"tuner/session.h\"\n"
                         "#include \"support/result.h\"\n",
                         m)
                    .empty());
    // ...but the nested layer only gets its OWN edges: tuner may see
    // nn, tuner/service here may not.
    const auto rules = ruleSet(
        lintFile("src/tuner/service/service.cc",
                 "#include \"nn/tensor.h\"\n", m));
    EXPECT_TRUE(rules.count("layering"));
}

TEST(LintRules, ParentLayerMustNotIncludeNestedLayer)
{
    // The include "tuner/service/..." resolves to the nested layer, so
    // the parent needs an explicit (undeclared here) edge to use it:
    // sessions never know about the service above them.
    const Manifest m = testManifest();
    const auto findings =
        lintFile("src/tuner/session.cc",
                 "#include \"tuner/service/service.h\"\n", m);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "layering");
}

TEST(LintRules, UndeclaredModuleIsAFinding)
{
    const Manifest m = testManifest();
    const auto rules =
        ruleSet(lintFile("src/mystery/new.cc", "int x;\n", m));
    EXPECT_TRUE(rules.count("layering"));
}

TEST(LintRules, Fig10AsymmetryTlpRejectedAnsorAccepted)
{
    // The paper's Fig. 10 claim, machine-enforced: the SAME include of
    // the lowering header is a finding in the TLP extractor TU and
    // clean in the Ansor extractor TU.
    const Manifest m = testManifest();
    const std::string include_lower =
        "#include \"schedule/lower.h\"\n";
    const auto tlp_findings =
        lintFile("src/features/tlp_features.cc", include_lower, m);
    ASSERT_EQ(tlp_findings.size(), 1u);
    EXPECT_EQ(tlp_findings[0].rule, "include-forbidden");

    EXPECT_TRUE(
        lintFile("src/features/ansor_features.cc", include_lower, m)
            .empty());
}

TEST(LintRules, AnsorWithoutLoweringIsAFinding)
{
    // ...and the other direction: the Ansor extractor MUST lower.
    const Manifest m = testManifest();
    const auto rules = ruleSet(lintFile(
        "src/features/ansor_features.h",
        "#pragma once\n#include \"schedule/primitive.h\"\n", m));
    EXPECT_TRUE(rules.count("include-required"));
}

// --- artifact-safety rules ----------------------------------------------

TEST(LintRules, LoaderFatalFlaggedOnlyInLoaderTus)
{
    const Manifest m = testManifest();
    const char *text = "void f() { TLP_FATAL(\"bad artifact\"); }\n";
    EXPECT_EQ(ruleSet(lintFile("src/loader.cc", text, m))
                  .count("loader-fatal"),
              1u);
    EXPECT_TRUE(lintFile("src/support/cli.cc", text, m).empty());
}

TEST(LintRules, UnboundedAllocNeedsNearbyBoundCheck)
{
    const Manifest m = testManifest();
    const char *unguarded = R"(
void parse(BinaryReader &r, std::vector<float> &v)
{
    const auto count = r.readPod<uint64_t>();
    v.resize(count);
}
)";
    EXPECT_EQ(ruleSet(lintFile("src/consumer.cc", unguarded, m))
                  .count("unbounded-alloc"),
              1u);

    const char *guarded = R"(
void parse(BinaryReader &r, std::vector<float> &v)
{
    const auto count = r.readPod<uint64_t>();
    if (count > r.remaining() / sizeof(float))
        throw SerializeError(ErrorCode::Truncated, "bad count");
    v.resize(count);
}
)";
    EXPECT_TRUE(lintFile("src/consumer.cc", guarded, m).empty());

    // Sizing from an in-memory container is not stream-controlled.
    const char *from_size =
        "void copy() { dst.resize(src.size()); }\n";
    EXPECT_TRUE(lintFile("src/consumer.cc", from_size, m).empty());
}

TEST(LintRules, HotAllocFlaggedOnlyInHotTus)
{
    const Manifest m = testManifest();
    const char *text = R"(
void warm(std::vector<float> &v)
{
    v.resize(64);
    v.push_back(1.0f);
    auto p = std::make_unique<float[]>(8);
    float *q = new float[4];
}
)";
    // Four allocations, four findings — but only in the declared hot TU.
    const auto findings = lintFile("src/hot.cc", text, m);
    EXPECT_EQ(findings.size(), 4u);
    EXPECT_EQ(ruleSet(findings),
              std::set<std::string>{"hot-alloc"});
    EXPECT_TRUE(lintFile("src/support/cold.cc", text, m).empty());

    // Pure arithmetic over caller-provided storage stays clean, and a
    // construction-time sizing passes with an audited suppression.
    const char *clean = R"(
void score(const float *x, float *out, long n)
{
    for (long i = 0; i < n; ++i)
        out[i] = x[i] * 2.0f;
}
void sizeOnce(Slab &slab, long capacity)
{
    // tlp-lint: allow(hot-alloc) -- one-time construction sizing
    slab.storage.resize(capacity);
}
)";
    EXPECT_TRUE(lintFile("src/hot.cc", clean, m).empty());
}

TEST(LintRules, RawIoBannedOutsideTheSeam)
{
    const Manifest m = testManifest();
    const char *text = R"(
void save(const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    std::rename("a.tmp", "a.bin");
}
)";
    // Two raw-io findings in scoped TUs; the exempt seam TU and
    // out-of-scope paths (tests/) stay clean.
    const auto findings = lintFile("src/tuner/writer.cc", text, m);
    EXPECT_EQ(findings.size(), 2u);
    EXPECT_EQ(ruleSet(findings), std::set<std::string>{"raw-io"});
    EXPECT_TRUE(
        lintFile("src/support/serialize.cc", text, m).empty());
    EXPECT_TRUE(lintFile("tests/test_x.cc", text, m).empty());

    // ofstream inside a comment or string never fires (stripped view),
    // and an audited suppression is honored.
    const char *clean = R"lint(
// std::ofstream in prose is fine
void log() { inform("use std::rename (sic)"); }
void plant(const std::string &path)
{
    // tlp-lint: allow(raw-io) -- fixture plants corruption
    std::ofstream os(path);
}
)lint";
    EXPECT_TRUE(lintFile("bench/bench_x.cc", clean, m).empty());
}

// --- hygiene rules ------------------------------------------------------

TEST(LintRules, PragmaOnceRequiredInHeaders)
{
    const Manifest m = testManifest();
    const auto rules =
        ruleSet(lintFile("src/support/naked.h", "int x;\n", m));
    EXPECT_TRUE(rules.count("pragma-once"));
    EXPECT_TRUE(lintFile("src/support/good.h",
                         "#pragma once\nint x;\n", m)
                    .empty());
    // Sources do not need it.
    EXPECT_TRUE(lintFile("src/support/main.cc", "int x;\n", m).empty());
}

TEST(LintRules, FloatEqFlagged)
{
    const Manifest m = testManifest();
    const auto rules = ruleSet(lintFile(
        "src/support/f.cc",
        "bool b(double x) { return x == 1.0; }\n"
        "bool c(float y) { return 0.5f != y; }\n", m));
    EXPECT_TRUE(rules.count("float-eq"));
    // Integer comparisons and epsilon tests stay clean.
    EXPECT_TRUE(lintFile("src/support/g.cc",
                         "bool b(int x) { return x == 1; }\n"
                         "bool c(double y) { return y <= 0.5; }\n", m)
                    .empty());
}

TEST(LintRules, MemberUnderscoreStyle)
{
    const Manifest m = testManifest();
    const char *text = R"(
class Widget
{
  public:
    int visible;
  private:
    int hidden;
    double fine_;
    static constexpr int kLimit = 4;
    void helper(int arg);
};
struct PlainData
{
    int field;
};
)";
    const auto findings = lintFile("src/support/w.cc", text, m);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "member-underscore");
    EXPECT_NE(findings[0].message.find("hidden"), std::string::npos);
}

// --- suppression contract -----------------------------------------------

TEST(LintSuppression, SameLineAndLineAboveBothWork)
{
    const Manifest m = testManifest();
    const char *text = R"(
// tlp-lint: allow(rand) -- fixture reason one
int a() { return rand(); }
int b() { return rand(); } // tlp-lint: allow(rand) -- fixture reason two
)";
    EXPECT_TRUE(lintFile("src/support/s.cc", text, m).empty());
}

TEST(LintSuppression, WrongRuleIdDoesNotSuppress)
{
    const Manifest m = testManifest();
    const char *text =
        "// tlp-lint: allow(wallclock) -- wrong rule for the line below\n"
        "int a() { return rand(); }\n";
    const auto rules = ruleSet(lintFile("src/support/s.cc", text, m));
    // The rand finding survives AND the suppression is unused.
    EXPECT_TRUE(rules.count("rand"));
    EXPECT_TRUE(rules.count("unused-suppression"));
}

TEST(LintSuppression, UnusedSuppressionIsAFinding)
{
    const Manifest m = testManifest();
    const auto findings = lintFile(
        "src/support/s.cc",
        "// tlp-lint: allow(rand) -- stale audit\nint a;\n", m);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unused-suppression");
}

// --- flow-aware pass: symbol index + call graph (DESIGN.md §11) ---------

namespace {

/** Rule ids in a LintReport. */
std::set<std::string>
ruleSet(const LintReport &report)
{
    return ruleSet(report.findings);
}

/** In-memory linting must always succeed; unwrap the report. */
LintReport
runSources(const std::vector<SourceFile> &files, const Manifest &m)
{
    auto result = lintSources(files, m);
    EXPECT_TRUE(result.ok()) << result.status().toString();
    return result.take();
}

} // namespace

TEST(LintFlow, DiscardedStatusCallIsFlaggedAcrossTus)
{
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/support/saver.h",
         "#pragma once\nStatus saveHeader(const std::string &path);\n"},
        {"src/dropper.cc",
         "void saveAll(const std::string &path)\n"
         "{\n"
         "    saveHeader(path);\n"
         "}\n"},
    };
    const auto findings = runSources(sources, m).findings;
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unchecked-result");
    EXPECT_EQ(findings[0].file, "src/dropper.cc");
    EXPECT_EQ(findings[0].line, 3);
    // The message names the declaration the index resolved the call to.
    EXPECT_NE(findings[0].message.find("src/support/saver.h"),
              std::string::npos);
}

TEST(LintFlow, ConsumedStatusCallsStayClean)
{
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/checked.cc", R"(
Status saveHeader(const std::string &path) { return Status{}; }
void logStatus(const Status &status);
Status
useEveryShape(const std::string &path)
{
    const Status assigned = saveHeader(path);
    if (!assigned.ok())
        return assigned;
    if (!saveHeader(path).ok())
        return Status{};
    logStatus(saveHeader(path));
    return saveHeader(path);
}
)"},
    };
    const auto report = runSources(sources, m);
    EXPECT_TRUE(report.findings.empty())
        << report.findings[0].toString();
}

TEST(LintFlow, MixedVoidOverloadIsNotFlagged)
{
    // save/load families pair a Status path wrapper with a void stream
    // overload; by-name resolution must not flag calls to the void one.
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/pair.cc", R"(
Status saveBlob(const std::string &path) { return Status{}; }
void saveBlob(std::ostream &os) {}
void
writeStream(std::ostream &os)
{
    saveBlob(os);
}
)"},
    };
    EXPECT_TRUE(runSources(sources, m).findings.empty());
}

TEST(LintFlow, StatusRefAccessorIsNotFlagged)
{
    // `const Status &status()` accessors return a view, not an
    // obligation: a discarded accessor call is dead code, not a
    // dropped error.
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/accessor.cc", R"(
const Status &statusOf(const Thing &thing);
void
poke(const Thing &thing)
{
    statusOf(thing);
}
)"},
    };
    EXPECT_TRUE(runSources(sources, m).findings.empty());
}

TEST(LintFlow, HotCallAllocReachesAcrossTus)
{
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/hot.cc",
         "float hotLoop(std::vector<int> &v)\n"
         "{\n"
         "    grow(v);\n"
         "    return 0.0f;\n"
         "}\n"},
        {"src/support/growing.cc",
         "void grow(std::vector<int> &v)\n"
         "{\n"
         "    v.push_back(1);\n"
         "}\n"},
    };
    const auto findings = runSources(sources, m).findings;
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "hot-call-alloc");
    EXPECT_EQ(findings[0].file, "src/support/growing.cc");
    EXPECT_EQ(findings[0].line, 3);
    // The message carries the call path from the hot entry.
    EXPECT_NE(findings[0].message.find("hotLoop -> grow"),
              std::string::npos);
}

TEST(LintFlow, ArenaOnlyCalleeStaysClean)
{
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/hot.cc",
         "float hotLoop(Arena &arena)\n"
         "{\n"
         "    return fill(arena);\n"
         "}\n"},
        {"src/support/filler.cc",
         "float fill(Arena &arena)\n"
         "{\n"
         "    float *scratch = arena.alloc(16);\n"
         "    return scratch[0];\n"
         "}\n"},
    };
    EXPECT_TRUE(runSources(sources, m).findings.empty());
}

TEST(LintFlow, UnreachableAllocatorIsNotFlagged)
{
    // Allocating code that the hot entry never reaches is the per-TU
    // hot-alloc rule's business, not the transitive walk's.
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/hot.cc",
         "float hotLoop(const float *x) { return x[0]; }\n"},
        {"src/support/cold.cc",
         "void coldPath(std::vector<int> &v) { v.push_back(1); }\n"},
    };
    EXPECT_TRUE(runSources(sources, m).findings.empty());
}

TEST(LintFlow, LocalLambdaDoesNotAliasCrossTuName)
{
    // A local `split` lambda must not resolve to an allocating free
    // function of the same name in another TU.
    const Manifest m = testManifest();
    const std::vector<SourceFile> sources = {
        {"src/hot.cc", R"(
float
hotLoop(long n)
{
    auto split = [](long v) { return v / 2; };
    return static_cast<float>(split(n));
}
)"},
        {"src/support/strings.cc", R"(
std::string
split(const std::string &text)
{
    return text.substr(1);
}
)"},
    };
    const auto report = runSources(sources, m);
    EXPECT_TRUE(report.findings.empty())
        << report.findings[0].toString();
}

TEST(LintFlow, SuppressionBudgetIsTreeWide)
{
    auto parsed = parseManifest(
        "must-check src/\nsuppression-budget 1\n");
    ASSERT_TRUE(parsed.ok());
    const char *suppressed =
        "bool near(double x)\n"
        "{\n"
        "    return x == 0.5; "
        "// tlp-lint: allow(float-eq) -- fixture tolerance\n"
        "}\n";
    const std::vector<SourceFile> sources = {
        {"src/a.cc", suppressed},
        {"src/b.cc", suppressed},
    };
    const auto over = runSources(sources, parsed.value());
    EXPECT_EQ(over.suppressions, 2);
    EXPECT_EQ(ruleSet(over),
              std::set<std::string>{"suppression-budget"});

    // At or under budget is clean; -1 (unset) never fires.
    parsed.value().suppression_budget = 2;
    EXPECT_TRUE(runSources(sources, parsed.value()).findings.empty());
    parsed.value().suppression_budget = -1;
    EXPECT_TRUE(runSources(sources, parsed.value()).findings.empty());
}

TEST(LintFlow, ManifestPathMatchingStopsAtComponentBoundaries)
{
    // The regression shape: a directive scoped to src/tuner/session
    // must not leak onto src/tuner/session_extra.cc, while extension
    // and directory boundaries still match.
    EXPECT_TRUE(pathInScope("src/tuner/session.cc",
                            "src/tuner/session.cc"));
    EXPECT_TRUE(pathInScope("src/tuner/session.cc", "src/tuner/session"));
    EXPECT_TRUE(pathInScope("src/tuner/session.h", "src/tuner/session"));
    EXPECT_FALSE(pathInScope("src/tuner/session_extra.cc",
                             "src/tuner/session"));
    EXPECT_FALSE(pathInScope("src/tuner/session_extra.cc",
                             "src/tuner/session.cc"));
    EXPECT_TRUE(pathInScope("src/tuner/session.cc", "src/tuner/"));
    EXPECT_TRUE(pathInScope("src/tuner/session.cc", "src/tuner"));
    EXPECT_FALSE(pathInScope("src/tuner_extra/x.cc", "src/tuner"));

    // Through the rule engine: the Fig. 10 forbid-include prefix
    // covers tlp_features.{cc,h} but not a sibling with a longer stem.
    const Manifest m = testManifest();
    const char *text = "#include \"schedule/lower.h\"\n";
    EXPECT_EQ(ruleSet(lintFile("src/features/tlp_features.cc", text, m))
                  .count("include-forbidden"),
              1u);
    EXPECT_EQ(ruleSet(lintFile("src/features/tlp_features_extra.cc",
                               text, m))
                  .count("include-forbidden"),
              0u);
}

// --- golden fixture trees (on disk) -------------------------------------

TEST(LintFixtures, CleanTreeIsClean)
{
    const auto manifest = loadManifest(
        std::string(TLP_LINT_FIXTURE_DIR) + "/clean/manifest.txt");
    ASSERT_TRUE(manifest.ok()) << manifest.status().toString();
    const auto report = lintTree(
        std::string(TLP_LINT_FIXTURE_DIR) + "/clean", {"."},
        manifest.value());
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_GE(report.value().files_scanned, 5);
    for (const Finding &f : report.value().findings)
        ADD_FAILURE() << f.toString();
}

TEST(LintFixtures, DirtyTreeFlagsEveryRuleExactlyWhereExpected)
{
    const auto manifest = loadManifest(
        std::string(TLP_LINT_FIXTURE_DIR) + "/dirty/manifest.txt");
    ASSERT_TRUE(manifest.ok()) << manifest.status().toString();
    const auto report = lintTree(
        std::string(TLP_LINT_FIXTURE_DIR) + "/dirty", {"."},
        manifest.value());
    ASSERT_TRUE(report.ok()) << report.status().toString();

    const std::set<std::string> expected = {
        "rand",          "random-device",    "std-engine",
        "wallclock",     "layering",         "include-forbidden",
        "include-required", "loader-fatal",  "unbounded-alloc",
        "hot-alloc",     "raw-io",           "pragma-once",
        "float-eq",      "member-underscore", "unused-suppression",
        "bad-suppression", "unchecked-result", "hot-call-alloc",
        "suppression-budget",
    };
    EXPECT_EQ(ruleSet(report.value().findings), expected);

    // The Fig. 10 pair: forbidden include flagged in the TLP TU, the
    // missing lowering include flagged in the Ansor TU.
    auto has = [&](const std::string &file, const std::string &rule) {
        return std::any_of(report.value().findings.begin(),
                           report.value().findings.end(),
                           [&](const Finding &f) {
                               return f.file == file && f.rule == rule;
                           });
    };
    EXPECT_TRUE(has("src/features/tlp_features.cc", "include-forbidden"));
    EXPECT_TRUE(has("src/features/ansor_features.cc",
                    "include-required"));

    // The flow-aware pair: the planted discarded Status fires in its
    // own TU, and the allocating helper fires in the helper's TU (the
    // hot entry lives in hot_entry.cc).
    EXPECT_TRUE(has("unchecked_result.cc", "unchecked-result"));
    EXPECT_TRUE(has("hot_call_alloc.cc", "hot-call-alloc"));
}

TEST(LintFixtures, EveryRuleIdIsExercisedByAGoldenFixture)
{
    // Meta-test: a rule the engine knows but no fixture fires is a
    // rule that can silently stop working.
    const auto manifest = loadManifest(
        std::string(TLP_LINT_FIXTURE_DIR) + "/dirty/manifest.txt");
    ASSERT_TRUE(manifest.ok()) << manifest.status().toString();
    const auto report = lintTree(
        std::string(TLP_LINT_FIXTURE_DIR) + "/dirty", {"."},
        manifest.value());
    ASSERT_TRUE(report.ok()) << report.status().toString();
    const std::set<std::string> fired = ruleSet(report.value().findings);
    for (const std::string &rule : allRuleIds())
        EXPECT_TRUE(fired.count(rule))
            << "rule \"" << rule
            << "\" is not exercised by any golden fixture";
}

TEST(LintFixtures, BadManifestFailsToParse)
{
    const auto manifest = loadManifest(
        std::string(TLP_LINT_FIXTURE_DIR) + "/badmanifest/manifest.txt");
    ASSERT_FALSE(manifest.ok());
    EXPECT_NE(manifest.status().toString().find("line 5"),
              std::string::npos);
}

TEST(LintFixtures, MissingTreeIsAnIoError)
{
    const auto report =
        lintTree("/nonexistent/fixture/root", {"."}, Manifest{});
    ASSERT_FALSE(report.ok());
}
