/**
 * @file
 * Tests for the artifact audit & repair module (DESIGN.md §15): format
 * detection by magic across all five artifacts, the six-way state
 * classification, deterministic reports, repair (quarantine + sweep +
 * dataset salvage), and quarantine-generation collision handling.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "artifact/audit.h"
#include "bench/bench_common.h"
#include "dataset/collect.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "models/snapshot.h"
#include "models/supervisor.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "tuner/service/service.h"
#include "tuner/session.h"

namespace tlp {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory per test. */
class ArtifactAudit : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/tlp_test_artifact_audit";
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    void
    plant(const std::string &name, const std::string &bytes) const
    {
        std::ofstream os(path(name), std::ios::binary);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }

    std::string
    slurp(const std::string &name) const
    {
        std::ifstream is(path(name), std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    }

    std::string dir_;
};

const data::Dataset &
smallDataset()
{
    static const data::Dataset dataset = [] {
        data::CollectOptions options;
        options.networks = {"resnet-18"};
        options.platforms = {"platinum-8272"};
        options.programs_per_subgraph = 4;
        options.seed = 21;
        return data::collectDataset(options);
    }();
    return dataset;
}

/** smallDataset() padded past one 256-record chunk, so a damaged tail
 *  chunk still leaves a whole chunk for salvage to keep. */
const data::Dataset &
chunkyDataset()
{
    static const data::Dataset dataset = [] {
        data::Dataset big = smallDataset();
        const size_t base = big.records.size();
        TLP_CHECK(base > 0);
        while (big.records.size() < 300)
            big.records.push_back(big.records[big.records.size() % base]);
        return big;
    }();
    return dataset;
}

std::string
datasetBytes(const data::Dataset &dataset)
{
    std::ostringstream os;
    dataset.save(os);
    return os.str();
}

std::string
snapshotBytes()
{
    Rng rng(7);
    model::TlpNet net(model::TlpNetConfig{}, rng);
    std::ostringstream os;
    model::saveTlpSnapshot(os, net);
    return os.str();
}

std::string
mlpSnapshotBytes()
{
    Rng rng(8);
    model::TensetMlpNet net(model::MlpConfig{}, rng);
    std::ostringstream os;
    model::saveMlpSnapshot(os, net);
    return os.str();
}

std::string
checkpointBytes()
{
    static const std::string bytes = [] {
        const std::string path = "/tmp/tlp_test_audit_seed.ckpt";
        fs::remove(path);
        ir::Workload full =
            ir::partitionGraph(ir::buildNetwork("resnet-18"));
        ir::Workload slim;
        slim.name = "resnet-18-slice";
        slim.subgraphs.push_back(full.subgraphs[0]);
        slim.weights.push_back(full.weights[0]);
        tune::TuneOptions options;
        options.rounds = 2;
        options.measures_per_round = 4;
        options.evolution.population = 16;
        options.evolution.iterations = 1;
        options.evolution.children_per_iter = 8;
        options.checkpoint_path = path;
        options.checkpoint_every = 1;
        model::RandomCostModel cost_model(9);
        tune::tuneWorkload(slim,
                           hw::HardwarePlatform::preset("platinum-8272"),
                           cost_model, options);
        std::ifstream is(path, std::ios::binary);
        std::string contents((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
        fs::remove(path);
        return contents;
    }();
    return bytes;
}

std::string
trainCheckpointBytes()
{
    Rng rng(17);
    nn::Tensor w = nn::Tensor::randn({4}, rng, 1.0);
    nn::Adam adam({w}, {.lr = 0.01});
    model::SupervisorOptions options;
    options.enabled = true;
    model::TrainSupervisor supervisor({w}, adam, options);
    supervisor.step([&] {
        adam.zeroGrad();
        auto &grad = w.grad();
        for (size_t j = 0; j < grad.size(); ++j)
            grad[j] = 0.25f;
        return 1.0;
    });
    std::ostringstream os(std::ios::binary);
    model::writeTrainCheckpoint(os, supervisor.makeCheckpoint(1));
    return os.str();
}

std::string
memoBytes(uint64_t fingerprint)
{
    std::ostringstream os;
    bench::writeBenchMemo(os, fingerprint, smallDataset());
    return os.str();
}

std::string
curveBytes()
{
    tune::TuneResult result;
    return serve::formatCurveFile("s000", serve::SessionStatus::Finished,
                                  result);
}

TEST_F(ArtifactAudit, DetectsAllFiveFormatsByMagicPlusCurves)
{
    plant("d.bin", datasetBytes(smallDataset()));
    plant("w.bin", snapshotBytes());
    plant("m.bin", mlpSnapshotBytes());
    plant("s.bin", checkpointBytes());
    plant("t.bin", trainCheckpointBytes());
    plant("memo.bin", memoBytes(0xfeedbeef));
    plant("c.curve", curveBytes());

    using K = artifact::ArtifactKind;
    const std::pair<const char *, K> expect[] = {
        {"d.bin", K::Dataset},          {"w.bin", K::Snapshot},
        {"m.bin", K::Snapshot},         {"s.bin", K::TuningCheckpoint},
        {"t.bin", K::TrainCheckpoint},  {"memo.bin", K::BenchMemo},
        {"c.curve", K::Curve},
    };
    for (const auto &[name, kind] : expect) {
        const artifact::ArtifactRecord record =
            artifact::auditFile(path(name));
        EXPECT_EQ(record.kind, kind) << name;
        EXPECT_EQ(record.state, artifact::ArtifactState::Intact)
            << name << ": " << record.detail;
    }
}

TEST_F(ArtifactAudit, MemoFingerprintStalenessIsNotDamage)
{
    // The audit verifies structure only: a memo stamped with any
    // fingerprint is intact — staleness is a cache miss for the bench
    // loader, not damage for the doctor.
    plant("stale_memo.bin", memoBytes(0x0ddba11));
    const auto record = artifact::auditFile(path("stale_memo.bin"));
    EXPECT_EQ(record.kind, artifact::ArtifactKind::BenchMemo);
    EXPECT_EQ(record.state, artifact::ArtifactState::Intact)
        << record.detail;
}

TEST_F(ArtifactAudit, ClassifiesDamageDebrisEvidenceAndAliens)
{
    std::string corrupt = checkpointBytes();
    corrupt[corrupt.size() / 2] ^= 0x5a;
    plant("good.ckpt", checkpointBytes());
    plant("bad.ckpt", corrupt);
    plant("prose.ckpt", "definitely not a TLPS checkpoint\n");
    plant("x.ckpt.tmp.123.4", "stranded");
    plant("old.ckpt.quarantined.2", "torn evidence bytes");
    plant("README.txt", "not ours\n");

    const artifact::AuditReport report = artifact::auditDirectory(dir_);
    EXPECT_EQ(report.records.size(), 6u);
    EXPECT_EQ(report.intact, 1);
    EXPECT_EQ(report.corrupt, 2);
    EXPECT_EQ(report.stale_temps, 1);
    EXPECT_EQ(report.quarantine_evidence, 1);
    EXPECT_EQ(report.unrecognized, 1);
    EXPECT_TRUE(report.damaged());

    // The extension fallback names the format even with the magic gone.
    for (const auto &record : report.records) {
        if (record.name == "prose.ckpt") {
            EXPECT_EQ(record.kind,
                      artifact::ArtifactKind::TuningCheckpoint);
            EXPECT_EQ(record.state, artifact::ArtifactState::Corrupt);
        }
    }

    // Deterministic report: same directory, same bytes.
    EXPECT_EQ(
        artifact::formatAuditReport(report),
        artifact::formatAuditReport(artifact::auditDirectory(dir_)));
}

TEST_F(ArtifactAudit, VersionSkewIsDistinctFromCorrupt)
{
    std::string skewed = datasetBytes(smallDataset());
    // Header layout (DESIGN.md §8): u32 magic, then u32 version.
    const uint32_t future = 99;
    std::memcpy(skewed.data() + 4, &future, sizeof(future));
    plant("future.tlpd", skewed);
    const auto record = artifact::auditFile(path("future.tlpd"));
    EXPECT_EQ(record.kind, artifact::ArtifactKind::Dataset);
    EXPECT_EQ(record.state, artifact::ArtifactState::VersionSkew);
}

TEST_F(ArtifactAudit, RepairQuarantinesSweepsAndSalvages)
{
    std::string bad_ckpt = checkpointBytes();
    bad_ckpt[bad_ckpt.size() - 9] ^= 0xff;
    plant("bad.ckpt", bad_ckpt);
    plant("junk.ckpt.tmp.99.1", "debris");
    // Damage the tail record chunk of a two-chunk dataset: salvage must
    // keep the intact chunk and jail the damaged original. Walk the
    // section frames (8-byte header, then tag u32 / size u64 / crc u32
    // before each payload) to land the flip inside "RECS" payload.
    std::string hurt = datasetBytes(chunkyDataset());
    size_t last_recs_payload = 0;
    uint64_t last_recs_size = 0;
    for (size_t at = 8; at + 16 <= hurt.size();) {
        uint32_t tag = 0;
        uint64_t size = 0;
        std::memcpy(&tag, hurt.data() + at, 4);
        std::memcpy(&size, hurt.data() + at + 4, 8);
        if (size > hurt.size() - (at + 16))
            break;
        if (tag == sectionTag("RECS")) {
            last_recs_payload = at + 16;
            last_recs_size = size;
        }
        at += 16 + size;
    }
    ASSERT_GT(last_recs_size, 0u);
    hurt[last_recs_payload + last_recs_size / 2] ^= 0x5a;
    plant("data.tlpd", hurt);

    const artifact::RepairReport repaired =
        artifact::repairDirectory(dir_);
    EXPECT_EQ(repaired.quarantined, 1);
    EXPECT_EQ(repaired.swept, 1);
    EXPECT_EQ(repaired.salvaged_datasets, 1);
    EXPECT_GT(repaired.salvaged_records, 0);
    EXPECT_EQ(repaired.failures, 0);

    EXPECT_TRUE(fs::exists(path("bad.ckpt.quarantined.1")));
    EXPECT_FALSE(fs::exists(path("bad.ckpt")));
    EXPECT_FALSE(fs::exists(path("junk.ckpt.tmp.99.1")));
    // The salvaged dataset is strictly loadable; the damaged original
    // is kept as evidence.
    EXPECT_TRUE(fs::exists(path("data.tlpd.quarantined.1")));
    const auto reloaded = data::Dataset::tryLoad(path("data.tlpd"));
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().toString();
    EXPECT_GT(reloaded.value().records.size(), 0u);
    EXPECT_LT(reloaded.value().records.size(),
              chunkyDataset().records.size());

    // Idempotent: the repaired directory audits clean and a second
    // repair finds nothing.
    const artifact::AuditReport after = artifact::auditDirectory(dir_);
    EXPECT_FALSE(after.damaged());
    const artifact::RepairReport again = artifact::repairDirectory(dir_);
    EXPECT_EQ(again.quarantined, 0);
    EXPECT_EQ(again.swept, 0);
    EXPECT_EQ(again.salvaged_datasets, 0);
}

TEST_F(ArtifactAudit, QuarantineSkipsExistingGenerationsEvenSparse)
{
    // Pre-existing non-contiguous evidence: new quarantines must land
    // in the gaps, never overwriting any generation.
    plant("a.ckpt.quarantined.1", "gen one");
    plant("a.ckpt.quarantined.3", "gen three");

    plant("a.ckpt", "damaged A");
    const auto first = artifact::quarantineDamaged(path("a.ckpt"));
    EXPECT_EQ(first.jail, path("a.ckpt.quarantined.2"));

    plant("a.ckpt", "damaged B");
    const auto second = artifact::quarantineDamaged(path("a.ckpt"));
    EXPECT_EQ(second.jail, path("a.ckpt.quarantined.4"));

    EXPECT_EQ(slurp("a.ckpt.quarantined.1"), "gen one");
    EXPECT_EQ(slurp("a.ckpt.quarantined.2"), "damaged A");
    EXPECT_EQ(slurp("a.ckpt.quarantined.3"), "gen three");
    EXPECT_EQ(slurp("a.ckpt.quarantined.4"), "damaged B");
}

TEST_F(ArtifactAudit, QuarantineAtGenerationCapKeepsAllEvidence)
{
    plant("b.ckpt.quarantined.1", "gen one");
    plant("b.ckpt.quarantined.2", "gen two");
    plant("b.ckpt", "still damaged");

    // The raw primitive refuses: artifact untouched, evidence intact.
    const auto refused = quarantineArtifact(path("b.ckpt"), 2);
    EXPECT_FALSE(refused.ok());
    EXPECT_TRUE(fs::exists(path("b.ckpt")));

    // The policy wrapper falls back to unlinking the damaged file so
    // it can never be re-adopted — existing generations still intact.
    const auto action = artifact::quarantineDamaged(path("b.ckpt"), 2);
    EXPECT_TRUE(action.ok());
    EXPECT_TRUE(action.removed);
    EXPECT_FALSE(fs::exists(path("b.ckpt")));
    EXPECT_EQ(slurp("b.ckpt.quarantined.1"), "gen one");
    EXPECT_EQ(slurp("b.ckpt.quarantined.2"), "gen two");
}

TEST_F(ArtifactAudit, VerifyArtifactFileAutoDetects)
{
    plant("w.bin", snapshotBytes());
    const auto snap = artifact::verifyArtifactFile(path("w.bin"));
    EXPECT_EQ(snap.kind, artifact::ArtifactKind::Snapshot);
    EXPECT_TRUE(snap.status.ok()) << snap.status.toString();

    plant("alien.bin", "four score and seven artifacts ago");
    const auto alien = artifact::verifyArtifactFile(path("alien.bin"));
    EXPECT_EQ(alien.kind, artifact::ArtifactKind::Unknown);
    EXPECT_FALSE(alien.status.ok());

    const auto missing =
        artifact::verifyArtifactFile(path("no_such_file.bin"));
    EXPECT_FALSE(missing.status.ok());
    EXPECT_EQ(missing.status.code(), ErrorCode::IoError);
}

} // namespace
} // namespace tlp
