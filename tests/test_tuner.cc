/**
 * @file
 * Integration tests for the evolutionary search and tuning sessions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "tuner/session.h"

namespace tlp::tune {
namespace {

ir::Workload
tinyWorkload()
{
    // A small slice of ResNet-18: first few distinct subgraphs.
    ir::Workload full = ir::partitionGraph(ir::buildNetwork("resnet-18"));
    ir::Workload slim;
    slim.name = "resnet-18-slice";
    for (size_t i = 0; i < 3 && i < full.subgraphs.size(); ++i) {
        slim.subgraphs.push_back(full.subgraphs[i]);
        slim.weights.push_back(full.weights[i]);
    }
    return slim;
}

TuneOptions
quickOptions()
{
    TuneOptions options;
    options.rounds = 6;
    options.measures_per_round = 4;
    options.evolution.population = 24;
    options.evolution.iterations = 2;
    options.evolution.children_per_iter = 12;
    options.measure.seconds_per_measure = 0.25;
    return options;
}

TEST(Evolution, ReturnsRankedUnmeasuredCandidates)
{
    const auto workload = tinyWorkload();
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    model::RandomCostModel cost_model(3);
    Rng rng(4);
    std::set<uint64_t> measured;
    EvolutionOptions options;
    options.population = 32;
    options.iterations = 2;
    const auto result = evolveOneRound(policy, cost_model, 0, 5, measured,
                                       options, rng);
    EXPECT_LE(result.candidates.size(), 5u);
    EXPECT_GE(result.candidates.size(), 1u);
    EXPECT_EQ(result.candidates.size(), result.scores.size());
    EXPECT_GE(result.model_seconds, 0.0);
    // Excluded hashes are respected.
    std::set<uint64_t> returned;
    for (const auto &state : result.candidates)
        returned.insert(state.steps().hash());
    EXPECT_EQ(returned.size(), result.candidates.size());
}

TEST(Evolution, ExclusionFilterWorks)
{
    const auto workload = tinyWorkload();
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    model::RandomCostModel cost_model(5);
    Rng rng(6);
    EvolutionOptions options;
    options.population = 16;
    options.iterations = 1;
    auto first = evolveOneRound(policy, cost_model, 0, 4, {}, options,
                                rng);
    std::set<uint64_t> measured;
    for (const auto &state : first.candidates)
        measured.insert(state.steps().hash());
    Rng rng2(6);
    auto second = evolveOneRound(policy, cost_model, 0, 4, measured,
                                 options, rng2);
    for (const auto &state : second.candidates)
        EXPECT_EQ(measured.count(state.steps().hash()), 0u);
}

TEST(Session, ProducesMonotoneCurve)
{
    const auto workload = tinyWorkload();
    model::RandomCostModel cost_model(7);
    const auto result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     cost_model, quickOptions());

    EXPECT_GT(result.total_measurements, 0);
    EXPECT_FALSE(result.curve.empty());
    EXPECT_TRUE(std::isfinite(result.best_workload_latency_ms));
    // Workload latency is non-increasing once finite.
    double last = std::numeric_limits<double>::infinity();
    for (const auto &point : result.curve) {
        if (std::isfinite(point.workload_latency_ms)) {
            EXPECT_LE(point.workload_latency_ms, last + 1e-9);
            last = point.workload_latency_ms;
        }
        EXPECT_GT(point.search_seconds, 0.0);
    }
    EXPECT_NEAR(result.total_search_seconds,
                result.measure_seconds + result.model_seconds, 1e-9);
}

TEST(Session, EveryTaskGetsARound)
{
    const auto workload = tinyWorkload();
    model::RandomCostModel cost_model(8);
    const auto result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     cost_model, quickOptions());
    for (double best : result.best_per_task_ms)
        EXPECT_TRUE(std::isfinite(best));
}

TEST(Session, GuidedSearchBeatsFewRandomRounds)
{
    // With an online model, later rounds should find better programs
    // than pure chance given the same budget. (Probabilistic but stable
    // for fixed seeds.)
    const auto workload = tinyWorkload();
    TuneOptions options = quickOptions();
    options.rounds = 9;

    model::AnsorOnlineCostModel online;
    const auto guided =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     online, options);

    model::RandomCostModel random_model(9);
    const auto random_result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     random_model, options);

    EXPECT_LE(guided.best_workload_latency_ms,
              random_result.best_workload_latency_ms * 1.4);
}

TEST(Session, TimeToReachSemantics)
{
    TuneResult result;
    result.curve = {{10, 1.0, 100.0}, {20, 2.0, 50.0}, {30, 3.0, 25.0}};
    EXPECT_DOUBLE_EQ(result.timeToReach(60.0), 2.0);
    EXPECT_DOUBLE_EQ(result.timeToReach(25.0), 3.0);
    EXPECT_TRUE(std::isinf(result.timeToReach(1.0)));
}

TEST(Session, TimeToReachBoundaryCases)
{
    // Empty curve: nothing was ever reached.
    TuneResult empty;
    EXPECT_TRUE(std::isinf(empty.timeToReach(1e9)));

    TuneResult result;
    result.curve = {{10, 1.0, 100.0}, {20, 2.0, 50.0}, {30, 3.0, 25.0}};
    // Target hit EXACTLY on a curve point (<= , not <): the first
    // point's own latency counts as reached at that point's time.
    EXPECT_DOUBLE_EQ(result.timeToReach(100.0), 1.0);
    EXPECT_DOUBLE_EQ(result.timeToReach(50.0), 2.0);
    // Target below the best the curve ever reached: never.
    EXPECT_TRUE(std::isinf(result.timeToReach(24.999)));
    // Target above everything: reached at the very first point.
    EXPECT_DOUBLE_EQ(result.timeToReach(1e12), 1.0);
    // A generous (infinite) target is reached immediately; an
    // impossible (-inf) one never.
    EXPECT_DOUBLE_EQ(
        result.timeToReach(std::numeric_limits<double>::infinity()),
        1.0);
    EXPECT_TRUE(std::isinf(
        result.timeToReach(-std::numeric_limits<double>::infinity())));
}

TEST(Session, GpuWorkloadTunes)
{
    const auto workload = tinyWorkload();
    model::RandomCostModel cost_model(10);
    const auto result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("tesla-t4"),
                     cost_model, quickOptions());
    EXPECT_TRUE(std::isfinite(result.best_workload_latency_ms));
    EXPECT_GT(result.total_measurements, 0);
}

TEST(Session, CurveStaysMonotoneUnderFaults)
{
    // 30% injected fault rate: the session must finish, the curve must
    // stay monotone, and no non-finite latency may surface anywhere.
    const auto workload = tinyWorkload();
    TuneOptions options = quickOptions();
    options.rounds = 9;
    options.measure.faults = hw::FaultProfile::uniform(0.3);
    model::AnsorOnlineCostModel cost_model;
    const auto result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     cost_model, options);

    EXPECT_GT(result.failed_measurements, 0);
    EXPECT_GT(result.wasted_measure_seconds, 0.0);
    EXPECT_LE(result.wasted_measure_seconds, result.measure_seconds);
    double last = std::numeric_limits<double>::infinity();
    for (const auto &point : result.curve) {
        if (std::isfinite(point.workload_latency_ms)) {
            EXPECT_LE(point.workload_latency_ms, last + 1e-9);
            last = point.workload_latency_ms;
        }
    }
    for (double best : result.best_per_task_ms)
        EXPECT_FALSE(std::isnan(best));
    int64_t classified = 0;
    for (int64_t count : result.status_counts) {
        EXPECT_GE(count, 0);
        classified += count;
    }
    EXPECT_EQ(classified, result.total_measurements);
}

TEST(Session, FaultyRunIsDeterministic)
{
    const auto workload = tinyWorkload();
    TuneOptions options = quickOptions();
    options.measure.faults = hw::FaultProfile::uniform(0.25);

    model::AnsorOnlineCostModel model_a, model_b;
    const auto a =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     model_a, options);
    const auto b =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     model_b, options);

    EXPECT_EQ(a.total_measurements, b.total_measurements);
    EXPECT_EQ(a.failed_measurements, b.failed_measurements);
    EXPECT_DOUBLE_EQ(a.measure_seconds, b.measure_seconds);
    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (size_t i = 0; i < a.curve.size(); ++i) {
        EXPECT_EQ(a.curve[i].measurements, b.curve[i].measurements);
        EXPECT_DOUBLE_EQ(a.curve[i].workload_latency_ms,
                         b.curve[i].workload_latency_ms);
    }
}

TEST(Session, CheckpointResumeMatchesUninterruptedRun)
{
    const auto workload = tinyWorkload();
    const std::string ckpt =
        ::testing::TempDir() + "tlp_resume_test.ckpt";
    std::remove(ckpt.c_str());

    TuneOptions options = quickOptions();
    options.rounds = 8;
    options.measure.faults = hw::FaultProfile::uniform(0.2);
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 2;

    // Reference: one uninterrupted run.
    model::AnsorOnlineCostModel reference_model;
    const auto reference =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     reference_model, options);

    // "Killed" run: only half the rounds, leaving a checkpoint behind.
    std::remove(ckpt.c_str());
    TuneOptions half = options;
    half.rounds = 4;
    model::AnsorOnlineCostModel killed_model;
    tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                 killed_model, half);

    // Resume with a fresh model and the full budget.
    TuneOptions resumed_options = options;
    resumed_options.resume = true;
    model::AnsorOnlineCostModel resumed_model;
    const auto resumed =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     resumed_model, resumed_options);

    // The resumed curve is bit-identical in measurements, latency and
    // simulated seconds (model wall clock is real time and excluded).
    EXPECT_EQ(resumed.total_measurements, reference.total_measurements);
    EXPECT_DOUBLE_EQ(resumed.measure_seconds, reference.measure_seconds);
    EXPECT_DOUBLE_EQ(resumed.best_workload_latency_ms,
                     reference.best_workload_latency_ms);
    ASSERT_EQ(resumed.curve.size(), reference.curve.size());
    for (size_t i = 0; i < reference.curve.size(); ++i) {
        EXPECT_EQ(resumed.curve[i].measurements,
                  reference.curve[i].measurements);
        EXPECT_DOUBLE_EQ(resumed.curve[i].workload_latency_ms,
                         reference.curve[i].workload_latency_ms);
    }
    std::remove(ckpt.c_str());
}

TEST(Session, CheckpointEveryRoundNeverRemeasuresFinalRound)
{
    // Cadence edge case: checkpoint_every = 1 and a crash after the
    // final round but before result emission. The final round's
    // checkpoint is on disk, so the resumed session must come back
    // already Finished and re-measure NOTHING — measurement counts and
    // simulated seconds are pinned to the uninterrupted run's.
    const auto workload = tinyWorkload();
    const std::string ckpt =
        ::testing::TempDir() + "tlp_cadence_test.ckpt";
    std::remove(ckpt.c_str());

    TuneOptions options = quickOptions();
    options.rounds = 5;
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 1;

    model::AnsorOnlineCostModel reference_model;
    const auto reference =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     reference_model, options);

    model::AnsorOnlineCostModel resumed_model;
    TuningSession session(workload,
                          hw::HardwarePlatform::preset("e5-2673"),
                          resumed_model, options);
    const Status status = session.resumeFromCheckpoint();
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(session.phase(), SessionPhase::Finished);
    EXPECT_EQ(session.roundsDone(), options.rounds);
    EXPECT_TRUE(session.done());
    EXPECT_FALSE(session.step());   // a step must be a no-op now

    const TuneResult &result = session.finish();
    EXPECT_EQ(result.total_measurements, reference.total_measurements);
    EXPECT_DOUBLE_EQ(result.measure_seconds, reference.measure_seconds);
    ASSERT_EQ(result.curve.size(), reference.curve.size());
    for (size_t i = 0; i < reference.curve.size(); ++i) {
        EXPECT_EQ(result.curve[i].measurements,
                  reference.curve[i].measurements);
        EXPECT_DOUBLE_EQ(result.curve[i].workload_latency_ms,
                         reference.curve[i].workload_latency_ms);
        EXPECT_DOUBLE_EQ(result.curve[i].measure_seconds,
                         reference.curve[i].measure_seconds);
    }
    EXPECT_DOUBLE_EQ(result.best_workload_latency_ms,
                     reference.best_workload_latency_ms);
    std::remove(ckpt.c_str());
}

TEST(Session, ResumeRejectsForeignCheckpoint)
{
    const auto workload = tinyWorkload();
    const std::string ckpt =
        ::testing::TempDir() + "tlp_foreign_test.ckpt";
    std::remove(ckpt.c_str());

    TuneOptions options = quickOptions();
    options.rounds = 2;
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 1;
    model::RandomCostModel cost_model(12);
    tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                 cost_model, options);

    // Same checkpoint, different seed: the config digest must not match.
    TuneOptions mismatched = options;
    mismatched.resume = true;
    mismatched.seed = options.seed + 1;
    model::RandomCostModel other_model(12);
    EXPECT_EXIT(tuneWorkload(workload,
                             hw::HardwarePlatform::preset("e5-2673"),
                             other_model, mismatched),
                ::testing::ExitedWithCode(kExitUserError),
                "different session");
    std::remove(ckpt.c_str());
}

} // namespace
} // namespace tlp::tune
