/**
 * @file
 * Integration tests for the evolutionary search and tuning sessions.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "tuner/session.h"

namespace tlp::tune {
namespace {

ir::Workload
tinyWorkload()
{
    // A small slice of ResNet-18: first few distinct subgraphs.
    ir::Workload full = ir::partitionGraph(ir::buildNetwork("resnet-18"));
    ir::Workload slim;
    slim.name = "resnet-18-slice";
    for (size_t i = 0; i < 3 && i < full.subgraphs.size(); ++i) {
        slim.subgraphs.push_back(full.subgraphs[i]);
        slim.weights.push_back(full.weights[i]);
    }
    return slim;
}

TuneOptions
quickOptions()
{
    TuneOptions options;
    options.rounds = 6;
    options.measures_per_round = 4;
    options.evolution.population = 24;
    options.evolution.iterations = 2;
    options.evolution.children_per_iter = 12;
    options.measure.seconds_per_measure = 0.25;
    return options;
}

TEST(Evolution, ReturnsRankedUnmeasuredCandidates)
{
    const auto workload = tinyWorkload();
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    model::RandomCostModel cost_model(3);
    Rng rng(4);
    std::set<uint64_t> measured;
    EvolutionOptions options;
    options.population = 32;
    options.iterations = 2;
    const auto result = evolveOneRound(policy, cost_model, 0, 5, measured,
                                       options, rng);
    EXPECT_LE(result.candidates.size(), 5u);
    EXPECT_GE(result.candidates.size(), 1u);
    EXPECT_EQ(result.candidates.size(), result.scores.size());
    EXPECT_GE(result.model_seconds, 0.0);
    // Excluded hashes are respected.
    std::set<uint64_t> returned;
    for (const auto &state : result.candidates)
        returned.insert(state.steps().hash());
    EXPECT_EQ(returned.size(), result.candidates.size());
}

TEST(Evolution, ExclusionFilterWorks)
{
    const auto workload = tinyWorkload();
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    model::RandomCostModel cost_model(5);
    Rng rng(6);
    EvolutionOptions options;
    options.population = 16;
    options.iterations = 1;
    auto first = evolveOneRound(policy, cost_model, 0, 4, {}, options,
                                rng);
    std::set<uint64_t> measured;
    for (const auto &state : first.candidates)
        measured.insert(state.steps().hash());
    Rng rng2(6);
    auto second = evolveOneRound(policy, cost_model, 0, 4, measured,
                                 options, rng2);
    for (const auto &state : second.candidates)
        EXPECT_EQ(measured.count(state.steps().hash()), 0u);
}

TEST(Session, ProducesMonotoneCurve)
{
    const auto workload = tinyWorkload();
    model::RandomCostModel cost_model(7);
    const auto result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     cost_model, quickOptions());

    EXPECT_GT(result.total_measurements, 0);
    EXPECT_FALSE(result.curve.empty());
    EXPECT_TRUE(std::isfinite(result.best_workload_latency_ms));
    // Workload latency is non-increasing once finite.
    double last = std::numeric_limits<double>::infinity();
    for (const auto &point : result.curve) {
        if (std::isfinite(point.workload_latency_ms)) {
            EXPECT_LE(point.workload_latency_ms, last + 1e-9);
            last = point.workload_latency_ms;
        }
        EXPECT_GT(point.search_seconds, 0.0);
    }
    EXPECT_NEAR(result.total_search_seconds,
                result.measure_seconds + result.model_seconds, 1e-9);
}

TEST(Session, EveryTaskGetsARound)
{
    const auto workload = tinyWorkload();
    model::RandomCostModel cost_model(8);
    const auto result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     cost_model, quickOptions());
    for (double best : result.best_per_task_ms)
        EXPECT_TRUE(std::isfinite(best));
}

TEST(Session, GuidedSearchBeatsFewRandomRounds)
{
    // With an online model, later rounds should find better programs
    // than pure chance given the same budget. (Probabilistic but stable
    // for fixed seeds.)
    const auto workload = tinyWorkload();
    TuneOptions options = quickOptions();
    options.rounds = 9;

    model::AnsorOnlineCostModel online;
    const auto guided =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     online, options);

    model::RandomCostModel random_model(9);
    const auto random_result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("e5-2673"),
                     random_model, options);

    EXPECT_LE(guided.best_workload_latency_ms,
              random_result.best_workload_latency_ms * 1.4);
}

TEST(Session, TimeToReachSemantics)
{
    TuneResult result;
    result.curve = {{10, 1.0, 100.0}, {20, 2.0, 50.0}, {30, 3.0, 25.0}};
    EXPECT_DOUBLE_EQ(result.timeToReach(60.0), 2.0);
    EXPECT_DOUBLE_EQ(result.timeToReach(25.0), 3.0);
    EXPECT_TRUE(std::isinf(result.timeToReach(1.0)));
}

TEST(Session, GpuWorkloadTunes)
{
    const auto workload = tinyWorkload();
    model::RandomCostModel cost_model(10);
    const auto result =
        tuneWorkload(workload, hw::HardwarePlatform::preset("tesla-t4"),
                     cost_model, quickOptions());
    EXPECT_TRUE(std::isfinite(result.best_workload_latency_ms));
    EXPECT_GT(result.total_measurements, 0);
}

} // namespace
} // namespace tlp::tune
