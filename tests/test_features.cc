/**
 * @file
 * Unit tests for TLP and Ansor-style feature extraction.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "features/ansor_features.h"
#include "features/tlp_features.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "sketch/policy.h"

namespace tlp::feat {
namespace {

sched::State
sampleState(const std::string &network, uint64_t seed, bool gpu = false)
{
    const auto w = ir::partitionGraph(ir::buildNetwork(network));
    Rng rng(seed);
    sketch::SchedulePolicy policy(w.subgraphs.at(0), gpu);
    return policy.sampleRandom(rng);
}

TEST(TlpFeatures, TokensStableAndDistinct)
{
    EXPECT_EQ(nameToken("parallel"), nameToken("parallel"));
    EXPECT_NE(nameToken("parallel"), nameToken("vectorize"));
    EXPECT_GT(nameToken("x"), 0);
}

TEST(TlpFeatures, EmbeddingStartsWithOneHot)
{
    sched::Primitive prim;
    prim.kind = sched::PrimKind::FU;
    prim.addNum(3);
    prim.addName("i");
    const auto emb = primitiveEmbedding(prim);
    ASSERT_EQ(emb.size(), static_cast<size_t>(sched::kNumPrimKinds) + 2);
    for (int k = 0; k < sched::kNumPrimKinds; ++k) {
        const float want =
            k == static_cast<int>(sched::PrimKind::FU) ? 1.0f : 0.0f;
        EXPECT_FLOAT_EQ(emb[static_cast<size_t>(k)], want);
    }
}

TEST(TlpFeatures, NumbersAreLogCompressed)
{
    sched::Primitive prim;
    prim.kind = sched::PrimKind::SP;
    prim.addNum(1024);
    const auto emb = primitiveEmbedding(prim);
    EXPECT_NEAR(emb.back(), std::log1p(1024.0), 1e-5);
}

TEST(TlpFeatures, FixedShapeWithCropAndPad)
{
    const auto state = sampleState("resnet-18", 3);
    TlpFeatureOptions options;
    options.seq_len = 25;
    options.emb_size = 22;
    const auto features = extractTlpFeatures(state.steps(), options);
    EXPECT_EQ(features.size(), 25u * 22u);

    options.seq_len = 8;
    options.emb_size = 10;
    const auto cropped = extractTlpFeatures(state.steps(), options);
    EXPECT_EQ(cropped.size(), 80u);
}

TEST(TlpFeatures, DistinctSchedulesGiveDistinctFeatures)
{
    const auto a = sampleState("resnet-18", 3);
    const auto b = sampleState("resnet-18", 4);
    ASSERT_NE(a.steps().hash(), b.steps().hash());
    const auto fa = extractTlpFeatures(a.steps());
    const auto fb = extractTlpFeatures(b.steps());
    EXPECT_NE(fa, fb);
}

TEST(TlpFeatures, DeterministicExtraction)
{
    const auto state = sampleState("bert-small", 5);
    EXPECT_EQ(extractTlpFeatures(state.steps()),
              extractTlpFeatures(state.steps()));
}

TEST(TlpFeatures, Method2ProducesSingleTokenRows)
{
    const auto state = sampleState("resnet-18", 6);
    TlpFeatureOptions options;
    options.method = TlpMethod::TokenPerPrim;
    const auto features = extractTlpFeatures(state.steps(), options);
    // Every row has exactly one non-zero (the token) for real primitives.
    const size_t rows = std::min<size_t>(
        static_cast<size_t>(options.seq_len),
        static_cast<size_t>(state.steps().size()));
    for (size_t r = 0; r < rows; ++r) {
        int non_zero = 0;
        for (int c = 0; c < options.emb_size; ++c)
            non_zero += features[r * options.emb_size +
                                 // tlp-lint: allow(float-eq) -- one-hot slots are written as exact 0.0f; counting them is the point of the test
                                 static_cast<size_t>(c)] != 0.0f;
        EXPECT_EQ(non_zero, 1) << "row " << r;
    }
}

TEST(TlpFeatures, RawEmbeddingSizeMatchesWidestPrimitive)
{
    const auto state = sampleState("resnet-18", 7);
    const int raw = rawEmbeddingSize(state.steps());
    EXPECT_GE(raw, sched::kNumPrimKinds);
    int widest = 0;
    for (const auto &prim : state.steps().prims)
        widest = std::max(widest, prim.numParams());
    EXPECT_EQ(raw, sched::kNumPrimKinds + widest);
}

TEST(AnsorFeatures, FixedSizeIs164)
{
    EXPECT_EQ(kAnsorFeatureSize, 164);
    const auto state = sampleState("resnet-18", 8);
    const auto features = extractAnsorFeatures(sched::lower(state));
    EXPECT_EQ(features.size(), 164u);
}

TEST(AnsorFeatures, SensitiveToSchedule)
{
    const auto a = sampleState("resnet-18", 9);
    const auto b = sampleState("resnet-18", 10);
    const auto fa = extractAnsorFeatures(sched::lower(a));
    const auto fb = extractAnsorFeatures(sched::lower(b));
    EXPECT_NE(fa, fb);
}

TEST(AnsorFeatures, GpuFlagSet)
{
    const auto state = sampleState("resnet-18", 11, true);
    const auto features = extractAnsorFeatures(sched::lower(state));
    EXPECT_FLOAT_EQ(features[4 * kAnsorStageFeatures + 2], 1.0f);
}

TEST(AnsorFeatures, FiniteForWholeZooSamples)
{
    Rng rng(12);
    for (const auto &name : {"mobilenet-v2", "bert-tiny"}) {
        const auto w = ir::partitionGraph(ir::buildNetwork(name));
        for (const auto &sg : w.subgraphs) {
            sketch::SchedulePolicy policy(sg, false);
            const auto state = policy.sampleRandom(rng);
            const auto features = extractAnsorFeatures(sched::lower(state));
            for (float f : features)
                ASSERT_TRUE(std::isfinite(f)) << sg->key();
        }
    }
}

} // namespace
} // namespace tlp::feat
