// Every violation below carries an audited suppression, so this file
// must lint clean — and every suppression matches a real finding, so
// none of them trips unused-suppression. Deleting any one comment must
// make the lint job fail (the cli_smoke harness relies on that).
#include <cstdlib>

// tlp-lint: allow(rand) -- fixture: proves a suppressed libc rand passes
int suppressedRand() { return rand(); }

long
suppressedClock()
{
    // tlp-lint: allow(wallclock) -- fixture: suppressed clock read outside the allowlist
    return time(nullptr);
}

// The wallclock token sits on the line after its suppression comment.
// tlp-lint: allow(wallclock) -- fixture: line-above suppression form
long alsoSuppressed() { return std::chrono::system_clock::now().time_since_epoch().count(); }

bool
suppressedFloatEq(double x)
{
    return x != 0.25; // tlp-lint: allow(float-eq) -- fixture: trailing same-line suppression form
}

void
suppressedLoaderFatal(bool bad)
{
    // tlp-lint: allow(loader-fatal) -- fixture: suppressed abort inside a loader TU
    if (bad) { TLP_FATAL("boom"); }
}

void
suppressedAlloc(unsigned long count, int *sink)
{
    // tlp-lint: allow(unbounded-alloc) -- fixture: count is bounded by the caller
    vec.resize(count);
    (void)sink;
}
