// Reachable on the call graph from the hot-entry root in hot_path.cc,
// but allocation-free: scratch comes from the caller's arena, so the
// transitive hot-call-alloc walk must stay clean.
float
accumulate(Arena &arena, const float *features, long dim)
{
    float *scratch = arena.alloc(dim);
    float acc = 0.0f;
    for (long d = 0; d < dim; ++d) {
        scratch[d] = features[d];
        acc += scratch[d];
    }
    return acc;
}
