// Declared must-check in the manifest: every Status produced below is
// consumed — assigned, returned, tested in a condition, or passed as an
// argument — so unchecked-result must stay silent. The saveBlob pair
// additionally pins the overload rule: the name has a void stream
// overload, so even its whole-statement call must not flag (by-name
// edges cannot tell the overloads apart).
Status
writeIndex(const std::string &path)
{
    return Status{};
}

Status
saveBlob(const std::string &path)
{
    return Status{};
}

void
saveBlob(std::ostream &os)
{
}

void
logStatus(const Status &status);

Status
checkedUses(const std::string &path, std::ostream &os)
{
    const Status assigned = writeIndex(path);
    if (!assigned.ok())
        return assigned;
    if (!writeIndex(path).ok())         // tested in a condition
        return Status{};
    logStatus(writeIndex(path));        // passed as an argument
    saveBlob(os);                       // void overload of a mixed name
    return writeIndex(path);            // returned
}
