// Allowlisted timing TU: clock reads here are legitimate and need no
// per-line suppression (see "allow-wallclock timing.cc" in the
// manifest).
#include <chrono>

double
elapsedSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}
