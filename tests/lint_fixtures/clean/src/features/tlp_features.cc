// The TLP extractor reads only the primitive sequence; including
// schedule/primitive.h is fine, schedule/lower.h would be flagged.
#include "schedule/primitive.h"
#include "support/rng.h"

int tlpFeatureWidth() { return 22; }
