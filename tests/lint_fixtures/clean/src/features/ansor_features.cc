// The Ansor extractor is lowering-based by contract (paper Fig. 10):
// this include is both allowed and REQUIRED by the manifest.
#include "schedule/lower.h"
#include "support/rng.h"

int ansorFeatureCount() { return 164; }
