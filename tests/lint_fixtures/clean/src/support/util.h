#pragma once

// A well-formed header: #pragma once, members carry the trailing
// underscore, no banned tokens.
class Accumulator
{
  public:
    void add(double value);
    double total() const { return total_; }

  private:
    double total_ = 0.0;
    long count_ = 0;
};
