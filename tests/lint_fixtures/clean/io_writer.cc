// Fixture: a declared raw-io-exempt TU (the seam itself in a real
// tree) may use ofstream/rename freely — this file must produce zero
// findings even though the clean manifest scopes forbid-raw-io over
// it.
#include <cstdio>
#include <fstream>

void
seamWrite(const char *path)
{
    std::ofstream os(path, std::ios::binary);
    os << "payload";
    std::rename(path, "final.bin");
}
