// Declared hot-tu in the manifest: arithmetic over caller-provided and
// arena-style storage stays clean, and the one construction-time sizing
// carries an audited suppression that must count as used.
void
scoreRows(const float *features, float *out, long rows, long dim)
{
    for (long r = 0; r < rows; ++r) {
        float acc = 0.0f;
        for (long d = 0; d < dim; ++d)
            acc += features[r * dim + d];
        out[r] = acc;
    }
}

// Declared hot-entry in the manifest: the transitive walk follows the
// call into hot_helper.cc and finds only arena storage there.
float
scoreEntry(Arena &arena, const float *features, long dim)
{
    return accumulate(arena, features, dim);
}

void
sizeOnce(Slab &slab, long capacity)
{
    // tlp-lint: allow(hot-alloc) -- fixture: one-time construction sizing
    slab.storage.resize(capacity);
}
