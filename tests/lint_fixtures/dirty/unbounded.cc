// Known-bad serialize-consumer input: the resize is fed by a count read
// straight from the stream with no remaining-bytes check anywhere in
// the preceding lines.
#include <cstdint>
#include <vector>

void
parseBody(BinaryReader &reader, std::vector<float> &values)
{
    const auto count = reader.readPod<uint64_t>();
    values.resize(count);   // rule: unbounded-alloc
}
