// Known-bad determinism input: one line per determinism rule id.
#include <cstdlib>
#include <random>
#include <chrono>

int badRand() { return rand(); }                       // rule: rand
std::random_device entropy;                            // rule: random-device
std::mt19937 unseeded;                                 // rule: std-engine
long badClock()
{
    return std::chrono::system_clock::now()            // rule: wallclock
        .time_since_epoch()
        .count();
}
