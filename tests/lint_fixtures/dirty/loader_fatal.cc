// Known-bad artifact-safety input: this TU is declared `loader-tu` in
// the manifest, so aborting instead of returning Status is a finding.
void
parseHeader(bool bad)
{
    if (bad)
        TLP_FATAL("corrupt header");   // rule: loader-fatal
}
