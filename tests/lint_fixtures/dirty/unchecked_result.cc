// Declared must-check in the manifest: saveAll() drops the Status that
// the tree-wide symbol index knows saveHeader() returns.
Status
saveHeader(const std::string &path)
{
    return Status{};
}

void
saveAll(const std::string &path)
{
    saveHeader(path);   // rule: unchecked-result
}
