// Declared hot-entry root in the manifest: allocation-free itself, but
// it reaches the allocating helper in hot_call_alloc.cc across the TU
// boundary, which the transitive hot-call-alloc walk must flag.
float
hotScore(const float *features, long dim)
{
    return scoreWithScratch(features, dim);
}
