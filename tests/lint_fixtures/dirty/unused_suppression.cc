// Known-bad suppression inputs: an audit that matches no finding
// (rule: unused-suppression) and a malformed tlp-lint comment
// (rule: bad-suppression).

// tlp-lint: allow(rand) -- nothing on the next line actually calls rand
int perfectlyDeterministic() { return 4; }

// tlp-lint: allow wallclock, because reasons
long alsoWrongSyntax() { return 0; }
