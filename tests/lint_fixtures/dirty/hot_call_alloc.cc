// Not itself a hot-tu, but reachable on the call graph from the
// hot-entry root in hot_entry.cc: every container growth below must
// produce a hot-call-alloc finding at its own line.
#include <vector>

float
scoreWithScratch(const float *features, long dim)
{
    std::vector<float> scratch;
    scratch.reserve(dim);               // rule: hot-call-alloc
    for (long d = 0; d < dim; ++d)
        scratch.push_back(features[d]); // rule: hot-call-alloc
    return scratch.empty() ? 0.0f : scratch[0];
}
