// Fixture: raw artifact I/O outside the io_env/serialize seam. Both
// lines below must fire the raw-io rule (the manifest puts this TU
// under a forbid-raw-io prefix with no exemption).
#include <cstdio>
#include <fstream>

void
writeArtifactTheWrongWay(const char *path)
{
    std::ofstream os(path, std::ios::binary);
    os << "torn";
    std::rename(path, "elsewhere.bin");
}
