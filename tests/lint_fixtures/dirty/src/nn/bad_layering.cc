// Known-bad layering input: nn is a leaf compute library and must never
// reach up into the tuner.
#include "tuner/evolution.h"   // rule: layering

int nnHelper() { return 1; }
