// Known-bad Fig. 10 input: the TLP extractor must never see a lowered
// nest — this include is the paper-fidelity bug the linter exists for.
#include "schedule/lower.h"   // rule: include-forbidden

int tlpFeatureWidth() { return 22; }
