// Known-bad Fig. 10 input (other direction): the Ansor extractor is
// contractually lowering-based, so NOT including schedule/lower.h is a
// finding (rule: include-required).
#include "schedule/primitive.h"

int ansorFeatureCount() { return 164; }
