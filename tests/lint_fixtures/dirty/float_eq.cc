// Known-bad hygiene input: exact float-literal comparison. Labels use
// NaN for "missing", so == / != against float literals is a hazard.
bool isUnit(double scale) { return scale == 1.0; }   // rule: float-eq
