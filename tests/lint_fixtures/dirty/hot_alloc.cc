// Declared hot-tu in the manifest: every heap allocation below must
// produce a hot-alloc finding.
#include <memory>
#include <vector>

void
scoreOne(std::vector<float> &scratch, int n)
{
    scratch.resize(n);
    scratch.push_back(1.0f);
    auto owned = std::make_unique<float[]>(16);
    float *raw = new float[8];
    delete[] raw;
    (void)owned;
}
