// Known-bad hygiene input: a header without #pragma once (rule:
// pragma-once) whose private member also lacks the trailing underscore
// (rule: member-underscore).
class Leaky
{
  public:
    int count() const;

  private:
    int count;   // rule: member-underscore
};
