/**
 * @file
 * Unit tests for the fusion partitioner.
 */
#include <gtest/gtest.h>

#include "ir/model_zoo.h"
#include "ir/partition.h"

namespace tlp::ir {
namespace {

TEST(Partition, ConvBnReluFusesIntoOneSubgraph)
{
    ComputeGraph g("t");
    auto x = g.input({1, 3, 32, 32});
    auto y = g.conv2d(x, 8, 3);
    y = g.batchNorm(y);
    g.relu(y);
    const Workload w = partitionGraph(g);
    ASSERT_EQ(w.subgraphs.size(), 1u);
    const Subgraph &sg = *w.subgraphs[0];
    EXPECT_EQ(sg.anchor().kind, OpKind::Conv2d);
    // conv + bn + relu ops are all inside.
    int compute_ops = 0;
    for (const auto &op : sg.ops())
        if (op.kind != OpKind::Input && op.kind != OpKind::Constant)
            ++compute_ops;
    EXPECT_EQ(compute_ops, 3);
}

TEST(Partition, RepeatedBlocksDeduplicateWithWeights)
{
    ComputeGraph g("t");
    auto x = g.input({1, 8, 16, 16});
    for (int i = 0; i < 3; ++i) {
        x = g.conv2d(x, 8, 3);
        x = g.relu(x);
    }
    const Workload w = partitionGraph(g);
    ASSERT_EQ(w.subgraphs.size(), 1u);
    EXPECT_EQ(w.weights[0], 3);
}

TEST(Partition, ResidualAddFusesIntoProducerGroup)
{
    ComputeGraph g("t");
    auto x = g.input({1, 8, 16, 16});
    auto y = g.conv2d(x, 8, 3);
    y = g.batchNorm(y);
    auto z = g.add(y, x);
    g.relu(z);
    const Workload w = partitionGraph(g);
    ASSERT_EQ(w.subgraphs.size(), 1u);
    // conv + bn + add + relu all live in the group; the residual operand
    // resolves to the (deduplicated) external input placeholder.
    const Subgraph &sg = *w.subgraphs[0];
    int compute_ops = 0;
    bool add_reads_input = false;
    for (const auto &op : sg.ops()) {
        if (op.kind != OpKind::Input && op.kind != OpKind::Constant)
            ++compute_ops;
        if (op.kind == OpKind::Add) {
            for (int input : op.inputs)
                add_reads_input |=
                    sg.op(input).kind == OpKind::Input;
        }
    }
    EXPECT_EQ(compute_ops, 4);
    EXPECT_TRUE(add_reads_input);
}

TEST(Partition, AnchorsStartNewGroups)
{
    ComputeGraph g("t");
    auto x = g.input({1, 8, 16, 16});
    auto y = g.conv2d(x, 8, 3);
    y = g.relu(y);
    y = g.conv2d(y, 8, 3);
    g.relu(y);
    const Workload w = partitionGraph(g);
    // Identical conv+relu blocks -> one deduplicated subgraph, weight 2.
    ASSERT_EQ(w.subgraphs.size(), 1u);
    EXPECT_EQ(w.weights[0], 2);
}

TEST(Partition, MediumAnchorsFormOwnGroups)
{
    ComputeGraph g("t");
    auto x = g.input({1, 8, 16, 16});
    auto y = g.conv2d(x, 8, 3);
    auto p = g.maxPool2d(y, 3, 2);
    g.relu(p);
    const Workload w = partitionGraph(g);
    ASSERT_EQ(w.subgraphs.size(), 2u);
}

TEST(Partition, WeightsCountOccurrences)
{
    const ComputeGraph g = buildResNet(18);
    const Workload w = partitionGraph(g);
    int total = 0;
    for (int weight : w.weights)
        total += weight;
    EXPECT_GT(total, static_cast<int>(w.subgraphs.size()));
    EXPECT_GE(w.subgraphs.size(), 8u);
}

TEST(Partition, Resnet50SubgraphCountReasonable)
{
    const Workload w = partitionGraph(buildResNet(50));
    // The paper's tooling extracts ~25-30 distinct tasks from ResNet-50.
    EXPECT_GE(w.subgraphs.size(), 15u);
    EXPECT_LE(w.subgraphs.size(), 60u);
}

TEST(Partition, BertHasBatchMatmulAnchors)
{
    const Workload w = partitionGraph(buildNetwork("bert-tiny"));
    bool found_bmm = false, found_dense = false, found_softmax = false;
    for (const auto &sg : w.subgraphs) {
        if (sg->anchorIndex() < 0)
            continue;
        switch (sg->anchor().kind) {
          case OpKind::BatchMatmul: found_bmm = true; break;
          case OpKind::Dense:       found_dense = true; break;
          case OpKind::Softmax:     found_softmax = true; break;
          default: break;
        }
    }
    EXPECT_TRUE(found_bmm);
    EXPECT_TRUE(found_dense);
    EXPECT_TRUE(found_softmax);
}

TEST(Partition, EveryZooNetworkPartitions)
{
    for (const auto &name : allNetworkNames()) {
        const Workload w = partitionGraph(buildNetwork(name));
        EXPECT_GT(w.subgraphs.size(), 0u) << name;
        EXPECT_EQ(w.subgraphs.size(), w.weights.size()) << name;
        for (const auto &sg : w.subgraphs)
            EXPECT_GT(sg->flops(), 0) << name;
    }
}

} // namespace
} // namespace tlp::ir
