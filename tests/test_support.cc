/**
 * @file
 * Unit tests for the support library: RNG, serialization, strings,
 * statistics, tables, and arg parsing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/argparse.h"
#include "support/config.h"
#include "support/io_env.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "support/stats.h"
#include "support/str_util.h"
#include "support/table.h"

namespace tlp {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, RandintBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.randint(10);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 10);
    }
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.randint(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.normal());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        counts[rng.weightedIndex(weights)]++;
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[2], counts[1]);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
    auto shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(Hash, FnvAndCombineStable)
{
    const std::string text = "hello";
    EXPECT_EQ(fnv1a(text.data(), text.size()),
              fnv1a(text.data(), text.size()));
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

/** Expect @p body to throw SerializeError carrying @p code and @p text. */
template <typename Fn>
void
expectSerializeError(Fn &&body, ErrorCode code, const std::string &text)
{
    try {
        body();
        FAIL() << "expected SerializeError(" << errorCodeName(code) << ")";
    } catch (const SerializeError &error) {
        EXPECT_EQ(error.code(), code) << error.what();
        EXPECT_NE(std::string(error.what()).find(text), std::string::npos)
            << error.what();
    }
}

TEST(Serialize, RoundTripPodStringVector)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0xABCD, 3);
        writer.writePod<int64_t>(-17);
        writer.writeString("schedule");
        writer.writeVector<float>({1.5f, -2.5f});
    }
    BinaryReader reader(ss);
    readHeader(reader, 0xABCD, 1, 3);
    EXPECT_EQ(reader.readPod<int64_t>(), -17);
    EXPECT_EQ(reader.readString(), "schedule");
    const auto floats = reader.readVector<float>();
    ASSERT_EQ(floats.size(), 2u);
    EXPECT_FLOAT_EQ(floats[0], 1.5f);
    EXPECT_FLOAT_EQ(floats[1], -2.5f);
}

TEST(Serialize, ReadHeaderReturnsOlderVersion)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0xABCD, 1);
    }
    BinaryReader reader(ss);
    EXPECT_EQ(readHeader(reader, 0xABCD, 1, 3), 1u);
}

TEST(Serialize, WrongMagicThrowsCorrupt)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0x1111, 1);
    }
    BinaryReader reader(ss);
    expectSerializeError([&] { readHeader(reader, 0x2222, 1, 1); },
                         ErrorCode::Corrupt, "bad file magic");
}

TEST(Serialize, VersionOutsideRangeThrowsVersionSkew)
{
    std::stringstream future;
    {
        BinaryWriter writer(future);
        writeHeader(writer, 0xABCD, 9);
    }
    BinaryReader future_reader(future);
    expectSerializeError(
        [&] { readHeader(future_reader, 0xABCD, 1, 3); },
        ErrorCode::VersionSkew, "outside the supported range");

    std::stringstream past;
    {
        BinaryWriter writer(past);
        writeHeader(writer, 0xABCD, 1);
    }
    BinaryReader past_reader(past);
    expectSerializeError([&] { readHeader(past_reader, 0xABCD, 2, 3); },
                         ErrorCode::VersionSkew,
                         "outside the supported range");
}

TEST(Serialize, TruncatedStreamThrows)
{
    // A short header, a short string body, and a short vector body are
    // all recoverable parse failures, not internal bugs.
    std::stringstream empty;
    BinaryReader reader(empty);
    expectSerializeError([&] { readHeader(reader, 0xABCD, 1, 1); },
                         ErrorCode::Truncated, "truncated binary stream");

    std::stringstream short_string;
    {
        BinaryWriter writer(short_string);
        writer.writePod<uint64_t>(100);   // promises 100 bytes, has none
    }
    BinaryReader string_reader(short_string);
    expectSerializeError([&] { string_reader.readString(); },
                         ErrorCode::Truncated, "truncated binary stream");

    std::stringstream short_vector;
    {
        BinaryWriter writer(short_vector);
        writer.writePod<uint64_t>(5);
        writer.writePod<float>(1.0f);     // 1 of 5 promised floats
    }
    BinaryReader vector_reader(short_vector);
    expectSerializeError([&] { vector_reader.readVector<float>(); },
                         ErrorCode::Truncated, "exceeds");
}

TEST(Serialize, Crc32KnownAnswer)
{
    // The reflected IEEE polynomial's canonical check value.
    const std::string check = "123456789";
    EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Serialize, SectionRoundTripAndCorruptionDetection)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeSection(writer, sectionTag("ABCD"),
                     [](BinaryWriter &w) { w.writeString("payload"); });
    }
    std::string bytes = ss.str();

    std::istringstream good(bytes);
    BinaryReader good_reader(good);
    Section section = readSection(good_reader);
    EXPECT_EQ(section.tag, sectionTag("ABCD"));
    EXPECT_TRUE(section.crc_ok);
    EXPECT_EQ(good_reader.remaining(), 0u);

    // Flip one payload byte: the frame still parses, the CRC flags it.
    bytes[bytes.size() - 1] ^= 0x40;
    std::istringstream bad(bytes);
    BinaryReader bad_reader(bad);
    EXPECT_FALSE(readSection(bad_reader).crc_ok);
}

TEST(Serialize, HugeLengthPrefixRejectedBeforeAllocation)
{
    // A section that advertises a multi-GB payload in a tiny stream must
    // fail by bounds check (cheap), not by allocating the advertised size.
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writer.writePod<uint32_t>(sectionTag("EVIL"));
        writer.writePod<uint64_t>(1ull << 40);   // 1 TiB length prefix
        writer.writePod<uint32_t>(0);            // crc
    }
    BinaryReader reader(ss);
    expectSerializeError([&] { readSection(reader); },
                         ErrorCode::Truncated, "truncated binary stream");
}

TEST(Serialize, AtomicWriteFileCommitsAndCleansUp)
{
    const std::string path = "/tmp/tlp_test_atomic_write.bin";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    Status status = atomicWriteFile(
        path, [](std::ostream &os) { os << "generation-1"; });
    EXPECT_TRUE(status.ok()) << status.toString();
    {
        std::ifstream is(path);
        std::string body((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        EXPECT_EQ(body, "generation-1");
    }
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    // A throwing body must leave the previous file untouched.
    status = atomicWriteFile(path, [](std::ostream &os) {
        os << "gen";
        throw std::runtime_error("simulated write failure");
    });
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::IoError);
    {
        std::ifstream is(path);
        std::string body((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        EXPECT_EQ(body, "generation-1");
    }
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

// --- I/O chaos environment (DESIGN.md §14) ------------------------------

TEST(IoEnv, DrawIsAPureFunctionOfSeedPathAndOp)
{
    IoFaultProfile profile;
    profile.fault_rate = 0.5;
    profile.seed = 0x5eed;

    const uint64_t fp = fnv1a("a/b.ckpt", 8);
    int faults = 0;
    for (uint64_t op = 0; op < 256; ++op) {
        const IoFaultDecision first = profile.draw(fp, op);
        const IoFaultDecision again = profile.draw(fp, op);
        EXPECT_EQ(first.kind, again.kind) << op;
        EXPECT_EQ(first.aux, again.aux) << op;
        faults += first.kind != IoFaultKind::None ? 1 : 0;
    }
    // Roughly rate-many faults; exact value pinned by the seed.
    EXPECT_GT(faults, 64);
    EXPECT_LT(faults, 192);

    // Another path or another seed draws a different schedule.
    IoFaultProfile reseeded = profile;
    reseeded.seed = 0x5eee;
    int diverged = 0;
    for (uint64_t op = 0; op < 64; ++op) {
        diverged +=
            profile.draw(fp, op).kind != profile.draw(fp + 1, op).kind;
        diverged +=
            profile.draw(fp, op).kind != reseeded.draw(fp, op).kind;
    }
    EXPECT_GT(diverged, 8);

    // Disabled profiles never fault.
    const IoFaultProfile off;
    for (uint64_t op = 0; op < 16; ++op)
        EXPECT_EQ(off.draw(fp, op).kind, IoFaultKind::None);
}

TEST(IoEnv, ArmNextWriteIsOneShot)
{
    ScopedIoFaults scope{IoFaultProfile{}};   // chaos off, counters reset
    IoEnv &env = IoEnv::global();

    IoFaultDecision torn;
    torn.kind = IoFaultKind::TornWrite;
    torn.torn_at = 7;
    env.armNextWrite(torn);

    const IoFaultDecision first = env.drawWrite("/tmp/x.bin");
    EXPECT_EQ(first.kind, IoFaultKind::TornWrite);
    EXPECT_EQ(first.torn_at, 7);
    EXPECT_EQ(env.drawWrite("/tmp/x.bin").kind, IoFaultKind::None);
    EXPECT_EQ(env.counters().writes_attempted, 2);
    EXPECT_EQ(env.counters().torn_faults, 1);
}

TEST(IoEnv, ScopedIoFaultsRestoresThePriorProfile)
{
    const IoFaultProfile before = IoEnv::global().profile();
    {
        IoFaultProfile chaos;
        chaos.fault_rate = 0.25;
        chaos.seed = 42;
        ScopedIoFaults scope(chaos);
        EXPECT_DOUBLE_EQ(IoEnv::global().profile().fault_rate, 0.25);
        EXPECT_EQ(IoEnv::global().profile().seed, 42u);
    }
    EXPECT_DOUBLE_EQ(IoEnv::global().profile().fault_rate,
                     before.fault_rate);
    EXPECT_EQ(IoEnv::global().profile().seed, before.seed);
}

TEST(IoEnv, AtomicWriteFaultsKeepThePreviousFileAndControlDebris)
{
    ScopedIoFaults scope{IoFaultProfile{}};
    IoEnv &env = IoEnv::global();
    const std::string path = "/tmp/tlp_test_io_env_write.bin";
    std::remove(path.c_str());
    sweepStaleTempsFor(path);

    ASSERT_TRUE(
        atomicWriteFile(path, [](std::ostream &os) { os << "v1"; }).ok());

    // Torn write without debris: error, previous file kept, no temps.
    IoFaultDecision torn;
    torn.kind = IoFaultKind::TornWrite;
    torn.torn_at = 1;
    env.armNextWrite(torn);
    Status status =
        atomicWriteFile(path, [](std::ostream &os) { os << "v2"; });
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::IoError);
    EXPECT_EQ(sweepStaleTempsFor(path), 0);

    // The same fault with crash debris strands exactly one temp.
    torn.crash_debris = true;
    env.armNextWrite(torn);
    EXPECT_FALSE(
        atomicWriteFile(path, [](std::ostream &os) { os << "v2"; }).ok());
    EXPECT_EQ(sweepStaleTempsFor(path), 1);

    std::ifstream is(path);
    std::string body((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(body, "v1");
    std::remove(path.c_str());
}

TEST(IoEnv, CheckReadInjectsAReplayableSchedule)
{
    const char *path = "/tmp/never_opened.bin";
    std::vector<bool> first;
    for (int pass = 0; pass < 2; ++pass) {
        IoFaultProfile chaos;
        chaos.fault_rate = 0.5;
        chaos.seed = 0xbeef;
        ScopedIoFaults scope(chaos);
        std::vector<bool> outcomes;
        for (int i = 0; i < 64; ++i)
            outcomes.push_back(IoEnv::global().checkRead(path).ok());
        const int64_t faults = IoEnv::global().counters().read_faults;
        EXPECT_GT(faults, 8);
        EXPECT_LT(faults, 56);
        if (pass == 0)
            first = outcomes;
        else
            EXPECT_EQ(first, outcomes);
    }
    // Chaos off: reads always pass.
    EXPECT_TRUE(IoEnv::global().checkRead(path).ok());
}

TEST(IoEnv, QuarantineArtifactNeverOverwritesEvidence)
{
    const std::string path = "/tmp/tlp_test_io_env_quarantine.bin";
    const auto plant = [&](const std::string &body) {
        std::ofstream os(path, std::ios::binary);
        os << body;
    };
    std::remove((path + ".quarantined.1").c_str());
    std::remove((path + ".quarantined.2").c_str());

    plant("damaged-gen-1");
    auto first = quarantineArtifact(path);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_EQ(first.value(), path + ".quarantined.1");

    plant("damaged-gen-2");
    auto second = quarantineArtifact(path);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    EXPECT_EQ(second.value(), path + ".quarantined.2");

    // Both generations of evidence survive, with their own bytes.
    std::ifstream one(path + ".quarantined.1");
    std::ifstream two(path + ".quarantined.2");
    std::string b1((std::istreambuf_iterator<char>(one)),
                   std::istreambuf_iterator<char>());
    std::string b2((std::istreambuf_iterator<char>(two)),
                   std::istreambuf_iterator<char>());
    EXPECT_EQ(b1, "damaged-gen-1");
    EXPECT_EQ(b2, "damaged-gen-2");
    EXPECT_FALSE(std::ifstream(path).good());
    std::remove((path + ".quarantined.1").c_str());
    std::remove((path + ".quarantined.2").c_str());
}

TEST(IoEnv, SweepMatchesOnlyStaleTempNames)
{
    namespace fs = std::filesystem;
    const std::string dir = "/tmp/tlp_test_io_env_sweep";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto plant = [&](const std::string &name) {
        std::ofstream os(dir + "/" + name, std::ios::binary);
        os << "x";
    };
    plant("model.bin");
    plant("model.bin.tmp.100.0");
    plant("model.bin.tmp.100.1");
    plant("model.bin.tmp.nope.2");   // non-numeric pid: kept
    plant("other.tmp");              // no pid/seq tail: kept

    EXPECT_EQ(sweepStaleTemps(dir), 2);
    EXPECT_EQ(sweepStaleTemps(dir), 0);   // idempotent
    EXPECT_TRUE(fs::exists(dir + "/model.bin"));
    EXPECT_TRUE(fs::exists(dir + "/model.bin.tmp.nope.2"));
    EXPECT_TRUE(fs::exists(dir + "/other.tmp"));
    // The single-artifact variant only reaps temps of that artifact.
    plant("model.bin.tmp.100.3");
    plant("rival.bin.tmp.100.4");
    EXPECT_EQ(sweepStaleTempsFor(dir + "/model.bin"), 1);
    EXPECT_TRUE(fs::exists(dir + "/rival.bin.tmp.100.4"));
    fs::remove_all(dir);
}

TEST(Rng, SerializeRoundTripContinuesIdentically)
{
    Rng rng(99);
    for (int i = 0; i < 37; ++i)
        rng.next();
    rng.normal();   // leave a cached Box-Muller value in flight

    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        rng.serialize(writer);
    }
    BinaryReader reader(ss);
    Rng restored = Rng::deserialize(reader);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(restored.next(), rng.next());
    EXPECT_DOUBLE_EQ(restored.normal(), rng.normal());
}

TEST(StrUtil, SplitJoin)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "/"), "a/b//c");
}

TEST(StrUtil, PrefixSuffixStrip)
{
    EXPECT_TRUE(startsWith("tensor", "ten"));
    EXPECT_FALSE(startsWith("ten", "tensor"));
    EXPECT_TRUE(endsWith("buffer.local", ".local"));
    EXPECT_EQ(strip("  x \n"), "x");
}

TEST(StrUtil, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(humanCount(1536000), "1.5M");
}

TEST(Stats, RunningStatMoments)
{
    RunningStat stat;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
    EXPECT_NEAR(stat.variance(), 1.25, 1e-12);
}

TEST(Stats, HistogramModeAndCounts)
{
    IntHistogram hist;
    for (int64_t k : {3, 3, 3, 5, 7})
        hist.add(k);
    EXPECT_EQ(hist.total(), 5u);
    EXPECT_EQ(hist.countOf(3), 3u);
    EXPECT_EQ(hist.countOf(4), 0u);
    EXPECT_EQ(hist.modeKey(), 3);
    EXPECT_EQ(hist.minKey(), 3);
    EXPECT_EQ(hist.maxKey(), 7);
}

TEST(Stats, PearsonAndSpearman)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    std::vector<double> zs = {10, 8, 6, 4, 2};
    EXPECT_NEAR(spearman(xs, zs), -1.0, 1e-12);
}

TEST(Table, RendersAlignedRows)
{
    TextTable table("title");
    table.setHeader({"a", "bbb"});
    table.addRow({"1", "2"});
    const std::string out = table.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("bbb"), std::string::npos);
}

TEST(ArgParse, ParsesTypes)
{
    ArgParser parser("test");
    parser.addInt("n", 5, "count");
    parser.addString("name", "x", "name");
    parser.addBool("flag", false, "flag");
    parser.addDouble("rate", 0.5, "rate");
    const char *argv[] = {"prog", "--n", "9", "--name=abc", "--flag",
                          "--rate", "0.25"};
    parser.parse(7, const_cast<char **>(argv));
    EXPECT_EQ(parser.getInt("n"), 9);
    EXPECT_EQ(parser.getString("name"), "abc");
    EXPECT_TRUE(parser.getBool("flag"));
    EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 0.25);
}

TEST(Config, ScaledCountHasFloor)
{
    EXPECT_GE(scaledCount(100, 10), 10);
}

} // namespace
} // namespace tlp
