/**
 * @file
 * Unit tests for the support library: RNG, serialization, strings,
 * statistics, tables, and arg parsing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/argparse.h"
#include "support/config.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "support/stats.h"
#include "support/str_util.h"
#include "support/table.h"

namespace tlp {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, RandintBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.randint(10);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 10);
    }
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.randint(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.normal());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        counts[rng.weightedIndex(weights)]++;
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[2], counts[1]);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
    auto shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(Hash, FnvAndCombineStable)
{
    const std::string text = "hello";
    EXPECT_EQ(fnv1a(text.data(), text.size()),
              fnv1a(text.data(), text.size()));
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

/** Expect @p body to throw SerializeError carrying @p code and @p text. */
template <typename Fn>
void
expectSerializeError(Fn &&body, ErrorCode code, const std::string &text)
{
    try {
        body();
        FAIL() << "expected SerializeError(" << errorCodeName(code) << ")";
    } catch (const SerializeError &error) {
        EXPECT_EQ(error.code(), code) << error.what();
        EXPECT_NE(std::string(error.what()).find(text), std::string::npos)
            << error.what();
    }
}

TEST(Serialize, RoundTripPodStringVector)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0xABCD, 3);
        writer.writePod<int64_t>(-17);
        writer.writeString("schedule");
        writer.writeVector<float>({1.5f, -2.5f});
    }
    BinaryReader reader(ss);
    readHeader(reader, 0xABCD, 1, 3);
    EXPECT_EQ(reader.readPod<int64_t>(), -17);
    EXPECT_EQ(reader.readString(), "schedule");
    const auto floats = reader.readVector<float>();
    ASSERT_EQ(floats.size(), 2u);
    EXPECT_FLOAT_EQ(floats[0], 1.5f);
    EXPECT_FLOAT_EQ(floats[1], -2.5f);
}

TEST(Serialize, ReadHeaderReturnsOlderVersion)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0xABCD, 1);
    }
    BinaryReader reader(ss);
    EXPECT_EQ(readHeader(reader, 0xABCD, 1, 3), 1u);
}

TEST(Serialize, WrongMagicThrowsCorrupt)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0x1111, 1);
    }
    BinaryReader reader(ss);
    expectSerializeError([&] { readHeader(reader, 0x2222, 1, 1); },
                         ErrorCode::Corrupt, "bad file magic");
}

TEST(Serialize, VersionOutsideRangeThrowsVersionSkew)
{
    std::stringstream future;
    {
        BinaryWriter writer(future);
        writeHeader(writer, 0xABCD, 9);
    }
    BinaryReader future_reader(future);
    expectSerializeError(
        [&] { readHeader(future_reader, 0xABCD, 1, 3); },
        ErrorCode::VersionSkew, "outside the supported range");

    std::stringstream past;
    {
        BinaryWriter writer(past);
        writeHeader(writer, 0xABCD, 1);
    }
    BinaryReader past_reader(past);
    expectSerializeError([&] { readHeader(past_reader, 0xABCD, 2, 3); },
                         ErrorCode::VersionSkew,
                         "outside the supported range");
}

TEST(Serialize, TruncatedStreamThrows)
{
    // A short header, a short string body, and a short vector body are
    // all recoverable parse failures, not internal bugs.
    std::stringstream empty;
    BinaryReader reader(empty);
    expectSerializeError([&] { readHeader(reader, 0xABCD, 1, 1); },
                         ErrorCode::Truncated, "truncated binary stream");

    std::stringstream short_string;
    {
        BinaryWriter writer(short_string);
        writer.writePod<uint64_t>(100);   // promises 100 bytes, has none
    }
    BinaryReader string_reader(short_string);
    expectSerializeError([&] { string_reader.readString(); },
                         ErrorCode::Truncated, "truncated binary stream");

    std::stringstream short_vector;
    {
        BinaryWriter writer(short_vector);
        writer.writePod<uint64_t>(5);
        writer.writePod<float>(1.0f);     // 1 of 5 promised floats
    }
    BinaryReader vector_reader(short_vector);
    expectSerializeError([&] { vector_reader.readVector<float>(); },
                         ErrorCode::Truncated, "exceeds");
}

TEST(Serialize, Crc32KnownAnswer)
{
    // The reflected IEEE polynomial's canonical check value.
    const std::string check = "123456789";
    EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Serialize, SectionRoundTripAndCorruptionDetection)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeSection(writer, sectionTag("ABCD"),
                     [](BinaryWriter &w) { w.writeString("payload"); });
    }
    std::string bytes = ss.str();

    std::istringstream good(bytes);
    BinaryReader good_reader(good);
    Section section = readSection(good_reader);
    EXPECT_EQ(section.tag, sectionTag("ABCD"));
    EXPECT_TRUE(section.crc_ok);
    EXPECT_EQ(good_reader.remaining(), 0u);

    // Flip one payload byte: the frame still parses, the CRC flags it.
    bytes[bytes.size() - 1] ^= 0x40;
    std::istringstream bad(bytes);
    BinaryReader bad_reader(bad);
    EXPECT_FALSE(readSection(bad_reader).crc_ok);
}

TEST(Serialize, HugeLengthPrefixRejectedBeforeAllocation)
{
    // A section that advertises a multi-GB payload in a tiny stream must
    // fail by bounds check (cheap), not by allocating the advertised size.
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writer.writePod<uint32_t>(sectionTag("EVIL"));
        writer.writePod<uint64_t>(1ull << 40);   // 1 TiB length prefix
        writer.writePod<uint32_t>(0);            // crc
    }
    BinaryReader reader(ss);
    expectSerializeError([&] { readSection(reader); },
                         ErrorCode::Truncated, "truncated binary stream");
}

TEST(Serialize, AtomicWriteFileCommitsAndCleansUp)
{
    const std::string path = "/tmp/tlp_test_atomic_write.bin";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    Status status = atomicWriteFile(
        path, [](std::ostream &os) { os << "generation-1"; });
    EXPECT_TRUE(status.ok()) << status.toString();
    {
        std::ifstream is(path);
        std::string body((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        EXPECT_EQ(body, "generation-1");
    }
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    // A throwing body must leave the previous file untouched.
    status = atomicWriteFile(path, [](std::ostream &os) {
        os << "gen";
        throw std::runtime_error("simulated write failure");
    });
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::IoError);
    {
        std::ifstream is(path);
        std::string body((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        EXPECT_EQ(body, "generation-1");
    }
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(Rng, SerializeRoundTripContinuesIdentically)
{
    Rng rng(99);
    for (int i = 0; i < 37; ++i)
        rng.next();
    rng.normal();   // leave a cached Box-Muller value in flight

    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        rng.serialize(writer);
    }
    BinaryReader reader(ss);
    Rng restored = Rng::deserialize(reader);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(restored.next(), rng.next());
    EXPECT_DOUBLE_EQ(restored.normal(), rng.normal());
}

TEST(StrUtil, SplitJoin)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "/"), "a/b//c");
}

TEST(StrUtil, PrefixSuffixStrip)
{
    EXPECT_TRUE(startsWith("tensor", "ten"));
    EXPECT_FALSE(startsWith("ten", "tensor"));
    EXPECT_TRUE(endsWith("buffer.local", ".local"));
    EXPECT_EQ(strip("  x \n"), "x");
}

TEST(StrUtil, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(humanCount(1536000), "1.5M");
}

TEST(Stats, RunningStatMoments)
{
    RunningStat stat;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
    EXPECT_NEAR(stat.variance(), 1.25, 1e-12);
}

TEST(Stats, HistogramModeAndCounts)
{
    IntHistogram hist;
    for (int64_t k : {3, 3, 3, 5, 7})
        hist.add(k);
    EXPECT_EQ(hist.total(), 5u);
    EXPECT_EQ(hist.countOf(3), 3u);
    EXPECT_EQ(hist.countOf(4), 0u);
    EXPECT_EQ(hist.modeKey(), 3);
    EXPECT_EQ(hist.minKey(), 3);
    EXPECT_EQ(hist.maxKey(), 7);
}

TEST(Stats, PearsonAndSpearman)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    std::vector<double> zs = {10, 8, 6, 4, 2};
    EXPECT_NEAR(spearman(xs, zs), -1.0, 1e-12);
}

TEST(Table, RendersAlignedRows)
{
    TextTable table("title");
    table.setHeader({"a", "bbb"});
    table.addRow({"1", "2"});
    const std::string out = table.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("bbb"), std::string::npos);
}

TEST(ArgParse, ParsesTypes)
{
    ArgParser parser("test");
    parser.addInt("n", 5, "count");
    parser.addString("name", "x", "name");
    parser.addBool("flag", false, "flag");
    parser.addDouble("rate", 0.5, "rate");
    const char *argv[] = {"prog", "--n", "9", "--name=abc", "--flag",
                          "--rate", "0.25"};
    parser.parse(7, const_cast<char **>(argv));
    EXPECT_EQ(parser.getInt("n"), 9);
    EXPECT_EQ(parser.getString("name"), "abc");
    EXPECT_TRUE(parser.getBool("flag"));
    EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 0.25);
}

TEST(Config, ScaledCountHasFloor)
{
    EXPECT_GE(scaledCount(100, 10), 10);
}

} // namespace
} // namespace tlp
