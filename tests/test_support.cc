/**
 * @file
 * Unit tests for the support library: RNG, serialization, strings,
 * statistics, tables, and arg parsing.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "support/argparse.h"
#include "support/config.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "support/stats.h"
#include "support/str_util.h"
#include "support/table.h"

namespace tlp {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, RandintBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.randint(10);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 10);
    }
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.randint(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.normal());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        counts[rng.weightedIndex(weights)]++;
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[2], counts[1]);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
    auto shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(Hash, FnvAndCombineStable)
{
    const std::string text = "hello";
    EXPECT_EQ(fnv1a(text.data(), text.size()),
              fnv1a(text.data(), text.size()));
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Serialize, RoundTripPodStringVector)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0xABCD, 3);
        writer.writePod<int64_t>(-17);
        writer.writeString("schedule");
        writer.writeVector<float>({1.5f, -2.5f});
    }
    BinaryReader reader(ss);
    readHeader(reader, 0xABCD, 3);
    EXPECT_EQ(reader.readPod<int64_t>(), -17);
    EXPECT_EQ(reader.readString(), "schedule");
    const auto floats = reader.readVector<float>();
    ASSERT_EQ(floats.size(), 2u);
    EXPECT_FLOAT_EQ(floats[0], 1.5f);
    EXPECT_FLOAT_EQ(floats[1], -2.5f);
}

TEST(Serialize, ReadHeaderReturnsOlderVersion)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0xABCD, 1);
    }
    BinaryReader reader(ss);
    EXPECT_EQ(readHeader(reader, 0xABCD, 3), 1u);
}

TEST(SerializeDeathTest, WrongMagicIsFatal)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0x1111, 1);
    }
    BinaryReader reader(ss);
    EXPECT_EXIT(readHeader(reader, 0x2222, 1),
                ::testing::ExitedWithCode(1), "bad file magic");
}

TEST(SerializeDeathTest, FutureVersionIsFatal)
{
    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        writeHeader(writer, 0xABCD, 9);
    }
    BinaryReader reader(ss);
    EXPECT_EXIT(readHeader(reader, 0xABCD, 3),
                ::testing::ExitedWithCode(1),
                "newer than supported version");
}

TEST(SerializeDeathTest, TruncatedStreamIsFatal)
{
    // A short header, a short string body, and a short vector body are
    // all user errors (corrupt file), not internal bugs: exit(1).
    std::stringstream empty;
    BinaryReader reader(empty);
    EXPECT_EXIT(readHeader(reader, 0xABCD, 1),
                ::testing::ExitedWithCode(1), "truncated binary stream");

    std::stringstream short_string;
    {
        BinaryWriter writer(short_string);
        writer.writePod<uint64_t>(100);   // promises 100 bytes, has none
    }
    BinaryReader string_reader(short_string);
    EXPECT_EXIT(string_reader.readString(),
                ::testing::ExitedWithCode(1), "truncated binary stream");

    std::stringstream short_vector;
    {
        BinaryWriter writer(short_vector);
        writer.writePod<uint64_t>(5);
        writer.writePod<float>(1.0f);     // 1 of 5 promised floats
    }
    BinaryReader vector_reader(short_vector);
    EXPECT_EXIT(vector_reader.readVector<float>(),
                ::testing::ExitedWithCode(1), "truncated binary stream");
}

TEST(Rng, SerializeRoundTripContinuesIdentically)
{
    Rng rng(99);
    for (int i = 0; i < 37; ++i)
        rng.next();
    rng.normal();   // leave a cached Box-Muller value in flight

    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        rng.serialize(writer);
    }
    BinaryReader reader(ss);
    Rng restored = Rng::deserialize(reader);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(restored.next(), rng.next());
    EXPECT_DOUBLE_EQ(restored.normal(), rng.normal());
}

TEST(StrUtil, SplitJoin)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "/"), "a/b//c");
}

TEST(StrUtil, PrefixSuffixStrip)
{
    EXPECT_TRUE(startsWith("tensor", "ten"));
    EXPECT_FALSE(startsWith("ten", "tensor"));
    EXPECT_TRUE(endsWith("buffer.local", ".local"));
    EXPECT_EQ(strip("  x \n"), "x");
}

TEST(StrUtil, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(humanCount(1536000), "1.5M");
}

TEST(Stats, RunningStatMoments)
{
    RunningStat stat;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
    EXPECT_NEAR(stat.variance(), 1.25, 1e-12);
}

TEST(Stats, HistogramModeAndCounts)
{
    IntHistogram hist;
    for (int64_t k : {3, 3, 3, 5, 7})
        hist.add(k);
    EXPECT_EQ(hist.total(), 5u);
    EXPECT_EQ(hist.countOf(3), 3u);
    EXPECT_EQ(hist.countOf(4), 0u);
    EXPECT_EQ(hist.modeKey(), 3);
    EXPECT_EQ(hist.minKey(), 3);
    EXPECT_EQ(hist.maxKey(), 7);
}

TEST(Stats, PearsonAndSpearman)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    std::vector<double> zs = {10, 8, 6, 4, 2};
    EXPECT_NEAR(spearman(xs, zs), -1.0, 1e-12);
}

TEST(Table, RendersAlignedRows)
{
    TextTable table("title");
    table.setHeader({"a", "bbb"});
    table.addRow({"1", "2"});
    const std::string out = table.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("bbb"), std::string::npos);
}

TEST(ArgParse, ParsesTypes)
{
    ArgParser parser("test");
    parser.addInt("n", 5, "count");
    parser.addString("name", "x", "name");
    parser.addBool("flag", false, "flag");
    parser.addDouble("rate", 0.5, "rate");
    const char *argv[] = {"prog", "--n", "9", "--name=abc", "--flag",
                          "--rate", "0.25"};
    parser.parse(7, const_cast<char **>(argv));
    EXPECT_EQ(parser.getInt("n"), 9);
    EXPECT_EQ(parser.getString("name"), "abc");
    EXPECT_TRUE(parser.getBool("flag"));
    EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 0.25);
}

TEST(Config, ScaledCountHasFloor)
{
    EXPECT_GE(scaledCount(100, 10), 10);
}

} // namespace
} // namespace tlp
