/**
 * @file
 * Unit and property tests for the hardware platform models and the
 * analytic latency simulator.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "hwmodel/measurer.h"
#include "hwmodel/simulator.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "sketch/policy.h"
#include "support/stats.h"

namespace tlp::hw {
namespace {

ir::SubgraphPtr
denseSubgraph(int64_t m, int64_t n, int64_t k)
{
    ir::ComputeGraph g("t");
    auto x = g.input({m, k});
    g.dense(x, n);
    return std::make_shared<ir::Subgraph>(g.nodes(), 2);
}

sched::LoweredNest
naiveNest(ir::SubgraphPtr sg, bool is_gpu = false)
{
    sched::State state(std::move(sg), is_gpu);
    return sched::lower(state);
}

TEST(Platform, PresetsExist)
{
    const auto names = HardwarePlatform::presetNames();
    ASSERT_EQ(names.size(), 7u);
    for (const auto &name : names) {
        const auto hw = HardwarePlatform::preset(name);
        EXPECT_EQ(hw.name, name);
    }
    EXPECT_FALSE(HardwarePlatform::preset("i7-10510u").is_gpu);
    EXPECT_TRUE(HardwarePlatform::preset("tesla-t4").is_gpu);
}

TEST(Platform, CpuAndGpuListsPartition)
{
    EXPECT_EQ(HardwarePlatform::cpuPresetNames().size(), 5u);
    EXPECT_EQ(HardwarePlatform::gpuPresetNames().size(), 2u);
}

TEST(Simulator, DeterministicLatency)
{
    auto nest = naiveNest(denseSubgraph(64, 64, 512));
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    EXPECT_DOUBLE_EQ(sim.latencyMs(nest), sim.latencyMs(nest));
    EXPECT_GT(sim.latencyMs(nest), 0.0);
}

TEST(Simulator, MoreWorkTakesLonger)
{
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    const double small = sim.latencyMs(naiveNest(denseSubgraph(64, 64, 64)));
    const double large =
        sim.latencyMs(naiveNest(denseSubgraph(512, 512, 512)));
    EXPECT_GT(large, small * 10);
}

TEST(Simulator, ParallelAnnotationSpeedsUp)
{
    auto sg = denseSubgraph(256, 256, 256);
    sched::State serial(sg, false);
    sched::State parallel(sg, false);
    parallel.annotate(2, 0, sched::Annotation::Parallel);
    LatencySimulator sim(HardwarePlatform::preset("platinum-8272"));
    EXPECT_GT(sim.latencyMs(sched::lower(serial)),
              1.5 * sim.latencyMs(sched::lower(parallel)));
}

TEST(Simulator, VectorizeSpeedsUp)
{
    auto sg = denseSubgraph(256, 256, 256);
    sched::State scalar(sg, false);
    // Reorder so a spatial loop is innermost, then vectorize it.
    sched::State vec(sg, false);
    vec.reorder(2, {0, 2, 1});
    vec.annotate(2, 2, sched::Annotation::Vectorize);
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    EXPECT_GT(sim.latencyMs(sched::lower(scalar)),
              1.5 * sim.latencyMs(sched::lower(vec)));
}

TEST(Simulator, TilingReducesMemoryTime)
{
    // Large matmul, both parallel + vectorized so memory time dominates:
    // the untiled loop order re-streams the weight matrix per row while
    // the tiled one reuses cache-resident tiles.
    auto sg = denseSubgraph(1024, 1024, 1024);
    sched::State naive(sg, false);
    naive.reorder(2, {0, 2, 1});            // i, k, j
    naive.annotate(2, 0, sched::Annotation::Parallel);
    naive.annotate(2, 2, sched::Annotation::Vectorize);

    sched::State tiled(sg, false);
    tiled.split(2, 0, {32});        // i -> i0, i1(32)
    tiled.split(2, 2, {32});        // j -> j0, j1(32)
    tiled.split(2, 4, {32});        // k -> k0, k1(32)
    tiled.reorder(2, {0, 2, 4, 1, 5, 3});   // i0 j0 k0 i1 k1 j1
    tiled.annotate(2, 0, sched::Annotation::Parallel);
    tiled.annotate(2, 5, sched::Annotation::Vectorize);
    LatencySimulator sim(HardwarePlatform::preset("i7-10510u"));
    EXPECT_GT(sim.latencyMs(sched::lower(naive)),
              1.5 * sim.latencyMs(sched::lower(tiled)));
}

TEST(Simulator, PlatformsDisagreeOnRankings)
{
    // The domain gap: schedule rankings differ across platforms.
    auto sg = denseSubgraph(512, 512, 512);
    sketch::SchedulePolicy policy(sg, false);
    Rng rng(11);
    const auto population = policy.sampleInitPopulation(40, rng);
    ASSERT_GE(population.size(), 20u);

    std::vector<double> lat_a, lat_b;
    LatencySimulator sim_a(HardwarePlatform::preset("platinum-8272"));
    LatencySimulator sim_b(HardwarePlatform::preset("graviton2"));
    for (const auto &state : population) {
        const auto nest = sched::lower(state);
        lat_a.push_back(sim_a.latencyMs(nest));
        lat_b.push_back(sim_b.latencyMs(nest));
    }
    const double rho = spearman(lat_a, lat_b);
    // Correlated (same programs) but far from identical.
    EXPECT_GT(rho, 0.1);
    EXPECT_LT(rho, 0.995);
}

TEST(Simulator, ScheduleQualitySpreadIsWide)
{
    auto sg = denseSubgraph(512, 512, 512);
    sketch::SchedulePolicy policy(sg, false);
    Rng rng(13);
    const auto population = policy.sampleInitPopulation(50, rng);
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    double best = 1e300, worst = 0.0;
    for (const auto &state : population) {
        const double lat = sim.latencyMs(sched::lower(state));
        best = std::min(best, lat);
        worst = std::max(worst, lat);
    }
    EXPECT_GT(worst / best, 2.0);
}

TEST(Simulator, GpuKernelsRunOnGpuPresets)
{
    auto sg = denseSubgraph(256, 256, 256);
    sketch::SchedulePolicy policy(sg, true);
    Rng rng(17);
    const auto state = policy.sampleRandom(rng);
    LatencySimulator sim(HardwarePlatform::preset("tesla-t4"));
    const double lat = sim.latencyMs(sched::lower(state));
    EXPECT_GT(lat, 0.0);
    EXPECT_LT(lat, 1e4);
}

TEST(Simulator, T4FasterThanK80OnBigKernels)
{
    auto sg = denseSubgraph(1024, 1024, 1024);
    sketch::SchedulePolicy policy(sg, true);
    Rng rng(19);
    const auto state = policy.sampleRandom(rng);
    const auto nest = sched::lower(state);
    LatencySimulator t4(HardwarePlatform::preset("tesla-t4"));
    LatencySimulator k80(HardwarePlatform::preset("tesla-k80"));
    EXPECT_LT(t4.latencyMs(nest), k80.latencyMs(nest));
}

TEST(Simulator, WholeZooSimulates)
{
    Rng rng(23);
    for (const auto &name : {"resnet-18", "bert-tiny"}) {
        const auto w = ir::partitionGraph(ir::buildNetwork(name));
        for (const auto &sg : w.subgraphs) {
            for (bool gpu : {false, true}) {
                sketch::SchedulePolicy policy(sg, gpu);
                const auto state = policy.sampleRandom(rng);
                LatencySimulator sim(HardwarePlatform::preset(
                    gpu ? "tesla-t4" : "e5-2673"));
                const double lat = sim.latencyMs(sched::lower(state));
                EXPECT_GT(lat, 0.0) << name << " " << sg->key();
                EXPECT_TRUE(std::isfinite(lat)) << sg->key();
            }
        }
    }
}

TEST(Measurer, NoiseIsBoundedAndAccounted)
{
    auto nest = naiveNest(denseSubgraph(128, 128, 128));
    Measurer measurer(HardwarePlatform::preset("e5-2673"));
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    const double truth = sim.latencyMs(nest);
    for (int i = 0; i < 20; ++i) {
        const double measured = measurer.measureMs(nest);
        EXPECT_NEAR(measured, truth, truth * 0.2);
    }
    EXPECT_EQ(measurer.count(), 20);
    EXPECT_NEAR(measurer.elapsedSeconds(), 20 * 0.25, 1e-9);
    measurer.resetAccounting();
    EXPECT_EQ(measurer.count(), 0);
}

} // namespace
} // namespace tlp::hw
