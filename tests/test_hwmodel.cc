/**
 * @file
 * Unit and property tests for the hardware platform models and the
 * analytic latency simulator.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "hwmodel/measurer.h"
#include "hwmodel/simulator.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "sketch/policy.h"
#include "support/stats.h"

namespace tlp::hw {
namespace {

ir::SubgraphPtr
denseSubgraph(int64_t m, int64_t n, int64_t k)
{
    ir::ComputeGraph g("t");
    auto x = g.input({m, k});
    g.dense(x, n);
    return std::make_shared<ir::Subgraph>(g.nodes(), 2);
}

sched::LoweredNest
naiveNest(ir::SubgraphPtr sg, bool is_gpu = false)
{
    sched::State state(std::move(sg), is_gpu);
    return sched::lower(state);
}

TEST(Platform, PresetsExist)
{
    const auto names = HardwarePlatform::presetNames();
    ASSERT_EQ(names.size(), 7u);
    for (const auto &name : names) {
        const auto hw = HardwarePlatform::preset(name);
        EXPECT_EQ(hw.name, name);
    }
    EXPECT_FALSE(HardwarePlatform::preset("i7-10510u").is_gpu);
    EXPECT_TRUE(HardwarePlatform::preset("tesla-t4").is_gpu);
}

TEST(Platform, CpuAndGpuListsPartition)
{
    EXPECT_EQ(HardwarePlatform::cpuPresetNames().size(), 5u);
    EXPECT_EQ(HardwarePlatform::gpuPresetNames().size(), 2u);
}

TEST(Simulator, DeterministicLatency)
{
    auto nest = naiveNest(denseSubgraph(64, 64, 512));
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    EXPECT_DOUBLE_EQ(sim.latencyMs(nest), sim.latencyMs(nest));
    EXPECT_GT(sim.latencyMs(nest), 0.0);
}

TEST(Simulator, MoreWorkTakesLonger)
{
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    const double small = sim.latencyMs(naiveNest(denseSubgraph(64, 64, 64)));
    const double large =
        sim.latencyMs(naiveNest(denseSubgraph(512, 512, 512)));
    EXPECT_GT(large, small * 10);
}

TEST(Simulator, ParallelAnnotationSpeedsUp)
{
    auto sg = denseSubgraph(256, 256, 256);
    sched::State serial(sg, false);
    sched::State parallel(sg, false);
    parallel.annotate(2, 0, sched::Annotation::Parallel);
    LatencySimulator sim(HardwarePlatform::preset("platinum-8272"));
    EXPECT_GT(sim.latencyMs(sched::lower(serial)),
              1.5 * sim.latencyMs(sched::lower(parallel)));
}

TEST(Simulator, VectorizeSpeedsUp)
{
    auto sg = denseSubgraph(256, 256, 256);
    sched::State scalar(sg, false);
    // Reorder so a spatial loop is innermost, then vectorize it.
    sched::State vec(sg, false);
    vec.reorder(2, {0, 2, 1});
    vec.annotate(2, 2, sched::Annotation::Vectorize);
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    EXPECT_GT(sim.latencyMs(sched::lower(scalar)),
              1.5 * sim.latencyMs(sched::lower(vec)));
}

TEST(Simulator, TilingReducesMemoryTime)
{
    // Large matmul, both parallel + vectorized so memory time dominates:
    // the untiled loop order re-streams the weight matrix per row while
    // the tiled one reuses cache-resident tiles.
    auto sg = denseSubgraph(1024, 1024, 1024);
    sched::State naive(sg, false);
    naive.reorder(2, {0, 2, 1});            // i, k, j
    naive.annotate(2, 0, sched::Annotation::Parallel);
    naive.annotate(2, 2, sched::Annotation::Vectorize);

    sched::State tiled(sg, false);
    tiled.split(2, 0, {32});        // i -> i0, i1(32)
    tiled.split(2, 2, {32});        // j -> j0, j1(32)
    tiled.split(2, 4, {32});        // k -> k0, k1(32)
    tiled.reorder(2, {0, 2, 4, 1, 5, 3});   // i0 j0 k0 i1 k1 j1
    tiled.annotate(2, 0, sched::Annotation::Parallel);
    tiled.annotate(2, 5, sched::Annotation::Vectorize);
    LatencySimulator sim(HardwarePlatform::preset("i7-10510u"));
    EXPECT_GT(sim.latencyMs(sched::lower(naive)),
              1.5 * sim.latencyMs(sched::lower(tiled)));
}

TEST(Simulator, PlatformsDisagreeOnRankings)
{
    // The domain gap: schedule rankings differ across platforms.
    auto sg = denseSubgraph(512, 512, 512);
    sketch::SchedulePolicy policy(sg, false);
    Rng rng(11);
    const auto population = policy.sampleInitPopulation(40, rng);
    ASSERT_GE(population.size(), 20u);

    std::vector<double> lat_a, lat_b;
    LatencySimulator sim_a(HardwarePlatform::preset("platinum-8272"));
    LatencySimulator sim_b(HardwarePlatform::preset("graviton2"));
    for (const auto &state : population) {
        const auto nest = sched::lower(state);
        lat_a.push_back(sim_a.latencyMs(nest));
        lat_b.push_back(sim_b.latencyMs(nest));
    }
    const double rho = spearman(lat_a, lat_b);
    // Correlated (same programs) but far from identical.
    EXPECT_GT(rho, 0.1);
    EXPECT_LT(rho, 0.995);
}

TEST(Simulator, ScheduleQualitySpreadIsWide)
{
    auto sg = denseSubgraph(512, 512, 512);
    sketch::SchedulePolicy policy(sg, false);
    Rng rng(13);
    const auto population = policy.sampleInitPopulation(50, rng);
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    double best = 1e300, worst = 0.0;
    for (const auto &state : population) {
        const double lat = sim.latencyMs(sched::lower(state));
        best = std::min(best, lat);
        worst = std::max(worst, lat);
    }
    EXPECT_GT(worst / best, 2.0);
}

TEST(Simulator, GpuKernelsRunOnGpuPresets)
{
    auto sg = denseSubgraph(256, 256, 256);
    sketch::SchedulePolicy policy(sg, true);
    Rng rng(17);
    const auto state = policy.sampleRandom(rng);
    LatencySimulator sim(HardwarePlatform::preset("tesla-t4"));
    const double lat = sim.latencyMs(sched::lower(state));
    EXPECT_GT(lat, 0.0);
    EXPECT_LT(lat, 1e4);
}

TEST(Simulator, T4FasterThanK80OnBigKernels)
{
    auto sg = denseSubgraph(1024, 1024, 1024);
    sketch::SchedulePolicy policy(sg, true);
    Rng rng(19);
    const auto state = policy.sampleRandom(rng);
    const auto nest = sched::lower(state);
    LatencySimulator t4(HardwarePlatform::preset("tesla-t4"));
    LatencySimulator k80(HardwarePlatform::preset("tesla-k80"));
    EXPECT_LT(t4.latencyMs(nest), k80.latencyMs(nest));
}

TEST(Simulator, WholeZooSimulates)
{
    Rng rng(23);
    for (const auto &name : {"resnet-18", "bert-tiny"}) {
        const auto w = ir::partitionGraph(ir::buildNetwork(name));
        for (const auto &sg : w.subgraphs) {
            for (bool gpu : {false, true}) {
                sketch::SchedulePolicy policy(sg, gpu);
                const auto state = policy.sampleRandom(rng);
                LatencySimulator sim(HardwarePlatform::preset(
                    gpu ? "tesla-t4" : "e5-2673"));
                const double lat = sim.latencyMs(sched::lower(state));
                EXPECT_GT(lat, 0.0) << name << " " << sg->key();
                EXPECT_TRUE(std::isfinite(lat)) << sg->key();
            }
        }
    }
}

std::vector<sched::LoweredNest>
sampleNests(int count, uint64_t seed = 29)
{
    auto sg = denseSubgraph(256, 256, 256);
    sketch::SchedulePolicy policy(sg, false);
    Rng rng(seed);
    const auto population = policy.sampleInitPopulation(count, rng);
    std::vector<sched::LoweredNest> nests;
    for (const auto &state : population)
        nests.push_back(sched::lower(state));
    return nests;
}

TEST(Measurer, NoiseIsBoundedAndAccounted)
{
    auto nest = naiveNest(denseSubgraph(128, 128, 128));
    Measurer measurer(HardwarePlatform::preset("e5-2673"));
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    const double truth = sim.latencyMs(nest);
    for (int i = 0; i < 20; ++i) {
        const double measured = measurer.measureMs(nest);
        EXPECT_NEAR(measured, truth, truth * 0.2);
    }
    EXPECT_EQ(measurer.count(), 20);
    EXPECT_NEAR(measurer.elapsedSeconds(), 20 * 0.25, 1e-9);
    measurer.resetAccounting();
    EXPECT_EQ(measurer.count(), 0);
}

TEST(Measurer, FaultClassIsOrderIndependent)
{
    // Whether a candidate faults (and how) must not depend on what was
    // measured before it — only the noise stream is sequential.
    MeasureOptions options;
    options.faults = FaultProfile::uniform(0.5);
    const auto nests = sampleNests(12);
    Measurer forward(HardwarePlatform::preset("e5-2673"), options);
    Measurer backward(HardwarePlatform::preset("e5-2673"), options);
    std::vector<MeasureStatus> fwd, bwd(nests.size());
    for (const auto &nest : nests)
        fwd.push_back(forward.measure(nest).status);
    for (size_t i = nests.size(); i-- > 0;)
        bwd[i] = backward.measure(nests[i]).status;
    for (size_t i = 0; i < nests.size(); ++i)
        EXPECT_EQ(fwd[i], bwd[i]) << "nest " << i;
}

TEST(Measurer, FaultsAreDeterministic)
{
    MeasureOptions options;
    options.faults = FaultProfile::uniform(0.4);
    const auto nests = sampleNests(16);
    Measurer a(HardwarePlatform::preset("platinum-8272"), options);
    Measurer b(HardwarePlatform::preset("platinum-8272"), options);
    bool any_failed = false;
    for (const auto &nest : nests) {
        const auto ra = a.measure(nest);
        const auto rb = b.measure(nest);
        EXPECT_EQ(ra.status, rb.status);
        EXPECT_EQ(ra.attempts, rb.attempts);
        EXPECT_DOUBLE_EQ(ra.seconds_spent, rb.seconds_spent);
        if (ra.ok())
            EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
        else
            any_failed = true;
    }
    EXPECT_TRUE(any_failed) << "40% fault rate should fail something";
    EXPECT_EQ(a.statusCounts(), b.statusCounts());
}

TEST(Measurer, FaultOutcomeIndependentOfNoiseSeed)
{
    // Fault draws key off FaultProfile::seed, not the noise seed.
    MeasureOptions options;
    options.faults = FaultProfile::uniform(0.5);
    const auto nests = sampleNests(16);
    Measurer a(HardwarePlatform::preset("e5-2673"), options, 1);
    Measurer b(HardwarePlatform::preset("e5-2673"), options, 2);
    for (const auto &nest : nests)
        EXPECT_EQ(a.measure(nest).status, b.measure(nest).status);
}

TEST(Measurer, CompileErrorsFailImmediatelyAndQuarantine)
{
    MeasureOptions options;
    options.faults.compile_error_prob = 1.0;
    options.max_retries = 5;
    Measurer measurer(HardwarePlatform::preset("e5-2673"), options);
    const auto nest = naiveNest(denseSubgraph(64, 64, 64));

    const auto first = measurer.measure(nest);
    EXPECT_EQ(first.status, MeasureStatus::CompileError);
    EXPECT_EQ(first.attempts, 1);   // never retried despite max_retries
    EXPECT_TRUE(std::isnan(first.latency_ms));
    EXPECT_GT(first.seconds_spent, 0.0);
    EXPECT_LT(first.seconds_spent, options.seconds_per_measure);
    EXPECT_TRUE(measurer.isQuarantined(nest));

    // The second request short-circuits: same status, no hardware time.
    const auto second = measurer.measure(nest);
    EXPECT_EQ(second.status, MeasureStatus::CompileError);
    EXPECT_EQ(second.attempts, 0);
    EXPECT_DOUBLE_EQ(second.seconds_spent, 0.0);
    EXPECT_EQ(measurer.quarantineHits(), 1);
}

TEST(Measurer, TransientFaultsRetryUpToCap)
{
    MeasureOptions options;
    options.faults.timeout_prob = 1.0;
    options.faults.timeout_seconds = 0.5;
    options.max_retries = 2;
    options.quarantine_after = 100;
    Measurer measurer(HardwarePlatform::preset("e5-2673"), options);
    const auto nest = naiveNest(denseSubgraph(64, 64, 64));

    const auto result = measurer.measure(nest);
    EXPECT_EQ(result.status, MeasureStatus::Timeout);
    EXPECT_EQ(result.attempts, 3);   // 1 + max_retries
    EXPECT_DOUBLE_EQ(result.seconds_spent, 3 * 0.5);
    EXPECT_DOUBLE_EQ(measurer.failureSeconds(), measurer.elapsedSeconds());
}

TEST(Measurer, RetriesRecoverTransientFaults)
{
    MeasureOptions base;
    base.faults.timeout_prob = 0.4;
    base.quarantine_after = 1000;
    auto with_retries = base;
    base.max_retries = 0;
    with_retries.max_retries = 3;

    const auto nests = sampleNests(32);
    Measurer stubborn(HardwarePlatform::preset("e5-2673"), base);
    Measurer patient(HardwarePlatform::preset("e5-2673"), with_retries);
    int64_t ok_stubborn = 0, ok_patient = 0;
    for (const auto &nest : nests) {
        ok_stubborn += stubborn.measure(nest).ok();
        ok_patient += patient.measure(nest).ok();
    }
    EXPECT_GT(ok_patient, ok_stubborn);
    EXPECT_EQ(ok_patient,
              patient.statusCounts()[static_cast<size_t>(
                  MeasureStatus::Ok)]);
}

TEST(Measurer, RepeatFailuresGetQuarantined)
{
    MeasureOptions options;
    options.faults.runtime_error_prob = 1.0;
    options.max_retries = 0;
    options.quarantine_after = 3;
    Measurer measurer(HardwarePlatform::preset("e5-2673"), options);
    const auto nest = naiveNest(denseSubgraph(64, 64, 64));

    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(measurer.isQuarantined(nest));
        EXPECT_EQ(measurer.measure(nest).attempts, 1);
    }
    EXPECT_TRUE(measurer.isQuarantined(nest));
    EXPECT_EQ(measurer.measure(nest).attempts, 0);
    EXPECT_EQ(measurer.quarantineSize(), 1);
}

TEST(Measurer, SuccessfulLatencyStaysNearTruthUnderFaults)
{
    // Candidates that eventually measure Ok must still report sane
    // latencies: close to the noise-free simulator value, never NaN.
    const auto nests = sampleNests(16);
    MeasureOptions faulty;
    faulty.faults = FaultProfile::uniform(0.3);
    faulty.max_retries = 4;
    Measurer injected(HardwarePlatform::preset("e5-2673"), faulty);
    LatencySimulator sim(HardwarePlatform::preset("e5-2673"));
    int compared = 0;
    for (const auto &nest : nests) {
        const auto result = injected.measure(nest);
        if (!result.ok()) {
            EXPECT_TRUE(std::isnan(result.latency_ms));
            continue;
        }
        const double truth = sim.latencyMs(nest);
        EXPECT_NEAR(result.latency_ms, truth, truth * 0.2);
        ++compared;
    }
    EXPECT_GT(compared, 0);
}

TEST(Measurer, StateRoundTripsThroughSerialization)
{
    MeasureOptions options;
    options.faults = FaultProfile::uniform(0.6);
    options.quarantine_after = 1;
    Measurer measurer(HardwarePlatform::preset("e5-2673"), options);
    for (const auto &nest : sampleNests(12))
        measurer.measure(nest);

    std::stringstream ss;
    {
        BinaryWriter writer(ss);
        measurer.serializeState(writer);
    }
    Measurer restored(HardwarePlatform::preset("e5-2673"), options);
    BinaryReader reader(ss);
    restored.deserializeState(reader);
    EXPECT_DOUBLE_EQ(restored.elapsedSeconds(), measurer.elapsedSeconds());
    EXPECT_DOUBLE_EQ(restored.failureSeconds(), measurer.failureSeconds());
    EXPECT_EQ(restored.count(), measurer.count());
    EXPECT_EQ(restored.statusCounts(), measurer.statusCounts());
    EXPECT_EQ(restored.quarantineSize(), measurer.quarantineSize());

    // The noise stream continues identically after a restore: a fresh
    // measurer replaying the same sequence agrees with the restored one.
    const auto next_nest = naiveNest(denseSubgraph(96, 96, 96));
    Measurer replay(HardwarePlatform::preset("e5-2673"), options);
    for (const auto &nest : sampleNests(12))
        replay.measure(nest);
    EXPECT_DOUBLE_EQ(replay.measureMs(next_nest),
                     restored.measureMs(next_nest));
}

} // namespace
} // namespace tlp::hw
