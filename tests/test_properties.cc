/**
 * @file
 * Property-based (parameterized) tests: invariants that must hold for
 * every network in the zoo and across many random schedules.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "features/ansor_features.h"
#include "features/tlp_features.h"
#include "hwmodel/simulator.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "schedule/lower.h"
#include "sketch/policy.h"
#include "sketch/tiles.h"
#include "support/stats.h"

namespace tlp {
namespace {

// ---------------------------------------------------------------------
// Per-network properties.
// ---------------------------------------------------------------------

class NetworkProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(NetworkProperty, PartitionWeightsArePositive)
{
    const auto workload = ir::partitionGraph(ir::buildNetwork(GetParam()));
    ASSERT_FALSE(workload.subgraphs.empty());
    for (size_t i = 0; i < workload.subgraphs.size(); ++i) {
        EXPECT_GE(workload.weights[i], 1);
        EXPECT_FALSE(workload.subgraphs[i]->key().empty());
    }
}

TEST_P(NetworkProperty, SubgraphKeysAreDistinctWithinWorkload)
{
    const auto workload = ir::partitionGraph(ir::buildNetwork(GetParam()));
    std::set<std::string> keys;
    for (const auto &subgraph : workload.subgraphs)
        EXPECT_TRUE(keys.insert(subgraph->key()).second)
            << subgraph->key();
}

TEST_P(NetworkProperty, RandomSchedulesReplayExactly)
{
    const auto workload = ir::partitionGraph(ir::buildNetwork(GetParam()));
    Rng rng(fnv1a(GetParam().data(), GetParam().size()));
    for (size_t i = 0; i < std::min<size_t>(4, workload.subgraphs.size());
         ++i) {
        for (bool gpu : {false, true}) {
            sketch::SchedulePolicy policy(workload.subgraphs[i], gpu);
            const auto state = policy.sampleRandom(rng);
            const auto replayed = sched::replaySteps(
                workload.subgraphs[i], gpu, state.steps());
            EXPECT_EQ(replayed.steps(), state.steps());
            ASSERT_EQ(replayed.numStages(), state.numStages());
            for (int s = 0; s < state.numStages(); ++s) {
                EXPECT_EQ(replayed.stage(s).totalExtent(),
                          state.stage(s).totalExtent());
            }
        }
    }
}

TEST_P(NetworkProperty, SimulatedLatencyFiniteAndScheduleSensitive)
{
    const auto workload = ir::partitionGraph(ir::buildNetwork(GetParam()));
    Rng rng(3 + fnv1a(GetParam().data(), GetParam().size()));
    hw::LatencySimulator sim(hw::HardwarePlatform::preset("e5-2673"));
    const auto &subgraph = workload.subgraphs[0];
    sketch::SchedulePolicy policy(subgraph, false);
    std::set<double> latencies;
    for (int trial = 0; trial < 6; ++trial) {
        const auto state = policy.sampleRandom(rng);
        const double latency = sim.latencyMs(sched::lower(state));
        EXPECT_TRUE(std::isfinite(latency));
        EXPECT_GT(latency, 0.0);
        latencies.insert(latency);
    }
    EXPECT_GE(latencies.size(), 2u);   // schedules matter
}

TEST_P(NetworkProperty, TlpFeaturesDeterministicAndBounded)
{
    const auto workload = ir::partitionGraph(ir::buildNetwork(GetParam()));
    Rng rng(11);
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    const auto state = policy.sampleRandom(rng);
    const auto a = feat::extractTlpFeatures(state.steps());
    const auto b = feat::extractTlpFeatures(state.steps());
    EXPECT_EQ(a, b);
    for (float v : a) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_LT(std::abs(v), 100.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, NetworkProperty, ::testing::ValuesIn(ir::allNetworkNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// Schedule-transform invariants over random dense shapes.
// ---------------------------------------------------------------------

class SplitProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int>>
{
};

TEST_P(SplitProperty, SplitConservesCoverage)
{
    const auto [extent, parts] = GetParam();
    ir::ComputeGraph g("t");
    auto x = g.input({extent, 64});
    g.dense(x, 32);
    auto sg = std::make_shared<ir::Subgraph>(g.nodes(), 2);

    Rng rng(static_cast<uint64_t>(extent * 131 + parts));
    sched::State state(sg, false);
    const auto lengths =
        sketch::sampleTileLengths(rng, extent, parts);
    state.split(2, 0, lengths);

    // Product of the parts' extents >= original extent (ceil rounding),
    // and total coverage of original iter 0 spans the full extent.
    int64_t product = 1;
    int64_t covered = 1;
    for (const auto &iter : state.stage(2).iters) {
        bool covers_zero = false;
        for (const auto &[orig, ext] : iter.coverage)
            covers_zero |= orig == 0;
        if (covers_zero || iter.coverage.empty()) {
            // Parts of the split iterator.
            if (iter.name.rfind("i.", 0) == 0) {
                product *= iter.extent;
                int64_t own = 1;
                for (const auto &[orig, ext] : iter.coverage)
                    if (orig == 0)
                        own *= ext;
                covered *= own;
            }
        }
    }
    EXPECT_GE(product, extent);
    EXPECT_GE(covered, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Extents, SplitProperty,
    ::testing::Combine(::testing::Values<int64_t>(7, 16, 60, 128, 1000),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Simulator cross-platform properties.
// ---------------------------------------------------------------------

class PlatformProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PlatformProperty, LatencyPositiveFiniteDeterministic)
{
    const auto hw = hw::HardwarePlatform::preset(GetParam());
    ir::ComputeGraph g("t");
    auto x = g.input({128, 256});
    g.dense(x, 128);
    auto sg = std::make_shared<ir::Subgraph>(g.nodes(), 2);
    Rng rng(5);
    sketch::SchedulePolicy policy(sg, hw.is_gpu);
    const auto state = policy.sampleRandom(rng);
    hw::LatencySimulator sim(hw);
    const double a = sim.latencyMs(sched::lower(state));
    const double b = sim.latencyMs(sched::lower(state));
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
    EXPECT_TRUE(std::isfinite(a));
}

TEST_P(PlatformProperty, BiggerProblemIsSlower)
{
    const auto hw = hw::HardwarePlatform::preset(GetParam());
    hw::LatencySimulator sim(hw);
    auto latency = [&](int64_t n) {
        ir::ComputeGraph g("t");
        auto x = g.input({n, n});
        g.dense(x, n);
        auto sg = std::make_shared<ir::Subgraph>(g.nodes(), 2);
        sched::State state(sg, hw.is_gpu);
        if (hw.is_gpu) {
            state.fuse(2, {0, 1});
            state.split(2, 0, {128});
            state.annotate(2, 0, sched::Annotation::BlockX);
            state.annotate(2, 1, sched::Annotation::ThreadX);
        }
        return sim.latencyMs(sched::lower(state));
    };
    EXPECT_GT(latency(512), latency(64));
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PlatformProperty,
    ::testing::ValuesIn(hw::HardwarePlatform::presetNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// Feature-extraction invariants over crop sizes.
// ---------------------------------------------------------------------

class CropProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(CropProperty, ShapeAlwaysMatchesOptions)
{
    const auto [seq_len, emb] = GetParam();
    const auto workload =
        ir::partitionGraph(ir::buildNetwork("resnet-18"));
    Rng rng(17);
    sketch::SchedulePolicy policy(workload.subgraphs[1], false);
    const auto state = policy.sampleRandom(rng);
    feat::TlpFeatureOptions options;
    options.seq_len = seq_len;
    options.emb_size = emb;
    const auto features = feat::extractTlpFeatures(state.steps(), options);
    EXPECT_EQ(features.size(),
              static_cast<size_t>(seq_len) * static_cast<size_t>(emb));
}

INSTANTIATE_TEST_SUITE_P(Crops, CropProperty,
                         ::testing::Values(std::pair{8, 14},
                                           std::pair{25, 22},
                                           std::pair{25, 40},
                                           std::pair{54, 22},
                                           std::pair{54, 40},
                                           std::pair{80, 64}));

} // namespace
} // namespace tlp
