/**
 * @file
 * Unit tests for schedule primitives, State transforms, replay, and
 * lowering.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "ir/graph.h"
#include "ir/partition.h"
#include "schedule/lower.h"
#include "schedule/state.h"

namespace tlp::sched {
namespace {

ir::SubgraphPtr
denseSubgraph(int64_t m = 64, int64_t n = 64, int64_t k = 128)
{
    ir::ComputeGraph g("t");
    auto x = g.input({m, k});
    g.dense(x, n);
    return std::make_shared<ir::Subgraph>(g.nodes(), 2);
}

ir::SubgraphPtr
convReluSubgraph()
{
    ir::ComputeGraph g("t");
    auto x = g.input({1, 16, 28, 28});
    auto y = g.conv2d(x, 32, 3);
    g.relu(y);
    const auto w = ir::partitionGraph(g);
    return w.subgraphs.at(0);
}

TEST(Primitive, ToStringAndSerialize)
{
    Primitive prim;
    prim.kind = PrimKind::SP;
    prim.addNum(2);
    prim.addNum(0);
    prim.addName("i");
    EXPECT_EQ(prim.toString(), "SP(2, 0, \"i\")");

    std::stringstream ss;
    BinaryWriter writer(ss);
    prim.serialize(writer);
    BinaryReader reader(ss);
    EXPECT_EQ(Primitive::deserialize(reader), prim);
}

TEST(Primitive, SeqHashDiffers)
{
    PrimitiveSeq a, b;
    Primitive p;
    p.kind = PrimKind::CI;
    p.addNum(1);
    a.prims.push_back(p);
    p.params[0] = static_cast<int64_t>(2);
    b.prims.push_back(p);
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), a.hash());
}

TEST(State, InitialStagesMatchOps)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    ASSERT_EQ(state.numStages(), 3);
    EXPECT_TRUE(state.stage(0).is_placeholder);
    EXPECT_TRUE(state.stage(1).is_placeholder);
    ASSERT_EQ(state.stage(2).iters.size(), 3u);
    EXPECT_EQ(state.stage(2).iters[2].extent, 128);
}

TEST(State, SplitProducesParts)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    state.split(2, 0, {4, 8});
    const auto &iters = state.stage(2).iters;
    ASSERT_EQ(iters.size(), 5u);
    EXPECT_EQ(iters[0].extent, 2);    // 64 / 32
    EXPECT_EQ(iters[1].extent, 4);
    EXPECT_EQ(iters[2].extent, 8);
    // Total extent conserved.
    EXPECT_EQ(iters[0].extent * iters[1].extent * iters[2].extent, 64);
    EXPECT_EQ(state.steps().size(), 1);
    EXPECT_EQ(state.steps().prims[0].kind, PrimKind::SP);
}

TEST(State, SplitNonDivisibleRoundsUp)
{
    auto sg = denseSubgraph(10, 64, 128);
    State state(sg, false);
    state.split(2, 0, {3});
    const auto &iters = state.stage(2).iters;
    EXPECT_EQ(iters[0].extent, 4);   // ceil(10/3)
    EXPECT_EQ(iters[1].extent, 3);
}

TEST(State, FuseConcatenatesCoverage)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    state.fuse(2, {0, 1});
    const auto &iters = state.stage(2).iters;
    ASSERT_EQ(iters.size(), 2u);
    EXPECT_EQ(iters[0].extent, 64 * 64);
    ASSERT_EQ(iters[0].coverage.size(), 2u);
}

TEST(State, ReorderPermutes)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    state.reorder(2, {2, 0, 1});
    const auto &iters = state.stage(2).iters;
    EXPECT_TRUE(iters[0].is_reduction);
    EXPECT_EQ(iters[0].extent, 128);
}

TEST(State, FollowSplitUsesSourceLengths)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    state.split(2, 0, {4, 8});
    // Follow with n_split=1: innermost length 8.
    state.followSplit(2, 3, 0, 1);
    const auto &iters = state.stage(2).iters;
    // j (extent 64) split into [8, 8].
    EXPECT_EQ(iters[3].extent, 8);
    EXPECT_EQ(iters[4].extent, 8);
}

TEST(State, CacheWriteSplitsComputeAndCopy)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    const int local = state.cacheWrite(2);
    ASSERT_EQ(state.numStages(), 4);
    const Stage &copy = state.stage(2);
    const Stage &compute = state.stage(local);
    EXPECT_TRUE(compute.is_cache_stage);
    EXPECT_EQ(compute.iters.size(), 3u);     // full loops incl. reduction
    EXPECT_EQ(copy.iters.size(), 2u);        // spatial only
    // The copy stage reads the local buffer.
    bool reads_local = false;
    for (const auto &access : copy.spec.accesses)
        if (!access.is_write && access.buffer == compute.out_buffer)
            reads_local = true;
    EXPECT_TRUE(reads_local);
}

TEST(State, ComputeAtAndInline)
{
    auto sg = convReluSubgraph();
    State state(sg, false);
    const int anchor = sg->anchorIndex();
    const int output = sg->outputIndex();
    state.computeAt(anchor, output, 0);
    EXPECT_EQ(state.stage(anchor).loc, ComputeLoc::At);
    state.computeRoot(anchor);
    EXPECT_EQ(state.stage(anchor).loc, ComputeLoc::Root);
    state.computeInline(anchor);
    EXPECT_EQ(state.stage(anchor).loc, ComputeLoc::Inlined);
    EXPECT_EQ(state.steps().size(), 3);
}

TEST(State, CacheReadRedirectsConsumer)
{
    auto sg = denseSubgraph();
    State state(sg, true);
    const int sh = state.cacheRead(0, 2);
    const Stage &shared = state.stage(sh);
    EXPECT_TRUE(shared.is_cache_stage);
    const Stage &consumer = state.stage(2);
    ASSERT_EQ(consumer.redirects.size(), 1u);
    EXPECT_EQ(consumer.redirects.begin()->second, shared.out_buffer);
}

TEST(State, RfactorCreatesPartialStage)
{
    ir::ComputeGraph g("t");
    auto x = g.input({8, 1024});
    g.reduceMean(x);
    auto sg = std::make_shared<ir::Subgraph>(g.nodes(), 1);
    State state(sg, false);
    state.split(1, 1, {64});
    const int rf = state.rfactor(1, 1);
    const Stage &partial = state.stage(rf);
    EXPECT_FALSE(partial.iters[1].is_reduction);
    const Stage &final_stage = state.stage(1);
    // Final stage: spatial + one partial-reduction iterator.
    ASSERT_EQ(final_stage.iters.size(), 2u);
    EXPECT_TRUE(final_stage.iters[1].is_reduction);
    EXPECT_EQ(final_stage.iters[1].extent, 1024 / 64);
}

TEST(State, AnnotationLegality)
{
    auto sg = denseSubgraph();
    State cpu(sg, false);
    cpu.annotate(2, 0, Annotation::Parallel);
    EXPECT_EQ(cpu.stage(2).iters[0].ann, Annotation::Parallel);
    State gpu(sg, true);
    gpu.annotate(2, 0, Annotation::BlockX);
    EXPECT_EQ(gpu.stage(2).iters[0].ann, Annotation::BlockX);
}

TEST(State, PragmaAndStorageAlign)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    state.pragmaUnroll(2, 64);
    state.storageAlign(2, 32);
    EXPECT_EQ(state.stage(2).pragma_unroll, 64);
    EXPECT_EQ(state.stage(2).storage_align, 32);
}

TEST(State, ReplayReproducesStateExactly)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    const int local = state.cacheWrite(2);
    state.split(local, 0, {4, 8});
    state.split(local, 4, {16});
    // Iterators are now [i0, i1, i2, j, k0, k1].
    state.reorder(local, {0, 3, 4, 1, 5, 2});
    state.fuse(2, {0, 1});
    state.annotate(2, 0, Annotation::Parallel);
    state.computeAt(local, 2, 0);
    state.pragmaUnroll(local, 64);

    const State replayed = replaySteps(sg, false, state.steps());
    ASSERT_EQ(replayed.numStages(), state.numStages());
    EXPECT_EQ(replayed.steps(), state.steps());
    for (int i = 0; i < state.numStages(); ++i) {
        const Stage &a = state.stage(i);
        const Stage &b = replayed.stage(i);
        ASSERT_EQ(a.iters.size(), b.iters.size());
        for (size_t q = 0; q < a.iters.size(); ++q) {
            EXPECT_EQ(a.iters[q].extent, b.iters[q].extent);
            EXPECT_EQ(a.iters[q].ann, b.iters[q].ann);
            EXPECT_EQ(a.iters[q].coverage, b.iters[q].coverage);
        }
        EXPECT_EQ(a.loc, b.loc);
        EXPECT_EQ(a.pragma_unroll, b.pragma_unroll);
    }
}

TEST(Lower, TileExtentsBelowTracksSplits)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    state.split(2, 0, {16});       // i -> [4, 16]
    state.split(2, 3, {32});       // k -> [4, 32]
    const LoweredNest nest = lower(state);
    const LoweredStage &stage = nest.stages[2];
    // Inside everything: tiles are 1 except clamping.
    const auto innermost =
        stage.tileExtentsBelow(static_cast<int>(stage.loops.size()) - 1);
    EXPECT_EQ(innermost, (std::vector<int64_t>{1, 1, 1}));
    // Inside loop 0 (i outer): i tile 16, j full, k full.
    const auto below0 = stage.tileExtentsBelow(0);
    EXPECT_EQ(below0[0], 16);
    EXPECT_EQ(below0[1], 64);
    EXPECT_EQ(below0[2], 128);
}

TEST(Lower, IterationCounts)
{
    auto sg = denseSubgraph();
    State state(sg, false);
    const LoweredNest nest = lower(state);
    EXPECT_EQ(nest.stages[2].totalIterations(), 64 * 64 * 128);
    EXPECT_EQ(nest.stages[2].iterationsDownTo(0), 64);
}

TEST(Lower, PrettyPrintMentionsLoopsAndBuffers)
{
    auto sg = convReluSubgraph();
    State state(sg, false);
    state.annotate(sg->anchorIndex(), 0, Annotation::Parallel);
    const LoweredNest nest = lower(state);
    const std::string text = nest.prettyPrint();
    EXPECT_NE(text.find("parallel for"), std::string::npos);
    EXPECT_NE(text.find("conv2d"), std::string::npos);
}

TEST(Lower, AttachedStagesListed)
{
    auto sg = convReluSubgraph();
    State state(sg, false);
    state.computeAt(sg->anchorIndex(), sg->outputIndex(), 0);
    const LoweredNest nest = lower(state);
    const auto attached = nest.attachedTo(sg->outputIndex());
    ASSERT_EQ(attached.size(), 1u);
    EXPECT_EQ(attached[0].first, sg->anchorIndex());
}

} // namespace
} // namespace tlp::sched
