/**
 * @file
 * Tests for the thread pool and for the bit-identical-parallelism
 * contract: every kernel, loss, and model prediction must produce the
 * same bits at any thread count (the static-partitioning invariant the
 * performance substrate is built on).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "models/tenset_mlp.h"
#include "models/tlp_model.h"
#include "nn/ops.h"
#include "sketch/policy.h"
#include "support/thread_pool.h"

namespace tlp {
namespace {

/** Restores the TLP_NUM_THREADS-configured global pool on scope exit. */
struct GlobalThreadsGuard
{
    ~GlobalThreadsGuard()
    {
        ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());
    }
};

TEST(ThreadPool, CoversRangeExactlyOnceAndIsReusable)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    for (int round = 0; round < 3; ++round) {
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h = 0;
        pool.parallelFor(0, 257, 1, [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i)
                hits[static_cast<size_t>(i)]++;
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    pool.parallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, GrainKeepsSmallRangesInOneChunk)
{
    ThreadPool pool(8);
    std::atomic<int> chunks{0};
    pool.parallelFor(0, 100, 1000, [&](int64_t begin, int64_t end) {
        ++chunks;
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, 100);
    });
    EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 64, 1,
                         [&](int64_t begin, int64_t) {
                             if (begin == 0)
                                 throw std::runtime_error("chunk failed");
                         }),
        std::runtime_error);

    // The pool must be fully drained and reusable after a throw.
    std::atomic<int64_t> sum{0};
    pool.parallelFor(0, 64, 1, [&](int64_t begin, int64_t end) {
        int64_t local = 0;
        for (int64_t i = begin; i < end; ++i)
            local += i;
        sum += local;
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPoolDeathTest, NestedSubmitIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            ThreadPool pool(2);
            pool.parallelFor(0, 1, 1, [&](int64_t, int64_t) {
                pool.parallelFor(0, 1, 1, [](int64_t, int64_t) {});
            });
        },
        ::testing::ExitedWithCode(kExitUserError),
        "nested ThreadPool::parallelFor");
}

/**
 * Run @p body under thread counts 1, 2, and 8 and return one result
 * vector-of-vectors per run for bitwise comparison.
 */
std::vector<std::vector<std::vector<float>>>
runAtThreadCounts(const std::function<std::vector<std::vector<float>>()>
                      &body)
{
    GlobalThreadsGuard guard;
    std::vector<std::vector<std::vector<float>>> runs;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        runs.push_back(body());
    }
    return runs;
}

TEST(BitIdentical, MatmulForwardAndBackward)
{
    const auto runs = runAtThreadCounts([] {
        Rng rng(101);
        nn::Tensor a = nn::Tensor::randn({37, 53}, rng, 1.0, true);
        nn::Tensor b = nn::Tensor::randn({53, 29}, rng, 1.0, true);
        nn::Tensor w = nn::Tensor::randn({37, 29}, rng, 1.0, false);
        nn::Tensor c = nn::matmul(a, b);
        nn::sumAll(nn::mul(c, w)).backward();
        return std::vector<std::vector<float>>{c.value(), a.grad(),
                                               b.grad()};
    });
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(BitIdentical, BmmForwardAndBackward)
{
    const auto runs = runAtThreadCounts([] {
        Rng rng(102);
        nn::Tensor a = nn::Tensor::randn({5, 13, 17}, rng, 1.0, true);
        nn::Tensor b = nn::Tensor::randn({5, 17, 11}, rng, 1.0, true);
        nn::Tensor w = nn::Tensor::randn({5, 13, 11}, rng, 1.0, false);
        nn::Tensor c = nn::bmm(a, b);
        nn::sumAll(nn::mul(c, w)).backward();
        return std::vector<std::vector<float>>{c.value(), a.grad(),
                                               b.grad()};
    });
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(BitIdentical, RowwiseOpsForwardAndBackward)
{
    // softmax + layerNorm + addBias: the column-partitioned backward
    // paths must match the serial accumulation bit for bit.
    const auto runs = runAtThreadCounts([] {
        Rng rng(103);
        nn::Tensor x = nn::Tensor::randn({19, 23}, rng, 1.0, true);
        nn::Tensor gamma = nn::Tensor::randn({23}, rng, 0.1, true);
        nn::Tensor beta = nn::Tensor::randn({23}, rng, 0.1, true);
        nn::Tensor bias = nn::Tensor::randn({23}, rng, 0.1, true);
        nn::Tensor w = nn::Tensor::randn({19, 23}, rng, 1.0, false);
        nn::Tensor y = nn::softmaxLastDim(
            nn::addBias(nn::layerNorm(x, gamma, beta), bias));
        nn::sumAll(nn::mul(y, w)).backward();
        return std::vector<std::vector<float>>{y.value(), x.grad(),
                                               gamma.grad(), beta.grad(),
                                               bias.grad()};
    });
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

/** A small synthetic LabeledSet with two comparable groups. */
data::LabeledSet
syntheticTlpSet(const model::TlpNetConfig &config, int rows)
{
    Rng rng(104);
    data::LabeledSet set;
    set.rows = rows;
    set.feature_dim = config.seq_len * config.emb_size;
    set.num_tasks = 1;
    set.features.resize(static_cast<size_t>(rows) *
                        static_cast<size_t>(set.feature_dim));
    for (auto &f : set.features)
        f = static_cast<float>(rng.uniform(-1, 1));
    for (int r = 0; r < rows; ++r) {
        set.labels.push_back(static_cast<float>(rng.uniform(0.1, 2.0)));
        set.groups.push_back(r < rows / 2 ? 0 : 1);
    }
    return set;
}

TEST(BitIdentical, TlpTrainingAndPrediction)
{
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    const auto set = syntheticTlpSet(config, 24);

    const auto runs = runAtThreadCounts([&] {
        Rng rng(105);
        model::TlpNet net(config, rng);
        model::TrainOptions options;
        options.epochs = 2;
        options.batch_size = 8;
        const double loss = trainTlpNet(net, set, options);
        const auto scores = predictTlpNet(net, set);
        std::vector<float> out{static_cast<float>(loss)};
        for (double s : scores)
            out.push_back(static_cast<float>(s));
        return std::vector<std::vector<float>>{out};
    });
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(BitIdentical, MlpTrainingAndPrediction)
{
    Rng data_rng(106);
    data::LabeledSet set;
    set.rows = 32;
    set.feature_dim = 164;
    set.num_tasks = 1;
    set.features.resize(static_cast<size_t>(set.rows) * 164);
    for (auto &f : set.features)
        f = static_cast<float>(data_rng.uniform(0, 1));
    for (int r = 0; r < set.rows; ++r) {
        set.labels.push_back(
            static_cast<float>(data_rng.uniform(0.1, 2.0)));
        set.groups.push_back(r % 2);
    }

    const auto runs = runAtThreadCounts([&] {
        Rng rng(107);
        model::MlpConfig config;
        config.hidden = 64;
        model::TensetMlpNet net(config, rng);
        model::TrainOptions options;
        options.epochs = 2;
        options.batch_size = 8;
        const double loss = trainMlp(net, set, options);
        const auto scores = predictMlp(net, set);
        std::vector<float> out{static_cast<float>(loss)};
        for (double s : scores)
            out.push_back(static_cast<float>(s));
        return std::vector<std::vector<float>>{out};
    });
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(BitIdentical, PredictBatchMatchesScoreStatesAtAnyThreadCount)
{
    const ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork("mlp-mixer"));
    Rng rng(108);
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    const auto states = policy.sampleInitPopulation(16, rng);
    ASSERT_FALSE(states.empty());

    Rng net_rng(109);
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    auto net = std::make_shared<model::TlpNet>(config, net_rng);
    model::TlpCostModel cost_model(net);

    const auto runs = runAtThreadCounts([&] {
        const auto batch = cost_model.predictBatch(0, states);
        const auto single = cost_model.scoreStates(0, states);
        EXPECT_EQ(batch, single);
        std::vector<float> out;
        for (double s : batch)
            out.push_back(static_cast<float>(s));
        return std::vector<std::vector<float>>{out};
    });
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(BitIdentical, FusedAndCachedInferenceAtAnyThreadCount)
{
    // The §13 hot path: every (fused, cache) combination must predict
    // the interpreted single-thread bits at any thread count — with the
    // cache warm (second call) as well as cold.
    const ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork("mlp-mixer"));
    Rng rng(110);
    sketch::SchedulePolicy policy(workload.subgraphs[0], false);
    const auto states = policy.sampleInitPopulation(48, rng);
    ASSERT_FALSE(states.empty());

    Rng net_rng(111);
    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;
    auto net = std::make_shared<model::TlpNet>(config, net_rng);

    const auto runs = runAtThreadCounts([&] {
        std::vector<std::vector<float>> out;
        for (const auto &options :
             {model::TlpInferOptions::legacy(),
              model::TlpInferOptions{true, 0},
              model::TlpInferOptions{false, 256},
              model::TlpInferOptions{true, 256}}) {
            model::TlpCostModel cost_model(net, {}, 0, options);
            const auto cold = cost_model.predictBatch(0, states);
            const auto warm = cost_model.predictBatch(0, states);
            EXPECT_EQ(cold, warm);
            std::vector<float> row;
            for (double s : cold)
                row.push_back(static_cast<float>(s));
            out.push_back(std::move(row));
        }
        // All four option combinations agree with each other...
        EXPECT_EQ(out[0], out[1]);
        EXPECT_EQ(out[0], out[2]);
        EXPECT_EQ(out[0], out[3]);
        return out;
    });
    // ...and with themselves across thread counts.
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

} // namespace
} // namespace tlp
