/**
 * @file
 * Unit tests for dataset collection, storage, splits, and metrics.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "dataset/collect.h"
#include "dataset/metrics.h"
#include "dataset/splits.h"
#include "support/rng.h"

namespace tlp::data {
namespace {

Dataset
smallDataset()
{
    CollectOptions options;
    options.networks = {"resnet-18", "bert-tiny"};
    options.platforms = {"platinum-8272", "e5-2673"};
    options.programs_per_subgraph = 24;
    options.seed = 7;
    return collectDataset(options);
}

TEST(Collect, ProducesGroupsAndRecords)
{
    const Dataset ds = smallDataset();
    EXPECT_GT(ds.groups.size(), 10u);
    EXPECT_EQ(ds.platforms.size(), 2u);
    EXPECT_GT(ds.records.size(), 10 * ds.groups.size());
    EXPECT_EQ(ds.network_groups.size(), 2u);
    // Every record labeled on both platforms.
    for (const auto &record : ds.records) {
        ASSERT_EQ(record.latency_ms.size(), 2u);
        EXPECT_TRUE(record.hasLabel(0));
        EXPECT_TRUE(record.hasLabel(1));
        EXPECT_GT(record.latency_ms[0], 0.0f);
    }
}

TEST(Collect, LabelsAreNormalizedToUnitInterval)
{
    const Dataset ds = smallDataset();
    int at_one = 0;
    for (size_t r = 0; r < ds.records.size(); ++r) {
        const float label = ds.label(static_cast<int>(r), 0);
        EXPECT_GT(label, 0.0f);
        EXPECT_LE(label, 1.0f);
        // tlp-lint: allow(float-eq) -- the best program's relative label is exactly min/min == 1.0 by construction
        at_one += label == 1.0f;
    }
    // Exactly one best program per group (up to ties).
    EXPECT_GE(at_one, static_cast<int>(ds.groups.size()));
}

TEST(Collect, DeterministicGivenSeed)
{
    const Dataset a = smallDataset();
    const Dataset b = smallDataset();
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t r = 0; r < a.records.size(); ++r) {
        EXPECT_EQ(a.records[r].seq.hash(), b.records[r].seq.hash());
        EXPECT_FLOAT_EQ(a.records[r].latency_ms[0],
                        b.records[r].latency_ms[0]);
    }
}

TEST(Dataset, SaveLoadRoundTrip)
{
    const Dataset ds = smallDataset();
    const std::string path = "/tmp/tlp_test_dataset.bin";
    ds.save(path);
    const Dataset loaded = Dataset::load(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.platforms, ds.platforms);
    EXPECT_EQ(loaded.groups.size(), ds.groups.size());
    ASSERT_EQ(loaded.records.size(), ds.records.size());
    for (size_t r = 0; r < ds.records.size(); ++r) {
        EXPECT_EQ(loaded.records[r].seq, ds.records[r].seq);
        EXPECT_EQ(loaded.records[r].latency_ms, ds.records[r].latency_ms);
    }
    EXPECT_EQ(loaded.network_groups.size(), ds.network_groups.size());
}

TEST(Dataset, StatisticsSaneRanges)
{
    const Dataset ds = smallDataset();
    const auto hist = ds.seqLenHistogram();
    EXPECT_FALSE(hist.empty());
    int64_t total = 0;
    for (const auto &[len, count] : hist) {
        EXPECT_GT(len, 0);
        EXPECT_LE(len, 100);
        total += count;
    }
    EXPECT_EQ(total, static_cast<int64_t>(ds.records.size()));

    const auto sizes = ds.maxEmbeddingSizes();
    EXPECT_GE(sizes.size(), 5u);   // several primitive kinds in use
    for (const auto &[kind, size] : sizes)
        EXPECT_GT(size, sched::kNumPrimKinds);

    EXPECT_LT(ds.repetitionRate(), 0.05);   // paper: ~1%
}

Dataset
faultyDataset()
{
    CollectOptions options;
    options.networks = {"resnet-18", "bert-tiny"};
    options.platforms = {"platinum-8272", "e5-2673"};
    options.programs_per_subgraph = 24;
    options.seed = 7;
    options.faults = hw::FaultProfile::uniform(0.3);
    return collectDataset(options);
}

TEST(Collect, FailedMeasurementsBecomeNanLabels)
{
    const Dataset ds = faultyDataset();
    int64_t missing = 0;
    for (const auto &record : ds.records)
        for (size_t p = 0; p < ds.platforms.size(); ++p)
            missing += !record.hasLabel(p);
    EXPECT_GT(missing, 0) << "30% faults should lose some labels";

    int64_t failures = 0;
    for (const auto &[status, count] : ds.failure_counts) {
        EXPECT_GT(count, 0) << status;
        failures += count;
    }
    EXPECT_EQ(failures, missing);

    // label() reports missing entries as NaN, never a bogus number.
    for (size_t r = 0; r < ds.records.size(); ++r)
        for (size_t p = 0; p < ds.platforms.size(); ++p)
            if (!ds.records[r].hasLabel(p))
                EXPECT_TRUE(std::isnan(
                    ds.label(static_cast<int>(r), static_cast<int>(p))));
}

TEST(Dataset, NanLabelsRoundTripExactly)
{
    const Dataset ds = faultyDataset();
    const std::string path = "/tmp/tlp_test_faulty_dataset.bin";
    ds.save(path);
    const Dataset loaded = Dataset::load(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.records.size(), ds.records.size());
    for (size_t r = 0; r < ds.records.size(); ++r) {
        const auto &want = ds.records[r].latency_ms;
        const auto &got = loaded.records[r].latency_ms;
        ASSERT_EQ(got.size(), want.size());
        for (size_t p = 0; p < want.size(); ++p) {
            if (std::isnan(want[p]))
                EXPECT_TRUE(std::isnan(got[p]));
            else
                EXPECT_EQ(got[p], want[p]);
        }
    }
    EXPECT_EQ(loaded.failure_counts, ds.failure_counts);
}

TEST(Metrics, TopKToleratesNanLabels)
{
    const Dataset ds = faultyDataset();
    const auto split = makeSplit(ds, {"bert-tiny"});
    Rng rng(5);
    std::vector<double> scores;
    for (size_t i = 0; i < split.test_records.size(); ++i)
        scores.push_back(rng.uniform());
    const auto tk = topKScores(ds, {"bert-tiny"}, 0, split.test_records,
                               scores);
    EXPECT_TRUE(std::isfinite(tk.top1));
    EXPECT_TRUE(std::isfinite(tk.top5));
    EXPECT_GT(tk.top1, 0.0);
    EXPECT_LE(tk.top5, 1.0 + 1e-12);
}

TEST(Split, TestNetworksHeldOut)
{
    const Dataset ds = smallDataset();
    const auto split = makeSplit(ds, {"bert-tiny"});
    EXPECT_FALSE(split.test_records.empty());
    EXPECT_FALSE(split.train_records.empty());

    std::set<int> test_groups(split.test_groups.begin(),
                              split.test_groups.end());
    for (int r : split.train_records)
        EXPECT_EQ(test_groups.count(
                      static_cast<int>(ds.records[static_cast<size_t>(r)]
                                           .group)),
                  0u);
    for (int r : split.test_records)
        EXPECT_EQ(test_groups.count(
                      static_cast<int>(ds.records[static_cast<size_t>(r)]
                                           .group)),
                  1u);
    // Valid fraction roughly 10%.
    const double frac =
        static_cast<double>(split.valid_records.size()) /
        static_cast<double>(split.valid_records.size() +
                            split.train_records.size());
    EXPECT_NEAR(frac, 0.1, 0.03);
}

TEST(Split, TlpSetShapes)
{
    const Dataset ds = smallDataset();
    const auto split = makeSplit(ds, {"bert-tiny"});
    const auto set = buildTlpSet(ds, split.train_records, {0, 1});
    EXPECT_EQ(set.rows, static_cast<int>(split.train_records.size()));
    EXPECT_EQ(set.feature_dim, 25 * 22);
    EXPECT_EQ(set.num_tasks, 2);
    EXPECT_EQ(set.labels.size(), static_cast<size_t>(set.rows) * 2);
    for (float label : set.labels) {
        EXPECT_FALSE(std::isnan(label));
        EXPECT_LE(label, 1.0f);
    }
}

TEST(Split, AnsorSetShapes)
{
    const Dataset ds = smallDataset();
    const auto split = makeSplit(ds, {"bert-tiny"});
    // Keep it quick: a subset only.
    std::vector<int> subset(split.train_records.begin(),
                            split.train_records.begin() + 50);
    const auto set = buildAnsorSet(ds, subset, 1);
    EXPECT_EQ(set.rows, 50);
    EXPECT_EQ(set.feature_dim, 164);
    for (float f : set.features)
        ASSERT_TRUE(std::isfinite(f));
}

TEST(Metrics, OracleScoresGiveTopOne)
{
    const Dataset ds = smallDataset();
    const auto split = makeSplit(ds, {"bert-tiny"});
    // Oracle: score = true label.
    std::vector<double> scores;
    for (int r : split.test_records)
        scores.push_back(ds.label(r, 0));
    const auto tk = topKScores(ds, {"bert-tiny"}, 0, split.test_records,
                               scores);
    EXPECT_NEAR(tk.top1, 1.0, 1e-6);
    EXPECT_NEAR(tk.top5, 1.0, 1e-6);
}

TEST(Metrics, AntiOracleIsWorseThanOracle)
{
    const Dataset ds = smallDataset();
    const auto split = makeSplit(ds, {"bert-tiny"});
    std::vector<double> scores;
    for (int r : split.test_records)
        scores.push_back(-ds.label(r, 0));   // worst first
    const auto tk = topKScores(ds, {"bert-tiny"}, 0, split.test_records,
                               scores);
    EXPECT_LT(tk.top1, 0.9);
}

TEST(Metrics, Top5AtLeastTop1)
{
    const Dataset ds = smallDataset();
    const auto split = makeSplit(ds, {"bert-tiny"});
    Rng rng(3);
    std::vector<double> scores;
    for (size_t i = 0; i < split.test_records.size(); ++i)
        scores.push_back(rng.uniform());
    const auto tk = topKScores(ds, {"bert-tiny"}, 0, split.test_records,
                               scores);
    EXPECT_GE(tk.top5 + 1e-12, tk.top1);
    EXPECT_GT(tk.top1, 0.0);
}

} // namespace
} // namespace tlp::data
