/**
 * @file
 * Unit tests for the compute-graph IR: shapes, ops, graphs, loop specs,
 * and the model zoo.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "ir/graph.h"
#include "ir/loops.h"
#include "ir/model_zoo.h"
#include "ir/subgraph.h"

namespace tlp::ir {
namespace {

TEST(Dtype, BytesAndNames)
{
    EXPECT_EQ(dtypeBytes(DataType::Float32), 4);
    EXPECT_EQ(dtypeBytes(DataType::Float16), 2);
    EXPECT_EQ(dtypeBytes(DataType::Int8), 1);
    EXPECT_EQ(dtypeName(DataType::Float32), "f32");
}

TEST(Shape, NumElementsAndPrint)
{
    EXPECT_EQ(numElements({2, 3, 4}), 24);
    EXPECT_EQ(numElements({}), 1);
    EXPECT_EQ(shapeToString({1, 64}), "[1, 64]");
}

TEST(Graph, DenseShapeInference)
{
    ComputeGraph g("t");
    auto x = g.input({4, 128});
    auto y = g.dense(x, 256);
    EXPECT_EQ(g.desc(y).shape, (Shape{4, 256}));
    // dense creates a weight constant [units, k].
    const auto &node = g.node(y);
    EXPECT_EQ(g.nodes()[node.inputs[1]].out.shape, (Shape{256, 128}));
}

TEST(Graph, Conv2dShapeInference)
{
    ComputeGraph g("t");
    auto x = g.input({1, 3, 224, 224});
    auto y = g.conv2d(x, 64, 7, 2);
    EXPECT_EQ(g.desc(y).shape, (Shape{1, 64, 112, 112}));
    auto z = g.conv2d(y, 64, 3, 1);
    EXPECT_EQ(g.desc(z).shape, (Shape{1, 64, 112, 112}));
}

TEST(Graph, DepthwiseAndGroupConv)
{
    ComputeGraph g("t");
    auto x = g.input({1, 32, 56, 56});
    auto d = g.depthwiseConv2d(x, 3, 2);
    EXPECT_EQ(g.desc(d).shape, (Shape{1, 32, 28, 28}));
    auto gc = g.groupConv2d(d, 64, 3, 32);
    EXPECT_EQ(g.desc(gc).shape, (Shape{1, 64, 28, 28}));
}

TEST(Graph, BatchMatmulShape)
{
    ComputeGraph g("t");
    auto a = g.input({8, 128, 64});
    auto b = g.input({8, 64, 128});
    auto c = g.batchMatmul(a, b);
    EXPECT_EQ(g.desc(c).shape, (Shape{8, 128, 128}));
}

TEST(Graph, PoolAndGlobalPool)
{
    ComputeGraph g("t");
    auto x = g.input({1, 64, 56, 56});
    auto p = g.maxPool2d(x, 3, 2);
    EXPECT_EQ(g.desc(p).shape, (Shape{1, 64, 28, 28}));
    auto gp = g.globalAvgPool(p);
    EXPECT_EQ(g.desc(gp).shape, (Shape{1, 64}));
}

TEST(Graph, FlopCounts)
{
    ComputeGraph g("t");
    auto x = g.input({1, 128});
    g.dense(x, 64);
    // 2 * 1 * 64 * 128 flops.
    EXPECT_EQ(g.totalFlops(), 2 * 64 * 128);
}

TEST(Graph, ReshapeValidation)
{
    ComputeGraph g("t");
    auto x = g.input({4, 4});
    auto y = g.reshape(x, {2, 8});
    EXPECT_EQ(g.desc(y).shape, (Shape{2, 8}));
}

TEST(Subgraph, KeyIsStableAndDistinct)
{
    auto make = [](int64_t units) {
        ComputeGraph g("t");
        auto x = g.input({4, 128});
        g.dense(x, units);
        std::vector<OpNode> ops = g.nodes();
        return Subgraph(std::move(ops), 2);
    };
    const auto a1 = make(64);
    const auto a2 = make(64);
    const auto b = make(32);
    EXPECT_EQ(a1.key(), a2.key());
    EXPECT_NE(a1.key(), b.key());
    EXPECT_GT(a1.flops(), 0);
}

TEST(Subgraph, SerializeRoundTrip)
{
    ComputeGraph g("t");
    auto x = g.input({1, 16, 8, 8});
    auto y = g.conv2d(x, 16, 3);
    g.relu(y);
    std::vector<OpNode> ops = g.nodes();
    Subgraph sg(std::move(ops), 2);

    std::stringstream ss;
    BinaryWriter writer(ss);
    sg.serialize(writer);
    BinaryReader reader(ss);
    const Subgraph copy = Subgraph::deserialize(reader);
    EXPECT_EQ(copy.key(), sg.key());
    EXPECT_EQ(copy.flops(), sg.flops());
    EXPECT_EQ(copy.anchorIndex(), sg.anchorIndex());
}

TEST(Loops, DenseSpec)
{
    ComputeGraph g("t");
    auto x = g.input({4, 128});
    g.dense(x, 64);
    Subgraph sg(g.nodes(), 2);
    const LoopSpec spec = describeLoops(sg, 2);
    ASSERT_EQ(spec.iters.size(), 3u);
    EXPECT_EQ(spec.iters[0].extent, 4);
    EXPECT_EQ(spec.iters[1].extent, 64);
    EXPECT_EQ(spec.iters[2].extent, 128);
    EXPECT_TRUE(spec.iters[2].is_reduction);
    EXPECT_EQ(spec.totalPoints(), 4 * 64 * 128);
    ASSERT_EQ(spec.accesses.size(), 3u);
}

TEST(Loops, ConvFootprintWindows)
{
    ComputeGraph g("t");
    auto x = g.input({1, 16, 32, 32});
    g.conv2d(x, 8, 3, 1);
    Subgraph sg(g.nodes(), 2);
    const LoopSpec spec = describeLoops(sg, 2);
    // iters: n oc oh ow rc rh rw
    ASSERT_EQ(spec.iters.size(), 7u);
    // Tile of 1 output point reads a 3x3 input window per channel.
    std::vector<int64_t> tiles = {1, 1, 1, 1, 16, 3, 3};
    const auto &input_access = spec.accesses[0];
    EXPECT_EQ(input_access.footprintElems(tiles), 1 * 16 * 3 * 3);
    // A full row of outputs reads a full padded-width window.
    tiles = {1, 1, 1, 32, 16, 3, 3};
    EXPECT_EQ(input_access.footprintElems(tiles), 16 * 3 * (32 + 2));
}

TEST(Loops, ElementwiseTailSpec)
{
    ComputeGraph g("t");
    auto x = g.input({1, 8, 4, 4});
    auto y = g.relu(x);
    g.add(y, g.input({1, 8, 4, 4}));
    Subgraph sg(g.nodes(), -1);
    const LoopSpec spec = describeLoops(sg, 3);
    EXPECT_EQ(spec.iters.size(), 4u);
    EXPECT_TRUE(spec.reductionIters().empty());
}

TEST(ModelZoo, AllNetworksBuild)
{
    for (const auto &name : allNetworkNames()) {
        const ComputeGraph g = buildNetwork(name);
        EXPECT_GT(g.totalFlops(), 0) << name;
        EXPECT_GT(g.nodes().size(), 5u) << name;
    }
}

TEST(ModelZoo, TestSetMatchesPaper)
{
    const auto names = testNetworkNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "resnet-50");
    EXPECT_EQ(names[1], "mobilenet-v2");
    EXPECT_EQ(names[2], "resnext-50");
    EXPECT_EQ(names[3], "bert-tiny");
    EXPECT_EQ(names[4], "bert-base");
}

TEST(ModelZoo, ResNet50FlopsInRange)
{
    const ComputeGraph g = buildResNet(50);
    // ~4.1 GFLOPs for batch-1 ResNet-50 (2 flops per MAC).
    EXPECT_GT(g.totalFlops(), 3'000'000'000LL);
    EXPECT_LT(g.totalFlops(), 12'000'000'000LL);
}

} // namespace
} // namespace tlp::ir
