#include "bench/bench_common.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "schedule/lower.h"
#include "sketch/policy.h"
#include "support/io_env.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/str_util.h"

namespace tlp::bench {

namespace {

uint64_t
mixDouble(uint64_t hash, double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return hashCombine(hash, bits);
}

/**
 * Fingerprint of everything that determines a memoized dataset's
 * contents: the on-disk format version, the collection options, and a
 * behavioral probe of the sampling + lowering + measurement pipeline
 * (one fixed schedule labeled on every platform), so simulator or
 * sketch-rule changes invalidate stale memos instead of being silently
 * served stale labels.
 */
uint64_t
collectionFingerprint(const data::CollectOptions &options)
{
    uint64_t hash = data::Dataset::kFormatVersion;
    for (const auto &network : options.networks)
        hash = hashCombine(hash, fnv1a(network.data(), network.size()));
    for (const auto &platform : options.platforms)
        hash = hashCombine(hash, fnv1a(platform.data(), platform.size()));
    hash = hashCombine(hash, options.is_gpu ? 1 : 0);
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.programs_per_subgraph));
    hash = hashCombine(hash, options.seed);
    hash = mixDouble(hash, options.measure_noise);
    hash = hashCombine(hash, options.faults.digest());
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.measure_retries));

    const ir::Workload probe_workload =
        ir::partitionGraph(ir::buildNetwork("resnet-18"));
    const auto &subgraph = probe_workload.subgraphs.front();
    sketch::SchedulePolicy policy(subgraph, options.is_gpu);
    Rng rng(0xbead);
    const auto population = policy.sampleInitPopulation(1, rng);
    TLP_CHECK(!population.empty(), "empty probe population");
    const auto nest = sched::lower(population.front());
    for (const auto &platform : options.platforms) {
        hw::MeasureOptions measure_options;
        measure_options.noise_std = options.measure_noise;
        hw::Measurer measurer(hw::HardwarePlatform::preset(platform),
                              measure_options, options.seed);
        hash = mixDouble(hash, measurer.measureMs(nest));
    }

    // Scoring-path probe: a fixed tiny net scored over a fixed
    // population through both the legacy (interpreted, uncached) and
    // the fast (fused, cached) inference paths. Any behavioral drift in
    // feature extraction or either forward — including a fused/cached
    // divergence, which must never happen — moves the fingerprint and
    // regenerates the memo instead of serving it stale.
    const auto score_states = policy.sampleInitPopulation(4, rng);
    TLP_CHECK(!score_states.empty(), "empty scoring probe population");
    model::TlpNetConfig probe_config;
    probe_config.hidden = 16;
    probe_config.heads = 4;
    probe_config.head_hidden = 8;
    probe_config.residual_blocks = 1;
    Rng probe_rng(0x70be);
    auto probe_net =
        std::make_shared<model::TlpNet>(probe_config, probe_rng);
    for (const auto &infer : {model::TlpInferOptions::legacy(),
                              model::TlpInferOptions{true, 64}}) {
        model::TlpCostModel cost_model(probe_net, {}, 0, infer);
        for (double score : cost_model.predictBatch(0, score_states))
            hash = mixDouble(hash, score);
    }
    return hash;
}

} // namespace

std::vector<std::string>
benchTrainNetworks()
{
    return {"resnet-18", "resnet-34", "vgg-16", "squeezenet",
            "mlp-mixer", "bert-small", "gpt2-lite"};
}

std::vector<std::string>
benchTestNetworks()
{
    return {"resnet-50", "mobilenet-v2", "resnext-50", "bert-tiny",
            "bert-base"};
}

std::vector<std::string>
benchNetworks()
{
    auto networks = benchTrainNetworks();
    for (const auto &name : benchTestNetworks())
        networks.push_back(name);
    return networks;
}

data::Dataset
standardDataset(const std::vector<std::string> &platforms, bool is_gpu)
{
    // Cache on disk so consecutive benches share the collection cost.
    std::string key = is_gpu ? "gpu" : "cpu";
    for (const auto &platform : platforms)
        key += "_" + platform;
    const int64_t programs = scaledCount(72, 16);
    key += "_" + std::to_string(programs);
    const std::string path = "/tmp/tlp_bench_" + key + ".bin";

    data::CollectOptions options;
    options.networks = benchNetworks();
    options.platforms = platforms;
    options.is_gpu = is_gpu;
    options.programs_per_subgraph = static_cast<int>(programs);
    options.seed = 0xda7a;

    // The memo is stamped with a fingerprint of the format version, the
    // collection options and a behavioral probe; any mismatch (including
    // a corrupt, truncated, or version-skewed file) regenerates instead
    // of serving stale labels or crashing.
    const uint64_t fingerprint = collectionFingerprint(options);
    std::error_code exists_ec;
    if (std::filesystem::exists(path, exists_ec)) {
        Result<data::Dataset> memo = loadBenchMemo(path, fingerprint);
        if (memo.ok())
            return memo.take();
        inform("bench memo ", path, " unusable (",
               memo.status().toString(), "); regenerating");
    }

    // Regeneration is also the moment to reap temp files a crashed
    // bench stranded next to this memo (scoped to this artifact: /tmp
    // is shared, a directory-wide sweep could race live writers) —
    // through the audit module, the same debris policy tlp_fsck runs.
    artifact::sweepDebrisFor(path);
    data::Dataset dataset = data::collectDataset(options);
    const Status status = writeBenchMemo(path, fingerprint, dataset);
    if (!status.ok()) {
        // The memo is only a cache: losing it costs re-collection time on
        // the next bench, never correctness.
        warn("bench memo not saved: ", status.toString());
    }
    return dataset;
}

void
writeBenchMemo(std::ostream &os, uint64_t fingerprint,
               const data::Dataset &dataset)
{
    BinaryWriter writer(os);
    writeHeader(writer, kMemoMagic, kMemoVersion);
    writer.writePod(fingerprint);
    dataset.save(os);
}

Status
writeBenchMemo(const std::string &path, uint64_t fingerprint,
               const data::Dataset &dataset)
{
    return atomicWriteFile(path, [&](std::ostream &os) {
        writeBenchMemo(os, fingerprint, dataset);
    });
}

Result<data::Dataset>
loadBenchMemo(std::istream &is, uint64_t fingerprint)
{
    uint64_t stamp = 0;
    const Status status = guardedParse([&] {
        BinaryReader reader(is);
        readHeader(reader, kMemoMagic, kMemoVersion, kMemoVersion);
        stamp = reader.readPod<uint64_t>();
    });
    if (!status.ok())
        return status;
    if (stamp != fingerprint) {
        return Status::error(ErrorCode::Invalid,
                             "memo fingerprint is stale (collection "
                             "options, format, or pipeline changed)");
    }
    return data::Dataset::tryLoad(is);
}

Result<data::Dataset>
loadBenchMemo(const std::string &path, uint64_t fingerprint)
{
    const Status injected = IoEnv::global().checkRead(path);
    if (!injected.ok())
        return injected;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open for read: " + path);
    }
    return loadBenchMemo(is, fingerprint);
}

std::vector<int>
capTrainRecords(std::vector<int> records, int64_t base_cap, uint64_t seed)
{
    const int64_t cap = scaledCount(base_cap, 500);
    if (static_cast<int64_t>(records.size()) <= cap)
        return records;
    Rng rng(seed);
    rng.shuffle(records);
    // tlp-lint: allow(unbounded-alloc) -- cap derives from TLP_BENCH_SCALE, not from stream bytes; this only ever shrinks
    records.resize(static_cast<size_t>(cap));
    return records;
}

model::TrainOptions
benchTrainOptions()
{
    model::TrainOptions options;
    options.epochs = std::max<int>(3, static_cast<int>(5 * benchScale()));
    options.lr = 2e-3;
    return options;
}

TrainedTlp
trainAndEvalTlp(const data::Dataset &dataset, const data::Split &split,
                const std::vector<int> &platform_indices,
                model::TlpNetConfig config, model::TrainOptions options,
                const std::vector<int> *train_records)
{
    config.num_tasks = static_cast<int>(platform_indices.size());

    feat::TlpFeatureOptions feature_options;
    feature_options.seq_len = config.seq_len;
    feature_options.emb_size = config.emb_size;

    const std::vector<int> records =
        train_records ? *train_records
                      : capTrainRecords(split.train_records);
    auto train_set = data::buildTlpSet(dataset, records, platform_indices,
                                       feature_options);

    Rng rng(options.seed);
    TrainedTlp result;
    result.net = std::make_shared<model::TlpNet>(config, rng);
    trainTlpNet(*result.net, train_set, options);

    auto test_set = data::buildTlpSet(dataset, split.test_records,
                                      platform_indices, feature_options);
    const auto scores = predictTlpNet(*result.net, test_set, 0);
    result.topk = data::topKScores(dataset, benchTestNetworks(),
                                   platform_indices.at(0),
                                   split.test_records, scores);
    return result;
}

TrainedMlp
trainAndEvalMlp(const data::Dataset &dataset, const data::Split &split,
                int platform_index, model::TrainOptions options)
{
    const auto records = capTrainRecords(split.train_records);
    auto train_set = data::buildAnsorSet(dataset, records, platform_index);

    Rng rng(options.seed);
    TrainedMlp result;
    result.net = std::make_shared<model::TensetMlpNet>(model::MlpConfig{},
                                                       rng);
    trainMlp(*result.net, train_set, options);

    auto test_set =
        data::buildAnsorSet(dataset, split.test_records, platform_index);
    const auto scores = predictMlp(*result.net, test_set);
    result.topk =
        data::topKScores(dataset, benchTestNetworks(), platform_index,
                         split.test_records, scores);
    return result;
}

std::string
fmtScore(double value)
{
    return formatDouble(value, 4);
}

SearchModels
prepareSearchModels(const data::Dataset &dataset, const data::Split &split)
{
    SearchModels models;
    models.ansor = std::make_unique<model::AnsorOnlineCostModel>();

    auto options = benchTrainOptions();
    options.epochs = std::max(3, options.epochs - 2);

    auto mlp = trainAndEvalMlp(dataset, split, 0, options);
    models.mlp = std::make_unique<model::TensetMlpCostModel>(mlp.net);

    auto tlp = trainAndEvalTlp(dataset, split, {0},
                               model::TlpNetConfig{}, options);
    models.tlp = std::make_unique<model::TlpCostModel>(tlp.net);

    if (dataset.platforms.size() > 1) {
        // MTL-TLP: scarce target labels plus the donor platform.
        model::TlpNetConfig config;
        config.num_tasks = 2;
        feat::TlpFeatureOptions feature_options;
        auto records = capTrainRecords(split.train_records);
        auto train_set = data::buildTlpSet(dataset, records, {0, 1},
                                           feature_options);
        Rng mask_rng(0x3a5c);
        const int64_t scarce = scaledCount(800, 200);
        std::vector<int> order(static_cast<size_t>(train_set.rows));
        for (int r = 0; r < train_set.rows; ++r)
            order[static_cast<size_t>(r)] = r;
        mask_rng.shuffle(order);
        for (int64_t i = scarce; i < train_set.rows; ++i) {
            train_set.labels[static_cast<size_t>(
                                 order[static_cast<size_t>(i)]) *
                             2] = std::numeric_limits<float>::quiet_NaN();
        }
        Rng rng(options.seed);
        auto net = std::make_shared<model::TlpNet>(config, rng);
        trainTlpNet(*net, train_set, options);
        models.mtl = std::make_unique<model::TlpCostModel>(net);
    }
    return models;
}

tune::TuneOptions
benchTuneOptions(int num_tasks)
{
    tune::TuneOptions options;
    options.rounds = num_tasks * std::max(2, static_cast<int>(
                                                 2 * benchScale()));
    options.measures_per_round = 10;
    options.evolution.population = static_cast<int>(scaledCount(32, 16));
    options.evolution.iterations = 2;
    options.evolution.children_per_iter = 16;
    return options;
}

tune::TuneResult
tuneNetwork(const std::string &network, const std::string &platform,
            model::CostModel &cost_model)
{
    const ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork(network));
    const auto hw = hw::HardwarePlatform::preset(platform);
    return tune::tuneWorkload(
        workload, hw, cost_model,
        benchTuneOptions(static_cast<int>(workload.subgraphs.size())));
}

data::TopKPair
mtlTopK(const data::Dataset &dataset, const data::Split &split,
        int target_platform, const std::vector<int> &donor_platforms,
        int64_t target_rows, model::TrainOptions options)
{
    std::vector<int> platforms = {target_platform};
    for (int donor : donor_platforms)
        platforms.push_back(donor);

    model::TlpNetConfig config;
    config.num_tasks = static_cast<int>(platforms.size());

    feat::TlpFeatureOptions feature_options;
    auto records = capTrainRecords(split.train_records);
    auto train_set =
        data::buildTlpSet(dataset, records, platforms, feature_options);

    // Keep target labels only on the first target_rows records (the
    // scarce-data regime); donors keep all labels.
    Rng mask_rng(0x3a5c);
    std::vector<int> order(static_cast<size_t>(train_set.rows));
    for (int r = 0; r < train_set.rows; ++r)
        order[static_cast<size_t>(r)] = r;
    mask_rng.shuffle(order);
    const int64_t keep = std::min<int64_t>(target_rows, train_set.rows);
    for (int64_t i = keep; i < train_set.rows; ++i) {
        const int row = order[static_cast<size_t>(i)];
        train_set.labels[static_cast<size_t>(row) *
                         static_cast<size_t>(train_set.num_tasks)] =
            std::numeric_limits<float>::quiet_NaN();
    }

    Rng rng(options.seed);
    model::TlpNet net(config, rng);
    trainTlpNet(net, train_set, options);

    auto test_set = data::buildTlpSet(dataset, split.test_records,
                                      platforms, feature_options);
    const auto scores = predictTlpNet(net, test_set, 0);
    return data::topKScores(dataset, benchTestNetworks(), target_platform,
                            split.test_records, scores);
}

} // namespace tlp::bench
