/**
 * @file
 * Paper Table 5: TLP vs TenSet MLP top-k scores on all seven platforms
 * (5 CPUs + 2 GPUs). Paper shape: TLP beats the MLP clearly on every
 * CPU; on GPUs the two trade blows.
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 5: TLP vs TenSet MLP on all platforms ===\n");

    struct Row
    {
        const char *platform;
        bool gpu;
        double paper_mlp1, paper_mlp5, paper_tlp1, paper_tlp5;
    };
    const Row rows[] = {
        {"platinum-8272", false, 0.8748, 0.9527, 0.9194, 0.9710},
        {"e5-2673", false, 0.8332, 0.8977, 0.8941, 0.9633},
        {"epyc-7452", false, 0.8510, 0.9175, 0.9055, 0.9494},
        {"graviton2", false, 0.7799, 0.9049, 0.8207, 0.9226},
        {"i7-10510u", false, 0.7776, 0.8590, 0.8473, 0.9427},
        {"tesla-k80", true, 0.9083, 0.9629, 0.9059, 0.9741},
        {"tesla-t4", true, 0.8757, 0.9528, 0.8847, 0.9250},
    };

    TextTable table("Table 5: top-1 / top-5 (TenSet-MLP vs TLP)");
    table.setHeader({"platform", "mlp top-1 (paper/ours)",
                     "mlp top-5 (paper/ours)", "tlp top-1 (paper/ours)",
                     "tlp top-5 (paper/ours)"});
    for (const Row &row : rows) {
        const auto dataset = bench::standardDataset({row.platform},
                                                    row.gpu);
        const auto split =
            data::makeSplit(dataset, bench::benchTestNetworks());
        const auto mlp = bench::trainAndEvalMlp(dataset, split, 0,
                                                bench::benchTrainOptions());
        const auto tlp = bench::trainAndEvalTlp(
            dataset, split, {0}, model::TlpNetConfig{},
            bench::benchTrainOptions());
        table.addRow({row.platform,
                      bench::fmtScore(row.paper_mlp1) + " / " +
                          bench::fmtScore(mlp.topk.top1),
                      bench::fmtScore(row.paper_mlp5) + " / " +
                          bench::fmtScore(mlp.topk.top5),
                      bench::fmtScore(row.paper_tlp1) + " / " +
                          bench::fmtScore(tlp.topk.top1),
                      bench::fmtScore(row.paper_tlp5) + " / " +
                          bench::fmtScore(tlp.topk.top5)});
        std::printf("done: %s\n", row.platform);
    }
    table.print();
    return 0;
}
