/**
 * @file
 * Paper Table 4: top-k scores for sequence-length {25, 54} x embedding
 * size {22, 40} feature crops. Paper: 25x22 is best (0.9194 / 0.9710) —
 * denser features beat keeping every rarely-used slot.
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 4: feature-size cropping ===\n");
    const auto dataset =
        bench::standardDataset({"platinum-8272"}, /*is_gpu=*/false);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());

    struct Row
    {
        int seq_len, emb_size;
        double paper_top1, paper_top5;
    };
    const Row rows[] = {
        {25, 22, 0.9194, 0.9710},
        {25, 40, 0.9171, 0.9558},
        {54, 22, 0.9032, 0.9472},
        {54, 40, 0.9076, 0.9677},
    };

    TextTable table("Table 4 (CPU dataset, platinum-8272)");
    table.setHeader({"crop", "top-1 (paper)", "top-1 (ours)",
                     "top-5 (paper)", "top-5 (ours)"});
    for (const Row &row : rows) {
        model::TlpNetConfig config;
        config.seq_len = row.seq_len;
        config.emb_size = row.emb_size;
        const auto trained = bench::trainAndEvalTlp(
            dataset, split, {0}, config, bench::benchTrainOptions());
        const std::string name = "seq " + std::to_string(row.seq_len) +
                                 " + emb " +
                                 std::to_string(row.emb_size);
        table.addRow({name, bench::fmtScore(row.paper_top1),
                      bench::fmtScore(trained.topk.top1),
                      bench::fmtScore(row.paper_top5),
                      bench::fmtScore(trained.topk.top5)});
        std::printf("done: %s\n", name.c_str());
    }
    table.print();
    return 0;
}
