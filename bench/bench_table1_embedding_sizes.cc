/**
 * @file
 * Paper Table 1: maximum embedding size per schedule-primitive kind in
 * the CPU dataset. The paper reports RE 40, FU 22, SP 18, FSP 15, CA 14,
 * AN 14, RF 14, PR 14, CHW 13, CP 12, CI 12 on the TenSet CPU dataset;
 * our primitive encoding differs in detail, so the reproduction target
 * is the *shape*: a handful of kinds, reorders widest, sizes O(10-40).
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 1: max embedding sizes per primitive ===\n");
    const auto dataset =
        bench::standardDataset({"platinum-8272"}, /*is_gpu=*/false);

    const auto sizes = dataset.maxEmbeddingSizes();
    TextTable table("max embedding size per primitive kind "
                    "(paper: RE 40, FU 22, SP 18, FSP 15, ..., CI 12)");
    table.setHeader({"primitive", "long name", "max embedding size"});
    // Sort by size descending, like the paper.
    std::vector<std::pair<int, std::string>> order;
    for (const auto &[kind, size] : sizes)
        order.push_back({-size, kind});
    std::sort(order.begin(), order.end());
    for (const auto &[neg_size, kind] : order) {
        std::string long_name;
        for (int k = 0; k < sched::kNumPrimKinds; ++k) {
            const auto prim_kind = static_cast<sched::PrimKind>(k);
            if (sched::primKindName(prim_kind) == kind)
                long_name = sched::primKindLongName(prim_kind);
        }
        table.addRow({kind, long_name, std::to_string(-neg_size)});
    }
    table.print();

    std::printf("\nrepetition rate (paper Sec 4.3: ~1.04%%): %.4f%%\n",
                100.0 * dataset.repetitionRate());
    return 0;
}
