/**
 * @file
 * Paper Table 8: transfer / self-supervised methods on the scarce-data
 * target (i7-10510U, donor e5-2673). Paper shape: MTL (0.8331) beats
 * fine-tuning (0.7897), which beats GPT-style (0.6863) and BERT-style
 * (0.6316) pretraining — big pretrained stacks overfit tiny features.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "models/pretrain.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 8: transfer & self-supervised methods ===\n");
    const auto dataset =
        bench::standardDataset({"i7-10510u", "e5-2673"}, false);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());
    const int64_t scarce = scaledCount(800, 200);
    const auto options = bench::benchTrainOptions();

    const auto records = bench::capTrainRecords(split.train_records);
    feat::TlpFeatureOptions feature_options;

    // Scarce target subset used by every method's fine-tuning stage.
    auto scarce_records = records;
    if (static_cast<int64_t>(scarce_records.size()) > scarce)
        scarce_records.resize(static_cast<size_t>(scarce));
    auto scarce_set =
        data::buildTlpSet(dataset, scarce_records, {0}, feature_options);
    auto test_set = data::buildTlpSet(dataset, split.test_records, {0},
                                      feature_options);

    auto evalNet = [&](model::TlpNet &net) {
        const auto scores = predictTlpNet(net, test_set, 0);
        return data::topKScores(dataset, bench::benchTestNetworks(), 0,
                                split.test_records, scores);
    };

    TextTable table("Table 8 (target i7-10510u, scarce target labels)");
    table.setHeader({"method", "top-1 (paper)", "top-1 (ours)",
                     "top-5 (paper)", "top-5 (ours)"});

    // 1) Fine-tuning: pretrain supervised on the donor, fine-tune on the
    //    scarce target subset.
    {
        auto donor_set =
            data::buildTlpSet(dataset, records, {1}, feature_options);
        Rng rng(options.seed);
        model::TlpNet net(model::TlpNetConfig{}, rng);
        trainTlpNet(net, donor_set, options);
        auto finetune = options;
        finetune.lr = options.lr * 0.3;
        trainTlpNet(net, scarce_set, finetune);
        const auto topk = evalNet(net);
        table.addRow({"fine-tuning (e5 -> i7)", bench::fmtScore(0.7897),
                      bench::fmtScore(topk.top1), bench::fmtScore(0.9175),
                      bench::fmtScore(topk.top5)});
        std::printf("done: fine-tuning\n");
    }

    // 2) MTL: task 1 scarce i7 labels, task 2 all e5 labels.
    {
        const auto topk =
            bench::mtlTopK(dataset, split, 0, {1}, scarce, options);
        table.addRow({"MTL (i7 scarce + e5 all)", bench::fmtScore(0.8331),
                      bench::fmtScore(topk.top1), bench::fmtScore(0.9672),
                      bench::fmtScore(topk.top5)});
        std::printf("done: MTL\n");
    }

    // 3/4) GPT-/BERT-style self-supervised pretraining on unlabeled i7
    //      sequences, then supervised training on the scarce subset.
    auto unlabeled =
        data::buildTlpSet(dataset, records, {0}, feature_options);
    struct SslRow
    {
        const char *name;
        bool gpt;
        double paper_top1, paper_top5;
    };
    const SslRow ssl_rows[] = {
        {"GPT-style pretrain + scarce", true, 0.6863, 0.8431},
        {"BERT-style pretrain + scarce", false, 0.6316, 0.8137},
    };
    for (const SslRow &row : ssl_rows) {
        Rng rng(options.seed + (row.gpt ? 1 : 2));
        model::TlpNet net(model::TlpNetConfig{}, rng);
        model::PretrainOptions pretrain_options;
        pretrain_options.epochs = std::max(2, options.epochs / 2);
        if (row.gpt) {
            gptPretrain(net, unlabeled, pretrain_options);
        } else {
            bertPretrain(net, unlabeled, pretrain_options);
        }
        trainTlpNet(net, scarce_set, options);
        const auto topk = evalNet(net);
        table.addRow({row.name, bench::fmtScore(row.paper_top1),
                      bench::fmtScore(topk.top1),
                      bench::fmtScore(row.paper_top5),
                      bench::fmtScore(topk.top5)});
        std::printf("done: %s\n", row.name);
    }

    table.print();
    return 0;
}
