/**
 * @file
 * Paper Table 6: MTL-TLP on CPUs. Target = Intel E5-2673 with a scarce
 * labeled subset ("500K"); donors are added one by one. Paper shape:
 * one-task scarce training is poor (0.6647); adding a donor helps a lot
 * (0.8741); a second donor helps a little more (0.8901); a third donor
 * starts to interfere (0.8753).
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 6: MTL-TLP on CPU (target e5-2673) ===\n");
    const std::vector<std::string> platforms = {
        "e5-2673", "platinum-8272", "epyc-7452", "graviton2"};
    const auto dataset = bench::standardDataset(platforms, false);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());
    const int64_t scarce = scaledCount(800, 200);   // the "500K" subset

    struct Row
    {
        const char *tasks;
        std::vector<int> donors;
        double paper_top1, paper_top5;
    };
    const Row rows[] = {
        {"e5 scarce only", {}, 0.6647, 0.8848},
        {"+ platinum", {1}, 0.8741, 0.9385},
        {"+ platinum + epyc", {1, 2}, 0.8901, 0.9520},
        {"+ platinum + epyc + graviton", {1, 2, 3}, 0.8753, 0.9302},
    };

    TextTable table("Table 6 (target e5-2673, scarce target labels)");
    table.setHeader({"tasks", "top-1 (paper)", "top-1 (ours)",
                     "top-5 (paper)", "top-5 (ours)"});
    for (const Row &row : rows) {
        const auto topk = bench::mtlTopK(dataset, split, 0, row.donors,
                                         scarce,
                                         bench::benchTrainOptions());
        table.addRow({row.tasks, bench::fmtScore(row.paper_top1),
                      bench::fmtScore(topk.top1),
                      bench::fmtScore(row.paper_top5),
                      bench::fmtScore(topk.top5)});
        std::printf("done: %s\n", row.tasks);
    }
    table.print();
    return 0;
}
