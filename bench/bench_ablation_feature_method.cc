/**
 * @file
 * Ablation (paper Sec. 4.1 discussion): feature-extraction methods.
 *
 * Method 2 encodes each whole primitive as one opaque token, destroying
 * the synonym relationship between primitives of the same type with
 * different parameters; Method 3 (TLP) decomposes primitives into
 * type one-hot + numeric params + name tokens. The paper argues Method 3
 * "powerfully preserves this synonym relationship"; this bench measures
 * the top-k cost of giving that up.
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Ablation: primitive encoding method (Sec. 4.1) "
                "===\n");
    const auto dataset =
        bench::standardDataset({"platinum-8272"}, /*is_gpu=*/false);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());

    TextTable table("feature-extraction method ablation");
    table.setHeader({"method", "top-1", "top-5"});

    for (auto method : {feat::TlpMethod::Decomposed,
                        feat::TlpMethod::TokenPerPrim}) {
        feat::TlpFeatureOptions feature_options;
        feature_options.method = method;

        model::TlpNetConfig config;
        auto options = bench::benchTrainOptions();
        const auto records = bench::capTrainRecords(split.train_records);
        auto train_set = data::buildTlpSet(dataset, records, {0},
                                           feature_options);
        Rng rng(options.seed);
        model::TlpNet net(config, rng);
        trainTlpNet(net, train_set, options);
        auto test_set = data::buildTlpSet(dataset, split.test_records,
                                          {0}, feature_options);
        const auto scores = predictTlpNet(net, test_set, 0);
        const auto topk =
            data::topKScores(dataset, bench::benchTestNetworks(), 0,
                             split.test_records, scores);
        const char *name = method == feat::TlpMethod::Decomposed
                               ? "method 3: decomposed (TLP)"
                               : "method 2: token per primitive";
        table.addRow({name, bench::fmtScore(topk.top1),
                      bench::fmtScore(topk.top5)});
        std::printf("done: %s\n", name);
    }
    table.print();
    std::printf("expected: method 3 clearly ahead — parameter geometry "
                "matters.\n");
    return 0;
}
