/**
 * @file
 * Robustness of the artifact-I/O layer under random corruption: a
 * byte-flip sweep over a serialized dataset, with salvage off (strict
 * loads must refuse) and on (records recovered vs lost), plus the
 * load-throughput cost of CRC32 verification. Results go to stdout and
 * to BENCH_robustness.json (written in the working directory — run from
 * the repo root).
 */
#include <chrono>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/bench_common.h"
#include "support/rng.h"

using namespace tlp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Flip each byte of @p bytes with probability @p rate (seeded). */
std::string
corrupt(const std::string &bytes, double rate, uint64_t seed)
{
    std::string mutated = bytes;
    Rng rng(seed);
    // Expected flips = rate * size; draw the offsets directly so low
    // rates stay cheap on big files.
    const auto flips = static_cast<int64_t>(
        rate * static_cast<double>(bytes.size()) + 0.5);
    for (int64_t i = 0; i < flips; ++i) {
        const auto at = static_cast<size_t>(
            rng.randint(static_cast<int64_t>(mutated.size())));
        mutated[at] ^= static_cast<char>(rng.randint(1, 255));
    }
    return mutated;
}

struct SweepRow
{
    double rate;
    int trials;
    int strict_ok;              ///< strict loads that still succeeded
    int salvage_ok;             ///< salvage loads that returned a dataset
    double records_recovered;   ///< mean, over successful salvages
    double records_lost;        ///< mean
    double corruption_events;   ///< mean tallied corruption_counts sum
};

} // namespace

int
main()
{
    std::printf("=== Robustness: artifact corruption and salvage ===\n");

    data::CollectOptions collect;
    collect.networks = {"resnet-18", "bert-tiny"};
    collect.platforms = {"platinum-8272"};
    collect.programs_per_subgraph =
        static_cast<int>(scaledCount(64, 24));
    collect.seed = 41;
    const auto dataset = data::collectDataset(collect);

    std::ostringstream os;
    dataset.save(os);
    const std::string golden = os.str();
    const double total_records =
        static_cast<double>(dataset.records.size());
    std::printf("dataset: %zu records, %.2f MB serialized\n",
                dataset.records.size(),
                static_cast<double>(golden.size()) / 1e6);

    // --- corruption-rate sweep x salvage on/off -------------------------
    const std::vector<double> rates = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};
    const int trials = static_cast<int>(scaledCount(8, 4));
    std::vector<SweepRow> rows;
    std::printf("\n%10s %10s %10s %12s %10s %10s\n", "flip_rate",
                "strict_ok", "salvage_ok", "recovered", "lost",
                "tallies");
    for (const double rate : rates) {
        SweepRow row{};
        row.rate = rate;
        row.trials = trials;
        double recovered_sum = 0.0;
        double tally_sum = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
            const std::string bytes =
                corrupt(golden, rate, 0x9000 + static_cast<uint64_t>(
                                                   trial));
            {
                std::istringstream is(bytes);
                row.strict_ok += data::Dataset::tryLoad(is).ok() ? 1 : 0;
            }
            std::istringstream is(bytes);
            data::LoadOptions options;
            options.salvage = true;
            auto result = data::Dataset::tryLoad(is, options);
            if (!result.ok())
                continue;
            row.salvage_ok += 1;
            const auto salvaged = result.take();
            recovered_sum +=
                static_cast<double>(salvaged.records.size());
            for (const auto &[name, count] : salvaged.corruption_counts)
                tally_sum += static_cast<double>(count);
        }
        if (row.salvage_ok > 0) {
            row.records_recovered = recovered_sum / row.salvage_ok;
            row.records_lost = total_records - row.records_recovered;
            row.corruption_events = tally_sum / row.salvage_ok;
        }
        std::printf("%10.0e %7d/%-2d %7d/%-2d %12.1f %10.1f %10.1f\n",
                    row.rate, row.strict_ok, trials, row.salvage_ok,
                    trials, row.records_recovered, row.records_lost,
                    row.corruption_events);
        rows.push_back(row);
    }

    // --- checksum cost: load MB/s with verification on vs off -----------
    const int load_reps = static_cast<int>(scaledCount(12, 6));
    double mbps_on = 0.0;
    double mbps_off = 0.0;
    for (const bool verify : {true, false}) {
        data::LoadOptions options;
        options.verify_checksums = verify;
        const double t0 = now();
        for (int rep = 0; rep < load_reps; ++rep) {
            std::istringstream is(golden);
            auto result = data::Dataset::tryLoad(is, options);
            if (!result.ok()) {
                std::fprintf(stderr, "clean load failed: %s\n",
                             result.status().toString().c_str());
                return 1;
            }
        }
        const double seconds = now() - t0;
        const double mbps = static_cast<double>(golden.size()) *
                            load_reps / 1e6 / seconds;
        (verify ? mbps_on : mbps_off) = mbps;
        std::printf("load throughput (checksums %s): %8.1f MB/s\n",
                    verify ? "on " : "off", mbps);
    }
    std::printf("checksum overhead: %.1f%%\n",
                100.0 * (mbps_off - mbps_on) / mbps_off);

    FILE *json = std::fopen("BENCH_robustness.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_robustness.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"robustness_corruption\",\n");
    std::fprintf(json, "  \"scale\": %.3f,\n", benchScale());
    std::fprintf(json, "  \"dataset_records\": %zu,\n",
                 dataset.records.size());
    std::fprintf(json, "  \"dataset_bytes\": %zu,\n", golden.size());
    std::fprintf(json, "  \"load_mbps_checksums_on\": %.2f,\n", mbps_on);
    std::fprintf(json, "  \"load_mbps_checksums_off\": %.2f,\n",
                 mbps_off);
    std::fprintf(json, "  \"sweep\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &row = rows[i];
        std::fprintf(
            json,
            "    {\"flip_rate\": %g, \"trials\": %d, "
            "\"strict_ok\": %d, \"salvage_ok\": %d, "
            "\"records_recovered\": %.1f, \"records_lost\": %.1f, "
            "\"corruption_events\": %.1f}%s\n",
            row.rate, row.trials, row.strict_ok, row.salvage_ok,
            row.records_recovered, row.records_lost,
            row.corruption_events,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_robustness.json\n");

    // Sanity gates: a clean file always strict-loads; salvage never does
    // worse than strict.
    if (rows[0].strict_ok != trials || rows[0].salvage_ok != trials)
        return 1;
    for (const auto &row : rows)
        if (row.salvage_ok < row.strict_ok)
            return 1;
    return 0;
}
