/**
 * @file
 * Paper Fig. 6: distribution of schedule-primitive sequence lengths in
 * the CPU dataset. The paper reports lengths up to 54 with the mode at
 * 21; the reproduction target is a similar right-skewed distribution in
 * the same range.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "support/stats.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Fig. 6: sequence-length distribution ===\n");
    const auto dataset =
        bench::standardDataset({"platinum-8272"}, /*is_gpu=*/false);

    IntHistogram histogram;
    for (const auto &record : dataset.records)
        histogram.add(record.seq.size());

    std::printf("records: %zu\n", dataset.records.size());
    std::printf("length range: %lld .. %lld (paper: up to 54)\n",
                static_cast<long long>(histogram.minKey()),
                static_cast<long long>(histogram.maxKey()));
    std::printf("mode length: %lld (paper: 21)\n",
                static_cast<long long>(histogram.modeKey()));
    std::printf("\n%s\n", histogram.render(48).c_str());
    return 0;
}
