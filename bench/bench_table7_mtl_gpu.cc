/**
 * @file
 * Paper Table 7: MTL-TLP on GPUs. Target = Tesla T4 with a scarce
 * labeled subset; donor = Tesla K80 with all data. Paper: 0.7971 ->
 * 0.8876 top-1.
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 7: MTL-TLP on GPU (target tesla-t4) ===\n");
    const auto dataset =
        bench::standardDataset({"tesla-t4", "tesla-k80"}, true);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());
    const int64_t scarce = scaledCount(800, 200);

    struct Row
    {
        const char *tasks;
        std::vector<int> donors;
        double paper_top1, paper_top5;
    };
    const Row rows[] = {
        {"t4 scarce only", {}, 0.7971, 0.8984},
        {"+ k80 (all)", {1}, 0.8876, 0.9373},
    };

    TextTable table("Table 7 (target tesla-t4, scarce target labels)");
    table.setHeader({"tasks", "top-1 (paper)", "top-1 (ours)",
                     "top-5 (paper)", "top-5 (ours)"});
    for (const Row &row : rows) {
        const auto topk = bench::mtlTopK(dataset, split, 0, row.donors,
                                         scarce,
                                         bench::benchTrainOptions());
        table.addRow({row.tasks, bench::fmtScore(row.paper_top1),
                      bench::fmtScore(topk.top1),
                      bench::fmtScore(row.paper_top5),
                      bench::fmtScore(topk.top5)});
        std::printf("done: %s\n", row.tasks);
    }
    table.print();
    return 0;
}
