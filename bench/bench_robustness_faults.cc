/**
 * @file
 * Robustness sweep: tuning quality under measurement faults.
 *
 * Real measurement campaigns lose a sizeable fraction of candidates to
 * compile errors, timeouts and runtime failures (TenSet reports such
 * losses; Sec. 4 of the paper trains on partially labeled tuples). This
 * bench sweeps injected fault rate x retry policy and reports the final
 * workload latency, the wasted measurement seconds, and the per-class
 * failure counts. Expected shape: the final latency degrades only mildly
 * up to ~30% faults (failed candidates are skipped, not mislabeled),
 * while wasted seconds grow with the fault rate and shrink with
 * retries + quarantine.
 */
#include <cstdio>
#include <iterator>

#include "bench/bench_common.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "support/str_util.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Robustness: tuning under measurement faults ===\n");

    const std::string network = "resnet-18";
    const std::string platform = "platinum-8272";
    const ir::Workload workload =
        ir::partitionGraph(ir::buildNetwork(network));
    const auto hw_platform = hw::HardwarePlatform::preset(platform);

    std::printf("\nworkload: %s on %s (online model)\n", network.c_str(),
                platform.c_str());

    struct Policy
    {
        const char *label;
        int retries;
        int quarantine_after;
    };
    const Policy policies[] = {
        {"no-retry", 0, 1},
        {"retry-2", 2, 3},
    };
    const double fault_rates[] = {0.0, 0.1, 0.3};

    TextTable table("fault rate x retry policy");
    table.setHeader({"faults", "policy", "final ms", "failed", "quarant",
                     "wasted s", "search s"});
    for (const double rate : fault_rates) {
        for (const Policy &policy : policies) {
            // tlp-lint: allow(float-eq) -- rate is copied verbatim from the literal sweep list; exact 0.0 means injection disabled
            if (rate == 0.0 && policy.retries > 0)
                continue;   // retries are a no-op without faults
            model::AnsorOnlineCostModel cost_model;
            auto options = bench::benchTuneOptions(
                static_cast<int>(workload.subgraphs.size()));
            options.measure.faults = hw::FaultProfile::uniform(rate);
            options.measure.max_retries = policy.retries;
            options.measure.quarantine_after = policy.quarantine_after;
            const auto result = tune::tuneWorkload(workload, hw_platform,
                                                   cost_model, options);
            table.addRow(
                {formatDouble(rate, 2), policy.label,
                 std::isfinite(result.best_workload_latency_ms)
                     ? formatDouble(result.best_workload_latency_ms, 3)
                     : std::string("inf"),
                 std::to_string(result.failed_measurements),
                 std::to_string(result.quarantined_candidates),
                 formatDouble(result.wasted_measure_seconds, 1),
                 formatDouble(result.total_search_seconds, 1)});
        }
        if (rate != fault_rates[std::size(fault_rates) - 1])
            table.addSeparator();
    }
    table.print();

    std::printf("\nexpected shape: final latency degrades only mildly up "
                "to 30%% faults;\nwasted seconds grow with the fault rate "
                "and shrink with retries.\n");
    return 0;
}
