/**
 * @file
 * Fleet containment drill (DESIGN.md §15): when one session turns
 * poisonous, how fast does the circuit breaker isolate it, and does
 * the rest of the fleet notice?
 *
 * Three measurements over the same fleet:
 *   (a) golden — the fleet WITHOUT the poisoned spec, uninterrupted;
 *   (b) drill  — the full fleet with one session poisoned from a fixed
 *       round until the breaker trips it into PoisonQuarantined. The
 *       isolation invariant is checked byte-for-byte: every surviving
 *       curve must equal its golden twin, as if the poisoned session
 *       never enrolled;
 *   (c) doctor — the drill directory is damaged further (a torn
 *       checkpoint, stranded temp debris), audited, repaired with the
 *       artifact module, and re-audited clean.
 *
 * Emits BENCH_fleet_containment.json; exits nonzero on any isolation
 * or repair violation.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "artifact/audit.h"
#include "bench/bench_common.h"
#include "tuner/service/service.h"

using namespace tlp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::vector<serve::SessionSpec>
buildFleet(int sessions, int rounds)
{
    const serve::ModelKind kinds[4] = {
        serve::ModelKind::Ansor, serve::ModelKind::Random,
        serve::ModelKind::GuardedAnsor, serve::ModelKind::Random};
    std::vector<serve::SessionSpec> fleet;
    for (int i = 0; i < sessions; ++i) {
        serve::SessionSpec spec;
        char name[16];
        std::snprintf(name, sizeof(name), "s%03d", i);
        spec.name = name;
        spec.network = "resnet-18";
        spec.platform = i % 2 == 0 ? "i7-10510u" : "platinum-8272";
        spec.model = kinds[i % 4];
        spec.max_subgraphs = 2;
        spec.tune.rounds = rounds;
        spec.tune.measures_per_round = 4;
        spec.tune.evolution.population = 24;
        spec.tune.evolution.iterations = 2;
        spec.tune.evolution.children_per_iter = 12;
        spec.tune.measure.seconds_per_measure = 0.25;
        spec.tune.seed = 0x70c51 + static_cast<uint64_t>(i);
        fleet.push_back(std::move(spec));
    }
    return fleet;
}

serve::ServiceOptions
serviceOptions(const std::string &dir, int fleet_size)
{
    serve::ServiceOptions options;
    options.dir = dir;
    options.max_active = fleet_size;
    options.max_queued = fleet_size;
    return options;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const int sessions = std::max(6, static_cast<int>(6 * scale));
    const int rounds = std::max(4, static_cast<int>(4 * scale));
    const int poison_index = sessions / 2;
    const int breaker_limit = 4;
    const auto fleet = buildFleet(sessions, rounds);
    const std::string poisoned = fleet[poison_index].name;

    std::printf("fleet containment drill: %d sessions x %d rounds, "
                "poisoning %s after round 1, breaker limit %d\n",
                sessions, rounds, poisoned.c_str(), breaker_limit);

    // (a) Golden: the world without the poisoned spec.
    auto golden_fleet = fleet;
    golden_fleet.erase(golden_fleet.begin() + poison_index);
    const std::string golden_dir = "/tmp/tlp_bench_containment_golden";
    std::filesystem::remove_all(golden_dir);
    double t0 = now();
    serve::TuningService golden(
        serviceOptions(golden_dir, sessions));
    golden.recover(golden_fleet);
    const int64_t golden_ticks = golden.runUntilIdle();
    const double golden_seconds = now() - t0;
    std::printf("golden: %lld ticks, %.2fs wall\n",
                static_cast<long long>(golden_ticks), golden_seconds);

    // (b) Drill: full fleet, one poisoned session, breaker armed.
    const std::string drill_dir = "/tmp/tlp_bench_containment_drill";
    std::filesystem::remove_all(drill_dir);
    serve::ServiceOptions options = serviceOptions(drill_dir, sessions);
    options.faults.poison_session = poisoned;
    options.faults.poison_after_round = 1;
    options.breaker_trip_limit = breaker_limit;
    options.backoff_base_ticks = 1;
    options.backoff_cap_ticks = 4;
    t0 = now();
    serve::TuningService drill(options);
    drill.recover(fleet);
    const int64_t drill_ticks = drill.runUntilIdle();
    const double drill_seconds = now() - t0;
    const auto &stats = drill.stats();
    const bool tripped =
        drill.status(poisoned) ==
            serve::SessionStatus::PoisonQuarantined &&
        stats.breaker_trips == 1;
    std::printf("drill: %lld ticks, %.2fs wall, %lld faults injected, "
                "%lld breaker trips (%s %s)\n",
                static_cast<long long>(drill_ticks), drill_seconds,
                static_cast<long long>(stats.faults_injected),
                static_cast<long long>(stats.breaker_trips),
                poisoned.c_str(),
                tripped ? "poison-quarantined" : "NOT CONTAINED (BUG)");

    // Isolation invariant: every survivor's curve file byte-identical
    // to golden; the poisoned session left no curve, only evidence.
    bool isolated = tripped &&
                    !std::filesystem::exists(drill_dir + "/" + poisoned +
                                             ".curve");
    for (const auto &spec : golden_fleet) {
        const std::string want =
            readFile(golden_dir + "/" + spec.name + ".curve");
        const std::string got =
            readFile(drill_dir + "/" + spec.name + ".curve");
        if (want.empty() || want != got) {
            isolated = false;
            std::printf("CURVE MISMATCH: %s\n", spec.name.c_str());
        }
    }
    std::printf("survivor curves identical to golden: %s\n",
                isolated ? "yes" : "NO (BUG)");

    // (c) Doctor: damage the drill directory further, audit, repair,
    // re-audit. The evidence the breaker left must be preserved.
    {
        const std::string torn = drill_dir + "/torn.ckpt";
        // tlp-lint: allow(raw-io) -- deliberately plants a torn checkpoint and debris; routing through the seam would defeat the drill
        std::ofstream os(torn, std::ios::binary);
        os << "definitely not a TLPS checkpoint";
    }
    {
        // tlp-lint: allow(raw-io) -- deliberately plants a torn checkpoint and debris; routing through the seam would defeat the drill
        std::ofstream os(drill_dir + "/torn.ckpt.tmp.424.2",
                         std::ios::binary);
        os << "stranded";
    }
    const artifact::AuditReport before =
        artifact::auditDirectory(drill_dir);
    const artifact::RepairReport repair =
        artifact::repairDirectory(drill_dir);
    const artifact::AuditReport after =
        artifact::auditDirectory(drill_dir);
    const bool repaired = before.damaged() && !after.damaged() &&
                          after.quarantine_evidence >= 2;
    std::printf("doctor: pre-repair %d corrupt / %d stale-temp, "
                "repaired %d quarantined + %d swept, post-repair %s "
                "(%d evidence files kept)\n",
                before.corrupt, before.stale_temps, repair.quarantined,
                repair.swept, after.damaged() ? "DAMAGED (BUG)" : "clean",
                after.quarantine_evidence);

    FILE *json = std::fopen("BENCH_fleet_containment.json", "w");
    if (!json) {
        std::fprintf(stderr,
                     "cannot write BENCH_fleet_containment.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"fleet_containment\",\n");
    std::fprintf(json, "  \"scale\": %.3f,\n", scale);
    std::fprintf(json, "  \"sessions\": %d,\n", sessions);
    std::fprintf(json, "  \"rounds_per_session\": %d,\n", rounds);
    std::fprintf(json, "  \"breaker_limit\": %d,\n", breaker_limit);
    std::fprintf(json, "  \"breaker_trips\": %lld,\n",
                 static_cast<long long>(stats.breaker_trips));
    std::fprintf(json, "  \"faults_injected\": %lld,\n",
                 static_cast<long long>(stats.faults_injected));
    std::fprintf(json, "  \"golden_ticks\": %lld,\n",
                 static_cast<long long>(golden_ticks));
    std::fprintf(json, "  \"drill_ticks\": %lld,\n",
                 static_cast<long long>(drill_ticks));
    std::fprintf(json, "  \"golden_wall_seconds\": %.3f,\n",
                 golden_seconds);
    std::fprintf(json, "  \"drill_wall_seconds\": %.3f,\n",
                 drill_seconds);
    std::fprintf(json, "  \"survivors_isolated\": %s,\n",
                 isolated ? "true" : "false");
    std::fprintf(json, "  \"pre_repair_corrupt\": %d,\n", before.corrupt);
    std::fprintf(json, "  \"pre_repair_stale_temps\": %d,\n",
                 before.stale_temps);
    std::fprintf(json, "  \"repair_quarantined\": %d,\n",
                 repair.quarantined);
    std::fprintf(json, "  \"repair_swept\": %d,\n", repair.swept);
    std::fprintf(json, "  \"post_repair_clean\": %s,\n",
                 after.damaged() ? "false" : "true");
    std::fprintf(json, "  \"evidence_files_kept\": %d\n",
                 after.quarantine_evidence);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_fleet_containment.json\n");
    return isolated && repaired ? 0 : 1;
}
