/**
 * @file
 * Throughput of the performance substrate: training samples/sec and
 * inference candidates/sec at 1, 2, and 4 worker threads, plus a
 * bit-identity check that the parallel kernels change nothing but the
 * wall clock. Results go to stdout and to BENCH_perf.json (machine
 * readable, written in the working directory — run from the repo root).
 *
 * Speedups track the machine: on a single-core container every thread
 * count times out to ~1x; the JSON records hardware_concurrency so
 * readers can interpret the numbers.
 */
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sketch/policy.h"
#include "support/thread_pool.h"

using namespace tlp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ThreadResult
{
    int threads;
    double train_seconds;
    double train_samples_per_sec;
    double infer_seconds;
    double infer_candidates_per_sec;
    double final_loss;
    std::vector<double> predictions;
};

} // namespace

int
main()
{
    std::printf("=== Perf: training / inference throughput vs threads "
                "===\n");

    data::CollectOptions collect;
    collect.networks = {"resnet-18"};
    collect.platforms = {"platinum-8272"};
    collect.programs_per_subgraph =
        static_cast<int>(scaledCount(64, 16));
    collect.seed = 33;
    const auto dataset = data::collectDataset(collect);

    std::vector<int> all_records;
    for (size_t r = 0; r < dataset.records.size(); ++r)
        all_records.push_back(static_cast<int>(r));
    const auto set = data::buildTlpSet(dataset, all_records, {0});
    std::printf("training set: %d rows\n", set.rows);

    model::TrainOptions train_options;
    train_options.epochs = static_cast<int>(scaledCount(2, 1));
    train_options.batch_size = 64;

    Rng pop_rng(34);
    sketch::SchedulePolicy policy(dataset.groups[0].subgraph,
                                  dataset.is_gpu);
    const auto population = policy.sampleInitPopulation(
        static_cast<int>(scaledCount(512, 64)), pop_rng);
    const int infer_reps = 3;

    model::TlpNetConfig config;
    config.hidden = 64;

    std::vector<ThreadResult> results;
    for (int threads : {1, 2, 4}) {
        ThreadPool::setGlobalThreads(threads);
        ThreadResult result;
        result.threads = threads;

        Rng net_rng(7);
        auto net = std::make_shared<model::TlpNet>(config, net_rng);
        double t0 = now();
        result.final_loss = trainTlpNet(*net, set, train_options);
        result.train_seconds = now() - t0;
        result.train_samples_per_sec =
            static_cast<double>(set.rows) * train_options.epochs /
            result.train_seconds;

        model::TlpCostModel cost_model(net);
        t0 = now();
        for (int rep = 0; rep < infer_reps; ++rep)
            result.predictions = cost_model.predictBatch(0, population);
        result.infer_seconds = now() - t0;
        result.infer_candidates_per_sec =
            static_cast<double>(population.size()) * infer_reps /
            result.infer_seconds;

        std::printf("threads %d: train %7.1f samples/s (%.2fs), "
                    "infer %8.1f candidates/s (%.2fs), loss %.6f\n",
                    threads, result.train_samples_per_sec,
                    result.train_seconds,
                    result.infer_candidates_per_sec,
                    result.infer_seconds, result.final_loss);
        results.push_back(std::move(result));
    }
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());

    bool bit_identical = true;
    for (const auto &result : results) {
        if (result.final_loss != results[0].final_loss ||
            result.predictions != results[0].predictions)
            bit_identical = false;
    }
    std::printf("bit-identical across thread counts: %s\n",
                bit_identical ? "yes" : "NO (BUG)");

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("hardware_concurrency: %u (speedups need real cores)\n",
                cores);

    FILE *json = std::fopen("BENCH_perf.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_perf.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"perf_throughput\",\n");
    std::fprintf(json, "  \"scale\": %.3f,\n", benchScale());
    std::fprintf(json, "  \"hardware_concurrency\": %u,\n", cores);
    std::fprintf(json, "  \"train_rows\": %d,\n", set.rows);
    std::fprintf(json, "  \"train_epochs\": %d,\n", train_options.epochs);
    std::fprintf(json, "  \"infer_candidates\": %zu,\n",
                 population.size());
    std::fprintf(json, "  \"bit_identical\": %s,\n",
                 bit_identical ? "true" : "false");
    std::fprintf(json, "  \"results\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &result = results[i];
        std::fprintf(
            json,
            "    {\"threads\": %d, \"train_seconds\": %.4f, "
            "\"train_samples_per_sec\": %.2f, \"train_speedup\": %.3f, "
            "\"infer_seconds\": %.4f, "
            "\"infer_candidates_per_sec\": %.2f, "
            "\"infer_speedup\": %.3f}%s\n",
            result.threads, result.train_seconds,
            result.train_samples_per_sec,
            results[0].train_seconds / result.train_seconds,
            result.infer_seconds, result.infer_candidates_per_sec,
            results[0].infer_seconds / result.infer_seconds,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_perf.json\n");
    return bit_identical ? 0 : 1;
}
