/**
 * @file
 * Throughput of the performance substrate: training samples/sec and
 * inference candidates/sec at 1, 2, and 4 worker threads, plus a
 * bit-identity check that the parallel kernels change nothing but the
 * wall clock. Results go to stdout and to BENCH_perf.json (machine
 * readable, written in the working directory — run from the repo root).
 *
 * Inference runs the same population through both the legacy path
 * (interpreted autograd forward, no cache) and the fast path (fused
 * forward + feature/score cache, DESIGN.md §13) in the same binary:
 * the headline infer_candidates_per_sec is the fast path, the
 * fast_vs_legacy_speedup column is measured, not inferred, and the
 * bench exits nonzero if the two paths ever disagree on a single bit.
 *
 * A global operator-new hook counts heap allocations so the JSON also
 * reports the fast path's steady-state allocations per candidate — the
 * §13 contract is that after warm-up the hot path performs zero
 * per-candidate heap allocations (only a constant handful per
 * predictBatch call for the returned score vector and the pool's task
 * bookkeeping).
 *
 * Speedups track the machine: on a single-core container every thread
 * count times out to ~1x; the JSON records hardware_concurrency so
 * readers can interpret the numbers.
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

// GCC's new/delete pairing analysis can't see that the replaced
// operator new below is malloc-backed when it inlines the matching
// free()-based delete into container code, and reports a mismatch that
// isn't one. The replacement is a matched malloc/free pair by
// construction.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include "bench/bench_common.h"
#include "sketch/policy.h"
#include "support/thread_pool.h"

/** Every heap allocation in the process, from any thread. */
std::atomic<uint64_t> g_heap_allocs{0};

void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *ptr = std::malloc(size ? size : 1))
        return ptr;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    const auto alignment = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + alignment - 1) / alignment *
                                alignment;
    if (void *ptr = std::aligned_alloc(alignment,
                                       rounded ? rounded : alignment))
        return ptr;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

// The matching deletes: both malloc and aligned_alloc storage is
// released with free, so all variants funnel here.
void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

using namespace tlp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ThreadResult
{
    int threads;
    double train_seconds;
    double train_samples_per_sec;
    double infer_seconds;               ///< fast path
    double infer_candidates_per_sec;    ///< fast path (the headline)
    double legacy_seconds;
    double legacy_candidates_per_sec;
    uint64_t warmup_allocs;             ///< construction + first rep
    uint64_t steady_state_allocs;       ///< reps after warm-up
    uint64_t steady_state_candidates;
    bool match_legacy;
    double final_loss;
    std::vector<double> predictions;
};

} // namespace

int
main()
{
    std::printf("=== Perf: training / inference throughput vs threads "
                "===\n");

    data::CollectOptions collect;
    collect.networks = {"resnet-18"};
    collect.platforms = {"platinum-8272"};
    collect.programs_per_subgraph =
        static_cast<int>(scaledCount(64, 16));
    collect.seed = 33;
    const auto dataset = data::collectDataset(collect);

    std::vector<int> all_records;
    for (size_t r = 0; r < dataset.records.size(); ++r)
        all_records.push_back(static_cast<int>(r));
    const auto set = data::buildTlpSet(dataset, all_records, {0});
    std::printf("training set: %d rows\n", set.rows);

    model::TrainOptions train_options;
    train_options.epochs = static_cast<int>(scaledCount(2, 1));
    train_options.batch_size = 64;

    Rng pop_rng(34);
    sketch::SchedulePolicy policy(dataset.groups[0].subgraph,
                                  dataset.is_gpu);
    const auto population = policy.sampleInitPopulation(
        static_cast<int>(scaledCount(512, 64)), pop_rng);
    const int infer_reps = 3;

    model::TlpNetConfig config;
    config.hidden = 64;

    bool predictions_match_legacy = true;
    std::vector<ThreadResult> results;
    for (int threads : {1, 2, 4}) {
        ThreadPool::setGlobalThreads(threads);
        ThreadResult result;
        result.threads = threads;

        Rng net_rng(7);
        auto net = std::make_shared<model::TlpNet>(config, net_rng);
        double t0 = now();
        result.final_loss = trainTlpNet(*net, set, train_options);
        result.train_seconds = now() - t0;
        result.train_samples_per_sec =
            static_cast<double>(set.rows) * train_options.epochs /
            result.train_seconds;

        // Legacy path: interpreted forward, no cache (the pre-§13
        // hot path, kept in-binary as the measured baseline).
        model::TlpCostModel legacy_model(
            net, {}, 0, model::TlpInferOptions::legacy());
        std::vector<double> legacy_predictions;
        t0 = now();
        for (int rep = 0; rep < infer_reps; ++rep)
            legacy_predictions = legacy_model.predictBatch(0, population);
        result.legacy_seconds = now() - t0;
        result.legacy_candidates_per_sec =
            static_cast<double>(population.size()) * infer_reps /
            result.legacy_seconds;

        // Fast path: fused forward + feature/score cache. The first
        // rep is the warm-up (arena growth, cache fills); the remaining
        // reps are the steady state whose allocations we account.
        const uint64_t allocs_before = g_heap_allocs.load();
        model::TlpCostModel fast_model(
            net, {}, 0, model::TlpInferOptions{true, 4096});
        t0 = now();
        result.predictions = fast_model.predictBatch(0, population);
        const uint64_t allocs_warm = g_heap_allocs.load();
        for (int rep = 1; rep < infer_reps; ++rep)
            result.predictions = fast_model.predictBatch(0, population);
        result.infer_seconds = now() - t0;
        const uint64_t allocs_after = g_heap_allocs.load();
        result.infer_candidates_per_sec =
            static_cast<double>(population.size()) * infer_reps /
            result.infer_seconds;
        result.warmup_allocs = allocs_warm - allocs_before;
        result.steady_state_allocs = allocs_after - allocs_warm;
        result.steady_state_candidates =
            population.size() * static_cast<uint64_t>(infer_reps - 1);
        result.match_legacy = result.predictions == legacy_predictions;
        predictions_match_legacy &= result.match_legacy;

        std::printf(
            "threads %d: train %7.1f samples/s (%.2fs), "
            "infer %8.1f candidates/s fast / %8.1f legacy "
            "(%.2fx), steady-state allocs/candidate %.4f, "
            "fast==legacy %s, loss %.6f\n",
            threads, result.train_samples_per_sec, result.train_seconds,
            result.infer_candidates_per_sec,
            result.legacy_candidates_per_sec,
            result.infer_candidates_per_sec /
                result.legacy_candidates_per_sec,
            static_cast<double>(result.steady_state_allocs) /
                static_cast<double>(result.steady_state_candidates),
            result.match_legacy ? "yes" : "NO (BUG)",
            result.final_loss);
        results.push_back(std::move(result));
    }
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());

    bool bit_identical = true;
    for (const auto &result : results) {
        if (result.final_loss != results[0].final_loss ||
            result.predictions != results[0].predictions)
            bit_identical = false;
    }
    std::printf("bit-identical across thread counts: %s\n",
                bit_identical ? "yes" : "NO (BUG)");
    std::printf("fast path matches legacy everywhere: %s\n",
                predictions_match_legacy ? "yes" : "NO (BUG)");

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("hardware_concurrency: %u (speedups need real cores)\n",
                cores);

    FILE *json = std::fopen("BENCH_perf.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_perf.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"perf_throughput\",\n");
    std::fprintf(json, "  \"scale\": %.3f,\n", benchScale());
    std::fprintf(json, "  \"hardware_concurrency\": %u,\n", cores);
    std::fprintf(json, "  \"train_rows\": %d,\n", set.rows);
    std::fprintf(json, "  \"train_epochs\": %d,\n", train_options.epochs);
    std::fprintf(json, "  \"infer_candidates\": %zu,\n",
                 population.size());
    std::fprintf(json, "  \"infer_reps\": %d,\n", infer_reps);
    std::fprintf(json, "  \"bit_identical\": %s,\n",
                 bit_identical ? "true" : "false");
    std::fprintf(json, "  \"predictions_match_legacy\": %s,\n",
                 predictions_match_legacy ? "true" : "false");
    std::fprintf(json, "  \"results\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &result = results[i];
        std::fprintf(
            json,
            "    {\"threads\": %d, \"train_seconds\": %.4f, "
            "\"train_samples_per_sec\": %.2f, \"train_speedup\": %.3f, "
            "\"infer_seconds\": %.4f, "
            "\"infer_candidates_per_sec\": %.2f, "
            "\"infer_speedup\": %.3f, "
            "\"infer_legacy_candidates_per_sec\": %.2f, "
            "\"fast_vs_legacy_speedup\": %.3f, "
            "\"warmup_allocs\": %llu, "
            "\"steady_state_allocs\": %llu, "
            "\"steady_state_allocs_per_candidate\": %.4f}%s\n",
            result.threads, result.train_seconds,
            result.train_samples_per_sec,
            results[0].train_seconds / result.train_seconds,
            result.infer_seconds, result.infer_candidates_per_sec,
            results[0].infer_seconds / result.infer_seconds,
            result.legacy_candidates_per_sec,
            result.infer_candidates_per_sec /
                result.legacy_candidates_per_sec,
            static_cast<unsigned long long>(result.warmup_allocs),
            static_cast<unsigned long long>(result.steady_state_allocs),
            static_cast<double>(result.steady_state_allocs) /
                static_cast<double>(result.steady_state_candidates),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_perf.json\n");
    return bit_identical && predictions_match_legacy ? 0 : 1;
}
