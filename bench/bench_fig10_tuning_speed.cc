/**
 * @file
 * Paper Fig. 10 (google-benchmark): per-candidate scoring cost of TLP vs
 * the TenSet MLP. TLP extracts features straight from the schedule
 * primitives; the MLP must lower every candidate to a tensor program
 * first. Paper: TLP makes end-to-end tuning 1.7x (CPU) / 1.8x (GPU)
 * faster; here we measure the feature+prediction path that produces that
 * gap.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "features/ansor_features.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "schedule/lower.h"
#include "sketch/policy.h"

namespace {

using namespace tlp;

struct Fixture
{
    std::vector<sched::State> states;
    std::unique_ptr<model::CostModel> tlp;
    std::unique_ptr<model::CostModel> mlp;

    Fixture()
    {
        const auto workload =
            ir::partitionGraph(ir::buildNetwork("resnet-50"));
        Rng rng(0xf16);
        // A mixed candidate batch as one GA round would score.
        for (size_t i = 0; i < 4 && i < workload.subgraphs.size(); ++i) {
            sketch::SchedulePolicy policy(workload.subgraphs[i], false);
            for (auto &state : policy.sampleInitPopulation(16, rng))
                states.push_back(std::move(state));
        }
        model::TlpNetConfig config;
        auto net = std::make_shared<model::TlpNet>(config, rng);
        tlp = std::make_unique<model::TlpCostModel>(net);
        auto mlp_net =
            std::make_shared<model::TensetMlpNet>(model::MlpConfig{}, rng);
        mlp = std::make_unique<model::TensetMlpCostModel>(mlp_net);
    }
};

Fixture &
fixture()
{
    static Fixture instance;
    return instance;
}

void
BM_TlpScoring(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto scores = f.tlp->scoreStates(0, f.states);
        benchmark::DoNotOptimize(scores);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(f.states.size()));
}

void
BM_TensetMlpScoring(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto scores = f.mlp->scoreStates(0, f.states);
        benchmark::DoNotOptimize(scores);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(f.states.size()));
}

void
BM_TlpFeatureExtractionOnly(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        for (const auto &candidate : f.states) {
            auto features = feat::extractTlpFeatures(candidate.steps());
            benchmark::DoNotOptimize(features);
        }
    }
}

void
BM_AnsorFeatureExtractionWithLowering(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        for (const auto &candidate : f.states) {
            auto features =
                feat::extractAnsorFeatures(sched::lower(candidate));
            benchmark::DoNotOptimize(features);
        }
    }
}

BENCHMARK(BM_TlpScoring)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TensetMlpScoring)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TlpFeatureExtractionOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnsorFeatureExtractionWithLowering)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
