/**
 * @file
 * Paper Fig. 11: tuning curves (workload latency vs search time) for the
 * five evaluation networks on CPU and GPU, under four cost models:
 * Ansor's online model, the TenSet MLP, TLP, and MTL-TLP. Paper shape:
 * TLP and MTL-TLP converge to low latency fastest, most pronounced on
 * CPU; Ansor's online model is slowest.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "support/str_util.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Fig. 11: tuning curves ===\n");

    struct PlatformSpec
    {
        const char *label;
        std::vector<std::string> platforms;
        bool gpu;
    };
    const PlatformSpec specs[] = {
        {"CPU i7-10510u", {"i7-10510u", "platinum-8272"}, false},
        {"GPU tesla-t4", {"tesla-t4", "tesla-k80"}, true},
    };

    for (const PlatformSpec &spec : specs) {
        std::printf("\n--- %s ---\n", spec.label);
        const auto dataset = bench::standardDataset(spec.platforms,
                                                    spec.gpu);
        const auto split =
            data::makeSplit(dataset, bench::benchTestNetworks());
        auto models = bench::prepareSearchModels(dataset, split);

        for (const auto &network : bench::benchTestNetworks()) {
            std::printf("\nworkload: %s on %s\n", network.c_str(),
                        spec.platforms[0].c_str());
            TextTable table("tuning curve checkpoints "
                            "(workload latency in ms)");
            table.setHeader({"model", "25% budget", "50% budget",
                             "75% budget", "final", "search s"});

            std::vector<std::pair<std::string, model::CostModel *>> runs =
                {{"ansor-online", models.ansor.get()},
                 {"tenset-mlp", models.mlp.get()},
                 {"tlp", models.tlp.get()},
                 {"mtl-tlp", models.mtl.get()}};
            for (auto &[name, cost_model] : runs) {
                if (!cost_model)
                    continue;
                const auto result = bench::tuneNetwork(
                    network, spec.platforms[0], *cost_model);
                auto at = [&](double fraction) {
                    if (result.curve.empty())
                        return std::string("-");
                    const size_t idx = std::min(
                        result.curve.size() - 1,
                        static_cast<size_t>(fraction *
                                            static_cast<double>(
                                                result.curve.size())));
                    const double value =
                        result.curve[idx].workload_latency_ms;
                    return std::isfinite(value) ? formatDouble(value, 3)
                                                : std::string("inf");
                };
                table.addRow({name, at(0.25), at(0.5), at(0.75),
                              formatDouble(
                                  result.best_workload_latency_ms, 3),
                              formatDouble(result.total_search_seconds,
                                           1)});
            }
            table.print();
        }
    }
    std::printf("\npaper shape: TLP/MTL-TLP curves drop fastest; the "
                "online model needs far more measurements.\n");
    return 0;
}
