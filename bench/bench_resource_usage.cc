/**
 * @file
 * Paper Sec. 6.3, "The Impact of TLP on Computing Resources"
 * (google-benchmark): time of complete genetic-algorithm rounds under
 * TLP vs the TenSet MLP. Paper: five GA rounds drop from ~20s to ~6s
 * when the cost model stops needing generated tensor programs.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "tuner/evolution.h"

namespace {

using namespace tlp;

struct Fixture
{
    ir::SubgraphPtr subgraph;
    std::unique_ptr<model::CostModel> tlp;
    std::unique_ptr<model::CostModel> mlp;

    Fixture()
    {
        const auto workload =
            ir::partitionGraph(ir::buildNetwork("resnet-50"));
        subgraph = workload.subgraphs.at(1);
        Rng rng(0x6a);
        auto net = std::make_shared<model::TlpNet>(model::TlpNetConfig{},
                                                   rng);
        tlp = std::make_unique<model::TlpCostModel>(net);
        auto mlp_net =
            std::make_shared<model::TensetMlpNet>(model::MlpConfig{}, rng);
        mlp = std::make_unique<model::TensetMlpCostModel>(mlp_net);
    }
};

Fixture &
fixture()
{
    static Fixture instance;
    return instance;
}

void
runGaRound(model::CostModel &cost_model, benchmark::State &state)
{
    auto &f = fixture();
    sketch::SchedulePolicy policy(f.subgraph, false);
    tune::EvolutionOptions options;
    options.population = 64;
    options.iterations = 5;   // "five rounds of the genetic algorithm"
    options.children_per_iter = 32;
    uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        auto result = tune::evolveOneRound(policy, cost_model, 0, 10, {},
                                           options, rng);
        benchmark::DoNotOptimize(result);
    }
}

void
BM_GaRoundsWithTlp(benchmark::State &state)
{
    runGaRound(*fixture().tlp, state);
}

void
BM_GaRoundsWithTensetMlp(benchmark::State &state)
{
    runGaRound(*fixture().mlp, state);
}

BENCHMARK(BM_GaRoundsWithTlp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GaRoundsWithTensetMlp)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
