/**
 * @file
 * Shared machinery for the benchmark harness.
 *
 * Every bench regenerates one table or figure of the paper at a reduced,
 * laptop-friendly scale and prints `paper` vs `measured` rows. Scale is
 * controlled by the TLP_BENCH_SCALE environment variable (default 1.0;
 * larger values move toward paper scale).
 */
#pragma once

#include <string>
#include <vector>

#include "artifact/audit.h"
#include "dataset/collect.h"
#include "dataset/metrics.h"
#include "dataset/splits.h"
#include "models/cost_model.h"
#include "models/tlp_model.h"
#include "support/config.h"
#include "support/table.h"
#include "tuner/session.h"

namespace tlp::bench {

/** Networks used for dataset collection in the benches. */
std::vector<std::string> benchTrainNetworks();

/** The paper's five held-out evaluation networks. */
std::vector<std::string> benchTestNetworks();

/** All bench networks (train + test). */
std::vector<std::string> benchNetworks();

/**
 * Collect (and memoize on disk under /tmp) the standard bench dataset
 * for @p platforms. GPU datasets use the GPU sketch rules.
 */
data::Dataset standardDataset(const std::vector<std::string> &platforms,
                              bool is_gpu);

// --- bench memo format (exposed for the corruption tests/bench) ---

/** Bench memo file magic ("TLPM"); the audit module owns the value so
 *  tlp_fsck recognizes memos without linking bench code. */
inline constexpr uint32_t kMemoMagic = artifact::kBenchMemoMagic;

/** Memo format version (v2: recoverable load + atomic write). */
inline constexpr uint32_t kMemoVersion = artifact::kBenchMemoVersion;

/** Atomically write a fingerprint-stamped dataset memo to @p path. */
Status writeBenchMemo(const std::string &path, uint64_t fingerprint,
                      const data::Dataset &dataset);

/** Stream variant of writeBenchMemo. */
void writeBenchMemo(std::ostream &os, uint64_t fingerprint,
                    const data::Dataset &dataset);

/**
 * Load a bench memo. Ok only when the file is intact AND stamped with
 * @p fingerprint; anything else (corruption, truncation, version skew,
 * stale fingerprint) comes back as a Status so the caller regenerates.
 */
Result<data::Dataset> loadBenchMemo(const std::string &path,
                                    uint64_t fingerprint);
Result<data::Dataset> loadBenchMemo(std::istream &is,
                                    uint64_t fingerprint);

/** Cap a record-index list to the scaled default training size. */
std::vector<int> capTrainRecords(std::vector<int> records,
                                 int64_t base_cap = 5000,
                                 uint64_t seed = 0xcab);

/** Default TLP training options at bench scale. */
model::TrainOptions benchTrainOptions();

/**
 * Train a TLP net on @p platform_indices (multi-task when several) and
 * return top-1/top-5 on the test split for the first platform index.
 */
struct TrainedTlp
{
    std::shared_ptr<model::TlpNet> net;
    data::TopKPair topk;
};

TrainedTlp trainAndEvalTlp(const data::Dataset &dataset,
                           const data::Split &split,
                           const std::vector<int> &platform_indices,
                           model::TlpNetConfig config,
                           model::TrainOptions options,
                           const std::vector<int> *train_records = nullptr);

/** Train + evaluate the TenSet-MLP baseline on one platform. */
struct TrainedMlp
{
    std::shared_ptr<model::TensetMlpNet> net;
    data::TopKPair topk;
};

TrainedMlp trainAndEvalMlp(const data::Dataset &dataset,
                           const data::Split &split, int platform_index,
                           model::TrainOptions options);

/** Format a top-k pair as "0.9194". */
std::string fmtScore(double value);

/**
 * The MTL-TLP recipe of Sec. 6.2: task 1 is the target platform with
 * only @p target_rows labeled training records (the "500K" subset),
 * tasks 2..n are donor platforms with all labels. Returns target-platform
 * top-k. Pass an empty donor list for the single-task reference row.
 */
data::TopKPair mtlTopK(const data::Dataset &dataset,
                       const data::Split &split, int target_platform,
                       const std::vector<int> &donor_platforms,
                       int64_t target_rows,
                       model::TrainOptions options);

/** The four cost models compared in the search experiments (Sec. 6.3). */
struct SearchModels
{
    std::unique_ptr<model::CostModel> ansor;   ///< online GBDT
    std::unique_ptr<model::CostModel> mlp;     ///< pretrained TenSet MLP
    std::unique_ptr<model::CostModel> tlp;     ///< pretrained TLP
    std::unique_ptr<model::CostModel> mtl;     ///< MTL-TLP (scarce target)
};

/**
 * Prepare all four models for search on platform 0 of @p dataset (the
 * second platform, when present, is MTL-TLP's donor).
 */
SearchModels prepareSearchModels(const data::Dataset &dataset,
                                 const data::Split &split);

/** Bench-scale tuning options for a workload with @p num_tasks tasks. */
tune::TuneOptions benchTuneOptions(int num_tasks);

/** Tune @p network with @p cost_model and return the result. */
tune::TuneResult tuneNetwork(const std::string &network,
                             const std::string &platform,
                             model::CostModel &cost_model);

} // namespace tlp::bench
