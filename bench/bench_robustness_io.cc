/**
 * @file
 * I/O chaos drill (DESIGN.md §14): crash consistency of every artifact
 * format under injected disk faults, and service-level degradation.
 *
 * Part 1 enumerates every save fault point — open failure, torn write
 * truncated at each section boundary +/- 1 byte, flush failure, rename
 * failure, all leaving crash debris — for each of the five artifact
 * formats (dataset, model snapshot, tuning checkpoint, training
 * checkpoint, bench memo) and counts violations: a fault that was not
 * reported, a previous-generation artifact that changed on disk, or a
 * loader observing torn bytes. The paper's long-running search setting
 * assumes checkpoints survive power loss; this is that assumption,
 * measured. Part 2 runs a tuning fleet twice — golden, then under a
 * nonzero keyed-hash fault rate with a mid-run kill — and checks the
 * recovered fleet's curve files stay byte-identical while checkpoint
 * persistence degrades gracefully (retry, then checkpointless mode).
 *
 * Emits BENCH_io_chaos.json; exits nonzero on any violation.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <vector>

#include "bench/bench_common.h"
#include "dataset/collect.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/cost_model.h"
#include "models/snapshot.h"
#include "models/supervisor.h"
#include "support/io_env.h"
#include "support/rng.h"
#include "tuner/service/service.h"
#include "tuner/session.h"

using namespace tlp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

// --- artifact builders (two generations per format) ----------------------

constexpr uint64_t kMemoFingerprint = 0x10c4a05;

data::Dataset
smallDataset(uint64_t seed, int programs)
{
    data::CollectOptions options;
    options.networks = {"resnet-18"};
    options.platforms = {"platinum-8272"};
    options.programs_per_subgraph = programs;
    options.seed = seed;
    return data::collectDataset(options);
}

std::string
datasetBytes(const data::Dataset &dataset)
{
    std::ostringstream os;
    dataset.save(os);
    return os.str();
}

std::string
snapshotBytes(uint64_t seed)
{
    Rng rng(seed);
    model::TlpNet net(model::TlpNetConfig{}, rng);
    std::ostringstream os;
    model::saveTlpSnapshot(os, net);
    return os.str();
}

std::string
checkpointBytes(uint64_t seed)
{
    const std::string path = "/tmp/tlp_bench_io_seed.ckpt";
    std::remove(path.c_str());
    ir::Workload full = ir::partitionGraph(ir::buildNetwork("resnet-18"));
    ir::Workload slim;
    slim.name = "resnet-18-slice";
    for (size_t i = 0; i < 2 && i < full.subgraphs.size(); ++i) {
        slim.subgraphs.push_back(full.subgraphs[i]);
        slim.weights.push_back(full.weights[i]);
    }
    tune::TuneOptions options;
    options.rounds = 2;
    options.measures_per_round = 4;
    options.evolution.population = 16;
    options.evolution.iterations = 1;
    options.evolution.children_per_iter = 8;
    options.checkpoint_path = path;
    options.checkpoint_every = 1;
    options.seed = seed;
    model::RandomCostModel cost_model(seed);
    tune::tuneWorkload(slim,
                       hw::HardwarePlatform::preset("platinum-8272"),
                       cost_model, options);
    std::string bytes = readFile(path);
    std::remove(path.c_str());
    return bytes;
}

std::string
trainCheckpointBytes(uint64_t seed, int steps)
{
    Rng rng(seed);
    nn::Tensor w = nn::Tensor::randn({8}, rng, 1.0);
    nn::Adam adam({w}, {.lr = 0.01});
    model::SupervisorOptions options;
    options.enabled = true;
    model::TrainSupervisor supervisor({w}, adam, options);
    for (int i = 0; i < steps; ++i) {
        supervisor.step([&] {
            adam.zeroGrad();
            auto &grad = w.grad();
            for (size_t j = 0; j < grad.size(); ++j)
                grad[j] = 0.1f * static_cast<float>(j + 1);
            return 1.0 + 0.1 * i;
        });
    }
    std::ostringstream os(std::ios::binary);
    model::writeTrainCheckpoint(os, supervisor.makeCheckpoint(steps));
    return os.str();
}

std::string
memoBytes(const data::Dataset &dataset)
{
    std::ostringstream os;
    bench::writeBenchMemo(os, kMemoFingerprint, dataset);
    return os.str();
}

// --- fault-point enumeration ---------------------------------------------

/** Every interesting truncation point: file edges plus each 16-byte
 *  section frame's tag / payload / end offsets, each +/- 1 byte. */
std::vector<size_t>
tornCuts(const std::string &bytes, size_t header)
{
    std::set<size_t> cuts{0, 1, header};
    size_t at = header;
    while (at + 16 <= bytes.size()) {
        uint64_t payload_size = 0;
        std::memcpy(&payload_size, bytes.data() + at + 4, 8);
        const size_t payload_offset = at + 16;
        if (payload_size > bytes.size() - payload_offset)
            break;
        for (const size_t mark :
             {at, payload_offset,
              payload_offset + static_cast<size_t>(payload_size)}) {
            if (mark > 0)
                cuts.insert(mark - 1);
            cuts.insert(mark);
            cuts.insert(mark + 1);
        }
        at = payload_offset + static_cast<size_t>(payload_size);
    }
    std::vector<size_t> out;
    for (const size_t cut : cuts)
        if (cut <= bytes.size())
            out.push_back(cut);
    return out;
}

struct DrillRow
{
    const char *format;
    int fault_points = 0;
    int violations = 0;   ///< unreported fault, mutated gen-1, torn load
    int debris_swept = 0;
};

DrillRow
runSaveDrill(const char *format, const std::string &gen1,
             const std::string &gen2, size_t header,
             const std::function<Status(const std::string &)> &load)
{
    DrillRow row;
    row.format = format;
    const std::string path =
        std::string("/tmp/tlp_bench_io_drill_") + format + ".bin";
    std::remove(path.c_str());
    sweepStaleTempsFor(path);

    IoEnv &env = IoEnv::global();
    const auto write = [&](const std::string &bytes) {
        return atomicWriteFile(path, [&](std::ostream &os) {
            os.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
        });
    };
    if (!write(gen1).ok() || readFile(path) != gen1) {
        row.violations += 1;   // cannot even establish generation 1
        return row;
    }

    std::vector<IoFaultDecision> points;
    for (const IoFaultKind kind :
         {IoFaultKind::OpenFail, IoFaultKind::FlushFail,
          IoFaultKind::RenameFail}) {
        IoFaultDecision decision;
        decision.kind = kind;
        decision.crash_debris = true;
        points.push_back(decision);
    }
    for (const size_t cut : tornCuts(gen2, header)) {
        IoFaultDecision decision;
        decision.kind = IoFaultKind::TornWrite;
        decision.torn_at = static_cast<int64_t>(cut);
        decision.crash_debris = true;
        points.push_back(decision);
    }

    for (const IoFaultDecision &decision : points) {
        env.armNextWrite(decision);
        row.fault_points += 1;
        bool bad = false;
        bad |= write(gen2).ok();          // the fault must be reported
        bad |= readFile(path) != gen1;    // gen-1 must be untouched
        bad |= !load(path).ok();          // and still load — never torn
        if (bad) {
            row.violations += 1;
            std::printf("  VIOLATION: %s under %s torn_at=%lld\n",
                        format, ioFaultKindName(decision.kind),
                        static_cast<long long>(decision.torn_at));
        }
    }

    row.debris_swept = sweepStaleTempsFor(path);
    if (!write(gen2).ok() || readFile(path) != gen2 || !load(path).ok())
        row.violations += 1;   // the fault-free overwrite must commit
    std::remove(path.c_str());
    return row;
}

// --- service chaos fleet -------------------------------------------------

std::vector<serve::SessionSpec>
buildFleet(int sessions, int rounds)
{
    std::vector<serve::SessionSpec> fleet;
    for (int i = 0; i < sessions; ++i) {
        serve::SessionSpec spec;
        char name[16];
        std::snprintf(name, sizeof(name), "s%03d", i);
        spec.name = name;
        spec.network = "resnet-18";
        spec.platform = i % 2 == 0 ? "i7-10510u" : "platinum-8272";
        spec.model = i % 2 == 0 ? serve::ModelKind::Ansor
                                : serve::ModelKind::Random;
        spec.max_subgraphs = 2;
        spec.tune.rounds = rounds;
        spec.tune.measures_per_round = 4;
        spec.tune.evolution.population = 24;
        spec.tune.evolution.iterations = 2;
        spec.tune.evolution.children_per_iter = 12;
        spec.tune.measure.seconds_per_measure = 0.25;
        spec.tune.seed = 0x10c4 + static_cast<uint64_t>(i);
        fleet.push_back(std::move(spec));
    }
    return fleet;
}

serve::ServiceOptions
serviceOptions(const std::string &dir, int fleet_size)
{
    serve::ServiceOptions options;
    options.dir = dir;
    options.max_active = fleet_size;
    options.max_queued = fleet_size;
    return options;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const double t0 = now();

    // --- Part 1: fault-point enumeration, five formats -------------------
    std::printf("save-fault enumeration (every fault point, crash "
                "debris on):\n");
    const data::Dataset tiny = smallDataset(12, 4);
    const data::Dataset small = smallDataset(11, 8);

    std::vector<DrillRow> rows;
    rows.push_back(runSaveDrill(
        "dataset", datasetBytes(tiny), datasetBytes(small), 8,
        [](const std::string &path) {
            return data::Dataset::tryLoad(path).status();
        }));
    rows.push_back(runSaveDrill(
        "snapshot", snapshotBytes(3), snapshotBytes(4), 8,
        [](const std::string &path) {
            return model::loadTlpSnapshot(path).status();
        }));
    rows.push_back(runSaveDrill(
        "checkpoint", checkpointBytes(5), checkpointBytes(6), 8,
        [](const std::string &path) {
            return tune::verifyCheckpoint(path);
        }));
    rows.push_back(runSaveDrill(
        "train_ckpt", trainCheckpointBytes(13, 2),
        trainCheckpointBytes(14, 3), 8, [](const std::string &path) {
            return model::loadTrainCheckpoint(path).status();
        }));
    rows.push_back(runSaveDrill(
        "bench_memo", memoBytes(tiny), memoBytes(small), 24,
        [](const std::string &path) {
            return bench::loadBenchMemo(path, kMemoFingerprint).status();
        }));

    int fault_points = 0;
    int violations = 0;
    for (const DrillRow &row : rows) {
        std::printf("  %-10s %4d fault points, %d violations, %d debris "
                    "temps swept\n",
                    row.format, row.fault_points, row.violations,
                    row.debris_swept);
        fault_points += row.fault_points;
        violations += row.violations;
    }
    const double drill_seconds = now() - t0;
    std::printf("total: %d fault points, %d violations (%.2fs)\n",
                fault_points, violations, drill_seconds);

    // --- Part 2: fleet under chaos, curves must not drift ----------------
    const int sessions = std::max(4, static_cast<int>(4 * scale));
    const int rounds = std::max(3, static_cast<int>(3 * scale));
    const auto fleet = buildFleet(sessions, rounds);
    const int64_t kill_tick =
        static_cast<int64_t>(sessions) * rounds / 2;

    const std::string golden_dir = "/tmp/tlp_bench_io_golden";
    std::filesystem::remove_all(golden_dir);
    serve::TuningService golden(serviceOptions(golden_dir, sessions));
    golden.recover(fleet);
    golden.runUntilIdle();

    IoFaultProfile chaos;
    chaos.fault_rate = 0.6;
    chaos.seed = 0xd15c;
    chaos.crash_debris = true;

    const std::string chaos_dir = "/tmp/tlp_bench_io_chaos";
    std::filesystem::remove_all(chaos_dir);
    const double t1 = now();
    serve::RecoveryReport report;
    {
        ScopedIoFaults scope(chaos);
        serve::TuningService victim(serviceOptions(chaos_dir, sessions));
        victim.recover(fleet);
        victim.runUntilIdle(kill_tick);
        // destroyed here: the "kill -9", with fault debris on disk
    }
    ScopedIoFaults scope(chaos);
    serve::TuningService recovered(serviceOptions(chaos_dir, sessions));
    report = recovered.recover(fleet);
    recovered.runUntilIdle();
    const double chaos_seconds = now() - t1;

    bool curves_identical = true;
    for (const auto &spec : fleet) {
        const std::string golden_curve =
            readFile(golden.curvePath(spec.name));
        const std::string chaos_curve =
            readFile(recovered.curvePath(spec.name));
        if (golden_curve.empty() || golden_curve != chaos_curve) {
            curves_identical = false;
            std::printf("  CURVE MISMATCH: %s\n", spec.name.c_str());
        }
    }
    const auto &stats = recovered.stats();
    std::printf("fleet under chaos (rate %.2f): %d sessions x %d rounds, "
                "kill at tick %lld, %.2fs\n",
                chaos.fault_rate, sessions, rounds,
                static_cast<long long>(kill_tick), chaos_seconds);
    std::printf("  recovered %d / quarantined %d / fresh %d, %d stale "
                "temps swept\n",
                report.recovered, report.quarantined, report.fresh,
                report.stale_temps_swept);
    std::printf("  ckpt writes failed %lld, retries %lld (%lld ok), "
                "checkpointless %lld, curve retries %lld\n",
                static_cast<long long>(stats.ckpt_write_failures),
                static_cast<long long>(stats.ckpt_retries),
                static_cast<long long>(stats.ckpt_retry_successes),
                static_cast<long long>(stats.checkpointless_sessions),
                static_cast<long long>(stats.curve_write_retries));
    std::printf("  curves identical to golden: %s\n",
                curves_identical ? "yes" : "NO (BUG)");

    FILE *json = std::fopen("BENCH_io_chaos.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_io_chaos.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"robustness_io\",\n");
    std::fprintf(json, "  \"scale\": %.3f,\n", scale);
    std::fprintf(json, "  \"formats\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(json,
                     "    {\"format\": \"%s\", \"fault_points\": %d, "
                     "\"violations\": %d, \"debris_swept\": %d}%s\n",
                     rows[i].format, rows[i].fault_points,
                     rows[i].violations, rows[i].debris_swept,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"fault_points\": %d,\n", fault_points);
    std::fprintf(json, "  \"violations\": %d,\n", violations);
    std::fprintf(json, "  \"drill_seconds\": %.3f,\n", drill_seconds);
    std::fprintf(json, "  \"fleet_sessions\": %d,\n", sessions);
    std::fprintf(json, "  \"fleet_rounds\": %d,\n", rounds);
    std::fprintf(json, "  \"fault_rate\": %.3f,\n", chaos.fault_rate);
    std::fprintf(json, "  \"ckpt_write_failures\": %lld,\n",
                 static_cast<long long>(stats.ckpt_write_failures));
    std::fprintf(json, "  \"ckpt_retries\": %lld,\n",
                 static_cast<long long>(stats.ckpt_retries));
    std::fprintf(json, "  \"ckpt_retry_successes\": %lld,\n",
                 static_cast<long long>(stats.ckpt_retry_successes));
    std::fprintf(json, "  \"checkpointless_sessions\": %lld,\n",
                 static_cast<long long>(stats.checkpointless_sessions));
    std::fprintf(json, "  \"curve_write_retries\": %lld,\n",
                 static_cast<long long>(stats.curve_write_retries));
    std::fprintf(json, "  \"stale_temps_swept\": %d,\n",
                 report.stale_temps_swept);
    std::fprintf(json, "  \"chaos_seconds\": %.3f,\n", chaos_seconds);
    std::fprintf(json, "  \"curves_identical\": %s\n",
                 curves_identical ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_io_chaos.json\n");
    return violations == 0 && curves_identical ? 0 : 1;
}
