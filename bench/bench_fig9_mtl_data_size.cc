/**
 * @file
 * Paper Fig. 9: MTL-TLP accuracy vs target-platform data size (donor:
 * Platinum-8272 with all data). Paper shape: accuracy climbs steeply up
 * to the "500K" point, then flattens.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "support/str_util.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Fig. 9: MTL accuracy vs target data size ===\n");
    const auto dataset =
        bench::standardDataset({"e5-2673", "platinum-8272"}, false);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());

    // Paper sweeps 50K..2M out of 8.6M; we sweep the same fractions of
    // our training pool.
    const double fractions[] = {0.01, 0.05, 0.10, 0.20, 0.40};
    const int64_t pool =
        static_cast<int64_t>(bench::capTrainRecords(split.train_records)
                                 .size());

    TextTable table("Fig. 9 (target e5-2673 + donor platinum-8272)");
    table.setHeader({"target rows", "fraction", "top-1", "top-5"});
    for (double fraction : fractions) {
        const int64_t rows = std::max<int64_t>(
            50, static_cast<int64_t>(fraction * static_cast<double>(pool)));
        const auto topk = bench::mtlTopK(dataset, split, 0, {1}, rows,
                                         bench::benchTrainOptions());
        table.addRow({std::to_string(rows),
                      formatDouble(fraction, 2),
                      bench::fmtScore(topk.top1),
                      bench::fmtScore(topk.top5)});
        std::printf("done: fraction %.2f\n", fraction);
    }
    table.print();
    std::printf("paper: steep gains until ~500K (6%% of data), then "
                "flat; MTL-TLP passes TenSet MLP at 500K\n");
    return 0;
}
