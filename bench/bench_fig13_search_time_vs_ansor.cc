/**
 * @file
 * Paper Fig. 13: search time for each cost model to reach the quality
 * that Ansor's online model attains with its full budget. Paper: TLP
 * averages 16.7x (CPU) / 16.0x (GPU); MTL-TLP 10.0x / 15.8x.
 */
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "support/str_util.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Fig. 13: search time to reach Ansor-final "
                "performance ===\n");

    struct PlatformSpec
    {
        const char *label;
        std::vector<std::string> platforms;
        bool gpu;
        double paper_tlp_speedup, paper_mtl_speedup;
    };
    const PlatformSpec specs[] = {
        {"CPU i7-10510u", {"i7-10510u", "platinum-8272"}, false, 16.7,
         10.0},
        {"GPU tesla-t4", {"tesla-t4", "tesla-k80"}, true, 16.0, 15.8},
    };
    const std::vector<std::string> networks = {"resnet-50",
                                               "mobilenet-v2",
                                               "bert-tiny"};

    for (const PlatformSpec &spec : specs) {
        const auto dataset = bench::standardDataset(spec.platforms,
                                                    spec.gpu);
        const auto split =
            data::makeSplit(dataset, bench::benchTestNetworks());
        auto models = bench::prepareSearchModels(dataset, split);

        TextTable table(std::string(spec.label) +
                        ": time to reach Ansor-final (s)");
        table.setHeader({"workload", "ansor", "tlp", "mtl-tlp",
                         "tlp speedup", "mtl speedup"});
        double tlp_speedups = 0.0, mtl_speedups = 0.0;
        int counted = 0;
        for (const auto &network : networks) {
            const auto ansor_run = bench::tuneNetwork(
                network, spec.platforms[0], *models.ansor);
            const double target = ansor_run.best_workload_latency_ms;
            const double ansor_time = ansor_run.timeToReach(target);
            const auto tlp_run = bench::tuneNetwork(
                network, spec.platforms[0], *models.tlp);
            const auto mtl_run = bench::tuneNetwork(
                network, spec.platforms[0], *models.mtl);
            const double tlp_time = tlp_run.timeToReach(target);
            const double mtl_time = mtl_run.timeToReach(target);
            auto fmt = [](double value) {
                return std::isfinite(value) ? formatDouble(value, 1)
                                            : std::string("not reached");
            };
            const double tlp_speedup =
                std::isfinite(tlp_time) ? ansor_time / tlp_time : 0.0;
            const double mtl_speedup =
                std::isfinite(mtl_time) ? ansor_time / mtl_time : 0.0;
            if (tlp_speedup > 0 && mtl_speedup > 0) {
                tlp_speedups += tlp_speedup;
                mtl_speedups += mtl_speedup;
                ++counted;
            }
            table.addRow({network, fmt(ansor_time), fmt(tlp_time),
                          fmt(mtl_time),
                          tlp_speedup > 0 ? formatDouble(tlp_speedup, 2) +
                                                "x"
                                          : "-",
                          mtl_speedup > 0 ? formatDouble(mtl_speedup, 2) +
                                                "x"
                                          : "-"});
            std::printf("done: %s / %s\n", spec.label, network.c_str());
        }
        table.print();
        if (counted > 0) {
            std::printf("average speedups (paper: tlp %.1fx, mtl %.1fx): "
                        "tlp %.2fx, mtl %.2fx\n",
                        spec.paper_tlp_speedup, spec.paper_mtl_speedup,
                        tlp_speedups / counted, mtl_speedups / counted);
        }
    }
    return 0;
}
