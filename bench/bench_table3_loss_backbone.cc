/**
 * @file
 * Paper Table 3: top-k scores for {self-attention, LSTM} x {rank, MSE}
 * on the CPU dataset (Platinum-8272). Paper: attention+rank best
 * (0.9194 / 0.9710), all four combinations within a few points.
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 3: loss function & backbone basic module ===\n");
    const auto dataset =
        bench::standardDataset({"platinum-8272"}, /*is_gpu=*/false);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());

    struct Row
    {
        const char *name;
        bool lstm;
        bool rank;
        double paper_top1, paper_top5;
    };
    const Row rows[] = {
        {"Attention + Rank", false, true, 0.9194, 0.9710},
        {"Attention + MSE", false, false, 0.9128, 0.9542},
        {"LSTM + Rank", true, true, 0.9119, 0.9509},
        {"LSTM + MSE", true, false, 0.9061, 0.9540},
    };

    TextTable table("Table 3 (CPU dataset, platinum-8272)");
    table.setHeader({"combination", "top-1 (paper)", "top-1 (ours)",
                     "top-5 (paper)", "top-5 (ours)"});
    for (const Row &row : rows) {
        model::TlpNetConfig config;
        config.lstm_backbone = row.lstm;
        auto options = bench::benchTrainOptions();
        options.use_rank_loss = row.rank;
        if (!row.rank)
            options.lr = 8e-4;   // MSE is lr-sensitive at small scale
        const auto trained =
            bench::trainAndEvalTlp(dataset, split, {0}, config, options);
        table.addRow({row.name, bench::fmtScore(row.paper_top1),
                      bench::fmtScore(trained.topk.top1),
                      bench::fmtScore(row.paper_top5),
                      bench::fmtScore(trained.topk.top5)});
        std::printf("done: %s\n", row.name);
    }
    table.print();
    return 0;
}
