/**
 * @file
 * Paper Table 9: which donor architecture helps the target most?
 * Target = Intel i7-10510U (x86). Paper shape: x86 donors (Platinum,
 * E5) help more than AMD (EPYC), which helps more than ARM (Graviton2).
 */
#include <cstdio>

#include "bench/bench_common.h"

int
main()
{
    using namespace tlp;
    std::printf("=== Table 9: MTL donors across architectures "
                "(target i7-10510u) ===\n");
    const std::vector<std::string> platforms = {
        "i7-10510u", "platinum-8272", "e5-2673", "epyc-7452",
        "graviton2"};
    const auto dataset = bench::standardDataset(platforms, false);
    const auto split = data::makeSplit(dataset, bench::benchTestNetworks());
    const int64_t scarce = scaledCount(800, 200);

    struct Row
    {
        const char *donor;
        int donor_index;
        double paper_top1, paper_top5;
    };
    const Row rows[] = {
        {"platinum-8272 (x86)", 1, 0.8413, 0.9202},
        {"e5-2673 (x86)", 2, 0.8331, 0.9672},
        {"epyc-7452 (amd)", 3, 0.8082, 0.9122},
        {"graviton2 (arm)", 4, 0.7711, 0.8909},
    };

    TextTable table("Table 9 (target i7-10510u + one donor, scarce "
                    "target labels)");
    table.setHeader({"donor", "top-1 (paper)", "top-1 (ours)",
                     "top-5 (paper)", "top-5 (ours)"});
    for (const Row &row : rows) {
        const auto topk = bench::mtlTopK(dataset, split, 0,
                                         {row.donor_index}, scarce,
                                         bench::benchTrainOptions());
        table.addRow({row.donor, bench::fmtScore(row.paper_top1),
                      bench::fmtScore(topk.top1),
                      bench::fmtScore(row.paper_top5),
                      bench::fmtScore(topk.top5)});
        std::printf("done: %s\n", row.donor);
    }
    table.print();
    return 0;
}
