/**
 * @file
 * Robustness sweep: training and search under injected numeric faults.
 *
 * The paper's pipeline rests on one long pretraining run (Sec. 6.1) and
 * a model-guided search (Sec. 6.3); a single NaN gradient or a cost
 * model whose scores collapse mid-campaign can waste all of it. This
 * bench sweeps injected training-fault rate x recovery policy
 * (abort-on-fault vs rollback-retry) on a real mini training run, then
 * runs one guarded search campaign whose preferred model collapses
 * after two online updates. Expected shape: abort-on-fault loses the
 * run as soon as a fault fires, rollback-retry finishes with a finite
 * loss close to the clean run at a small step cost, and the guarded
 * search fails over instead of aborting and still finishes its budget.
 * Results go to stdout and BENCH_robustness_training.json.
 */
#include <cmath>
#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_common.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "models/guarded_model.h"
#include "support/str_util.h"

using namespace tlp;

namespace {

struct TrainRun
{
    double fault_rate = 0.0;
    const char *policy = "";
    double final_loss = 0.0;
    bool aborted = false;
    int64_t rollbacks = 0;
    int64_t retries_exhausted = 0;
    int64_t nan_events = 0;
};

} // namespace

int
main()
{
    std::printf("=== Robustness: training & search under numeric faults "
                "===\n");

    // --- a real mini training set (memoized collection) -----------------
    data::CollectOptions collect;
    collect.networks = {"resnet-18"};
    collect.platforms = {"platinum-8272"};
    collect.programs_per_subgraph = static_cast<int>(scaledCount(48, 16));
    collect.seed = 41;
    const auto dataset = data::collectDataset(collect);
    std::vector<int> all_records;
    for (size_t r = 0; r < dataset.records.size(); ++r)
        all_records.push_back(static_cast<int>(r));
    const auto set = data::buildTlpSet(dataset, all_records, {0});
    std::printf("training set: %d rows\n", set.rows);

    model::TlpNetConfig config;
    config.hidden = 32;
    config.heads = 4;

    const double fault_rates[] = {0.0, 0.1, 0.3};
    struct Policy
    {
        const char *label;
        model::RecoveryPolicy policy;
    };
    const Policy policies[] = {
        {"abort", model::RecoveryPolicy::AbortOnFault},
        {"rollback-retry", model::RecoveryPolicy::RollbackRetry},
    };

    std::vector<TrainRun> runs;
    TextTable table("training fault rate x recovery policy");
    table.setHeader({"faults", "policy", "final loss", "aborted",
                     "rollbacks", "skipped"});
    for (const double rate : fault_rates) {
        for (const Policy &policy : policies) {
            // tlp-lint: allow(float-eq) -- rate is copied verbatim from the literal sweep list; exact 0.0 means injection disabled
            if (rate == 0.0 && policy.policy ==
                                   model::RecoveryPolicy::AbortOnFault)
                continue;   // no faults: both policies are the clean run
            Rng rng(7);
            model::TlpNet net(config, rng);
            model::TrainOptions options;
            options.epochs = static_cast<int>(scaledCount(2, 1));
            options.batch_size = 64;
            options.supervisor.enabled = true;
            options.supervisor.policy = policy.policy;
            options.supervisor.faults =
                model::TrainFaultProfile::uniform(rate, 0x6e);
            model::HealthCounters health;
            options.supervisor.health_out = &health;

            TrainRun run;
            run.fault_rate = rate;
            run.policy = policy.label;
            run.final_loss = trainTlpNet(net, set, options);
            run.aborted = health[model::HealthEvent::AbortPolicy] > 0;
            run.rollbacks = health[model::HealthEvent::Rollback];
            run.retries_exhausted =
                health[model::HealthEvent::RetryExhausted];
            run.nan_events = health[model::HealthEvent::NanLoss] +
                             health[model::HealthEvent::NanGrad] +
                             health[model::HealthEvent::LossDivergence];
            runs.push_back(run);

            table.addRow({formatDouble(rate, 2), policy.label,
                          std::isfinite(run.final_loss)
                              ? formatDouble(run.final_loss, 4)
                              : std::string("nan"),
                          run.aborted ? "yes" : "no",
                          std::to_string(run.rollbacks),
                          std::to_string(run.retries_exhausted)});
        }
        if (rate != fault_rates[std::size(fault_rates) - 1])
            table.addSeparator();
    }
    table.print();

    // --- guarded search: the preferred model collapses mid-campaign -----
    std::printf("\nguarded search: preferred model collapses after 2 "
                "online updates\n");
    ir::Workload full = ir::partitionGraph(ir::buildNetwork("resnet-18"));
    ir::Workload slim;
    slim.name = "resnet-18-slice";
    for (size_t i = 0; i < 3 && i < full.subgraphs.size(); ++i) {
        slim.subgraphs.push_back(full.subgraphs[i]);
        slim.weights.push_back(full.weights[i]);
    }
    const auto hw_platform = hw::HardwarePlatform::preset("platinum-8272");
    const auto tune_options = bench::benchTuneOptions(
        static_cast<int>(slim.subgraphs.size()));

    model::AnsorOnlineCostModel baseline;
    const auto clean = tune::tuneWorkload(slim, hw_platform, baseline,
                                          tune_options);

    model::HealthCounters search_health;
    model::GuardOptions guard_options;
    guard_options.health_out = &search_health;
    auto sick = std::make_shared<model::FaultInjectedCostModel>(
        std::make_shared<model::AnsorOnlineCostModel>(), 2);
    auto guarded = model::makeGuardedLadder(sick, guard_options);
    const auto degraded = tune::tuneWorkload(slim, hw_platform, *guarded,
                                             tune_options);

    TextTable search_table("search under cost-model collapse");
    search_table.setHeader({"campaign", "final ms", "measurements",
                            "active rung", "failovers"});
    search_table.addRow(
        {"healthy ansor", formatDouble(clean.best_workload_latency_ms, 3),
         std::to_string(clean.total_measurements), "0", "0"});
    search_table.addRow(
        {"collapsing+guard",
         formatDouble(degraded.best_workload_latency_ms, 3),
         std::to_string(degraded.total_measurements),
         std::to_string(guarded->activeIndex()),
         std::to_string(
             search_health[model::HealthEvent::Failover])});
    search_table.print();

    std::printf("\nexpected shape: rollback-retry finishes every run with "
                "a finite loss;\nabort loses the run at the first fault; "
                "the guarded search fails over\nand completes its full "
                "measurement budget.\n");

    FILE *json = std::fopen("BENCH_robustness_training.json", "w");
    if (!json) {
        std::fprintf(stderr,
                     "cannot write BENCH_robustness_training.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"robustness_training\",\n");
    std::fprintf(json, "  \"scale\": %.3f,\n", benchScale());
    std::fprintf(json, "  \"train_rows\": %d,\n", set.rows);
    std::fprintf(json, "  \"training_runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const TrainRun &run = runs[i];
        std::fprintf(json,
                     "    {\"fault_rate\": %.2f, \"policy\": \"%s\", "
                     "\"final_loss\": %.6f, \"aborted\": %s, "
                     "\"rollbacks\": %lld, \"retries_exhausted\": %lld, "
                     "\"numeric_events\": %lld}%s\n",
                     run.fault_rate, run.policy, run.final_loss,
                     run.aborted ? "true" : "false",
                     static_cast<long long>(run.rollbacks),
                     static_cast<long long>(run.retries_exhausted),
                     static_cast<long long>(run.nan_events),
                     i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"guarded_search\": {\n");
    std::fprintf(json, "    \"clean_final_ms\": %.4f,\n",
                 clean.best_workload_latency_ms);
    std::fprintf(json, "    \"degraded_final_ms\": %.4f,\n",
                 degraded.best_workload_latency_ms);
    std::fprintf(json, "    \"clean_measurements\": %lld,\n",
                 static_cast<long long>(clean.total_measurements));
    std::fprintf(json, "    \"degraded_measurements\": %lld,\n",
                 static_cast<long long>(degraded.total_measurements));
    std::fprintf(json, "    \"active_rung\": %d,\n",
                 guarded->activeIndex());
    std::fprintf(json, "    \"failovers\": %lld\n",
                 static_cast<long long>(
                     search_health[model::HealthEvent::Failover]));
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_robustness_training.json\n");
    return 0;
}
