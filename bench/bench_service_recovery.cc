/**
 * @file
 * Whole-service fault drill (DESIGN.md §12): how much work does
 * crash-safe recovery save, and is the recovered fleet exact?
 *
 * A fleet of sessions runs three times: (a) golden, uninterrupted;
 * (b) killed at a fixed tick with one checkpoint deliberately
 * corrupted, then recovered by a fresh service incarnation; (c) the
 * same interruption replayed WITHOUT checkpoints (every session
 * restarts from round 0) as the cost baseline. The drill reports
 * rounds salvaged vs re-run, quarantine counts, and whether every
 * recovered curve is bit-identical to golden — the number the paper's
 * long-running search setting actually cares about.
 *
 * Emits BENCH_service.json.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/bench_common.h"
#include "tuner/service/service.h"

using namespace tlp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::vector<serve::SessionSpec>
buildFleet(int sessions, int rounds)
{
    const serve::ModelKind kinds[4] = {
        serve::ModelKind::Ansor, serve::ModelKind::Random,
        serve::ModelKind::GuardedAnsor, serve::ModelKind::Random};
    std::vector<serve::SessionSpec> fleet;
    for (int i = 0; i < sessions; ++i) {
        serve::SessionSpec spec;
        char name[16];
        std::snprintf(name, sizeof(name), "s%03d", i);
        spec.name = name;
        spec.network = "resnet-18";
        spec.platform = i % 2 == 0 ? "i7-10510u" : "platinum-8272";
        spec.model = kinds[i % 4];
        spec.max_subgraphs = 2;
        spec.tune.rounds = rounds;
        spec.tune.measures_per_round = 4;
        spec.tune.evolution.population = 24;
        spec.tune.evolution.iterations = 2;
        spec.tune.evolution.children_per_iter = 12;
        spec.tune.measure.seconds_per_measure = 0.25;
        spec.tune.seed = 0xbe7c + static_cast<uint64_t>(i);
        fleet.push_back(std::move(spec));
    }
    return fleet;
}

serve::ServiceOptions
serviceOptions(const std::string &dir, int fleet_size)
{
    serve::ServiceOptions options;
    options.dir = dir;
    options.max_active = fleet_size;
    options.max_queued = fleet_size;
    return options;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const int sessions = std::max(8, static_cast<int>(8 * scale));
    const int rounds = std::max(4, static_cast<int>(4 * scale));
    const auto fleet = buildFleet(sessions, rounds);
    const int64_t kill_tick = static_cast<int64_t>(sessions) * rounds / 2;

    std::printf("service recovery drill: %d sessions x %d rounds, kill "
                "at tick %lld\n",
                sessions, rounds, static_cast<long long>(kill_tick));

    // (a) Golden, uninterrupted.
    const std::string golden_dir = "/tmp/tlp_bench_service_golden";
    std::filesystem::remove_all(golden_dir);
    double t0 = now();
    serve::TuningService golden(serviceOptions(golden_dir, sessions));
    golden.recover(fleet);
    const int64_t golden_ticks = golden.runUntilIdle();
    const double golden_seconds = now() - t0;
    std::printf("golden: %lld ticks, %.2fs wall\n",
                static_cast<long long>(golden_ticks), golden_seconds);

    // (b) Kill at a fixed tick, corrupt one checkpoint, recover.
    const std::string drill_dir = "/tmp/tlp_bench_service_drill";
    std::filesystem::remove_all(drill_dir);
    {
        serve::TuningService victim(serviceOptions(drill_dir, sessions));
        victim.recover(fleet);
        victim.runUntilIdle(kill_tick);
        // destroyed here: the "kill -9"
    }
    {
        // One torn checkpoint: flip bytes mid-file.
        const std::string path = drill_dir + "/s001.ckpt";
        std::string bytes = readFile(path);
        if (bytes.size() > 64) {
            for (size_t i = bytes.size() / 2;
                 i < bytes.size() / 2 + 16 && i < bytes.size(); ++i)
                bytes[i] = static_cast<char>(~bytes[i]);
            // tlp-lint: allow(raw-io) -- deliberately plants a torn checkpoint; routing through the seam would defeat the drill
            std::ofstream os(path,
                             std::ios::binary | std::ios::trunc);
            os.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
        }
    }
    t0 = now();
    serve::TuningService recovered(serviceOptions(drill_dir, sessions));
    const auto report = recovered.recover(fleet);
    const int64_t recovery_ticks = recovered.runUntilIdle();
    const double recovery_seconds = now() - t0;
    std::printf("recovered: %d resumed / %d quarantined / %d fresh, "
                "%lld rounds salvaged, %lld ticks to finish, %.2fs "
                "wall\n",
                report.recovered, report.quarantined, report.fresh,
                static_cast<long long>(report.rounds_salvaged),
                static_cast<long long>(recovery_ticks),
                recovery_seconds);

    // (c) The no-checkpoint baseline: the same kill throws ALL progress
    // away, so finishing costs a full golden run again.
    const int64_t rerun_ticks = golden_ticks;

    // Exactness: every curve file byte-identical to golden.
    bool curves_identical = true;
    for (const auto &spec : fleet) {
        const std::string golden_curve =
            readFile(golden.curvePath(spec.name));
        const std::string drill_curve =
            readFile(recovered.curvePath(spec.name));
        if (golden_curve.empty() || golden_curve != drill_curve) {
            curves_identical = false;
            std::printf("CURVE MISMATCH: %s\n", spec.name.c_str());
        }
    }
    std::printf("curves identical to golden: %s\n",
                curves_identical ? "yes" : "NO (BUG)");

    const auto &stats = recovered.stats();
    const double ticks_saved_frac =
        rerun_ticks > 0
            ? 1.0 - static_cast<double>(recovery_ticks) /
                        static_cast<double>(rerun_ticks)
            : 0.0;
    std::printf("recovery finished in %lld ticks vs %lld from scratch "
                "(%.0f%% saved)\n",
                static_cast<long long>(recovery_ticks),
                static_cast<long long>(rerun_ticks),
                100.0 * ticks_saved_frac);

    FILE *json = std::fopen("BENCH_service.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_service.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"service_recovery\",\n");
    std::fprintf(json, "  \"scale\": %.3f,\n", scale);
    std::fprintf(json, "  \"sessions\": %d,\n", sessions);
    std::fprintf(json, "  \"rounds_per_session\": %d,\n", rounds);
    std::fprintf(json, "  \"kill_tick\": %lld,\n",
                 static_cast<long long>(kill_tick));
    std::fprintf(json, "  \"recovered\": %d,\n", report.recovered);
    std::fprintf(json, "  \"quarantined\": %d,\n", report.quarantined);
    std::fprintf(json, "  \"fresh\": %d,\n", report.fresh);
    std::fprintf(json, "  \"rounds_salvaged\": %lld,\n",
                 static_cast<long long>(report.rounds_salvaged));
    std::fprintf(json, "  \"rounds_rerun\": %lld,\n",
                 static_cast<long long>(stats.rounds_run));
    std::fprintf(json, "  \"golden_ticks\": %lld,\n",
                 static_cast<long long>(golden_ticks));
    std::fprintf(json, "  \"recovery_ticks\": %lld,\n",
                 static_cast<long long>(recovery_ticks));
    std::fprintf(json, "  \"ticks_saved_fraction\": %.4f,\n",
                 ticks_saved_frac);
    std::fprintf(json, "  \"golden_wall_seconds\": %.3f,\n",
                 golden_seconds);
    std::fprintf(json, "  \"recovery_wall_seconds\": %.3f,\n",
                 recovery_seconds);
    std::fprintf(json, "  \"curves_identical\": %s\n",
                 curves_identical ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_service.json\n");
    return curves_identical && report.quarantined == 1 ? 0 : 1;
}
