/**
 * @file
 * Analytic latency simulator: lowered program + platform -> latency.
 *
 * This is the reproduction's stand-in for running tensor programs on real
 * hardware (and therefore for the TenSet dataset's measured labels). The
 * model is a parallel roofline over the lowered loop nest:
 *
 *   - compute time from FLOPs, SIMD width & divisibility, parallel
 *     speedup with load imbalance, unroll sweet spots and i-cache
 *     penalties, and imperfect-tiling overcount;
 *   - memory time from tile footprints: for every cache level, the
 *     outermost loop depth whose working set fits determines how often
 *     each tile is re-fetched (classic capacity model), with cache-write
 *     locals / shared-memory stages short-circuiting DRAM traffic;
 *   - GPU kernels from grid/block bindings: occupancy, wave quantization,
 *     warp divisibility, shared-memory capacity and bank behaviour,
 *     cross-thread reductions, kernel launch overhead;
 *   - a small deterministic per-(platform, program) wiggle, which plays
 *     the role of irreducible measurement structure a cost model cannot
 *     explain.
 *
 * The three properties that drive the paper's headline results hold by
 * construction: latency is a function of (subgraph, primitive sequence,
 * platform); schedule choices interact non-linearly; and platforms
 * disagree on rankings.
 */
#pragma once

#include "hwmodel/platform.h"
#include "schedule/lower.h"

namespace tlp::hw {

/** Deterministic analytic latency model. */
class LatencySimulator
{
  public:
    explicit LatencySimulator(HardwarePlatform hw);

    const HardwarePlatform &platform() const { return hw_; }

    /** Latency of @p nest in milliseconds (deterministic). */
    double latencyMs(const sched::LoweredNest &nest) const;

  private:
    struct StageExtras
    {
        double flops = 0.0;         ///< folded from inlined producers
        double stream_bytes = 0.0;  ///< extra streamed operand traffic
    };

    double cpuGroupTime(const sched::LoweredNest &nest, int root,
                        const std::vector<StageExtras> &extras) const;
    double gpuKernelTime(const sched::LoweredNest &nest, int root,
                         const std::vector<StageExtras> &extras) const;
    double cpuStageTime(const sched::LoweredNest &nest,
                        const sched::LoweredStage &stage,
                        const StageExtras &extras, double parallel) const;
    double wiggle(const sched::LoweredNest &nest) const;

    HardwarePlatform hw_;
};

} // namespace tlp::hw
