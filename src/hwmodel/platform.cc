#include "hwmodel/platform.h"

#include "support/logging.h"

namespace tlp::hw {

namespace {

HardwarePlatform
basePlatform(const std::string &name)
{
    HardwarePlatform hw;
    hw.name = name;
    return hw;
}

} // namespace

HardwarePlatform
HardwarePlatform::preset(const std::string &name)
{
    // CPU core counts follow the paper's Table 5 configurations.
    if (name == "platinum-8272") {
        auto hw = basePlatform(name);
        hw.cores = 16;
        hw.vector_lanes = 16;          // AVX-512
        hw.freq_ghz = 2.6;
        hw.flops_per_cycle = 4.0;      // two FMA ports
        hw.l1_bytes = 32 << 10;
        hw.l2_bytes = 1 << 20;
        hw.l3_bytes = 32LL << 20;
        hw.dram_bw_gbs = 90.0;
        hw.l1_bw_gbs = 1600.0;
        hw.l2_bw_gbs = 800.0;
        hw.l3_bw_gbs = 300.0;
        hw.parallel_overhead_us = 4.0;
        hw.unroll_sweet_spot = 512.0;
        hw.quirk_seed = 0x8272;
        return hw;
    }
    if (name == "e5-2673") {
        auto hw = basePlatform(name);
        hw.cores = 8;
        hw.vector_lanes = 8;           // AVX2
        hw.freq_ghz = 2.3;
        hw.flops_per_cycle = 4.0;
        hw.l1_bytes = 32 << 10;
        hw.l2_bytes = 256 << 10;
        hw.l3_bytes = 20LL << 20;
        hw.dram_bw_gbs = 55.0;
        hw.l1_bw_gbs = 700.0;
        hw.l2_bw_gbs = 350.0;
        hw.l3_bw_gbs = 180.0;
        hw.parallel_overhead_us = 5.0;
        hw.unroll_sweet_spot = 64.0;
        hw.quirk_seed = 0x2673;
        return hw;
    }
    if (name == "epyc-7452") {
        auto hw = basePlatform(name);
        hw.cores = 4;
        hw.vector_lanes = 8;           // AVX2
        hw.freq_ghz = 2.35;
        hw.flops_per_cycle = 4.0;
        hw.l1_bytes = 32 << 10;
        hw.l2_bytes = 512 << 10;
        hw.l3_bytes = 64LL << 20;      // generous Zen L3 slice
        hw.dram_bw_gbs = 45.0;
        hw.l1_bw_gbs = 400.0;
        hw.l2_bw_gbs = 220.0;
        hw.l3_bw_gbs = 160.0;
        hw.parallel_overhead_us = 6.0;
        hw.unroll_sweet_spot = 64.0;
        hw.quirk_seed = 0x7452;
        return hw;
    }
    if (name == "graviton2") {
        auto hw = basePlatform(name);
        hw.cores = 16;
        hw.vector_lanes = 4;           // NEON
        hw.freq_ghz = 2.5;
        hw.flops_per_cycle = 4.0;      // two NEON pipes
        hw.l1_bytes = 64 << 10;
        hw.l2_bytes = 1 << 20;
        hw.l3_bytes = 32LL << 20;
        hw.dram_bw_gbs = 100.0;
        hw.l1_bw_gbs = 1200.0;
        hw.l2_bw_gbs = 600.0;
        hw.l3_bw_gbs = 250.0;
        hw.parallel_overhead_us = 3.0;
        hw.unroll_sweet_spot = 16.0;
        hw.quirk_seed = 0x6216;
        return hw;
    }
    if (name == "i7-10510u") {
        auto hw = basePlatform(name);
        hw.cores = 8;                  // 4C8T notebook part
        hw.vector_lanes = 8;           // AVX2
        hw.freq_ghz = 1.8;
        hw.flops_per_cycle = 3.0;      // SMT-shared ports
        hw.l1_bytes = 32 << 10;
        hw.l2_bytes = 256 << 10;
        hw.l3_bytes = 8LL << 20;
        hw.dram_bw_gbs = 30.0;
        hw.l1_bw_gbs = 500.0;
        hw.l2_bw_gbs = 250.0;
        hw.l3_bw_gbs = 120.0;
        hw.parallel_overhead_us = 8.0;
        hw.unroll_sweet_spot = 64.0;
        hw.quirk_seed = 0x1051;
        return hw;
    }
    if (name == "tesla-k80") {
        auto hw = basePlatform(name);
        hw.is_gpu = true;
        hw.num_sms = 13;
        hw.max_threads_per_sm = 2048;
        hw.shared_mem_per_block = 48 << 10;
        hw.gpu_gflops = 4100.0;
        hw.gmem_bw_gbs = 240.0;
        hw.smem_bw_gbs = 1500.0;
        hw.gpu_l2_bytes = 1536 << 10;
        hw.kernel_launch_us = 8.0;
        hw.unroll_sweet_spot = 64.0;
        hw.quirk_seed = 0x0080;
        return hw;
    }
    if (name == "tesla-t4") {
        auto hw = basePlatform(name);
        hw.is_gpu = true;
        hw.num_sms = 40;
        hw.max_threads_per_sm = 1024;
        hw.shared_mem_per_block = 64 << 10;
        hw.gpu_gflops = 8100.0;
        hw.gmem_bw_gbs = 300.0;
        hw.smem_bw_gbs = 4000.0;
        hw.gpu_l2_bytes = 4 << 20;
        hw.kernel_launch_us = 4.0;
        hw.unroll_sweet_spot = 512.0;
        hw.quirk_seed = 0x0014;
        return hw;
    }
    TLP_FATAL("unknown hardware preset: ", name);
}

std::vector<std::string>
HardwarePlatform::presetNames()
{
    return {"platinum-8272", "e5-2673", "epyc-7452", "graviton2",
            "i7-10510u", "tesla-k80", "tesla-t4"};
}

std::vector<std::string>
HardwarePlatform::cpuPresetNames()
{
    return {"platinum-8272", "e5-2673", "epyc-7452", "graviton2",
            "i7-10510u"};
}

std::vector<std::string>
HardwarePlatform::gpuPresetNames()
{
    return {"tesla-k80", "tesla-t4"};
}

} // namespace tlp::hw
