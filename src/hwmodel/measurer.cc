#include "hwmodel/measurer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace tlp::hw {

namespace {

/** Fraction of seconds_per_measure burned by a failed compile. */
constexpr double kCompileFraction = 0.4;

/** Map a 64-bit hash to a uniform double in [0, 1). */
double
hashUniform(uint64_t key)
{
    uint64_t state = key;
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

} // namespace

std::string
measureStatusName(MeasureStatus status)
{
    switch (status) {
      case MeasureStatus::Ok:           return "ok";
      case MeasureStatus::CompileError: return "compile_error";
      case MeasureStatus::Timeout:      return "timeout";
      case MeasureStatus::RuntimeError: return "runtime_error";
      case MeasureStatus::Outlier:      return "outlier";
      case MeasureStatus::NumStatuses:  break;
    }
    TLP_PANIC("invalid MeasureStatus ", static_cast<int>(status));
}

bool
FaultProfile::enabled() const
{
    return compile_error_prob > 0.0 || timeout_prob > 0.0 ||
           runtime_error_prob > 0.0 || outlier_prob > 0.0;
}

FaultProfile
FaultProfile::uniform(double total_rate, uint64_t seed)
{
    TLP_CHECK(total_rate >= 0.0 && total_rate < 1.0,
              "fault rate must be in [0, 1), got ", total_rate);
    FaultProfile profile;
    profile.compile_error_prob = total_rate / 4.0;
    profile.timeout_prob = total_rate / 4.0;
    profile.runtime_error_prob = total_rate / 4.0;
    profile.outlier_prob = total_rate / 4.0;
    profile.seed = seed;
    return profile;
}

uint64_t
FaultProfile::digest() const
{
    uint64_t hash = seed;
    for (double value : {compile_error_prob, timeout_prob,
                         runtime_error_prob, outlier_prob,
                         timeout_seconds}) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        hash = hashCombine(hash, bits);
    }
    return hash;
}

Measurer::Measurer(HardwarePlatform hw, MeasureOptions options,
                   uint64_t seed)
    : sim_(std::move(hw)), options_(options),
      platform_hash_(fnv1a(sim_.platform().name.data(),
                           sim_.platform().name.size())),
      rng_(hashCombine(seed, platform_hash_))
{
}

uint64_t
Measurer::faultKey(const sched::LoweredNest &nest) const
{
    return hashCombine(hashCombine(nest.fingerprint(), platform_hash_),
                       options_.faults.seed);
}

MeasureResult
Measurer::measure(const sched::LoweredNest &nest)
{
    const uint64_t key = faultKey(nest);
    ++count_;

    MeasureResult result;

    // Quarantined candidates are rejected without touching the hardware.
    auto quarantined_it = quarantined_.find(key);
    if (quarantined_it != quarantined_.end()) {
        result.status = quarantined_it->second;
        ++quarantine_hits_;
        status_counts_[static_cast<size_t>(result.status)] += 1;
        return result;
    }

    const FaultProfile &faults = options_.faults;

    // Compile errors are a property of the candidate, not the attempt:
    // the same program fails to build every time, so retrying is useless
    // and the candidate is quarantined immediately.
    if (faults.compile_error_prob > 0.0 &&
        hashUniform(hashCombine(key, 0xc0)) < faults.compile_error_prob) {
        result.status = MeasureStatus::CompileError;
        result.attempts = 1;
        result.seconds_spent =
            options_.seconds_per_measure * kCompileFraction;
        elapsed_seconds_ += result.seconds_spent;
        failure_seconds_ += result.seconds_spent;
        status_counts_[static_cast<size_t>(result.status)] += 1;
        quarantined_[key] = result.status;
        return result;
    }

    const int max_attempts = 1 + std::max(0, options_.max_retries);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        ++result.attempts;
        // Transient faults are drawn per attempt from the hash stream, so
        // outcomes replay identically but retries can succeed.
        const double draw = faults.enabled()
                                ? hashUniform(hashCombine(
                                      key, 0x100 + static_cast<uint64_t>(
                                                       attempt)))
                                : 1.0;
        if (draw < faults.timeout_prob) {
            result.status = MeasureStatus::Timeout;
            result.seconds_spent += faults.timeout_seconds;
            continue;
        }
        if (draw < faults.timeout_prob + faults.runtime_error_prob) {
            result.status = MeasureStatus::RuntimeError;
            result.seconds_spent += options_.seconds_per_measure;
            continue;
        }
        if (draw < faults.timeout_prob + faults.runtime_error_prob +
                       faults.outlier_prob) {
            result.status = MeasureStatus::Outlier;
            result.seconds_spent += options_.seconds_per_measure;
            continue;
        }

        // Successful run: noisy best-of-repeats around the simulator
        // latency. Failed attempts draw no noise, so the stream advances
        // only on success and a fault-free campaign reproduces the
        // historical label stream exactly.
        const double base = sim_.latencyMs(nest);
        double best = std::numeric_limits<double>::infinity();
        for (int r = 0; r < options_.repeats; ++r) {
            const double noisy =
                base * std::exp(rng_.normal(0.0, options_.noise_std));
            best = std::min(best, noisy);
        }
        result.status = MeasureStatus::Ok;
        result.latency_ms = best;
        result.seconds_spent += options_.seconds_per_measure;
        break;
    }

    elapsed_seconds_ += result.seconds_spent;
    status_counts_[static_cast<size_t>(result.status)] += 1;

    if (result.ok()) {
        failure_seconds_ +=
            result.seconds_spent - options_.seconds_per_measure;
        failure_streak_.erase(key);
    } else {
        failure_seconds_ += result.seconds_spent;
        const int streak = ++failure_streak_[key];
        if (streak >= std::max(1, options_.quarantine_after)) {
            quarantined_[key] = result.status;
            failure_streak_.erase(key);
        }
    }
    return result;
}

double
Measurer::measureMs(const sched::LoweredNest &nest)
{
    return measure(nest).latency_ms;
}

bool
Measurer::isQuarantined(const sched::LoweredNest &nest) const
{
    return quarantined_.count(faultKey(nest)) > 0;
}

void
Measurer::resetAccounting()
{
    elapsed_seconds_ = 0.0;
    failure_seconds_ = 0.0;
    count_ = 0;
    quarantine_hits_ = 0;
    status_counts_.fill(0);
}

void
Measurer::serializeState(BinaryWriter &writer) const
{
    rng_.serialize(writer);
    writer.writePod(elapsed_seconds_);
    writer.writePod(failure_seconds_);
    writer.writePod(count_);
    writer.writePod(quarantine_hits_);
    for (int64_t count : status_counts_)
        writer.writePod(count);
    writer.writePod<uint64_t>(failure_streak_.size());
    for (const auto &[key, streak] : failure_streak_) {
        writer.writePod(key);
        writer.writePod<int32_t>(streak);
    }
    writer.writePod<uint64_t>(quarantined_.size());
    for (const auto &[key, status] : quarantined_) {
        writer.writePod(key);
        writer.writePod<uint8_t>(static_cast<uint8_t>(status));
    }
}

void
Measurer::deserializeState(BinaryReader &reader)
{
    rng_ = Rng::deserialize(reader);
    elapsed_seconds_ = reader.readPod<double>();
    failure_seconds_ = reader.readPod<double>();
    count_ = reader.readPod<int64_t>();
    quarantine_hits_ = reader.readPod<int64_t>();
    for (auto &count : status_counts_)
        count = reader.readPod<int64_t>();
    failure_streak_.clear();
    const auto num_streaks = reader.readPod<uint64_t>();
    for (uint64_t i = 0; i < num_streaks; ++i) {
        const auto key = reader.readPod<uint64_t>();
        failure_streak_[key] = reader.readPod<int32_t>();
    }
    quarantined_.clear();
    const auto num_quarantined = reader.readPod<uint64_t>();
    for (uint64_t i = 0; i < num_quarantined; ++i) {
        const auto key = reader.readPod<uint64_t>();
        quarantined_[key] =
            static_cast<MeasureStatus>(reader.readPod<uint8_t>());
    }
}

} // namespace tlp::hw
