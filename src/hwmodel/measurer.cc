#include "hwmodel/measurer.h"

#include <algorithm>
#include <cmath>

namespace tlp::hw {

Measurer::Measurer(HardwarePlatform hw, MeasureOptions options,
                   uint64_t seed)
    : sim_(std::move(hw)), options_(options),
      rng_(hashCombine(seed, fnv1a(sim_.platform().name.data(),
                                   sim_.platform().name.size())))
{
}

double
Measurer::measureMs(const sched::LoweredNest &nest)
{
    const double base = sim_.latencyMs(nest);
    double best = 1e300;
    for (int r = 0; r < options_.repeats; ++r) {
        const double noisy =
            base * std::exp(rng_.normal(0.0, options_.noise_std));
        best = std::min(best, noisy);
    }
    elapsed_seconds_ += options_.seconds_per_measure;
    ++count_;
    return best;
}

void
Measurer::resetAccounting()
{
    elapsed_seconds_ = 0.0;
    count_ = 0;
}

} // namespace tlp::hw
