/**
 * @file
 * Measurement harness around the latency simulator.
 *
 * Mirrors the paper's description of on-hardware measurement: each
 * measurement compiles + loads + runs the program several times (hundreds
 * of milliseconds of wall clock per program), with run-to-run noise. The
 * Measurer adds that noise, takes the best of @p repeats, and accounts
 * the simulated wall-clock cost so the search-based benchmarks (Figs.
 * 11-13) can report search time.
 *
 * On real hardware, measurements fail constantly — Ansor carries an
 * explicit MeasureErrorNo taxonomy and TenSet records invalid runs. The
 * Measurer reproduces that failure surface with a deterministic fault
 * injector (FaultProfile): which fault class a candidate draws is a pure
 * function of (lowered-program fingerprint, platform, fault seed), never
 * of measurement order, so the simulator determinism invariant holds and
 * campaigns replay bit-identically. The run-to-run noise keeps its own
 * sequential stream (seeded per platform), which serializeState()
 * persists so a resumed campaign continues the stream exactly.
 * Transient faults (timeout, runtime error, outlier) are retried up to a
 * cap; compile errors are permanent and fail immediately; candidates
 * that keep failing are quarantined so the search stops burning wall
 * clock on them. Every attempt — successful or not — accrues
 * elapsedSeconds(), because failed measurements still cost search time.
 */
#pragma once

#include <array>
#include <limits>
#include <map>

#include "hwmodel/simulator.h"
#include "support/rng.h"
#include "support/serialize.h"

namespace tlp::hw {

/** Outcome classes of one measurement (Ansor's MeasureErrorNo, pruned). */
enum class MeasureStatus : uint8_t
{
    Ok = 0,         ///< valid latency obtained
    CompileError,   ///< candidate never builds (permanent)
    Timeout,        ///< run exceeded the watchdog (transient)
    RuntimeError,   ///< kernel crashed or device faulted (transient)
    Outlier,        ///< repeats disagreed wildly; latency discarded
    NumStatuses
};

/** Number of distinct measurement statuses. */
inline constexpr int kNumMeasureStatuses =
    static_cast<int>(MeasureStatus::NumStatuses);

/** Short status name, e.g. "timeout". */
std::string measureStatusName(MeasureStatus status);

/**
 * Deterministic fault injection profile.
 *
 * Each probability is the per-draw chance of that fault class. Draws are
 * derived by hashing (program fingerprint, platform, seed), never from a
 * sequential RNG, so whether a given candidate faults is independent of
 * measurement order. Compile errors are drawn once per candidate
 * (permanent); the transient classes are drawn per attempt, so retries
 * can succeed.
 */
struct FaultProfile
{
    double compile_error_prob = 0.0;
    double timeout_prob = 0.0;
    double runtime_error_prob = 0.0;
    double outlier_prob = 0.0;
    /** Wall clock burned by one timed-out run (the watchdog cap). */
    double timeout_seconds = 2.0;
    /** Seed of the fault draws (independent of the noise seed). */
    uint64_t seed = 0xfa17;

    /** True when any fault class has non-zero probability. */
    bool enabled() const;

    /** Split @p total_rate evenly over the four fault classes. */
    static FaultProfile uniform(double total_rate, uint64_t seed = 0xfa17);

    /** Mix the profile parameters into a config digest. */
    uint64_t digest() const;
};

/** Options of the measurement pipeline. */
struct MeasureOptions
{
    int repeats = 3;
    double noise_std = 0.02;          ///< relative run-to-run noise
    double seconds_per_measure = 0.25;///< compile+load+run wall clock
    FaultProfile faults;              ///< default: no faults injected
    int max_retries = 2;              ///< extra attempts for transient faults
    int quarantine_after = 3;         ///< failed calls before quarantine
};

/** Outcome of one measurement request. */
struct MeasureResult
{
    MeasureStatus status = MeasureStatus::Ok;
    /** Best-of-repeats latency; NaN unless status == Ok. */
    double latency_ms = std::numeric_limits<double>::quiet_NaN();
    /** Hardware attempts consumed (0 for a quarantine short-circuit). */
    int attempts = 0;
    /** Simulated wall clock consumed by this request. */
    double seconds_spent = 0.0;

    bool ok() const { return status == MeasureStatus::Ok; }
};

/** Simulated on-hardware measurer with fault injection. */
class Measurer
{
  public:
    Measurer(HardwarePlatform hw, MeasureOptions options = {},
             uint64_t seed = 0x5eed);

    const HardwarePlatform &platform() const { return sim_.platform(); }
    const LatencySimulator &simulator() const { return sim_; }
    const MeasureOptions &options() const { return options_; }

    /**
     * Measure @p nest with retries and quarantine. The fault class (ok
     * or which failure) is a pure function of (nest, platform, fault
     * seed) regardless of call order; a successful latency additionally
     * draws run-to-run noise from the measurer's sequential stream.
     */
    MeasureResult measure(const sched::LoweredNest &nest);

    /** Measure @p nest: latency in ms, NaN when the measurement failed. */
    double measureMs(const sched::LoweredNest &nest);

    /** Total simulated wall-clock seconds spent measuring so far. */
    double elapsedSeconds() const { return elapsed_seconds_; }

    /** Simulated seconds wasted on failed attempts (subset of elapsed). */
    double failureSeconds() const { return failure_seconds_; }

    /** Number of measurement requests performed. */
    int64_t count() const { return count_; }

    /** Final-status counts of all measure() calls, by MeasureStatus. */
    const std::array<int64_t, kNumMeasureStatuses> &
    statusCounts() const
    {
        return status_counts_;
    }

    /** Number of candidates currently quarantined. */
    int64_t quarantineSize() const
    {
        return static_cast<int64_t>(quarantined_.size());
    }

    /** True when @p nest has been quarantined. */
    bool isQuarantined(const sched::LoweredNest &nest) const;

    /** Number of measure() calls short-circuited by the quarantine. */
    int64_t quarantineHits() const { return quarantine_hits_; }

    /** Reset the wall-clock accounting (keeps quarantine state). */
    void resetAccounting();

    /**
     * Persist / restore the noise stream + accounting + quarantine state
     * (for checkpointed tuning sessions). The fault injector itself is
     * stateless, so this is all the state a resume needs.
     */
    void serializeState(BinaryWriter &writer) const;
    void deserializeState(BinaryReader &reader);

  private:
    /** Fault-draw key of @p nest on this platform. */
    uint64_t faultKey(const sched::LoweredNest &nest) const;

    LatencySimulator sim_;
    MeasureOptions options_;
    uint64_t platform_hash_;
    Rng rng_;
    double elapsed_seconds_ = 0.0;
    double failure_seconds_ = 0.0;
    int64_t count_ = 0;
    int64_t quarantine_hits_ = 0;
    std::array<int64_t, kNumMeasureStatuses> status_counts_{};
    /** fingerprint -> consecutive failed measure() calls. */
    std::map<uint64_t, int> failure_streak_;
    /** fingerprint -> status that caused the quarantine. */
    std::map<uint64_t, MeasureStatus> quarantined_;
};

} // namespace tlp::hw
