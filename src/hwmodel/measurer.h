/**
 * @file
 * Measurement harness around the latency simulator.
 *
 * Mirrors the paper's description of on-hardware measurement: each
 * measurement compiles + loads + runs the program several times (hundreds
 * of milliseconds of wall clock per program), with run-to-run noise. The
 * Measurer adds that noise, takes the best of @p repeats, and accounts
 * the simulated wall-clock cost so the search-based benchmarks (Figs.
 * 11-13) can report search time.
 */
#pragma once

#include "hwmodel/simulator.h"
#include "support/rng.h"

namespace tlp::hw {

/** Options of the measurement pipeline. */
struct MeasureOptions
{
    int repeats = 3;
    double noise_std = 0.02;          ///< relative run-to-run noise
    double seconds_per_measure = 0.25;///< compile+load+run wall clock
};

/** Simulated on-hardware measurer. */
class Measurer
{
  public:
    Measurer(HardwarePlatform hw, MeasureOptions options = {},
             uint64_t seed = 0x5eed);

    const HardwarePlatform &platform() const { return sim_.platform(); }
    const LatencySimulator &simulator() const { return sim_; }

    /** Measure @p nest: noisy best-of-repeats latency in ms. */
    double measureMs(const sched::LoweredNest &nest);

    /** Total simulated wall-clock seconds spent measuring so far. */
    double elapsedSeconds() const { return elapsed_seconds_; }

    /** Number of measurements performed. */
    int64_t count() const { return count_; }

    /** Reset the wall-clock accounting. */
    void resetAccounting();

  private:
    LatencySimulator sim_;
    MeasureOptions options_;
    Rng rng_;
    double elapsed_seconds_ = 0.0;
    int64_t count_ = 0;
};

} // namespace tlp::hw
