/**
 * @file
 * Parametric hardware platform models.
 *
 * The paper evaluates on five CPUs (Intel Platinum 8272CL, Intel E5-2673
 * v4, AMD EPYC 7452, ARM Graviton2, Intel i7-10510U) and two GPUs (NVIDIA
 * Tesla K80 and T4). We model each as a parameter vector: the analytic
 * latency simulator turns a lowered program plus one of these platforms
 * into a latency. Distinct parameter vectors produce distinct program
 * rankings — the "domain gap" that makes offline cost models unavailable
 * across hardware (Sec. 5.1) — which is the phenomenon MTL-TLP targets.
 */
#pragma once

#include <string>
#include <vector>

namespace tlp::hw {

/** Parameters of one hardware platform. */
struct HardwarePlatform
{
    std::string name;
    bool is_gpu = false;

    // --- CPU parameters ---
    int cores = 8;
    int vector_lanes = 8;            ///< f32 SIMD lanes
    double freq_ghz = 2.5;
    double flops_per_cycle = 2.0;    ///< scalar FMA throughput per core
    int64_t l1_bytes = 32 << 10;
    int64_t l2_bytes = 512 << 10;
    int64_t l3_bytes = 16 << 20;
    double l1_bw_gbs = 400.0;        ///< aggregate at full occupancy
    double l2_bw_gbs = 200.0;
    double l3_bw_gbs = 100.0;
    double dram_bw_gbs = 40.0;
    int64_t icache_bytes = 32 << 10;

    // --- GPU parameters ---
    int num_sms = 0;
    int max_threads_per_sm = 2048;
    int max_threads_per_block = 1024;
    int warp_size = 32;
    int64_t shared_mem_per_block = 48 << 10;
    double gpu_gflops = 0.0;
    double gmem_bw_gbs = 0.0;
    double smem_bw_gbs = 0.0;
    int64_t gpu_l2_bytes = 4 << 20;

    // --- per-platform systematic quirks (learnable) ---
    double parallel_overhead_us = 5.0;   ///< per-parallel-region cost
    double kernel_launch_us = 5.0;       ///< per-kernel cost (GPU)
    double unroll_sweet_spot = 64.0;     ///< preferred auto_unroll step
    uint64_t quirk_seed = 0;             ///< seeds deterministic wiggle

    /** Peak scalar GFLOP/s of one core. */
    double coreGflops() const { return freq_ghz * flops_per_cycle; }

    /** Build a named preset; fatal on unknown names. */
    static HardwarePlatform preset(const std::string &name);

    /** All preset names: 5 CPUs then 2 GPUs (paper Table 5 order). */
    static std::vector<std::string> presetNames();

    /** The CPU preset names. */
    static std::vector<std::string> cpuPresetNames();

    /** The GPU preset names. */
    static std::vector<std::string> gpuPresetNames();
};

} // namespace tlp::hw
