#include "hwmodel/simulator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/rng.h"
#include "support/str_util.h"

namespace tlp::hw {

using sched::Annotation;
using sched::ComputeLoc;
using sched::LoweredLoop;
using sched::LoweredNest;
using sched::LoweredStage;

namespace {

/** True for buffers that never round-trip to DRAM / global memory. */
bool
isSyntheticBuffer(const std::string &buffer)
{
    return endsWith(buffer, ".local") || endsWith(buffer, ".shared") ||
           endsWith(buffer, ".rf");
}

/** Total footprint in bytes of all accesses below loop @p depth. */
double
footprintBytesBelow(const LoweredStage &stage, int depth)
{
    const auto tiles = stage.tileExtentsBelow(depth);
    double bytes = 0.0;
    for (const auto &access : stage.spec.accesses) {
        bytes += static_cast<double>(access.footprintElems(tiles)) *
                 access.elem_bytes;
    }
    return bytes;
}

/** Smallest loop depth whose working set fits in @p capacity (or -1 if
 *  the whole stage fits; loops.size()-1 if only the innermost body). */
int
fitDepth(const LoweredStage &stage, double capacity)
{
    const int n = static_cast<int>(stage.loops.size());
    for (int d = -1; d < n; ++d) {
        if (footprintBytesBelow(stage, d) <= capacity)
            return d;
    }
    return n - 1;
}

/**
 * Bytes transferred through a cache of @p capacity: every tile that fits
 * below the fit depth is fetched once per execution of that depth.
 * Buffers accepted by @p include contribute; others are counted as
 * resident (they still consume capacity via fitDepth).
 */
template <typename Pred>
double
trafficBytes(const LoweredStage &stage, double capacity, Pred include)
{
    const int d = fitDepth(stage, capacity);
    const auto tiles = stage.tileExtentsBelow(d);
    const double trips = static_cast<double>(stage.iterationsDownTo(d));
    double bytes = 0.0;
    for (const auto &access : stage.spec.accesses) {
        if (!include(stage.resolveBuffer(access.buffer)))
            continue;
        bytes += trips *
                 static_cast<double>(access.footprintElems(tiles)) *
                 access.elem_bytes;
    }
    return bytes;
}

/** Innermost vectorize annotation: (lanes requested, is innermost). */
std::pair<int64_t, bool>
vectorInfo(const LoweredStage &stage)
{
    for (int q = static_cast<int>(stage.loops.size()) - 1; q >= 0; --q) {
        const LoweredLoop &loop = stage.loops[static_cast<size_t>(q)];
        if (loop.ann == Annotation::Vectorize) {
            return {loop.extent,
                    q == static_cast<int>(stage.loops.size()) - 1};
        }
    }
    return {1, false};
}

/** Original iterators appearing in the innermost (contiguous) dimension
 *  of each access of @p stage. */
std::set<int>
contiguousIters(const LoweredStage &stage)
{
    std::set<int> iters;
    for (const auto &access : stage.spec.accesses) {
        if (access.dims.empty())
            continue;
        for (const auto &[iter, coef] : access.dims.back().terms)
            if (coef == 1)
                iters.insert(iter);
    }
    return iters;
}

/**
 * True when the loop carrying @p ann spans a contiguous (unit-stride)
 * dimension of at least one buffer. SIMD lanes and coalesced warps both
 * need unit-stride access; hand-engineered feature summaries record the
 * vector length but not *which* dimension it spans.
 */
bool
annotationIsContiguous(const LoweredStage &stage, Annotation ann)
{
    const auto contiguous = contiguousIters(stage);
    for (const LoweredLoop &loop : stage.loops) {
        if (loop.ann != ann)
            continue;
        for (const auto &[orig, extent] : loop.coverage)
            if (contiguous.count(orig))
                return true;
        return false;
    }
    return true;   // no such loop: nothing to penalize
}

/**
 * Set-associativity aliasing: a buffer whose leading (row) stride is a
 * large power of two thrashes a physically indexed cache when a tile
 * spans many rows. Visible from the exact extents (TLP's features carry
 * them), invisible to per-statement summaries.
 */
double
aliasingPenalty(const LoweredStage &stage)
{
    for (const auto &access : stage.spec.accesses) {
        if (access.dims.size() < 2)
            continue;
        // Full extent of the innermost dimension = row length.
        int64_t row = 1;
        for (const auto &[iter, coef] : access.dims.back().terms) {
            row += coef * (stage.spec.iters
                               .at(static_cast<size_t>(iter))
                               .extent -
                           1);
        }
        const int64_t row_bytes = row * access.elem_bytes;
        if (row_bytes >= 4096 && (row_bytes & (row_bytes - 1)) == 0) {
            // Tile spanning multiple rows conflicts in the cache.
            const auto tiles = stage.tileExtentsBelow(
                static_cast<int>(stage.loops.size()) / 2);
            int64_t rows_spanned = 1;
            for (size_t d = 0; d + 1 < access.dims.size(); ++d)
                for (const auto &[iter, coef] : access.dims[d].terms)
                    rows_spanned *=
                        tiles.at(static_cast<size_t>(iter));
            if (rows_spanned >= 8)
                return 1.35;
        }
    }
    return 1.0;
}

/** Product of extents of loops with annotation @p ann. */
double
annotatedExtent(const LoweredStage &stage, Annotation ann)
{
    double product = 1.0;
    for (const LoweredLoop &loop : stage.loops)
        if (loop.ann == ann)
            product *= static_cast<double>(loop.extent);
    return product;
}

/** Walk the attach chain to the root stage index. */
int
rootOf(const LoweredNest &nest, int stage_index)
{
    int current = stage_index;
    int hops = 0;
    while (nest.stages[static_cast<size_t>(current)].loc ==
               ComputeLoc::At &&
           hops++ < 16) {
        current = nest.stages[static_cast<size_t>(current)].at_stage;
    }
    return current;
}

} // namespace

LatencySimulator::LatencySimulator(HardwarePlatform hw) : hw_(std::move(hw))
{
}

double
LatencySimulator::cpuStageTime(const LoweredNest &nest,
                               const LoweredStage &stage,
                               const StageExtras &extras,
                               double parallel) const
{
    // --- compute time ---
    const double points = static_cast<double>(stage.spec.totalPoints());
    const double iterations = static_cast<double>(stage.totalIterations());
    const double imperfect =
        points > 0 ? std::max(1.0, iterations / points) : 1.0;
    double flops = points * stage.spec.flops_per_point + extras.flops;
    flops = std::max(flops, points);   // at least one op per point

    // SIMD efficiency.
    const auto [vlen, innermost] = vectorInfo(stage);
    double simd = 1.0;
    if (vlen > 1) {
        const int64_t lanes = hw_.vector_lanes;
        simd = static_cast<double>(std::min<int64_t>(vlen, lanes));
        if (vlen > lanes && vlen % lanes != 0)
            simd *= 0.75;   // remainder loop
        if (!innermost)
            simd *= 0.5;    // strided vector access
        // Vector lanes only stream when the vectorized loop spans a
        // unit-stride buffer dimension; otherwise it's gather/scatter.
        if (!annotationIsContiguous(stage, Annotation::Vectorize))
            simd *= 0.35;
        simd = std::max(1.0, simd * 0.95);
    }

    // Loop overhead vs. unrolling; i-cache pressure past the sweet spot.
    const double u = static_cast<double>(stage.pragma_unroll);
    double overhead = 1.0 + 0.35 / (1.0 + u / 8.0);
    if (u > hw_.unroll_sweet_spot) {
        overhead *= 1.0 + 0.06 * std::log2(u / hw_.unroll_sweet_spot + 1.0);
    }

    // Parallel speedup with tail imbalance.
    double speedup = 1.0;
    if (parallel > 1.0) {
        const double cores = static_cast<double>(hw_.cores);
        const double chunks = std::ceil(parallel / cores);
        speedup = std::max(1.0, parallel / chunks);
    }

    const double core_flops = hw_.coreGflops() * 1e9;
    const double compute_time =
        flops * imperfect * overhead / (core_flops * simd * speedup);

    // --- memory time: capacity model at L2 / L3 / DRAM ---
    auto any_buffer = [](const std::string &) { return true; };
    auto dram_buffer = [](const std::string &buffer) {
        return !isSyntheticBuffer(buffer);
    };
    const double l2_traffic = trafficBytes(
        stage, static_cast<double>(hw_.l1_bytes) * 0.8, any_buffer);
    const double l3_traffic = trafficBytes(
        stage, static_cast<double>(hw_.l2_bytes) * 0.8, any_buffer);
    double dram_traffic = trafficBytes(
        stage, static_cast<double>(hw_.l3_bytes) * 0.8, dram_buffer);
    dram_traffic += extras.stream_bytes;

    const double alias = aliasingPenalty(stage);
    const double cache_frac =
        std::min(parallel, static_cast<double>(hw_.cores)) /
        static_cast<double>(hw_.cores);
    const double frac = std::max(cache_frac, 1.0 / hw_.cores);
    const double l2_time =
        alias * l2_traffic / (hw_.l1_bw_gbs * 1e9 * frac);
    const double l3_time =
        alias * l3_traffic / (hw_.l2_bw_gbs * 1e9 * frac);
    const double dram_time = dram_traffic / (hw_.dram_bw_gbs * 1e9);

    return std::max({compute_time, l2_time, l3_time, dram_time});
}

double
LatencySimulator::cpuGroupTime(const LoweredNest &nest, int root,
                               const std::vector<StageExtras> &extras) const
{
    const LoweredStage &root_stage =
        nest.stages[static_cast<size_t>(root)];

    double total = 0.0;
    bool has_parallel = false;
    for (const LoweredStage &stage : nest.stages) {
        if (stage.is_placeholder || stage.loc == ComputeLoc::Inlined)
            continue;
        if (rootOf(nest, stage.index) != root)
            continue;

        // Parallelism: the binding loops live on the stage itself or on
        // the consumer chain above the attach point.
        double parallel = annotatedExtent(stage, Annotation::Parallel);
        int cursor = stage.index;
        while (nest.stages[static_cast<size_t>(cursor)].loc ==
               ComputeLoc::At) {
            const LoweredStage &at =
                nest.stages[static_cast<size_t>(cursor)];
            const LoweredStage &target =
                nest.stages[static_cast<size_t>(at.at_stage)];
            for (int q = 0; q <= at.at_iter &&
                            q < static_cast<int>(target.loops.size());
                 ++q) {
                if (target.loops[static_cast<size_t>(q)].ann ==
                    Annotation::Parallel) {
                    parallel *= static_cast<double>(
                        target.loops[static_cast<size_t>(q)].extent);
                }
            }
            cursor = at.at_stage;
        }
        if (parallel > 1.0)
            has_parallel = true;
        total += cpuStageTime(nest, stage,
                              extras[static_cast<size_t>(stage.index)],
                              parallel);
    }
    if (has_parallel)
        total += hw_.parallel_overhead_us * 1e-6;
    (void)root_stage;
    return total;
}

double
LatencySimulator::gpuKernelTime(const LoweredNest &nest, int root,
                                const std::vector<StageExtras> &extras) const
{
    const LoweredStage &binder = nest.stages[static_cast<size_t>(root)];
    double grid = annotatedExtent(binder, Annotation::BlockX);
    double threads = annotatedExtent(binder, Annotation::ThreadX);
    double vthreads = annotatedExtent(binder, Annotation::VThread);
    grid = std::max(grid, 1.0);
    threads = std::max(threads, 1.0);
    vthreads = std::max(vthreads, 1.0);

    double total_flops = 0.0;
    double gmem_traffic = 0.0;
    double smem_traffic = 0.0;
    double shared_bytes_per_block = 0.0;
    double sync_penalty = 1.0;
    bool unaligned_shared = false;

    for (const LoweredStage &stage : nest.stages) {
        if (stage.is_placeholder || stage.loc == ComputeLoc::Inlined)
            continue;
        if (rootOf(nest, stage.index) != root)
            continue;
        const StageExtras &extra =
            extras[static_cast<size_t>(stage.index)];

        const double points =
            static_cast<double>(stage.spec.totalPoints());
        const double iterations =
            static_cast<double>(stage.totalIterations());
        const double imperfect =
            points > 0 ? std::max(1.0, iterations / points) : 1.0;
        double flops =
            std::max(points * stage.spec.flops_per_point + extra.flops,
                     points);
        total_flops += flops * imperfect;

        // Cross-thread reductions (threadIdx bound to a reduction loop).
        double local_threads = 1.0;
        for (const LoweredLoop &loop : stage.loops) {
            if (loop.ann == Annotation::ThreadX) {
                local_threads *= static_cast<double>(loop.extent);
                if (loop.is_reduction) {
                    sync_penalty = std::max(
                        sync_penalty,
                        1.0 + 0.05 * std::log2(
                                  static_cast<double>(loop.extent) + 1.0));
                }
            }
        }
        if (stage.index != root && local_threads > 1.0)
            threads = std::max(threads, local_threads);

        const bool is_shared_stage = endsWith(stage.name, ".shared");
        if (is_shared_stage) {
            // Cooperative staging: global traffic accounted through the
            // consumer's redirected access below.
            if (stage.storage_align == 0)
                unaligned_shared = true;
            continue;
        }

        // Global traffic via the L2 capacity model; shared/local buffers
        // are excluded from global memory. Warps whose threadIdx loop
        // does not span a unit-stride dimension fetch uncoalesced.
        auto gmem_buffer = [](const std::string &buffer) {
            return !isSyntheticBuffer(buffer);
        };
        double coalesce = 1.0;
        const LoweredStage &binding_stage =
            stage.loc == ComputeLoc::At ? binder : stage;
        if (!annotationIsContiguous(binding_stage, Annotation::ThreadX))
            coalesce = 3.0;
        gmem_traffic += coalesce *
                        trafficBytes(stage,
                                     static_cast<double>(
                                         hw_.gpu_l2_bytes) * 0.8,
                                     gmem_buffer);

        // Accesses resolved to .shared buffers: their source tensors are
        // fetched from global memory once per attach-loop execution, and
        // re-read from shared memory every point.
        for (const auto &access : stage.spec.accesses) {
            const std::string resolved =
                stage.resolveBuffer(access.buffer);
            if (!endsWith(resolved, ".shared"))
                continue;
            // Find the staging stage's attach depth within this stage.
            int attach_depth = 0;
            for (const LoweredStage &other : nest.stages) {
                if (other.name == resolved &&
                    other.loc == ComputeLoc::At &&
                    other.at_stage == stage.index) {
                    attach_depth = other.at_iter;
                }
            }
            const auto tiles = stage.tileExtentsBelow(attach_depth);
            const double tile_bytes =
                static_cast<double>(access.footprintElems(tiles)) *
                access.elem_bytes;
            gmem_traffic +=
                static_cast<double>(stage.iterationsDownTo(attach_depth)) *
                tile_bytes;
            shared_bytes_per_block += tile_bytes;
            smem_traffic += points * access.elem_bytes;
        }
    }

    // Occupancy and wave quantization.
    const double tpb = threads * vthreads;
    double blocks_per_sm = std::floor(
        static_cast<double>(hw_.max_threads_per_sm) / std::max(tpb, 1.0));
    blocks_per_sm = std::clamp(blocks_per_sm, 1.0, 16.0);
    const double sms = static_cast<double>(hw_.num_sms);
    const double waves = std::ceil(grid / (sms * blocks_per_sm));
    const double wave_eff =
        grid / std::max(1.0, waves * sms * blocks_per_sm);
    const double resident =
        std::min(grid, sms * blocks_per_sm) * std::max(tpb, 1.0);
    double occupancy = std::min(
        1.0, resident / (sms * static_cast<double>(hw_.max_threads_per_sm) *
                         0.5));
    if (static_cast<int64_t>(threads) % hw_.warp_size != 0)
        occupancy *= 0.7;

    double util = std::max(0.02, occupancy * std::max(wave_eff, 0.25));
    const double compute_time =
        total_flops * sync_penalty / (hw_.gpu_gflops * 1e9 * util);
    const double gmem_time = gmem_traffic / (hw_.gmem_bw_gbs * 1e9);
    double smem_time = smem_traffic / (hw_.smem_bw_gbs * 1e9);
    if (unaligned_shared)
        smem_time *= 1.2;

    double time = std::max({compute_time, gmem_time, smem_time});
    if (shared_bytes_per_block >
        static_cast<double>(hw_.shared_mem_per_block)) {
        time *= 10.0;   // spills: effectively an invalid schedule
    }
    return time;
}

double
LatencySimulator::wiggle(const LoweredNest &nest) const
{
    // Two residual components model what real measurements contain on
    // top of any roofline analysis:
    //
    // 1. A *systematic microarchitectural residual*: a smooth,
    //    platform-specific random function of the exact loop structure
    //    (random-feature sketch of the program -> fixed random 2-layer
    //    net seeded by the platform). Because it is a function of the
    //    full structure, a model that sees the full structure (TLP's
    //    primitive sequences) can learn it, while lossy per-statement
    //    summaries alias many programs onto the same features and see
    //    only noise. This is the mechanism behind the paper's claim
    //    that hand-engineered features "fall short in many cases".
    //
    // 2. A small irreducible hash noise (run-to-run structure nobody
    //    can learn), keeping top-1 scores below 1.0 for every model.
    constexpr int kSketch = 64;
    constexpr int kHiddenUnits = 24;
    double z[kSketch] = {0.0};
    uint64_t pure = hw_.quirk_seed;

    auto sketchAdd = [&](uint64_t key, double value) {
        const uint64_t slot = hashCombine(hw_.quirk_seed, key);
        // Signed random-feature bucket.
        const double sign = (slot >> 32) & 1 ? 1.0 : -1.0;
        z[slot % kSketch] += sign * value;
    };

    for (const LoweredStage &stage : nest.stages) {
        if (stage.is_placeholder)
            continue;
        const uint64_t stage_key =
            fnv1a(stage.name.data(), stage.name.size());
        sketchAdd(hashCombine(stage_key, 1),
                  std::log1p(static_cast<double>(stage.pragma_unroll)));
        sketchAdd(hashCombine(stage_key, 2),
                  static_cast<double>(stage.loc));
        pure = hashCombine(pure, stage_key);
        pure = hashCombine(pure, static_cast<uint64_t>(stage.pragma_unroll));
        for (size_t q = 0; q < stage.loops.size(); ++q) {
            const LoweredLoop &loop = stage.loops[q];
            const uint64_t loop_key = hashCombine(
                stage_key, hashCombine(q, static_cast<uint64_t>(loop.ann)));
            sketchAdd(loop_key,
                      std::log1p(static_cast<double>(loop.extent)));
            for (const auto &[orig, extent] : loop.coverage) {
                sketchAdd(hashCombine(loop_key,
                                      static_cast<uint64_t>(orig) + 17),
                          std::log1p(static_cast<double>(extent)));
            }
            pure = hashCombine(pure, static_cast<uint64_t>(loop.extent));
            pure = hashCombine(pure, static_cast<uint64_t>(loop.ann));
        }
    }

    // Fixed random two-layer net over the sketch.
    Rng wrng(hashCombine(hw_.quirk_seed, 0xfeedbeef));
    double hidden_acts[kHiddenUnits];
    for (int i = 0; i < kHiddenUnits; ++i) {
        double acc = 0.0;
        for (int j = 0; j < kSketch; ++j)
            acc += wrng.normal(0.0, 1.0 / 8.0) * z[j];
        hidden_acts[i] = std::tanh(acc);
    }
    double residual = 0.0;
    for (int i = 0; i < kHiddenUnits; ++i)
        residual += wrng.normal(0.0, 1.0) * hidden_acts[i];
    residual = std::tanh(residual / 3.0);   // in (-1, 1)

    Rng nrng(pure);
    return std::exp(0.22 * residual + nrng.normal(0.0, 0.02));
}

double
LatencySimulator::latencyMs(const LoweredNest &nest) const
{
    // Fold inlined stages into their consumers.
    std::vector<StageExtras> extras(nest.stages.size());
    for (const LoweredStage &stage : nest.stages) {
        if (stage.is_placeholder || stage.loc != ComputeLoc::Inlined)
            continue;
        // Find the stage reading this stage's buffer.
        int consumer = -1;
        for (const LoweredStage &other : nest.stages) {
            if (other.is_placeholder ||
                other.loc == ComputeLoc::Inlined ||
                other.index == stage.index) {
                continue;
            }
            for (const auto &access : other.spec.accesses) {
                if (!access.is_write &&
                    access.buffer == stage.name) {
                    consumer = other.index;
                    break;
                }
            }
            if (consumer >= 0)
                break;
        }
        if (consumer < 0)
            consumer = nest.stages.back().index;
        StageExtras &extra = extras[static_cast<size_t>(consumer)];
        const double points =
            static_cast<double>(stage.spec.totalPoints());
        extra.flops += points * stage.spec.flops_per_point;
        // Additional streamed operands (e.g. the residual side of an
        // inlined add) still come from memory.
        for (const auto &access : stage.spec.accesses) {
            if (access.is_write || access.buffer == stage.name)
                continue;
            const LoweredStage *producer = nullptr;
            for (const LoweredStage &other : nest.stages)
                if (other.name == access.buffer)
                    producer = &other;
            if (producer && producer->is_placeholder) {
                std::vector<int64_t> full;
                for (const auto &iter : stage.spec.iters)
                    full.push_back(iter.extent);
                extra.stream_bytes +=
                    static_cast<double>(access.footprintElems(full)) *
                    access.elem_bytes;
            }
        }
    }

    double total = 0.0;
    int kernels = 0;
    for (const LoweredStage &stage : nest.stages) {
        if (stage.is_placeholder || stage.loc != ComputeLoc::Root)
            continue;
        if (nest.is_gpu) {
            total += gpuKernelTime(nest, stage.index, extras);
            ++kernels;
        } else {
            total += cpuGroupTime(nest, stage.index, extras);
        }
    }
    // The structured residual applies to execution time only; kernel
    // launch overhead is a stable, deterministic cost.
    double latency = total * wiggle(nest);
    if (nest.is_gpu)
        latency += kernels * hw_.kernel_launch_us * 1e-6;
    return latency * 1e3;
}

} // namespace tlp::hw
