/**
 * @file
 * Network definitions (the "model zoo").
 *
 * The paper holds out five networks as the test set — ResNet-50,
 * MobileNet-V2, ResNeXt-50, BERT-tiny, and BERT-base (batch 1, image 224
 * or sequence length 128) — and trains on the remaining TenSet networks.
 * We mirror that: `testNetworkNames()` returns those five and
 * `trainNetworkNames()` returns a zoo of further classic architectures
 * whose subgraphs form the training distribution.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/graph.h"

namespace tlp::ir {

/** Build a network by name; fatal on unknown names. */
ComputeGraph buildNetwork(const std::string &name);

/** The five held-out evaluation networks (Sec. 6.1 of the paper). */
std::vector<std::string> testNetworkNames();

/** The training-zoo networks. */
std::vector<std::string> trainNetworkNames();

/** All networks (training zoo + test networks). */
std::vector<std::string> allNetworkNames();

// Individual builders (exposed for tests and examples).
ComputeGraph buildResNet(int depth, int64_t batch = 1);     ///< 18/34/50
ComputeGraph buildResNeXt50(int64_t batch = 1);
ComputeGraph buildMobileNetV2(int64_t batch = 1);
ComputeGraph buildVgg16(int64_t batch = 1);
ComputeGraph buildSqueezeNet(int64_t batch = 1);
ComputeGraph buildWideResNet(int64_t batch = 1);
ComputeGraph buildMlpMixer(int64_t batch = 1);
ComputeGraph buildBert(const std::string &name, int64_t layers,
                       int64_t hidden, int64_t heads, int64_t ff,
                       int64_t seq_len = 128);
ComputeGraph buildGpt2Lite(int64_t seq_len = 128);
ComputeGraph buildInceptionLite(int64_t batch = 1);

} // namespace tlp::ir
