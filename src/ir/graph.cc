#include "ir/graph.h"

namespace tlp::ir {

namespace {

/** Output spatial extent of a windowed op. */
int64_t
convOut(int64_t in, int64_t kernel, int64_t stride, int64_t pad)
{
    const int64_t out = (in + 2 * pad - kernel) / stride + 1;
    TLP_CHECK(out > 0, "window does not fit: in=", in, " k=", kernel,
              " s=", stride, " p=", pad);
    return out;
}

/** "same"-ish default padding for odd kernels. */
int64_t
defaultPad(int64_t kernel, int64_t pad)
{
    return pad >= 0 ? pad : kernel / 2;
}

} // namespace

ComputeGraph::ComputeGraph(std::string name) : name_(std::move(name)) {}

const OpNode &
ComputeGraph::node(NodeRef ref) const
{
    TLP_CHECK(ref.index >= 0 &&
                  ref.index < static_cast<int>(nodes_.size()),
              "bad node ref");
    return nodes_[static_cast<size_t>(ref.index)];
}

const TensorDesc &
ComputeGraph::desc(NodeRef ref) const
{
    return node(ref).out;
}

int64_t
ComputeGraph::totalFlops() const
{
    int64_t total = 0;
    for (const auto &n : nodes_)
        total += opFlops(n, inputDescs(n));
    return total;
}

NodeRef
ComputeGraph::append(OpNode node)
{
    nodes_.push_back(std::move(node));
    return NodeRef{static_cast<int>(nodes_.size()) - 1};
}

std::vector<TensorDesc>
ComputeGraph::inputDescs(const OpNode &node) const
{
    std::vector<TensorDesc> descs;
    descs.reserve(node.inputs.size());
    for (int idx : node.inputs)
        descs.push_back(nodes_.at(static_cast<size_t>(idx)).out);
    return descs;
}

NodeRef
ComputeGraph::input(const Shape &shape, DataType dtype)
{
    OpNode node;
    node.kind = OpKind::Input;
    node.out = TensorDesc{shape, dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::constant(const Shape &shape, DataType dtype)
{
    OpNode node;
    node.kind = OpKind::Constant;
    node.out = TensorDesc{shape, dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::dense(NodeRef x, int64_t units)
{
    // Copied, not referenced: the constant() call below appends to
    // nodes_ and may reallocate it, invalidating references into it.
    const TensorDesc in = desc(x);
    TLP_CHECK(in.shape.size() == 2, "dense expects a rank-2 input, got ",
              shapeToString(in.shape));
    NodeRef weight = constant({units, in.shape[1]}, in.dtype);
    OpNode node;
    node.kind = OpKind::Dense;
    node.inputs = {x.index, weight.index};
    node.attrs["units"] = units;
    node.out = TensorDesc{{in.shape[0], units}, in.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::conv2d(NodeRef x, int64_t out_channels, int64_t kernel,
                     int64_t stride, int64_t pad)
{
    // Copied, not referenced: the constant() call below appends to
    // nodes_ and may reallocate it, invalidating references into it.
    const TensorDesc in = desc(x);
    TLP_CHECK(in.shape.size() == 4, "conv2d expects NCHW");
    pad = defaultPad(kernel, pad);
    NodeRef weight =
        constant({out_channels, in.shape[1], kernel, kernel}, in.dtype);
    OpNode node;
    node.kind = OpKind::Conv2d;
    node.inputs = {x.index, weight.index};
    node.attrs["kernel"] = kernel;
    node.attrs["stride"] = stride;
    node.attrs["pad"] = pad;
    node.out = TensorDesc{{in.shape[0], out_channels,
                           convOut(in.shape[2], kernel, stride, pad),
                           convOut(in.shape[3], kernel, stride, pad)},
                          in.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::depthwiseConv2d(NodeRef x, int64_t kernel, int64_t stride,
                              int64_t pad)
{
    // Copied, not referenced: the constant() call below appends to
    // nodes_ and may reallocate it, invalidating references into it.
    const TensorDesc in = desc(x);
    TLP_CHECK(in.shape.size() == 4, "dwconv2d expects NCHW");
    pad = defaultPad(kernel, pad);
    NodeRef weight = constant({in.shape[1], 1, kernel, kernel}, in.dtype);
    OpNode node;
    node.kind = OpKind::DepthwiseConv2d;
    node.inputs = {x.index, weight.index};
    node.attrs["kernel"] = kernel;
    node.attrs["stride"] = stride;
    node.attrs["pad"] = pad;
    node.out = TensorDesc{{in.shape[0], in.shape[1],
                           convOut(in.shape[2], kernel, stride, pad),
                           convOut(in.shape[3], kernel, stride, pad)},
                          in.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::groupConv2d(NodeRef x, int64_t out_channels, int64_t kernel,
                          int64_t groups, int64_t stride, int64_t pad)
{
    // Copied, not referenced: the constant() call below appends to
    // nodes_ and may reallocate it, invalidating references into it.
    const TensorDesc in = desc(x);
    TLP_CHECK(in.shape.size() == 4, "gconv2d expects NCHW");
    TLP_CHECK(in.shape[1] % groups == 0 && out_channels % groups == 0,
              "channels not divisible by groups");
    pad = defaultPad(kernel, pad);
    NodeRef weight = constant(
        {out_channels, in.shape[1] / groups, kernel, kernel}, in.dtype);
    OpNode node;
    node.kind = OpKind::GroupConv2d;
    node.inputs = {x.index, weight.index};
    node.attrs["kernel"] = kernel;
    node.attrs["stride"] = stride;
    node.attrs["pad"] = pad;
    node.attrs["groups"] = groups;
    node.out = TensorDesc{{in.shape[0], out_channels,
                           convOut(in.shape[2], kernel, stride, pad),
                           convOut(in.shape[3], kernel, stride, pad)},
                          in.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::batchMatmul(NodeRef a, NodeRef b)
{
    const TensorDesc &da = desc(a);
    const TensorDesc &db = desc(b);
    TLP_CHECK(da.shape.size() == 3 && db.shape.size() == 3,
              "batch_matmul expects rank-3 inputs");
    TLP_CHECK(da.shape[0] == db.shape[0], "batch mismatch");
    TLP_CHECK(da.shape[2] == db.shape[1], "contraction mismatch: ",
              shapeToString(da.shape), " x ", shapeToString(db.shape));
    OpNode node;
    node.kind = OpKind::BatchMatmul;
    node.inputs = {a.index, b.index};
    node.out = TensorDesc{{da.shape[0], da.shape[1], db.shape[2]}, da.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::maxPool2d(NodeRef x, int64_t kernel, int64_t stride)
{
    const TensorDesc &in = desc(x);
    TLP_CHECK(in.shape.size() == 4, "pool expects NCHW");
    const int64_t pad = (kernel - 1) / 2;
    OpNode node;
    node.kind = OpKind::MaxPool2d;
    node.inputs = {x.index};
    node.attrs["kernel"] = kernel;
    node.attrs["stride"] = stride;
    node.attrs["pad"] = pad;
    node.out = TensorDesc{{in.shape[0], in.shape[1],
                           convOut(in.shape[2], kernel, stride, pad),
                           convOut(in.shape[3], kernel, stride, pad)},
                          in.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::avgPool2d(NodeRef x, int64_t kernel, int64_t stride)
{
    NodeRef ref = maxPool2d(x, kernel, stride);
    nodes_.back().kind = OpKind::AvgPool2d;
    return ref;
}

NodeRef
ComputeGraph::globalAvgPool(NodeRef x)
{
    const TensorDesc &in = desc(x);
    TLP_CHECK(in.shape.size() == 4, "global pool expects NCHW");
    OpNode node;
    node.kind = OpKind::GlobalAvgPool;
    node.inputs = {x.index};
    node.out = TensorDesc{{in.shape[0], in.shape[1]}, in.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::softmax(NodeRef x)
{
    OpNode node;
    node.kind = OpKind::Softmax;
    node.inputs = {x.index};
    node.out = desc(x);
    return append(std::move(node));
}

NodeRef
ComputeGraph::reduceMean(NodeRef x)
{
    const TensorDesc &in = desc(x);
    TLP_CHECK(in.shape.size() >= 2, "reduce_mean expects rank >= 2");
    Shape out_shape(in.shape.begin(), in.shape.end() - 1);
    OpNode node;
    node.kind = OpKind::ReduceMean;
    node.inputs = {x.index};
    node.out = TensorDesc{out_shape, in.dtype};
    return append(std::move(node));
}

NodeRef
ComputeGraph::add(NodeRef a, NodeRef b)
{
    TLP_CHECK(desc(a).shape == desc(b).shape, "add shape mismatch: ",
              shapeToString(desc(a).shape), " vs ",
              shapeToString(desc(b).shape));
    OpNode node;
    node.kind = OpKind::Add;
    node.inputs = {a.index, b.index};
    node.out = desc(a);
    return append(std::move(node));
}

NodeRef
ComputeGraph::multiply(NodeRef a, NodeRef b)
{
    TLP_CHECK(desc(a).shape == desc(b).shape, "multiply shape mismatch");
    OpNode node;
    node.kind = OpKind::Multiply;
    node.inputs = {a.index, b.index};
    node.out = desc(a);
    return append(std::move(node));
}

NodeRef
ComputeGraph::biasAdd(NodeRef x)
{
    // Copied, not referenced: the constant() call below appends to
    // nodes_ and may reallocate it, invalidating references into it.
    const TensorDesc in = desc(x);
    const int64_t channels =
        in.shape.size() == 4 ? in.shape[1] : in.shape.back();
    NodeRef bias = constant({channels}, in.dtype);
    OpNode node;
    node.kind = OpKind::BiasAdd;
    node.inputs = {x.index, bias.index};
    node.out = in;
    return append(std::move(node));
}

namespace {

OpNode
unaryNode(OpKind kind, NodeRef x, const TensorDesc &out)
{
    OpNode node;
    node.kind = kind;
    node.inputs = {x.index};
    node.out = out;
    return node;
}

} // namespace

NodeRef
ComputeGraph::relu(NodeRef x)
{
    return append(unaryNode(OpKind::ReLU, x, desc(x)));
}

NodeRef
ComputeGraph::gelu(NodeRef x)
{
    return append(unaryNode(OpKind::GELU, x, desc(x)));
}

NodeRef
ComputeGraph::tanhOp(NodeRef x)
{
    return append(unaryNode(OpKind::Tanh, x, desc(x)));
}

NodeRef
ComputeGraph::sigmoid(NodeRef x)
{
    return append(unaryNode(OpKind::Sigmoid, x, desc(x)));
}

NodeRef
ComputeGraph::batchNorm(NodeRef x)
{
    return append(unaryNode(OpKind::BatchNormInfer, x, desc(x)));
}

NodeRef
ComputeGraph::layerNorm(NodeRef x)
{
    return append(unaryNode(OpKind::LayerNorm, x, desc(x)));
}

NodeRef
ComputeGraph::clip(NodeRef x, int64_t lo, int64_t hi)
{
    OpNode node = unaryNode(OpKind::Clip, x, desc(x));
    node.attrs["lo"] = lo;
    node.attrs["hi"] = hi;
    return append(std::move(node));
}

NodeRef
ComputeGraph::reshape(NodeRef x, const Shape &new_shape)
{
    TLP_CHECK(numElements(new_shape) == numElements(desc(x).shape),
              "reshape changes element count");
    OpNode node = unaryNode(OpKind::Reshape, x, desc(x));
    node.out.shape = new_shape;
    return append(std::move(node));
}

NodeRef
ComputeGraph::transpose2d(NodeRef x)
{
    const TensorDesc &in = desc(x);
    TLP_CHECK(in.shape.size() >= 2, "transpose2d expects rank >= 2");
    Shape out_shape = in.shape;
    std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);
    OpNode node = unaryNode(OpKind::Transpose2d, x, in);
    node.out.shape = out_shape;
    return append(std::move(node));
}

} // namespace tlp::ir
