/**
 * @file
 * Fusion partitioner: networks -> deduplicated fused subgraphs.
 *
 * Mirrors the fusion pass of deep-learning compilers (Fig. 1 of the TLP
 * paper): anchor operators open a group, downstream fusable elementwise /
 * injective ops join their producer's group, and groups are deduplicated
 * by canonical key with occurrence counts kept as weights.
 */
#pragma once

#include "ir/graph.h"
#include "ir/subgraph.h"

namespace tlp::ir {

/** Partitioning knobs. */
struct PartitionOptions
{
    /** Maximum number of ops fused into one group (excluding inputs). */
    int max_group_ops = 6;
    /** Drop zero-FLOP subgraphs (pure reshape/transpose chains). */
    bool drop_trivial = true;
};

/** Partition @p graph into a Workload of deduplicated subgraphs. */
Workload partitionGraph(const ComputeGraph &graph,
                        const PartitionOptions &options = {});

} // namespace tlp::ir
