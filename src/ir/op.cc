#include "ir/op.h"

#include <sstream>

namespace tlp::ir {

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Input:           return "input";
      case OpKind::Constant:        return "const";
      case OpKind::Dense:           return "dense";
      case OpKind::Conv2d:          return "conv2d";
      case OpKind::DepthwiseConv2d: return "dwconv2d";
      case OpKind::GroupConv2d:     return "gconv2d";
      case OpKind::BatchMatmul:     return "batch_matmul";
      case OpKind::MaxPool2d:       return "max_pool2d";
      case OpKind::AvgPool2d:       return "avg_pool2d";
      case OpKind::GlobalAvgPool:   return "global_avg_pool";
      case OpKind::Softmax:         return "softmax";
      case OpKind::ReduceMean:      return "reduce_mean";
      case OpKind::Add:             return "add";
      case OpKind::Multiply:        return "multiply";
      case OpKind::BiasAdd:         return "bias_add";
      case OpKind::ReLU:            return "relu";
      case OpKind::GELU:            return "gelu";
      case OpKind::Tanh:            return "tanh";
      case OpKind::Sigmoid:         return "sigmoid";
      case OpKind::BatchNormInfer:  return "batch_norm";
      case OpKind::LayerNorm:       return "layer_norm";
      case OpKind::Clip:            return "clip";
      case OpKind::Reshape:         return "reshape";
      case OpKind::Transpose2d:     return "transpose2d";
      case OpKind::NumKinds:        break;
    }
    TLP_PANIC("unknown op kind");
}

bool
isHeavyAnchor(OpKind kind)
{
    switch (kind) {
      case OpKind::Dense:
      case OpKind::Conv2d:
      case OpKind::DepthwiseConv2d:
      case OpKind::GroupConv2d:
      case OpKind::BatchMatmul:
        return true;
      default:
        return false;
    }
}

bool
isMediumAnchor(OpKind kind)
{
    switch (kind) {
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
      case OpKind::GlobalAvgPool:
      case OpKind::Softmax:
      case OpKind::ReduceMean:
        return true;
      default:
        return false;
    }
}

bool
isFusable(OpKind kind)
{
    switch (kind) {
      case OpKind::Add:
      case OpKind::Multiply:
      case OpKind::BiasAdd:
      case OpKind::ReLU:
      case OpKind::GELU:
      case OpKind::Tanh:
      case OpKind::Sigmoid:
      case OpKind::BatchNormInfer:
      case OpKind::LayerNorm:
      case OpKind::Clip:
      case OpKind::Reshape:
      case OpKind::Transpose2d:
        return true;
      default:
        return false;
    }
}

int64_t
OpNode::attr(const std::string &name, int64_t fallback) const
{
    auto it = attrs.find(name);
    return it == attrs.end() ? fallback : it->second;
}

std::string
OpNode::toString() const
{
    std::ostringstream os;
    os << opKindName(kind);
    for (const auto &[name, value] : attrs)
        os << ' ' << name << value;
    os << ' ' << shapeToString(out.shape);
    return os.str();
}

void
OpNode::serialize(BinaryWriter &writer) const
{
    writer.writePod<uint8_t>(static_cast<uint8_t>(kind));
    writer.writeVector(inputs);
    writer.writePod<uint32_t>(static_cast<uint32_t>(attrs.size()));
    for (const auto &[name, value] : attrs) {
        writer.writeString(name);
        writer.writePod(value);
    }
    writer.writeVector(out.shape);
    writer.writePod<uint8_t>(static_cast<uint8_t>(out.dtype));
}

OpNode
OpNode::deserialize(BinaryReader &reader)
{
    OpNode node;
    const auto raw_kind = reader.readPod<uint8_t>();
    if (raw_kind >= static_cast<uint8_t>(OpKind::NumKinds)) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid op kind " + std::to_string(raw_kind));
    }
    node.kind = static_cast<OpKind>(raw_kind);
    node.inputs = reader.readVector<int>();
    const auto attr_count = reader.readPod<uint32_t>();
    // Every attr costs >= 16 stream bytes (name length + value).
    if (attr_count > reader.remaining() / 16) {
        throw SerializeError(ErrorCode::Truncated,
                             "op attr count " + std::to_string(attr_count) +
                                 " exceeds the remaining stream");
    }
    for (uint32_t i = 0; i < attr_count; ++i) {
        std::string name = reader.readString();
        node.attrs[name] = reader.readPod<int64_t>();
    }
    node.out.shape = reader.readVector<int64_t>();
    const auto raw_dtype = reader.readPod<uint8_t>();
    if (raw_dtype > static_cast<uint8_t>(DataType::Int8)) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid dtype " + std::to_string(raw_dtype));
    }
    node.out.dtype = static_cast<DataType>(raw_dtype);
    return node;
}

int64_t
opFlops(const OpNode &node, const std::vector<TensorDesc> &input_descs)
{
    const int64_t out_elems = numElements(node.out.shape);
    switch (node.kind) {
      case OpKind::Input:
      case OpKind::Constant:
      case OpKind::Reshape:
      case OpKind::Transpose2d:
        return 0;
      case OpKind::Dense: {
        const int64_t k = input_descs.at(0).shape.back();
        return 2 * out_elems * k;
      }
      case OpKind::BatchMatmul: {
        const int64_t k = input_descs.at(0).shape.back();
        return 2 * out_elems * k;
      }
      case OpKind::Conv2d:
      case OpKind::GroupConv2d: {
        const int64_t kernel = node.attr("kernel", 1);
        const int64_t groups = node.attr("groups", 1);
        const int64_t in_c = input_descs.at(0).shape.at(1);
        return 2 * out_elems * kernel * kernel * (in_c / groups);
      }
      case OpKind::DepthwiseConv2d: {
        const int64_t kernel = node.attr("kernel", 1);
        return 2 * out_elems * kernel * kernel;
      }
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d: {
        const int64_t kernel = node.attr("kernel", 1);
        return out_elems * kernel * kernel;
      }
      case OpKind::GlobalAvgPool: {
        const Shape &in = input_descs.at(0).shape;
        return numElements(in);
      }
      case OpKind::Softmax:
      case OpKind::ReduceMean:
      case OpKind::LayerNorm:
        // A handful of passes over the input.
        return 4 * numElements(input_descs.at(0).shape);
      case OpKind::GELU:
      case OpKind::Tanh:
      case OpKind::Sigmoid:
        // Transcendental: count several flops per element.
        return 8 * out_elems;
      default:
        return out_elems;
    }
}

} // namespace tlp::ir
