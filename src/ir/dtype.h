/**
 * @file
 * Scalar data types and tensor shapes for the compute-graph IR.
 */
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "support/logging.h"

namespace tlp::ir {

/** Element type of a tensor. */
enum class DataType : uint8_t { Float32 = 0, Float16 = 1, Int32 = 2, Int8 = 3 };

/** Bytes per element of @p dtype. */
int dtypeBytes(DataType dtype);

/** Human-readable name, e.g. "f32". */
std::string dtypeName(DataType dtype);

/** A tensor shape: a list of positive extents. */
using Shape = std::vector<int64_t>;

/** Total element count of @p shape (1 for rank-0). */
int64_t numElements(const Shape &shape);

/** Render e.g. "[1, 64, 56, 56]". */
std::string shapeToString(const Shape &shape);

/** Descriptor of a tensor value flowing through the graph. */
struct TensorDesc
{
    Shape shape;
    DataType dtype = DataType::Float32;

    /** Total bytes of the tensor. */
    int64_t bytes() const { return numElements(shape) * dtypeBytes(dtype); }

    bool operator==(const TensorDesc &other) const = default;
};

} // namespace tlp::ir
