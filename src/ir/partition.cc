#include "ir/partition.h"

#include <map>

namespace tlp::ir {

namespace {

/** Mutable fusion group being assembled. */
struct Group
{
    std::vector<int> node_indices;   // indices into the source graph
    int anchor_local = -1;           // index within node_indices
    int tail = -1;                   // graph index of the last op (its output)
    int op_count = 0;                // non-input ops in the group
};

} // namespace

Workload
partitionGraph(const ComputeGraph &graph, const PartitionOptions &options)
{
    const auto &nodes = graph.nodes();
    std::vector<int> group_of(nodes.size(), -1);
    std::vector<Group> groups;

    auto startGroup = [&](int node_idx, bool is_anchor) {
        Group group;
        group.node_indices.push_back(node_idx);
        group.anchor_local = is_anchor ? 0 : -1;
        group.tail = node_idx;
        group.op_count = 1;
        group_of[static_cast<size_t>(node_idx)] =
            static_cast<int>(groups.size());
        groups.push_back(std::move(group));
    };

    for (size_t i = 0; i < nodes.size(); ++i) {
        const OpNode &node = nodes[i];
        if (node.kind == OpKind::Input || node.kind == OpKind::Constant)
            continue;

        if (isHeavyAnchor(node.kind) || isMediumAnchor(node.kind)) {
            startGroup(static_cast<int>(i), true);
            continue;
        }

        // Fusable op: try to join the group whose tail feeds it.
        int join = -1;
        for (int input : node.inputs) {
            const OpNode &producer = nodes[static_cast<size_t>(input)];
            if (producer.kind == OpKind::Input ||
                producer.kind == OpKind::Constant) {
                continue;
            }
            const int g = group_of[static_cast<size_t>(input)];
            if (g >= 0 && groups[static_cast<size_t>(g)].tail == input &&
                groups[static_cast<size_t>(g)].op_count <
                    options.max_group_ops) {
                join = g;
                break;
            }
        }
        if (join >= 0) {
            Group &group = groups[static_cast<size_t>(join)];
            group.node_indices.push_back(static_cast<int>(i));
            group.tail = static_cast<int>(i);
            group.op_count += 1;
            group_of[i] = join;
        } else {
            startGroup(static_cast<int>(i), false);
        }
    }

    // Convert groups to subgraphs: remap indices, inserting Input nodes
    // for any out-of-group operands.
    std::map<std::string, size_t> dedup;   // key -> index in workload
    Workload workload;
    workload.name = graph.name();

    for (const Group &group : groups) {
        std::vector<OpNode> local_ops;
        std::map<int, int> local_index;   // graph index -> local index

        auto ensureLocal = [&](int graph_idx) -> int {
            auto it = local_index.find(graph_idx);
            if (it != local_index.end())
                return it->second;
            // Materialize an Input or Constant placeholder.
            const OpNode &src = nodes[static_cast<size_t>(graph_idx)];
            OpNode placeholder;
            placeholder.kind = src.kind == OpKind::Constant
                                   ? OpKind::Constant
                                   : OpKind::Input;
            placeholder.out = src.out;
            local_ops.push_back(std::move(placeholder));
            const int local = static_cast<int>(local_ops.size()) - 1;
            local_index[graph_idx] = local;
            return local;
        };

        int anchor_local_final = -1;
        for (size_t pos = 0; pos < group.node_indices.size(); ++pos) {
            const int graph_idx = group.node_indices[pos];
            const OpNode &src = nodes[static_cast<size_t>(graph_idx)];
            OpNode copy = src;
            copy.inputs.clear();
            for (int input : src.inputs) {
                const int g = group_of[static_cast<size_t>(input)];
                const bool in_group =
                    g >= 0 &&
                    &groups[static_cast<size_t>(g)] == &group &&
                    local_index.count(input) > 0;
                copy.inputs.push_back(in_group ? local_index[input]
                                               : ensureLocal(input));
            }
            local_ops.push_back(std::move(copy));
            const int local = static_cast<int>(local_ops.size()) - 1;
            local_index[graph_idx] = local;
            if (static_cast<int>(pos) == group.anchor_local)
                anchor_local_final = local;
        }

        Subgraph subgraph(std::move(local_ops), anchor_local_final);
        if (options.drop_trivial && subgraph.flops() == 0)
            continue;

        auto it = dedup.find(subgraph.key());
        if (it != dedup.end()) {
            workload.weights[it->second] += 1;
        } else {
            dedup[subgraph.key()] = workload.subgraphs.size();
            workload.subgraphs.push_back(
                std::make_shared<Subgraph>(std::move(subgraph)));
            workload.weights.push_back(1);
        }
    }

    return workload;
}

} // namespace tlp::ir
