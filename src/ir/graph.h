/**
 * @file
 * Compute graphs and the builder API used by the model zoo.
 *
 * A ComputeGraph is a topologically ordered list of OpNodes. The builder
 * methods perform shape inference and validation as nodes are appended, so
 * the zoo code reads like a network definition.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/op.h"

namespace tlp::ir {

/** Handle to a node inside a ComputeGraph. */
struct NodeRef
{
    int index = -1;
};

/** A whole-network compute graph plus the builder API. */
class ComputeGraph
{
  public:
    /** @param name network name, e.g. "resnet-50". */
    explicit ComputeGraph(std::string name);

    const std::string &name() const { return name_; }
    const std::vector<OpNode> &nodes() const { return nodes_; }
    const OpNode &node(NodeRef ref) const;

    /** Descriptor of a node's output tensor. */
    const TensorDesc &desc(NodeRef ref) const;

    /** Total FLOPs of the network. */
    int64_t totalFlops() const;

    // --- builder API (all perform shape inference) ---

    /** Add a graph input with the given shape. */
    NodeRef input(const Shape &shape, DataType dtype = DataType::Float32);

    /** Add a constant (weights); shape only, no data. */
    NodeRef constant(const Shape &shape, DataType dtype = DataType::Float32);

    /** Fully connected: x [b, k] -> [b, units] (weight created inside). */
    NodeRef dense(NodeRef x, int64_t units);

    /** NCHW conv2d with square kernel. */
    NodeRef conv2d(NodeRef x, int64_t out_channels, int64_t kernel,
                   int64_t stride = 1, int64_t pad = -1);

    /** Depthwise conv2d with square kernel. */
    NodeRef depthwiseConv2d(NodeRef x, int64_t kernel, int64_t stride = 1,
                            int64_t pad = -1);

    /** Grouped conv2d. */
    NodeRef groupConv2d(NodeRef x, int64_t out_channels, int64_t kernel,
                        int64_t groups, int64_t stride = 1, int64_t pad = -1);

    /** Batched matmul: a [b, m, k] x b [b, k, n]. */
    NodeRef batchMatmul(NodeRef a, NodeRef b);

    /** Pooling (square window). */
    NodeRef maxPool2d(NodeRef x, int64_t kernel, int64_t stride);
    NodeRef avgPool2d(NodeRef x, int64_t kernel, int64_t stride);
    NodeRef globalAvgPool(NodeRef x);

    /** Reductions over the last axis. */
    NodeRef softmax(NodeRef x);
    NodeRef reduceMean(NodeRef x);

    /** Elementwise / injective. */
    NodeRef add(NodeRef a, NodeRef b);
    NodeRef multiply(NodeRef a, NodeRef b);
    NodeRef biasAdd(NodeRef x);
    NodeRef relu(NodeRef x);
    NodeRef gelu(NodeRef x);
    NodeRef tanhOp(NodeRef x);
    NodeRef sigmoid(NodeRef x);
    NodeRef batchNorm(NodeRef x);
    NodeRef layerNorm(NodeRef x);
    NodeRef clip(NodeRef x, int64_t lo, int64_t hi);

    /** Shape ops. */
    NodeRef reshape(NodeRef x, const Shape &new_shape);
    NodeRef transpose2d(NodeRef x);

  private:
    NodeRef append(OpNode node);
    std::vector<TensorDesc> inputDescs(const OpNode &node) const;

    std::string name_;
    std::vector<OpNode> nodes_;
};

} // namespace tlp::ir
