/**
 * @file
 * Iteration-space descriptions of subgraph operators.
 *
 * Every schedulable op exposes a LoopSpec: its loop iterators (spatial and
 * reduction) plus affine access patterns for each buffer it touches. The
 * scheduler builds its initial State from LoopSpecs, and the hardware
 * latency model evaluates tile footprints through the access patterns.
 *
 * An access dimension is the affine form  extent(dim) = Σ coef·(tile_i-1)+1
 * over iterator tile extents, which captures both plain indexing (coef 1)
 * and strided/windowed indexing (conv input rows: stride·oh + rh).
 */
#pragma once

#include <string>
#include <vector>

#include "ir/subgraph.h"

namespace tlp::ir {

/** One loop iterator of an op's compute definition. */
struct IterSpec
{
    std::string name;      ///< e.g. "i", "oc", "rh"
    int64_t extent = 1;
    bool is_reduction = false;
};

/** One dimension of a buffer access: affine terms (iter index, coef). */
struct AccessDim
{
    std::vector<std::pair<int, int64_t>> terms;
};

/** A buffer touched by the op. */
struct AccessSpec
{
    std::string buffer;    ///< producing node's buffer name
    int elem_bytes = 4;
    bool is_write = false;
    std::vector<AccessDim> dims;

    /** Elements touched when iterator @p i spans tile extent tiles[i]. */
    int64_t footprintElems(const std::vector<int64_t> &tile_extents) const;
};

/** Complete loop description of one op. */
struct LoopSpec
{
    std::vector<IterSpec> iters;
    std::vector<AccessSpec> accesses;
    /** FLOPs executed per innermost iteration point. */
    double flops_per_point = 1.0;

    /** Indices of spatial iterators in order. */
    std::vector<int> spatialIters() const;

    /** Indices of reduction iterators in order. */
    std::vector<int> reductionIters() const;

    /** Product of all iterator extents. */
    int64_t totalPoints() const;
};

/** Name of the buffer produced by local op @p index of @p subgraph. */
std::string bufferName(const Subgraph &subgraph, int index);

/**
 * Loop description of op @p op_index within @p subgraph.
 * Placeholders (Input/Constant) yield an empty spec.
 */
LoopSpec describeLoops(const Subgraph &subgraph, int op_index);

} // namespace tlp::ir
