#include "ir/dtype.h"

#include <sstream>

namespace tlp::ir {

int
dtypeBytes(DataType dtype)
{
    switch (dtype) {
      case DataType::Float32: return 4;
      case DataType::Float16: return 2;
      case DataType::Int32:   return 4;
      case DataType::Int8:    return 1;
    }
    TLP_PANIC("unknown dtype");
}

std::string
dtypeName(DataType dtype)
{
    switch (dtype) {
      case DataType::Float32: return "f32";
      case DataType::Float16: return "f16";
      case DataType::Int32:   return "i32";
      case DataType::Int8:    return "i8";
    }
    TLP_PANIC("unknown dtype");
}

int64_t
numElements(const Shape &shape)
{
    int64_t count = 1;
    for (int64_t extent : shape) {
        TLP_CHECK(extent > 0, "non-positive extent in shape");
        count *= extent;
    }
    return count;
}

std::string
shapeToString(const Shape &shape)
{
    std::ostringstream os;
    os << '[';
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

} // namespace tlp::ir
