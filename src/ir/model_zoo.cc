#include "ir/model_zoo.h"

#include "support/logging.h"

namespace tlp::ir {

namespace {

/** conv -> bn -> relu block. */
NodeRef
convBnRelu(ComputeGraph &g, NodeRef x, int64_t channels, int64_t kernel,
           int64_t stride = 1)
{
    NodeRef y = g.conv2d(x, channels, kernel, stride);
    y = g.batchNorm(y);
    return g.relu(y);
}

/** ResNet bottleneck (v1.5): 1x1 -> 3x3(stride) -> 1x1 + shortcut. */
NodeRef
bottleneck(ComputeGraph &g, NodeRef x, int64_t mid, int64_t out,
           int64_t stride, bool grouped)
{
    NodeRef shortcut = x;
    const bool reshape_needed =
        stride != 1 || g.desc(x).shape[1] != out;
    if (reshape_needed) {
        shortcut = g.conv2d(x, out, 1, stride);
        shortcut = g.batchNorm(shortcut);
    }
    NodeRef y = convBnRelu(g, x, mid, 1);
    if (grouped) {
        y = g.groupConv2d(y, mid, 3, 32, stride);
        y = g.batchNorm(y);
        y = g.relu(y);
    } else {
        y = convBnRelu(g, y, mid, 3, stride);
    }
    y = g.conv2d(y, out, 1);
    y = g.batchNorm(y);
    y = g.add(y, shortcut);
    return g.relu(y);
}

/** ResNet basic block: 3x3 -> 3x3 + shortcut. */
NodeRef
basicBlock(ComputeGraph &g, NodeRef x, int64_t channels, int64_t stride)
{
    NodeRef shortcut = x;
    if (stride != 1 || g.desc(x).shape[1] != channels) {
        shortcut = g.conv2d(x, channels, 1, stride);
        shortcut = g.batchNorm(shortcut);
    }
    NodeRef y = convBnRelu(g, x, channels, 3, stride);
    y = g.conv2d(y, channels, 3);
    y = g.batchNorm(y);
    y = g.add(y, shortcut);
    return g.relu(y);
}

ComputeGraph
buildResNetLike(const std::string &name, const std::vector<int> &blocks,
                bool use_bottleneck, bool grouped, int64_t width,
                int64_t batch)
{
    ComputeGraph g(name);
    NodeRef x = g.input({batch, 3, 224, 224});
    x = convBnRelu(g, x, 64, 7, 2);
    x = g.maxPool2d(x, 3, 2);

    int64_t channels = 64;
    for (size_t stage = 0; stage < blocks.size(); ++stage) {
        const int64_t stride = stage == 0 ? 1 : 2;
        for (int block = 0; block < blocks[stage]; ++block) {
            const int64_t s = block == 0 ? stride : 1;
            if (use_bottleneck) {
                const int64_t mid = channels * width / 64;
                x = bottleneck(g, x, mid, channels * 4, s, grouped);
            } else {
                x = basicBlock(g, x, channels, s);
            }
        }
        channels *= 2;
    }
    x = g.globalAvgPool(x);
    x = g.dense(x, 1000);
    g.biasAdd(x);
    return g;
}

/** One transformer encoder layer on a [seq, hidden] activation. */
NodeRef
encoderLayer(ComputeGraph &g, NodeRef x, int64_t seq, int64_t hidden,
             int64_t heads, int64_t ff, bool causal_tag)
{
    const int64_t head_dim = hidden / heads;
    NodeRef q = g.dense(x, hidden);
    q = g.biasAdd(q);
    NodeRef k = g.dense(x, hidden);
    k = g.biasAdd(k);
    NodeRef v = g.dense(x, hidden);
    v = g.biasAdd(v);

    NodeRef qh = g.reshape(q, {heads, seq, head_dim});
    NodeRef kh = g.reshape(k, {heads, head_dim, seq});
    NodeRef scores = g.batchMatmul(qh, kh);
    if (causal_tag)
        scores = g.multiply(scores, g.input({heads, seq, seq}));
    NodeRef probs = g.softmax(scores);
    NodeRef vh = g.reshape(v, {heads, seq, head_dim});
    NodeRef ctx = g.batchMatmul(probs, vh);
    ctx = g.reshape(ctx, {seq, hidden});

    NodeRef attn = g.dense(ctx, hidden);
    attn = g.biasAdd(attn);
    x = g.add(attn, x);
    x = g.layerNorm(x);

    NodeRef h = g.dense(x, ff);
    h = g.biasAdd(h);
    h = g.gelu(h);
    h = g.dense(h, hidden);
    h = g.biasAdd(h);
    x = g.add(h, x);
    return g.layerNorm(x);
}

/** MobileNet-V2 inverted residual. */
NodeRef
invertedResidual(ComputeGraph &g, NodeRef x, int64_t expand, int64_t out,
                 int64_t stride)
{
    const int64_t in_c = g.desc(x).shape[1];
    NodeRef y = x;
    if (expand != 1) {
        y = g.conv2d(y, in_c * expand, 1);
        y = g.batchNorm(y);
        y = g.clip(y, 0, 6);
    }
    y = g.depthwiseConv2d(y, 3, stride);
    y = g.batchNorm(y);
    y = g.clip(y, 0, 6);
    y = g.conv2d(y, out, 1);
    y = g.batchNorm(y);
    if (stride == 1 && in_c == out)
        y = g.add(y, x);
    return y;
}

/** SqueezeNet fire module (squeeze 1x1, expand 1x1 + 3x3 summed). */
NodeRef
fireModule(ComputeGraph &g, NodeRef x, int64_t squeeze, int64_t expand)
{
    NodeRef s = convBnRelu(g, x, squeeze, 1);
    NodeRef e1 = convBnRelu(g, s, expand, 1);
    NodeRef e3 = convBnRelu(g, s, expand, 3);
    return g.add(e1, e3);
}

} // namespace

ComputeGraph
buildResNet(int depth, int64_t batch)
{
    switch (depth) {
      case 18:
        return buildResNetLike("resnet-18", {2, 2, 2, 2}, false, false, 64,
                               batch);
      case 34:
        return buildResNetLike("resnet-34", {3, 4, 6, 3}, false, false, 64,
                               batch);
      case 50:
        return buildResNetLike("resnet-50", {3, 4, 6, 3}, true, false, 64,
                               batch);
      default:
        TLP_FATAL("unsupported resnet depth ", depth);
    }
}

ComputeGraph
buildResNeXt50(int64_t batch)
{
    return buildResNetLike("resnext-50", {3, 4, 6, 3}, true, true, 128,
                           batch);
}

ComputeGraph
buildWideResNet(int64_t batch)
{
    return buildResNetLike("wide-resnet-50", {3, 4, 6, 3}, true, false, 128,
                           batch);
}

ComputeGraph
buildMobileNetV2(int64_t batch)
{
    ComputeGraph g("mobilenet-v2");
    NodeRef x = g.input({batch, 3, 224, 224});
    x = convBnRelu(g, x, 32, 3, 2);

    struct Cfg { int64_t t, c, n, s; };
    const Cfg cfgs[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                        {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                        {6, 320, 1, 1}};
    for (const Cfg &cfg : cfgs) {
        for (int64_t i = 0; i < cfg.n; ++i)
            x = invertedResidual(g, x, cfg.t, cfg.c, i == 0 ? cfg.s : 1);
    }
    x = convBnRelu(g, x, 1280, 1);
    x = g.globalAvgPool(x);
    x = g.dense(x, 1000);
    g.biasAdd(x);
    return g;
}

ComputeGraph
buildVgg16(int64_t batch)
{
    ComputeGraph g("vgg-16");
    NodeRef x = g.input({batch, 3, 224, 224});
    const int64_t channels[] = {64, 128, 256, 512, 512};
    const int convs[] = {2, 2, 3, 3, 3};
    for (int stage = 0; stage < 5; ++stage) {
        for (int i = 0; i < convs[stage]; ++i)
            x = convBnRelu(g, x, channels[stage], 3);
        x = g.maxPool2d(x, 2, 2);
    }
    x = g.reshape(x, {batch, 512 * 7 * 7});
    x = g.relu(g.biasAdd(g.dense(x, 4096)));
    x = g.relu(g.biasAdd(g.dense(x, 4096)));
    x = g.dense(x, 1000);
    g.biasAdd(x);
    return g;
}

ComputeGraph
buildSqueezeNet(int64_t batch)
{
    ComputeGraph g("squeezenet");
    NodeRef x = g.input({batch, 3, 224, 224});
    x = convBnRelu(g, x, 64, 3, 2);
    x = g.maxPool2d(x, 3, 2);
    x = fireModule(g, x, 16, 64);
    x = fireModule(g, x, 16, 64);
    x = g.maxPool2d(x, 3, 2);
    x = fireModule(g, x, 32, 128);
    x = fireModule(g, x, 32, 128);
    x = g.maxPool2d(x, 3, 2);
    x = fireModule(g, x, 48, 192);
    x = fireModule(g, x, 48, 192);
    x = fireModule(g, x, 64, 256);
    x = fireModule(g, x, 64, 256);
    x = convBnRelu(g, x, 1000, 1);
    x = g.globalAvgPool(x);
    return g;
}

ComputeGraph
buildInceptionLite(int64_t batch)
{
    ComputeGraph g("inception-lite");
    NodeRef x = g.input({batch, 3, 224, 224});
    x = convBnRelu(g, x, 32, 3, 2);
    x = convBnRelu(g, x, 64, 3, 1);
    x = g.maxPool2d(x, 3, 2);
    // Inception-ish mixed blocks: parallel 1x1 / 3x3 / 5x5 paths summed
    // (concat is approximated by matching widths and adding).
    for (int block = 0; block < 4; ++block) {
        const int64_t width = 64 << (block / 2);
        NodeRef p1 = convBnRelu(g, x, width, 1);
        NodeRef p3 = convBnRelu(g, x, width, 3);
        NodeRef p5 = convBnRelu(g, convBnRelu(g, x, width / 2, 1), width, 5);
        x = g.add(g.add(p1, p3), p5);
        if (block % 2 == 1)
            x = g.maxPool2d(x, 3, 2);
    }
    x = g.globalAvgPool(x);
    x = g.dense(x, 1000);
    return g;
}

ComputeGraph
buildMlpMixer(int64_t batch)
{
    ComputeGraph g("mlp-mixer");
    const int64_t patches = 196;    // 14x14
    const int64_t hidden = 512;
    NodeRef x = g.input({patches, hidden});
    for (int layer = 0; layer < 6; ++layer) {
        // Token mixing on the transposed activation.
        NodeRef t = g.transpose2d(g.layerNorm(x));
        t = g.gelu(g.biasAdd(g.dense(t, 256)));
        t = g.dense(t, patches);
        t = g.transpose2d(t);
        x = g.add(x, t);
        // Channel mixing.
        NodeRef c = g.layerNorm(x);
        c = g.gelu(g.biasAdd(g.dense(c, 2048)));
        c = g.dense(c, hidden);
        x = g.add(x, c);
    }
    x = g.reduceMean(x);
    return g;
}

ComputeGraph
buildBert(const std::string &name, int64_t layers, int64_t hidden,
          int64_t heads, int64_t ff, int64_t seq_len)
{
    ComputeGraph g(name);
    NodeRef x = g.input({seq_len, hidden});
    x = g.layerNorm(x);
    for (int64_t layer = 0; layer < layers; ++layer)
        x = encoderLayer(g, x, seq_len, hidden, heads, ff, false);
    NodeRef pooled = g.reduceMean(g.transpose2d(x));
    pooled = g.reshape(pooled, {1, hidden});
    pooled = g.tanhOp(g.biasAdd(g.dense(pooled, hidden)));
    g.dense(pooled, 2);
    return g;
}

ComputeGraph
buildGpt2Lite(int64_t seq_len)
{
    ComputeGraph g("gpt2-lite");
    const int64_t hidden = 384;
    NodeRef x = g.input({seq_len, hidden});
    for (int layer = 0; layer < 4; ++layer)
        x = encoderLayer(g, x, seq_len, hidden, 6, hidden * 4, true);
    g.dense(x, 1024);
    return g;
}

ComputeGraph
buildNetwork(const std::string &name)
{
    if (name == "resnet-18")      return buildResNet(18);
    if (name == "resnet-34")      return buildResNet(34);
    if (name == "resnet-50")      return buildResNet(50);
    if (name == "resnext-50")     return buildResNeXt50();
    if (name == "wide-resnet-50") return buildWideResNet();
    if (name == "mobilenet-v2")   return buildMobileNetV2();
    if (name == "vgg-16")         return buildVgg16();
    if (name == "squeezenet")     return buildSqueezeNet();
    if (name == "inception-lite") return buildInceptionLite();
    if (name == "mlp-mixer")      return buildMlpMixer();
    if (name == "bert-tiny")      return buildBert("bert-tiny", 2, 128, 2, 512);
    if (name == "bert-small")     return buildBert("bert-small", 4, 256, 4, 1024);
    if (name == "bert-medium")    return buildBert("bert-medium", 8, 512, 8, 2048);
    if (name == "bert-base")      return buildBert("bert-base", 12, 768, 12, 3072);
    if (name == "gpt2-lite")      return buildGpt2Lite();
    TLP_FATAL("unknown network: ", name);
}

std::vector<std::string>
testNetworkNames()
{
    return {"resnet-50", "mobilenet-v2", "resnext-50", "bert-tiny",
            "bert-base"};
}

std::vector<std::string>
trainNetworkNames()
{
    return {"resnet-18", "resnet-34", "wide-resnet-50", "vgg-16",
            "squeezenet", "inception-lite", "mlp-mixer", "bert-small",
            "bert-medium", "gpt2-lite"};
}

std::vector<std::string>
allNetworkNames()
{
    auto names = trainNetworkNames();
    for (const auto &name : testNetworkNames())
        names.push_back(name);
    return names;
}

} // namespace tlp::ir
