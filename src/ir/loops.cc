#include "ir/loops.h"

#include <algorithm>

namespace tlp::ir {

int64_t
AccessSpec::footprintElems(const std::vector<int64_t> &tile_extents) const
{
    int64_t elems = 1;
    for (const AccessDim &dim : dims) {
        int64_t extent = 1;
        for (const auto &[iter, coef] : dim.terms) {
            const int64_t tile =
                tile_extents.at(static_cast<size_t>(iter));
            extent += coef * (tile - 1);
        }
        elems *= std::max<int64_t>(1, extent);
    }
    return elems;
}

std::vector<int>
LoopSpec::spatialIters() const
{
    std::vector<int> result;
    for (size_t i = 0; i < iters.size(); ++i)
        if (!iters[i].is_reduction)
            result.push_back(static_cast<int>(i));
    return result;
}

std::vector<int>
LoopSpec::reductionIters() const
{
    std::vector<int> result;
    for (size_t i = 0; i < iters.size(); ++i)
        if (iters[i].is_reduction)
            result.push_back(static_cast<int>(i));
    return result;
}

int64_t
LoopSpec::totalPoints() const
{
    int64_t total = 1;
    for (const IterSpec &iter : iters)
        total *= iter.extent;
    return total;
}

std::string
bufferName(const Subgraph &subgraph, int index)
{
    const OpNode &op = subgraph.op(index);
    return "T" + std::to_string(index) + "_" + opKindName(op.kind);
}

namespace {

/** Single-iterator access dimension. */
AccessDim
dimOf(int iter, int64_t coef = 1)
{
    AccessDim dim;
    dim.terms.push_back({iter, coef});
    return dim;
}

/** Windowed access dimension, e.g. stride*oh + rh. */
AccessDim
windowDim(int outer_iter, int64_t stride, int inner_iter)
{
    AccessDim dim;
    dim.terms.push_back({outer_iter, stride});
    dim.terms.push_back({inner_iter, 1});
    return dim;
}

/** Spatial iterators straight from a shape. */
void
addSpatialIters(LoopSpec &spec, const Shape &shape,
                const std::vector<std::string> &names)
{
    for (size_t i = 0; i < shape.size(); ++i) {
        IterSpec iter;
        iter.name = i < names.size() ? names[i]
                                     : "s" + std::to_string(i);
        iter.extent = shape[i];
        spec.iters.push_back(iter);
    }
}

AccessSpec
makeAccess(const Subgraph &sg, int producer, bool is_write,
           std::vector<AccessDim> dims)
{
    AccessSpec access;
    access.buffer = bufferName(sg, producer);
    access.elem_bytes = dtypeBytes(sg.op(producer).out.dtype);
    access.is_write = is_write;
    access.dims = std::move(dims);
    return access;
}

LoopSpec
denseLoops(const Subgraph &sg, int idx)
{
    const OpNode &op = sg.op(idx);
    const int data = op.inputs.at(0);
    const int weight = op.inputs.at(1);
    const Shape &out = op.out.shape;
    const int64_t k = sg.op(data).out.shape.back();

    LoopSpec spec;
    spec.iters = {{"i", out[0], false}, {"j", out[1], false},
                  {"k", k, true}};
    spec.accesses.push_back(
        makeAccess(sg, data, false, {dimOf(0), dimOf(2)}));
    spec.accesses.push_back(
        makeAccess(sg, weight, false, {dimOf(1), dimOf(2)}));
    spec.accesses.push_back(
        makeAccess(sg, idx, true, {dimOf(0), dimOf(1)}));
    spec.flops_per_point = 2.0;
    return spec;
}

LoopSpec
batchMatmulLoops(const Subgraph &sg, int idx)
{
    const OpNode &op = sg.op(idx);
    const int a = op.inputs.at(0);
    const int b = op.inputs.at(1);
    const Shape &out = op.out.shape;
    const int64_t k = sg.op(a).out.shape.back();

    LoopSpec spec;
    spec.iters = {{"b", out[0], false}, {"i", out[1], false},
                  {"j", out[2], false}, {"k", k, true}};
    spec.accesses.push_back(
        makeAccess(sg, a, false, {dimOf(0), dimOf(1), dimOf(3)}));
    spec.accesses.push_back(
        makeAccess(sg, b, false, {dimOf(0), dimOf(3), dimOf(2)}));
    spec.accesses.push_back(
        makeAccess(sg, idx, true, {dimOf(0), dimOf(1), dimOf(2)}));
    spec.flops_per_point = 2.0;
    return spec;
}

LoopSpec
convLoops(const Subgraph &sg, int idx)
{
    const OpNode &op = sg.op(idx);
    const int data = op.inputs.at(0);
    const int weight = op.inputs.at(1);
    const Shape &out = op.out.shape;
    const int64_t kernel = op.attr("kernel", 1);
    const int64_t stride = op.attr("stride", 1);
    const int64_t groups = op.attr("groups", 1);
    const int64_t in_c = sg.op(data).out.shape.at(1);

    LoopSpec spec;
    const bool depthwise = op.kind == OpKind::DepthwiseConv2d;
    const int64_t red_c = depthwise ? 1 : in_c / groups;

    spec.iters = {{"n", out[0], false},  {"oc", out[1], false},
                  {"oh", out[2], false}, {"ow", out[3], false},
                  {"rc", red_c, true},   {"rh", kernel, true},
                  {"rw", kernel, true}};
    // Input: [n, rc (or oc for depthwise), oh*s+rh, ow*s+rw]
    AccessDim channel = depthwise ? dimOf(1) : dimOf(4);
    spec.accesses.push_back(makeAccess(
        sg, data, false,
        {dimOf(0), channel, windowDim(2, stride, 5), windowDim(3, stride, 6)}));
    // Weight: [oc, rc, rh, rw]
    spec.accesses.push_back(makeAccess(
        sg, weight, false, {dimOf(1), dimOf(4), dimOf(5), dimOf(6)}));
    spec.accesses.push_back(makeAccess(
        sg, idx, true, {dimOf(0), dimOf(1), dimOf(2), dimOf(3)}));
    spec.flops_per_point = 2.0;
    return spec;
}

LoopSpec
poolLoops(const Subgraph &sg, int idx)
{
    const OpNode &op = sg.op(idx);
    const int data = op.inputs.at(0);
    const Shape &out = op.out.shape;
    const int64_t kernel = op.attr("kernel", 1);
    const int64_t stride = op.attr("stride", 1);

    LoopSpec spec;
    spec.iters = {{"n", out[0], false},  {"c", out[1], false},
                  {"oh", out[2], false}, {"ow", out[3], false},
                  {"rh", kernel, true},  {"rw", kernel, true}};
    spec.accesses.push_back(makeAccess(
        sg, data, false,
        {dimOf(0), dimOf(1), windowDim(2, stride, 4),
         windowDim(3, stride, 5)}));
    spec.accesses.push_back(makeAccess(
        sg, idx, true, {dimOf(0), dimOf(1), dimOf(2), dimOf(3)}));
    spec.flops_per_point = 1.0;
    return spec;
}

LoopSpec
globalPoolLoops(const Subgraph &sg, int idx)
{
    const OpNode &op = sg.op(idx);
    const int data = op.inputs.at(0);
    const Shape &in = sg.op(data).out.shape;

    LoopSpec spec;
    spec.iters = {{"n", in[0], false}, {"c", in[1], false},
                  {"rh", in[2], true}, {"rw", in[3], true}};
    spec.accesses.push_back(makeAccess(
        sg, data, false, {dimOf(0), dimOf(1), dimOf(2), dimOf(3)}));
    spec.accesses.push_back(makeAccess(sg, idx, true, {dimOf(0), dimOf(1)}));
    spec.flops_per_point = 1.0;
    return spec;
}

LoopSpec
lastAxisReduceLoops(const Subgraph &sg, int idx, double flops_per_point)
{
    const OpNode &op = sg.op(idx);
    const int data = op.inputs.at(0);
    const Shape &in = sg.op(data).out.shape;

    LoopSpec spec;
    std::vector<AccessDim> in_dims;
    for (size_t i = 0; i + 1 < in.size(); ++i) {
        spec.iters.push_back(
            {"s" + std::to_string(i), in[i], false});
        in_dims.push_back(dimOf(static_cast<int>(i)));
    }
    spec.iters.push_back({"r", in.back(), true});
    in_dims.push_back(dimOf(static_cast<int>(in.size()) - 1));
    spec.accesses.push_back(makeAccess(sg, data, false, in_dims));
    // Softmax writes the full input shape; reductions write outer dims.
    std::vector<AccessDim> out_dims(in_dims.begin(), in_dims.end());
    if (op.kind != OpKind::Softmax)
        out_dims.pop_back();
    spec.accesses.push_back(makeAccess(sg, idx, true, out_dims));
    spec.flops_per_point = flops_per_point;
    return spec;
}

LoopSpec
elementwiseLoops(const Subgraph &sg, int idx)
{
    const OpNode &op = sg.op(idx);
    const Shape &out = op.out.shape;

    LoopSpec spec;
    addSpatialIters(spec, out, {"a", "b", "c", "d"});
    std::vector<AccessDim> dims;
    for (size_t i = 0; i < out.size(); ++i)
        dims.push_back(dimOf(static_cast<int>(i)));

    for (int input : op.inputs) {
        const OpNode &producer = sg.op(input);
        if (producer.out.shape == out) {
            spec.accesses.push_back(makeAccess(sg, input, false, dims));
        } else {
            // Bias-style operand: model as last-dim (or channel) access.
            std::vector<AccessDim> small_dims;
            const size_t channel_axis = out.size() == 4 ? 1 : out.size() - 1;
            small_dims.push_back(dimOf(static_cast<int>(channel_axis)));
            spec.accesses.push_back(
                makeAccess(sg, input, false, small_dims));
        }
    }
    spec.accesses.push_back(makeAccess(sg, idx, true, dims));

    std::vector<TensorDesc> input_descs;
    for (int input : op.inputs)
        input_descs.push_back(sg.op(input).out);
    const int64_t out_elems = numElements(out);
    spec.flops_per_point =
        static_cast<double>(opFlops(op, input_descs)) /
        static_cast<double>(std::max<int64_t>(1, out_elems));
    return spec;
}

} // namespace

LoopSpec
describeLoops(const Subgraph &subgraph, int op_index)
{
    const OpNode &op = subgraph.op(op_index);
    switch (op.kind) {
      case OpKind::Input:
      case OpKind::Constant:
        return LoopSpec{};
      case OpKind::Dense:
        return denseLoops(subgraph, op_index);
      case OpKind::BatchMatmul:
        return batchMatmulLoops(subgraph, op_index);
      case OpKind::Conv2d:
      case OpKind::DepthwiseConv2d:
      case OpKind::GroupConv2d:
        return convLoops(subgraph, op_index);
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
        return poolLoops(subgraph, op_index);
      case OpKind::GlobalAvgPool:
        return globalPoolLoops(subgraph, op_index);
      case OpKind::Softmax:
        return lastAxisReduceLoops(subgraph, op_index, 4.0);
      case OpKind::ReduceMean:
        return lastAxisReduceLoops(subgraph, op_index, 1.0);
      default:
        return elementwiseLoops(subgraph, op_index);
    }
}

} // namespace tlp::ir
