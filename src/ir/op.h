/**
 * @file
 * Operator nodes of the compute-graph IR.
 *
 * An OpNode is a single tensor operator with integer attributes (strides,
 * padding, group counts, ...). Shapes are inferred eagerly by the graph
 * builder, so every node carries its concrete output descriptor.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/dtype.h"
#include "support/serialize.h"

namespace tlp::ir {

/** The operator vocabulary of the IR. */
enum class OpKind : uint8_t
{
    // Graph inputs / constants.
    Input = 0,
    Constant,

    // Anchor (compute-heavy) operators.
    Dense,            ///< [b, k] x [n, k]^T -> [b, n]
    Conv2d,           ///< NCHW direct convolution
    DepthwiseConv2d,  ///< per-channel convolution
    GroupConv2d,      ///< grouped convolution
    BatchMatmul,      ///< [b, m, k] x [b, k, n] -> [b, m, n]

    // Medium anchors (small or windowed reductions).
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool,
    Softmax,          ///< over the last axis
    ReduceMean,       ///< over the last axis

    // Elementwise / injective operators (fusable tails).
    Add,
    Multiply,
    BiasAdd,
    ReLU,
    GELU,
    Tanh,
    Sigmoid,
    BatchNormInfer,   ///< folded scale+shift
    LayerNorm,        ///< over the last axis
    Clip,

    // Layout / shape operators (fusable, zero-flop).
    Reshape,
    Transpose2d,      ///< swap the last two axes

    NumKinds
};

/** Short mnemonic, e.g. "conv2d". */
std::string opKindName(OpKind kind);

/** True for heavy anchors that get full multi-level tiling schedules. */
bool isHeavyAnchor(OpKind kind);

/** True for medium anchors (pooling, softmax-style reductions). */
bool isMediumAnchor(OpKind kind);

/** True for elementwise/injective operators that fuse into anchors. */
bool isFusable(OpKind kind);

/** One operator in a compute graph. */
struct OpNode
{
    OpKind kind = OpKind::Input;
    /** Indices of producer nodes within the owning graph. */
    std::vector<int> inputs;
    /** Integer attributes: "kernel", "stride", "pad", "groups", ... */
    std::map<std::string, int64_t> attrs;
    /** Inferred output descriptor. */
    TensorDesc out;

    /** Fetch an attribute with a default. */
    int64_t attr(const std::string &name, int64_t fallback = 0) const;

    /** Short description, e.g. "conv2d k3 s2 [1, 64, 56, 56]". */
    std::string toString() const;

    void serialize(BinaryWriter &writer) const;
    static OpNode deserialize(BinaryReader &reader);
};

/** Multiply-accumulate-style FLOP count of @p node (2 per MAC). */
int64_t opFlops(const OpNode &node,
                const std::vector<TensorDesc> &input_descs);

} // namespace tlp::ir
