/**
 * @file
 * Fused computational subgraphs — the unit of tuning.
 *
 * A Subgraph is a small self-contained op chain produced by the fusion
 * partitioner: typically one compute-heavy anchor (dense, conv2d, ...)
 * followed by fusable elementwise ops, with Input nodes standing in for
 * tensors produced elsewhere. Auto-tuning, dataset collection, and cost
 * models all operate per subgraph, mirroring Ansor's task granularity.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/op.h"

namespace tlp::ir {

/** A fused subgraph extracted from a network. */
class Subgraph
{
  public:
    Subgraph() = default;

    /**
     * @param ops     local topologically ordered ops; Input/Constant nodes
     *                first, each op's `inputs` indexes into this vector.
     * @param anchor  index of the anchor op, or -1 for elementwise-only.
     */
    Subgraph(std::vector<OpNode> ops, int anchor);

    const std::vector<OpNode> &ops() const { return ops_; }
    const OpNode &op(int index) const { return ops_.at(static_cast<size_t>(index)); }

    /** Index of the anchor op (-1 when none). */
    int anchorIndex() const { return anchor_; }

    /** The anchor op; panics when there is none. */
    const OpNode &anchor() const;

    /** Index of the final (output-producing) op. */
    int outputIndex() const;

    /** Canonical identity string (stable across runs). */
    const std::string &key() const { return key_; }

    /** Total FLOPs of one execution of the subgraph. */
    int64_t flops() const { return flops_; }

    /** Multi-line human-readable description. */
    std::string toString() const;

    void serialize(BinaryWriter &writer) const;
    static Subgraph deserialize(BinaryReader &reader);

  private:
    void finalize();

    std::vector<OpNode> ops_;
    int anchor_ = -1;
    std::string key_;
    int64_t flops_ = 0;
};

using SubgraphPtr = std::shared_ptr<const Subgraph>;

/** A network expressed as deduplicated subgraphs with occurrence counts. */
struct Workload
{
    std::string name;
    std::vector<SubgraphPtr> subgraphs;
    /** weights[i] = number of times subgraphs[i] occurs in the network. */
    std::vector<int> weights;
};

} // namespace tlp::ir
