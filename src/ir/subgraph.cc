#include "ir/subgraph.h"

#include <sstream>

#include "support/rng.h"
#include "support/str_util.h"

namespace tlp::ir {

Subgraph::Subgraph(std::vector<OpNode> ops, int anchor)
    : ops_(std::move(ops)), anchor_(anchor)
{
    finalize();
}

const OpNode &
Subgraph::anchor() const
{
    TLP_CHECK(anchor_ >= 0, "subgraph has no anchor");
    return ops_.at(static_cast<size_t>(anchor_));
}

int
Subgraph::outputIndex() const
{
    return static_cast<int>(ops_.size()) - 1;
}

void
Subgraph::finalize()
{
    TLP_CHECK(!ops_.empty(), "empty subgraph");

    // Canonical description: op kinds, attrs, and shapes in order.
    std::ostringstream os;
    for (const auto &op : ops_)
        os << op.toString() << ';';
    const std::string desc = os.str();
    const uint64_t hash = fnv1a(desc.data(), desc.size());

    // Short human prefix + hash for uniqueness.
    std::string prefix = anchor_ >= 0 ? opKindName(ops_[static_cast<size_t>(anchor_)].kind)
                                      : std::string("elemwise");
    key_ = prefix + "_" + strFormat("%016llx",
                                    static_cast<unsigned long long>(hash));

    flops_ = 0;
    for (const auto &op : ops_) {
        std::vector<TensorDesc> descs;
        descs.reserve(op.inputs.size());
        for (int idx : op.inputs)
            descs.push_back(ops_.at(static_cast<size_t>(idx)).out);
        flops_ += opFlops(op, descs);
    }
}

std::string
Subgraph::toString() const
{
    std::ostringstream os;
    os << "subgraph " << key_ << " (flops=" << flops_ << ")\n";
    for (size_t i = 0; i < ops_.size(); ++i) {
        os << "  %" << i << " = " << ops_[i].toString();
        if (static_cast<int>(i) == anchor_)
            os << "   <-- anchor";
        os << '\n';
    }
    return os.str();
}

void
Subgraph::serialize(BinaryWriter &writer) const
{
    writer.writePod<uint32_t>(static_cast<uint32_t>(ops_.size()));
    for (const auto &op : ops_)
        op.serialize(writer);
    writer.writePod<int32_t>(anchor_);
}

Subgraph
Subgraph::deserialize(BinaryReader &reader)
{
    const auto count = reader.readPod<uint32_t>();
    // An op costs >= 22 stream bytes; corrupt counts fail before reserve.
    if (count == 0 || count > reader.remaining() / 22 + 1) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid subgraph op count " +
                                 std::to_string(count));
    }
    std::vector<OpNode> ops;
    ops.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        ops.push_back(OpNode::deserialize(reader));
    const auto anchor = reader.readPod<int32_t>();
    // Validate graph structure before the constructor walks it: the
    // anchor and every producer index must name an op in this subgraph.
    if (anchor < -1 || anchor >= static_cast<int32_t>(count)) {
        throw SerializeError(ErrorCode::Corrupt,
                             "subgraph anchor " + std::to_string(anchor) +
                                 " out of range for " +
                                 std::to_string(count) + " ops");
    }
    for (const OpNode &op : ops) {
        for (int input : op.inputs) {
            if (input < 0 || input >= static_cast<int>(count)) {
                throw SerializeError(ErrorCode::Corrupt,
                                     "subgraph input index " +
                                         std::to_string(input) +
                                         " out of range");
            }
        }
    }
    return Subgraph(std::move(ops), anchor);
}

} // namespace tlp::ir
