#include "tuner/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "schedule/lower.h"
#include "support/logging.h"

namespace tlp::tune {

namespace {

constexpr uint32_t kSessionMagic = 0x544c5053;   // "TLPS"
// v3 appends the cost model's identity and state blob so degraded-mode
// search (GuardedCostModel fallback position, rng cursors) resumes
// faithfully; v2 checkpoints still load with both fields empty. v1
// (flat stream) checkpoints get a clean versioned error, not a parse
// crash.
constexpr uint32_t kSessionVersion = 3;
constexpr uint32_t kMinSessionVersion = 2;
constexpr uint32_t kStateTag = sectionTag("STAT");

double
now()
{
    return std::chrono::duration<double>(
               // tlp-lint: allow(wallclock) -- session wall-time budget and round timestamps; search decisions stay seeded
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Per-task tuning state. */
struct TaskState
{
    ir::SubgraphPtr subgraph;
    int weight = 1;
    double best_ms = std::numeric_limits<double>::infinity();
    int rounds_done = 0;
    double last_improvement = 1.0;
    std::set<uint64_t> measured_hashes;
};

/** Successful measurements of one round, kept for model replay. */
struct RoundHistory
{
    int task_id = 0;
    std::vector<sched::PrimitiveSeq> seqs;
    std::vector<double> latency_ms;
};

/** Everything a resumed session needs to continue bit-identically. */
struct SessionState
{
    int rounds_done = 0;
    Rng rng{0};
    TuneResult result;
    std::vector<RoundHistory> history;
    /** v3: name of the cost model the checkpoint was taken with. */
    std::string model_name;
    /** v3: opaque cost-model state (applied after history replay). */
    std::string model_state;
};

uint64_t
mixDouble(uint64_t hash, double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return hashCombine(hash, bits);
}

/**
 * Digest of everything that determines the session trajectory. A
 * checkpoint taken under one configuration must not silently resume
 * under another.
 */
uint64_t
configDigest(const ir::Workload &workload,
             const hw::HardwarePlatform &platform,
             const TuneOptions &options)
{
    uint64_t hash = options.seed;
    for (size_t i = 0; i < workload.subgraphs.size(); ++i) {
        const std::string &key = workload.subgraphs[i]->key();
        hash = hashCombine(hash, fnv1a(key.data(), key.size()));
        hash = hashCombine(hash,
                           static_cast<uint64_t>(workload.weights[i]));
    }
    hash = hashCombine(hash, fnv1a(platform.name.data(),
                                   platform.name.size()));
    // options.rounds is deliberately NOT digested: the total budget only
    // decides when to stop, so a killed campaign may resume with a
    // larger one.
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.measures_per_round));
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.evolution.population));
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.evolution.iterations));
    hash = hashCombine(
        hash, static_cast<uint64_t>(options.evolution.children_per_iter));
    hash = mixDouble(hash, options.evolution.eps_greedy);
    hash = hashCombine(hash, static_cast<uint64_t>(options.measure.repeats));
    hash = mixDouble(hash, options.measure.noise_std);
    hash = mixDouble(hash, options.measure.seconds_per_measure);
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.measure.max_retries));
    hash = hashCombine(
        hash, static_cast<uint64_t>(options.measure.quarantine_after));
    hash = hashCombine(hash, options.measure.faults.digest());
    return hash;
}

void
saveCheckpoint(const std::string &path, uint64_t digest,
               const SessionState &session,
               const std::vector<TaskState> &tasks,
               const hw::Measurer &measurer,
               const model::CostModel &cost_model)
{
    // Atomic write (tmp + rename) so a crash or full disk mid-write
    // never clobbers the previous good checkpoint; a failed write only
    // costs checkpoint freshness, never the running campaign.
    const Status status = atomicWriteFile(path, [&](std::ostream &os) {
        BinaryWriter writer(os);
        writeHeader(writer, kSessionMagic, kSessionVersion);
        writeSection(writer, kStateTag, [&](BinaryWriter &w) {
            w.writePod(digest);
            w.writePod<int32_t>(session.rounds_done);
            session.rng.serialize(w);
            measurer.serializeState(w);

            const TuneResult &result = session.result;
            w.writePod(result.model_seconds);
            w.writePod(result.total_measurements);
            w.writeVector(result.curve);
            w.writeVector(result.best_per_task_ms);

            w.writePod<uint32_t>(static_cast<uint32_t>(tasks.size()));
            for (const TaskState &task : tasks) {
                w.writePod(task.best_ms);
                w.writePod<int32_t>(task.rounds_done);
                w.writePod(task.last_improvement);
                std::vector<uint64_t> hashes(task.measured_hashes.begin(),
                                             task.measured_hashes.end());
                w.writeVector(hashes);
            }

            w.writePod<uint64_t>(session.history.size());
            for (const RoundHistory &round : session.history) {
                w.writePod<int32_t>(round.task_id);
                w.writePod<uint32_t>(
                    static_cast<uint32_t>(round.seqs.size()));
                for (size_t i = 0; i < round.seqs.size(); ++i) {
                    round.seqs[i].serialize(w);
                    w.writePod(round.latency_ms[i]);
                }
            }

            // v3: cost-model identity + state blob. The blob carries
            // what history replay cannot rebuild (fallback position,
            // health counters, rng cursors); plain models write an
            // empty blob.
            w.writeString(cost_model.name());
            std::ostringstream model_buffer(std::ios::binary);
            BinaryWriter model_writer(model_buffer);
            cost_model.serializeState(model_writer);
            w.writeString(model_buffer.str());
        });
    });
    if (!status.ok()) {
        warn("checkpoint write skipped (previous checkpoint kept): ",
             status.toString());
    }
}

/**
 * Parse a checkpoint stream. With null @p expect_digest / @p tasks /
 * @p measurer the state is fully validated but applied nowhere (the
 * verifyCheckpoint path). Returns a Status instead of dying on corrupt,
 * truncated, version-skewed, or foreign files.
 */
Result<SessionState>
readCheckpoint(std::istream &is, const uint64_t *expect_digest,
               std::vector<TaskState> *tasks, hw::Measurer *measurer)
{
    SessionState session;
    const Status status = guardedParse([&] {
        BinaryReader reader(is);
        const uint32_t version = readHeader(
            reader, kSessionMagic, kMinSessionVersion, kSessionVersion);
        Section section = readSection(reader);
        if (section.tag != kStateTag) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "unexpected checkpoint section " +
                                     sectionTagName(section.tag));
        }
        if (!section.crc_ok) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "checkpoint checksum mismatch");
        }
        if (reader.remaining() != 0) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "trailing bytes after checkpoint state");
        }

        std::istringstream payload(section.payload);
        BinaryReader body(payload);
        const auto saved_digest = body.readPod<uint64_t>();
        if (expect_digest && saved_digest != *expect_digest) {
            throw SerializeError(
                ErrorCode::Invalid,
                "checkpoint was taken under a different session "
                "configuration (workload, platform, seed, or options "
                "changed)");
        }
        session.rounds_done = body.readPod<int32_t>();
        session.rng = Rng::deserialize(body);
        if (measurer) {
            measurer->deserializeState(body);
        } else {
            // Verification only: parse into a scratch measurer (the
            // platform is irrelevant, deserializeState overwrites all
            // state it touches).
            hw::Measurer scratch(
                hw::HardwarePlatform::preset("i7-10510u"),
                hw::MeasureOptions{}, 0);
            scratch.deserializeState(body);
        }

        session.result.model_seconds = body.readPod<double>();
        session.result.total_measurements = body.readPod<int64_t>();
        session.result.curve = body.readVector<CurvePoint>();
        session.result.best_per_task_ms = body.readVector<double>();

        const auto num_tasks = body.readPod<uint32_t>();
        if (tasks && num_tasks != tasks->size()) {
            throw SerializeError(ErrorCode::Invalid,
                                 "checkpoint has " +
                                     std::to_string(num_tasks) +
                                     " tasks, session has " +
                                     std::to_string(tasks->size()));
        }
        // A task entry costs >= 28 stream bytes.
        if (num_tasks > body.remaining() / 28 + 1) {
            throw SerializeError(ErrorCode::Truncated,
                                 "checkpoint task count " +
                                     std::to_string(num_tasks) +
                                     " exceeds the remaining stream");
        }
        for (uint32_t i = 0; i < num_tasks; ++i) {
            TaskState scratch_task;
            TaskState &task = tasks ? (*tasks)[i] : scratch_task;
            task.best_ms = body.readPod<double>();
            task.rounds_done = body.readPod<int32_t>();
            task.last_improvement = body.readPod<double>();
            const auto hashes = body.readVector<uint64_t>();
            task.measured_hashes.insert(hashes.begin(), hashes.end());
        }

        const auto num_rounds = body.readPod<uint64_t>();
        if (num_rounds > body.remaining() / 8 + 1) {
            throw SerializeError(ErrorCode::Truncated,
                                 "checkpoint round count " +
                                     std::to_string(num_rounds) +
                                     " exceeds the remaining stream");
        }
        session.history.reserve(num_rounds);
        for (uint64_t r = 0; r < num_rounds; ++r) {
            RoundHistory round;
            round.task_id = body.readPod<int32_t>();
            const auto count = body.readPod<uint32_t>();
            for (uint32_t i = 0; i < count; ++i) {
                round.seqs.push_back(
                    sched::PrimitiveSeq::deserialize(body));
                round.latency_ms.push_back(body.readPod<double>());
            }
            session.history.push_back(std::move(round));
        }
        if (version >= 3) {
            session.model_name = body.readString();
            session.model_state = body.readString();
        }
        if (body.remaining() != 0) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "trailing bytes in checkpoint state");
        }
    });
    if (!status.ok())
        return status;
    return session;
}

Result<SessionState>
readCheckpointFile(const std::string &path, const uint64_t *expect_digest,
                   std::vector<TaskState> *tasks, hw::Measurer *measurer)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open for read: " + path);
    }
    return readCheckpoint(is, expect_digest, tasks, measurer);
}

bool
fileExists(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return is.good();
}

} // namespace

double
TuneResult::timeToReach(double target_latency_ms) const
{
    for (const CurvePoint &point : curve) {
        if (point.workload_latency_ms <= target_latency_ms)
            return point.search_seconds;
    }
    return std::numeric_limits<double>::infinity();
}

TuneResult
tuneWorkload(const ir::Workload &workload,
             const hw::HardwarePlatform &platform,
             model::CostModel &cost_model, const TuneOptions &options)
{
    TLP_CHECK(!workload.subgraphs.empty(), "empty workload");

    std::vector<TaskState> tasks;
    std::vector<sketch::SchedulePolicy> policies;
    for (size_t i = 0; i < workload.subgraphs.size(); ++i) {
        TaskState task;
        task.subgraph = workload.subgraphs[i];
        task.weight = workload.weights[i];
        tasks.push_back(std::move(task));
        policies.emplace_back(workload.subgraphs[i], platform.is_gpu);
    }

    hw::Measurer measurer(platform, options.measure, options.seed);
    const uint64_t digest = configDigest(workload, platform, options);
    const bool checkpointing = !options.checkpoint_path.empty();

    SessionState session;
    session.rng = Rng(options.seed);
    session.result.best_per_task_ms.assign(
        tasks.size(), std::numeric_limits<double>::infinity());

    if (options.resume && checkpointing &&
        !fileExists(options.checkpoint_path)) {
        inform("no checkpoint at ", options.checkpoint_path,
               "; starting a fresh session");
    }
    if (options.resume && checkpointing &&
        fileExists(options.checkpoint_path)) {
        Result<SessionState> loaded = readCheckpointFile(
            options.checkpoint_path, &digest, &tasks, &measurer);
        if (!loaded.ok()) {
            // tlp-lint: allow(loader-fatal) -- CLI boundary: --resume failure is terminal by design; readCheckpointFile is the Result-returning loader
            TLP_FATAL("cannot resume from checkpoint ",
                      options.checkpoint_path, ": ",
                      loaded.status().toString(),
                      "; delete the file or drop --resume to start fresh");
        }
        session = loaded.take();
        // Rebuild the online model by replaying the measured history in
        // the original round order; pretrained models ignore update().
        for (const RoundHistory &round : session.history) {
            std::vector<sched::State> states;
            states.reserve(round.seqs.size());
            const auto &subgraph =
                tasks[static_cast<size_t>(round.task_id)].subgraph;
            for (const auto &seq : round.seqs) {
                states.push_back(
                    sched::replaySteps(subgraph, platform.is_gpu, seq));
            }
            std::vector<const sched::State *> state_ptrs;
            for (const auto &state : states)
                state_ptrs.push_back(&state);
            cost_model.update(round.task_id, state_ptrs, round.latency_ms);
        }
        // The v3 model-state blob is applied AFTER replay: replay warms
        // the online models, then the blob overwrites the state replay
        // cannot reconstruct — scoring-time failovers, health counters,
        // rng cursors (v2 checkpoints carry no blob and skip both).
        if (!session.model_name.empty() &&
            session.model_name != cost_model.name()) {
            // tlp-lint: allow(loader-fatal) -- CLI boundary: model-name mismatch on --resume is a user error, not a parse failure
            TLP_FATAL("checkpoint ", options.checkpoint_path,
                      " was taken with cost model '", session.model_name,
                      "', this session uses '", cost_model.name(),
                      "'; delete the file or drop --resume to start "
                      "fresh");
        }
        if (!session.model_state.empty()) {
            std::istringstream buffer(session.model_state,
                                      std::ios::binary);
            BinaryReader blob(buffer);
            const Status blob_status = guardedParse(
                [&] { cost_model.deserializeState(blob); });
            if (!blob_status.ok()) {
                // tlp-lint: allow(loader-fatal) -- CLI boundary: state-blob restore failure on --resume is terminal by design; parsing itself is guardedParse
                TLP_FATAL("cannot restore cost-model state from ",
                          options.checkpoint_path, ": ",
                          blob_status.toString(),
                          "; delete the file or drop --resume to start "
                          "fresh");
            }
        }
        if (options.verbose) {
            inform("resumed session from ", options.checkpoint_path,
                   " at round ", session.rounds_done);
        }
    }

    TuneResult &result = session.result;

    auto workloadLatency = [&]() {
        double total = 0.0;
        for (const TaskState &task : tasks) {
            if (!std::isfinite(task.best_ms))
                return std::numeric_limits<double>::infinity();
            total += task.best_ms * task.weight;
        }
        return total;
    };

    auto pickTask = [&]() -> size_t {
        // First sweep: round-robin so every task gets a baseline.
        for (size_t i = 0; i < tasks.size(); ++i)
            if (tasks[i].rounds_done == 0)
                return i;
        // Afterwards: Ansor-style priority — the task with the largest
        // weighted remaining latency, boosted by recent improvement.
        double best_score = -1.0;
        size_t best_index = 0;
        for (size_t i = 0; i < tasks.size(); ++i) {
            const TaskState &task = tasks[i];
            const double score = task.best_ms * task.weight *
                                 (0.5 + task.last_improvement);
            if (score > best_score) {
                best_score = score;
                best_index = i;
            }
        }
        return best_index;
    };

    for (int round = session.rounds_done; round < options.rounds; ++round) {
        const size_t task_index = pickTask();
        TaskState &task = tasks[task_index];
        const int task_id = static_cast<int>(task_index);

        EvolutionResult evolution = evolveOneRound(
            policies[task_index], cost_model, task_id,
            options.measures_per_round, task.measured_hashes,
            options.evolution, session.rng);
        result.model_seconds += evolution.model_seconds;
        session.rounds_done = round + 1;

        if (evolution.candidates.empty()) {
            task.rounds_done += 1;
            continue;
        }

        // Measure the picked candidates on the (simulated) hardware.
        // Failed measurements burn wall clock but contribute neither to
        // the best-latency curve nor to the online model; every measured
        // hash is recorded so failing candidates are not re-proposed.
        const double before_best = task.best_ms;
        std::vector<const sched::State *> measured_states;
        std::vector<double> measured_latency;
        RoundHistory round_history;
        round_history.task_id = task_id;
        for (const auto &state : evolution.candidates) {
            const auto nest = sched::lower(state);
            const auto measured = measurer.measure(nest);
            task.measured_hashes.insert(state.steps().hash());
            if (!measured.ok())
                continue;
            measured_states.push_back(&state);
            measured_latency.push_back(measured.latency_ms);
            round_history.seqs.push_back(state.steps());
            round_history.latency_ms.push_back(measured.latency_ms);
            task.best_ms = std::min(task.best_ms, measured.latency_ms);
        }
        result.total_measurements +=
            static_cast<int64_t>(evolution.candidates.size());

        // Online model update (no-op for pretrained models); only valid
        // latencies may reach the model.
        if (!measured_states.empty()) {
            const double t0 = now();
            cost_model.update(task_id, measured_states, measured_latency);
            result.model_seconds += now() - t0;
            session.history.push_back(std::move(round_history));
        }

        task.last_improvement =
            std::isfinite(before_best) && before_best > 0.0
                ? std::max(0.0, (before_best - task.best_ms) / before_best)
                : 1.0;
        task.rounds_done += 1;
        result.best_per_task_ms[task_index] = task.best_ms;

        CurvePoint point;
        point.measurements = result.total_measurements;
        point.search_seconds =
            measurer.elapsedSeconds() + result.model_seconds;
        point.workload_latency_ms = workloadLatency();
        result.curve.push_back(point);

        if (options.verbose) {
            inform("round ", round, " task ", task_id, " best ",
                   task.best_ms, "ms workload ",
                   point.workload_latency_ms, "ms");
        }

        if (checkpointing && options.checkpoint_every > 0 &&
            (session.rounds_done % options.checkpoint_every == 0 ||
             round + 1 == options.rounds)) {
            saveCheckpoint(options.checkpoint_path, digest, session,
                           tasks, measurer, cost_model);
        }
    }

    result.best_workload_latency_ms = workloadLatency();
    result.cost_model_name = cost_model.name();
    result.measure_seconds = measurer.elapsedSeconds();
    result.total_search_seconds =
        result.measure_seconds + result.model_seconds;

    const auto &counts = measurer.statusCounts();
    result.status_counts.assign(counts.begin(), counts.end());
    result.failed_measurements = 0;
    for (int s = 1; s < hw::kNumMeasureStatuses; ++s)
        result.failed_measurements += counts[static_cast<size_t>(s)];
    result.wasted_measure_seconds = measurer.failureSeconds();
    result.quarantined_candidates = measurer.quarantineSize();
    return result;
}

Status
verifyCheckpoint(std::istream &is)
{
    return readCheckpoint(is, nullptr, nullptr, nullptr).status();
}

Status
verifyCheckpoint(const std::string &path)
{
    return readCheckpointFile(path, nullptr, nullptr, nullptr).status();
}

} // namespace tlp::tune
