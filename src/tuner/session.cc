#include "tuner/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "schedule/lower.h"
#include "support/logging.h"

namespace tlp::tune {

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Per-task tuning state. */
struct TaskState
{
    ir::SubgraphPtr subgraph;
    int weight = 1;
    double best_ms = std::numeric_limits<double>::infinity();
    int rounds_done = 0;
    double last_improvement = 1.0;
    std::set<uint64_t> measured_hashes;
};

} // namespace

double
TuneResult::timeToReach(double target_latency_ms) const
{
    for (const CurvePoint &point : curve) {
        if (point.workload_latency_ms <= target_latency_ms)
            return point.search_seconds;
    }
    return std::numeric_limits<double>::infinity();
}

TuneResult
tuneWorkload(const ir::Workload &workload,
             const hw::HardwarePlatform &platform,
             model::CostModel &cost_model, const TuneOptions &options)
{
    TLP_CHECK(!workload.subgraphs.empty(), "empty workload");

    std::vector<TaskState> tasks;
    std::vector<sketch::SchedulePolicy> policies;
    for (size_t i = 0; i < workload.subgraphs.size(); ++i) {
        TaskState task;
        task.subgraph = workload.subgraphs[i];
        task.weight = workload.weights[i];
        tasks.push_back(std::move(task));
        policies.emplace_back(workload.subgraphs[i], platform.is_gpu);
    }

    hw::Measurer measurer(platform, options.measure, options.seed);
    Rng rng(options.seed);

    TuneResult result;
    result.best_per_task_ms.assign(tasks.size(),
                                   std::numeric_limits<double>::infinity());

    auto workloadLatency = [&]() {
        double total = 0.0;
        for (const TaskState &task : tasks) {
            if (!std::isfinite(task.best_ms))
                return std::numeric_limits<double>::infinity();
            total += task.best_ms * task.weight;
        }
        return total;
    };

    auto pickTask = [&]() -> size_t {
        // First sweep: round-robin so every task gets a baseline.
        for (size_t i = 0; i < tasks.size(); ++i)
            if (tasks[i].rounds_done == 0)
                return i;
        // Afterwards: Ansor-style priority — the task with the largest
        // weighted remaining latency, boosted by recent improvement.
        double best_score = -1.0;
        size_t best_index = 0;
        for (size_t i = 0; i < tasks.size(); ++i) {
            const TaskState &task = tasks[i];
            const double score = task.best_ms * task.weight *
                                 (0.5 + task.last_improvement);
            if (score > best_score) {
                best_score = score;
                best_index = i;
            }
        }
        return best_index;
    };

    for (int round = 0; round < options.rounds; ++round) {
        const size_t task_index = pickTask();
        TaskState &task = tasks[task_index];
        const int task_id = static_cast<int>(task_index);

        EvolutionResult evolution = evolveOneRound(
            policies[task_index], cost_model, task_id,
            options.measures_per_round, task.measured_hashes,
            options.evolution, rng);
        result.model_seconds += evolution.model_seconds;

        if (evolution.candidates.empty()) {
            task.rounds_done += 1;
            continue;
        }

        // Measure the picked candidates on the (simulated) hardware.
        const double before_best = task.best_ms;
        std::vector<const sched::State *> measured_states;
        std::vector<double> measured_latency;
        for (const auto &state : evolution.candidates) {
            const auto nest = sched::lower(state);
            const double latency = measurer.measureMs(nest);
            task.measured_hashes.insert(state.steps().hash());
            measured_states.push_back(&state);
            measured_latency.push_back(latency);
            task.best_ms = std::min(task.best_ms, latency);
        }
        result.total_measurements +=
            static_cast<int64_t>(measured_latency.size());

        // Online model update (no-op for pretrained models).
        const double t0 = now();
        cost_model.update(task_id, measured_states, measured_latency);
        result.model_seconds += now() - t0;

        task.last_improvement =
            std::isfinite(before_best) && before_best > 0.0
                ? std::max(0.0, (before_best - task.best_ms) / before_best)
                : 1.0;
        task.rounds_done += 1;
        result.best_per_task_ms[task_index] = task.best_ms;

        CurvePoint point;
        point.measurements = result.total_measurements;
        point.search_seconds =
            measurer.elapsedSeconds() + result.model_seconds;
        point.workload_latency_ms = workloadLatency();
        result.curve.push_back(point);

        if (options.verbose) {
            inform("round ", round, " task ", task_id, " best ",
                   task.best_ms, "ms workload ",
                   point.workload_latency_ms, "ms");
        }
    }

    result.best_workload_latency_ms = workloadLatency();
    result.measure_seconds = measurer.elapsedSeconds();
    result.total_search_seconds =
        result.measure_seconds + result.model_seconds;
    return result;
}

} // namespace tlp::tune
