#include "tuner/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "schedule/lower.h"
#include "support/io_env.h"
#include "support/logging.h"

namespace tlp::tune {

namespace {

constexpr uint32_t kSessionMagic = kSessionCheckpointMagic;   // "TLPS"
// v4 widens CurvePoint with the simulated-seconds column and appends the
// session phase byte so a service can tell a cleanly finished session
// from a mid-flight one without knowing its budget; v2/v3 checkpoints
// still load (narrow curve points, phase derived from the round count).
// v1 (flat stream) checkpoints get a clean versioned error, not a parse
// crash.
constexpr uint32_t kSessionVersion = 4;
constexpr uint32_t kMinSessionVersion = 2;
constexpr uint32_t kStateTag = sectionTag("STAT");

double
now()
{
    return std::chrono::duration<double>(
               // tlp-lint: allow(wallclock) -- session wall-time budget and round timestamps; search decisions stay seeded
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** CurvePoint layout of v2/v3 checkpoints (no measure_seconds column). */
struct CurvePointV3
{
    int64_t measurements = 0;
    double search_seconds = 0.0;
    double workload_latency_ms = 0.0;
};

/** One task's slice of a parsed checkpoint. */
struct TaskCheckpoint
{
    double best_ms = 0.0;
    int32_t rounds_done = 0;
    double last_improvement = 1.0;
    std::vector<uint64_t> measured_hashes;
};

/** One measured round of a parsed checkpoint. */
struct RoundCheckpoint
{
    int32_t task_id = 0;
    std::vector<sched::PrimitiveSeq> seqs;
    std::vector<double> latency_ms;
};

/** Everything a "TLPS" checkpoint carries, in parser-owned types. */
struct CheckpointState
{
    int rounds_done = 0;
    Rng rng{0};
    SessionPhase phase = SessionPhase::Created;
    double model_seconds = 0.0;
    int64_t total_measurements = 0;
    std::vector<CurvePoint> curve;
    std::vector<double> best_per_task_ms;
    std::vector<TaskCheckpoint> tasks;
    std::vector<RoundCheckpoint> history;
    /** v3+: name of the cost model the checkpoint was taken with. */
    std::string model_name;
    /** v3+: opaque cost-model state (applied after history replay). */
    std::string model_state;
};

uint64_t
mixDouble(uint64_t hash, double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return hashCombine(hash, bits);
}

/**
 * Digest of everything that determines the session trajectory. A
 * checkpoint taken under one configuration must not silently resume
 * under another.
 */
uint64_t
configDigest(const ir::Workload &workload,
             const hw::HardwarePlatform &platform,
             const TuneOptions &options)
{
    uint64_t hash = options.seed;
    for (size_t i = 0; i < workload.subgraphs.size(); ++i) {
        const std::string &key = workload.subgraphs[i]->key();
        hash = hashCombine(hash, fnv1a(key.data(), key.size()));
        hash = hashCombine(hash,
                           static_cast<uint64_t>(workload.weights[i]));
    }
    hash = hashCombine(hash, fnv1a(platform.name.data(),
                                   platform.name.size()));
    // options.rounds is deliberately NOT digested: the total budget only
    // decides when to stop, so a killed campaign may resume with a
    // larger one.
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.measures_per_round));
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.evolution.population));
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.evolution.iterations));
    hash = hashCombine(
        hash, static_cast<uint64_t>(options.evolution.children_per_iter));
    hash = mixDouble(hash, options.evolution.eps_greedy);
    hash = hashCombine(hash, static_cast<uint64_t>(options.measure.repeats));
    hash = mixDouble(hash, options.measure.noise_std);
    hash = mixDouble(hash, options.measure.seconds_per_measure);
    hash = hashCombine(hash,
                       static_cast<uint64_t>(options.measure.max_retries));
    hash = hashCombine(
        hash, static_cast<uint64_t>(options.measure.quarantine_after));
    hash = hashCombine(hash, options.measure.faults.digest());
    return hash;
}

/**
 * Parse a checkpoint stream into parser-owned state. With null
 * @p expect_digest / @p expect_tasks / @p measurer the state is fully
 * validated but applied nowhere (the verifyCheckpoint path). Returns a
 * Status instead of dying on corrupt, truncated, version-skewed, or
 * foreign files.
 */
Result<CheckpointState>
readCheckpoint(std::istream &is, const uint64_t *expect_digest,
               const size_t *expect_tasks, hw::Measurer *measurer)
{
    CheckpointState state;
    const Status status = guardedParse([&] {
        BinaryReader reader(is);
        const uint32_t version = readHeader(
            reader, kSessionMagic, kMinSessionVersion, kSessionVersion);
        Section section = readSection(reader);
        if (section.tag != kStateTag) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "unexpected checkpoint section " +
                                     sectionTagName(section.tag));
        }
        if (!section.crc_ok) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "checkpoint checksum mismatch");
        }
        if (reader.remaining() != 0) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "trailing bytes after checkpoint state");
        }

        std::istringstream payload(section.payload);
        BinaryReader body(payload);
        const auto saved_digest = body.readPod<uint64_t>();
        if (expect_digest && saved_digest != *expect_digest) {
            throw SerializeError(
                ErrorCode::Invalid,
                "checkpoint was taken under a different session "
                "configuration (workload, platform, seed, or options "
                "changed)");
        }
        state.rounds_done = body.readPod<int32_t>();
        state.rng = Rng::deserialize(body);
        if (measurer) {
            measurer->deserializeState(body);
        } else {
            // Verification only: parse into a scratch measurer (the
            // platform is irrelevant, deserializeState overwrites all
            // state it touches).
            hw::Measurer scratch(
                hw::HardwarePlatform::preset("i7-10510u"),
                hw::MeasureOptions{}, 0);
            scratch.deserializeState(body);
        }

        state.model_seconds = body.readPod<double>();
        state.total_measurements = body.readPod<int64_t>();
        if (version >= 4) {
            state.curve = body.readVector<CurvePoint>();
        } else {
            // v2/v3: narrow curve points; the simulated-seconds column
            // is unknowable after the fact and reads back as zero.
            const auto narrow = body.readVector<CurvePointV3>();
            state.curve.reserve(narrow.size());
            for (const CurvePointV3 &old : narrow) {
                CurvePoint point;
                point.measurements = old.measurements;
                point.search_seconds = old.search_seconds;
                point.workload_latency_ms = old.workload_latency_ms;
                state.curve.push_back(point);
            }
        }
        state.best_per_task_ms = body.readVector<double>();

        const auto num_tasks = body.readPod<uint32_t>();
        if (expect_tasks && num_tasks != *expect_tasks) {
            throw SerializeError(ErrorCode::Invalid,
                                 "checkpoint has " +
                                     std::to_string(num_tasks) +
                                     " tasks, session has " +
                                     std::to_string(*expect_tasks));
        }
        // A task entry costs >= 28 stream bytes.
        if (num_tasks > body.remaining() / 28 + 1) {
            throw SerializeError(ErrorCode::Truncated,
                                 "checkpoint task count " +
                                     std::to_string(num_tasks) +
                                     " exceeds the remaining stream");
        }
        state.tasks.resize(num_tasks);
        for (uint32_t i = 0; i < num_tasks; ++i) {
            TaskCheckpoint &task = state.tasks[i];
            task.best_ms = body.readPod<double>();
            task.rounds_done = body.readPod<int32_t>();
            task.last_improvement = body.readPod<double>();
            task.measured_hashes = body.readVector<uint64_t>();
        }

        const auto num_rounds = body.readPod<uint64_t>();
        if (num_rounds > body.remaining() / 8 + 1) {
            throw SerializeError(ErrorCode::Truncated,
                                 "checkpoint round count " +
                                     std::to_string(num_rounds) +
                                     " exceeds the remaining stream");
        }
        state.history.reserve(num_rounds);
        for (uint64_t r = 0; r < num_rounds; ++r) {
            RoundCheckpoint round;
            round.task_id = body.readPod<int32_t>();
            const auto count = body.readPod<uint32_t>();
            for (uint32_t i = 0; i < count; ++i) {
                round.seqs.push_back(
                    sched::PrimitiveSeq::deserialize(body));
                round.latency_ms.push_back(body.readPod<double>());
            }
            state.history.push_back(std::move(round));
        }
        if (version >= 3) {
            state.model_name = body.readString();
            state.model_state = body.readString();
        }
        if (version >= 4) {
            const auto phase = body.readPod<uint8_t>();
            if (phase > static_cast<uint8_t>(SessionPhase::Finished)) {
                throw SerializeError(ErrorCode::Corrupt,
                                     "invalid session phase " +
                                         std::to_string(phase));
            }
            state.phase = static_cast<SessionPhase>(phase);
        } else {
            state.phase = state.rounds_done > 0 ? SessionPhase::Running
                                                : SessionPhase::Created;
        }
        if (body.remaining() != 0) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "trailing bytes in checkpoint state");
        }
    });
    if (!status.ok())
        return status;
    return state;
}

Result<CheckpointState>
readCheckpointFile(const std::string &path, const uint64_t *expect_digest,
                   const size_t *expect_tasks, hw::Measurer *measurer)
{
    const Status injected = IoEnv::global().checkRead(path);
    if (!injected.ok())
        return injected;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open for read: " + path);
    }
    return readCheckpoint(is, expect_digest, expect_tasks, measurer);
}

bool
fileExists(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return is.good();
}

} // namespace

std::string
sessionPhaseName(SessionPhase phase)
{
    switch (phase) {
      case SessionPhase::Created:  return "created";
      case SessionPhase::Running:  return "running";
      case SessionPhase::Finished: return "finished";
    }
    return "unknown";
}

double
TuneResult::timeToReach(double target_latency_ms) const
{
    for (const CurvePoint &point : curve) {
        if (point.workload_latency_ms <= target_latency_ms)
            return point.search_seconds;
    }
    return std::numeric_limits<double>::infinity();
}

TuningSession::TuningSession(const ir::Workload &workload,
                             const hw::HardwarePlatform &platform,
                             model::CostModel &cost_model,
                             const TuneOptions &options)
    : platform_(platform), cost_model_(cost_model), options_(options),
      digest_(configDigest(workload, platform, options)),
      measurer_(platform, options.measure, options.seed),
      rng_(options.seed)
{
    TLP_CHECK(!workload.subgraphs.empty(), "empty workload");
    for (size_t i = 0; i < workload.subgraphs.size(); ++i) {
        TaskState task;
        task.subgraph = workload.subgraphs[i];
        task.weight = workload.weights[i];
        tasks_.push_back(std::move(task));
        policies_.emplace_back(workload.subgraphs[i], platform.is_gpu);
    }
    result_.best_per_task_ms.assign(
        tasks_.size(), std::numeric_limits<double>::infinity());
}

double
TuningSession::simulatedSeconds() const
{
    return measurer_.elapsedSeconds();
}

bool
TuningSession::checkpointExists() const
{
    return !options_.checkpoint_path.empty() &&
           fileExists(options_.checkpoint_path);
}

Status
TuningSession::resumeFromCheckpoint()
{
    if (options_.checkpoint_path.empty()) {
        return Status::error(ErrorCode::Invalid,
                             "session has no checkpoint path configured");
    }
    const size_t expect_tasks = tasks_.size();
    Result<CheckpointState> loaded =
        readCheckpointFile(options_.checkpoint_path, &digest_,
                           &expect_tasks, &measurer_);
    if (!loaded.ok())
        return loaded.status();
    CheckpointState state = loaded.take();

    if (!state.model_name.empty() &&
        state.model_name != cost_model_.name()) {
        return Status::error(
            ErrorCode::Invalid,
            "checkpoint was taken with cost model '" + state.model_name +
                "', this session uses '" + cost_model_.name() + "'");
    }

    rounds_done_ = state.rounds_done;
    rng_ = state.rng;
    result_.model_seconds = state.model_seconds;
    result_.total_measurements = state.total_measurements;
    result_.curve = std::move(state.curve);
    result_.best_per_task_ms = std::move(state.best_per_task_ms);
    for (size_t i = 0; i < tasks_.size(); ++i) {
        TaskState &task = tasks_[i];
        const TaskCheckpoint &saved = state.tasks[i];
        task.best_ms = saved.best_ms;
        task.rounds_done = saved.rounds_done;
        task.last_improvement = saved.last_improvement;
        task.measured_hashes.clear();
        task.measured_hashes.insert(saved.measured_hashes.begin(),
                                    saved.measured_hashes.end());
    }

    // Rebuild the online model by replaying the measured history in the
    // original round order; pretrained models ignore update().
    history_.clear();
    history_.reserve(state.history.size());
    for (RoundCheckpoint &saved : state.history) {
        std::vector<sched::State> states;
        states.reserve(saved.seqs.size());
        const auto &subgraph =
            tasks_[static_cast<size_t>(saved.task_id)].subgraph;
        for (const auto &seq : saved.seqs) {
            states.push_back(
                sched::replaySteps(subgraph, platform_.is_gpu, seq));
        }
        std::vector<const sched::State *> state_ptrs;
        for (const auto &replayed : states)
            state_ptrs.push_back(&replayed);
        cost_model_.update(saved.task_id, state_ptrs, saved.latency_ms);
        RoundHistory round;
        round.task_id = saved.task_id;
        round.seqs = std::move(saved.seqs);
        round.latency_ms = std::move(saved.latency_ms);
        history_.push_back(std::move(round));
    }

    // The v3+ model-state blob is applied AFTER replay: replay warms the
    // online models, then the blob overwrites the state replay cannot
    // reconstruct — scoring-time failovers, health counters, rng cursors
    // (v2 checkpoints carry no blob and skip this).
    if (!state.model_state.empty()) {
        std::istringstream buffer(state.model_state, std::ios::binary);
        BinaryReader blob(buffer);
        const Status blob_status = guardedParse(
            [&] { cost_model_.deserializeState(blob); });
        if (!blob_status.ok()) {
            return Status::error(blob_status.code(),
                                 "cannot restore cost-model state: " +
                                     blob_status.message());
        }
    }

    // The stored phase is advisory (the budget may have grown since the
    // checkpoint); derive the live phase from the restored round count.
    phase_ = rounds_done_ >= options_.rounds ? SessionPhase::Finished
             : rounds_done_ > 0              ? SessionPhase::Running
                                             : SessionPhase::Created;
    if (options_.verbose) {
        inform("resumed session from ", options_.checkpoint_path,
               " at round ", rounds_done_, " (",
               sessionPhaseName(phase_), ")");
    }
    return Status();
}

Status
TuningSession::saveCheckpoint() const
{
    // Atomic write (tmp + rename) so a crash or full disk mid-write
    // never clobbers the previous good checkpoint; a failed write only
    // costs checkpoint freshness, never the running campaign.
    return atomicWriteFile(options_.checkpoint_path, [&](std::ostream &os) {
        BinaryWriter writer(os);
        writeHeader(writer, kSessionMagic, kSessionVersion);
        writeSection(writer, kStateTag, [&](BinaryWriter &w) {
            w.writePod(digest_);
            w.writePod<int32_t>(rounds_done_);
            rng_.serialize(w);
            measurer_.serializeState(w);

            w.writePod(result_.model_seconds);
            w.writePod(result_.total_measurements);
            w.writeVector(result_.curve);
            w.writeVector(result_.best_per_task_ms);

            w.writePod<uint32_t>(static_cast<uint32_t>(tasks_.size()));
            for (const TaskState &task : tasks_) {
                w.writePod(task.best_ms);
                w.writePod<int32_t>(task.rounds_done);
                w.writePod(task.last_improvement);
                std::vector<uint64_t> hashes(task.measured_hashes.begin(),
                                             task.measured_hashes.end());
                w.writeVector(hashes);
            }

            w.writePod<uint64_t>(history_.size());
            for (const RoundHistory &round : history_) {
                w.writePod<int32_t>(round.task_id);
                w.writePod<uint32_t>(
                    static_cast<uint32_t>(round.seqs.size()));
                for (size_t i = 0; i < round.seqs.size(); ++i) {
                    round.seqs[i].serialize(w);
                    w.writePod(round.latency_ms[i]);
                }
            }

            // v3: cost-model identity + state blob. The blob carries
            // what history replay cannot rebuild (fallback position,
            // health counters, rng cursors); plain models write an
            // empty blob.
            w.writeString(cost_model_.name());
            std::ostringstream model_buffer(std::ios::binary);
            BinaryWriter model_writer(model_buffer);
            cost_model_.serializeState(model_writer);
            w.writeString(model_buffer.str());

            // v4: the phase the session was in when the checkpoint was
            // taken.
            w.writePod<uint8_t>(static_cast<uint8_t>(phase_));
        });
    });
}

double
TuningSession::workloadLatency() const
{
    double total = 0.0;
    for (const TaskState &task : tasks_) {
        if (!std::isfinite(task.best_ms))
            return std::numeric_limits<double>::infinity();
        total += task.best_ms * task.weight;
    }
    return total;
}

size_t
TuningSession::pickTask() const
{
    // First sweep: round-robin so every task gets a baseline.
    for (size_t i = 0; i < tasks_.size(); ++i)
        if (tasks_[i].rounds_done == 0)
            return i;
    // Afterwards: Ansor-style priority — the task with the largest
    // weighted remaining latency, boosted by recent improvement.
    double best_score = -1.0;
    size_t best_index = 0;
    for (size_t i = 0; i < tasks_.size(); ++i) {
        const TaskState &task = tasks_[i];
        const double score = task.best_ms * task.weight *
                             (0.5 + task.last_improvement);
        if (score > best_score) {
            best_score = score;
            best_index = i;
        }
    }
    return best_index;
}

bool
TuningSession::step()
{
    if (done())
        return false;
    phase_ = SessionPhase::Running;

    const int round = rounds_done_;
    const size_t task_index = pickTask();
    TaskState &task = tasks_[task_index];
    const int task_id = static_cast<int>(task_index);

    EvolutionResult evolution = evolveOneRound(
        policies_[task_index], cost_model_, task_id,
        options_.measures_per_round, task.measured_hashes,
        options_.evolution, rng_);
    result_.model_seconds += evolution.model_seconds;
    rounds_done_ = round + 1;

    if (!evolution.candidates.empty()) {
        // Measure the picked candidates on the (simulated) hardware.
        // Failed measurements burn wall clock but contribute neither to
        // the best-latency curve nor to the online model; every measured
        // hash is recorded so failing candidates are not re-proposed.
        const double before_best = task.best_ms;
        std::vector<const sched::State *> measured_states;
        std::vector<double> measured_latency;
        RoundHistory round_history;
        round_history.task_id = task_id;
        for (const auto &state : evolution.candidates) {
            const auto nest = sched::lower(state);
            const auto measured = measurer_.measure(nest);
            task.measured_hashes.insert(state.steps().hash());
            if (!measured.ok())
                continue;
            measured_states.push_back(&state);
            measured_latency.push_back(measured.latency_ms);
            round_history.seqs.push_back(state.steps());
            round_history.latency_ms.push_back(measured.latency_ms);
            task.best_ms = std::min(task.best_ms, measured.latency_ms);
        }
        result_.total_measurements +=
            static_cast<int64_t>(evolution.candidates.size());

        // Online model update (no-op for pretrained models); only valid
        // latencies may reach the model.
        if (!measured_states.empty()) {
            const double t0 = now();
            cost_model_.update(task_id, measured_states,
                               measured_latency);
            result_.model_seconds += now() - t0;
            history_.push_back(std::move(round_history));
        }

        task.last_improvement =
            std::isfinite(before_best) && before_best > 0.0
                ? std::max(0.0, (before_best - task.best_ms) / before_best)
                : 1.0;
        task.rounds_done += 1;
        result_.best_per_task_ms[task_index] = task.best_ms;

        CurvePoint point;
        point.measurements = result_.total_measurements;
        point.measure_seconds = measurer_.elapsedSeconds();
        point.search_seconds =
            point.measure_seconds + result_.model_seconds;
        point.workload_latency_ms = workloadLatency();
        result_.curve.push_back(point);

        if (options_.verbose) {
            inform("round ", round, " task ", task_id, " best ",
                   task.best_ms, "ms workload ",
                   point.workload_latency_ms, "ms");
        }
    } else {
        task.rounds_done += 1;
    }

    if (rounds_done_ >= options_.rounds)
        phase_ = SessionPhase::Finished;

    // Checkpoint cadence. Deliberately NOT skipped on rounds without
    // candidates: with checkpoint_every = 1 the checkpoint after the
    // final round must always exist, so a crash before result emission
    // never re-measures a completed round on resume.
    last_ckpt_status_ = Status();
    if (checkpointing_enabled_ && !options_.checkpoint_path.empty() &&
        options_.checkpoint_every > 0 &&
        (rounds_done_ % options_.checkpoint_every == 0 ||
         rounds_done_ == options_.rounds)) {
        last_ckpt_status_ = saveCheckpoint();
        if (!last_ckpt_status_.ok()) {
            ckpt_failures_ += 1;
            warn("checkpoint write skipped (previous checkpoint kept): ",
                 last_ckpt_status_.toString());
        }
    }
    return rounds_done_ < options_.rounds;
}

const TuneResult &
TuningSession::finish()
{
    phase_ = SessionPhase::Finished;
    result_.best_workload_latency_ms = workloadLatency();
    result_.cost_model_name = cost_model_.name();
    result_.measure_seconds = measurer_.elapsedSeconds();
    result_.total_search_seconds =
        result_.measure_seconds + result_.model_seconds;

    const auto &counts = measurer_.statusCounts();
    result_.status_counts.assign(counts.begin(), counts.end());
    result_.failed_measurements = 0;
    for (int s = 1; s < hw::kNumMeasureStatuses; ++s)
        result_.failed_measurements += counts[static_cast<size_t>(s)];
    result_.wasted_measure_seconds = measurer_.failureSeconds();
    result_.quarantined_candidates = measurer_.quarantineSize();
    return result_;
}

TuneResult
tuneWorkload(const ir::Workload &workload,
             const hw::HardwarePlatform &platform,
             model::CostModel &cost_model, const TuneOptions &options)
{
    TuningSession session(workload, platform, cost_model, options);

    if (options.resume && !options.checkpoint_path.empty()) {
        if (!session.checkpointExists()) {
            inform("no checkpoint at ", options.checkpoint_path,
                   "; starting a fresh session");
        } else {
            const Status status = session.resumeFromCheckpoint();
            if (!status.ok()) {
                // tlp-lint: allow(loader-fatal) -- CLI boundary: --resume failure is terminal by design; resumeFromCheckpoint is the Result-returning loader
                TLP_FATAL("cannot resume from checkpoint ",
                          options.checkpoint_path, ": ",
                          status.toString(),
                          "; delete the file or drop --resume to start "
                          "fresh");
            }
        }
    }

    while (session.step()) {
    }
    return session.finish();
}

Status
verifyCheckpoint(std::istream &is)
{
    return readCheckpoint(is, nullptr, nullptr, nullptr).status();
}

Status
verifyCheckpoint(const std::string &path)
{
    return readCheckpointFile(path, nullptr, nullptr, nullptr).status();
}

} // namespace tlp::tune
