/**
 * @file
 * End-to-end tuning session (the Ansor driver of paper Sec. 6.3).
 *
 * A session tunes every subgraph (task) of a workload on one platform:
 * each round, a task is chosen by the scheduler, one evolution round
 * proposes candidates, the top picks are "measured" on the simulated
 * hardware, the online model (if any) is updated, and the workload
 * latency curve — sum over tasks of weight x best latency — is recorded
 * against both measurement count and accumulated search time.
 *
 * Search time = simulated measurement wall clock (the dominant cost on
 * real hardware) + real wall clock spent in the cost model and feature
 * extraction. The latter is where TLP beats lowering-based baselines
 * (Fig. 10).
 *
 * The session tolerates measurement failures (hw::FaultProfile): failed
 * candidates never update the online model or the best-latency curve —
 * the curve stays monotone under any fault rate — but their wall clock
 * still counts as search time.
 *
 * A session is a fully resumable value (DESIGN.md §12): TuningSession
 * holds every piece of loop-carried state explicitly — phase, rng,
 * per-task state, measurer streams, measured history, partial result —
 * and round-trips it through the checksummed "TLPS" checkpoint artifact.
 * One step() call runs exactly one round, so a driver (tuneWorkload, or
 * the multi-session service in tuner/service) can interleave, kill, and
 * resume sessions at any round boundary; the resumed run reproduces the
 * uninterrupted run's curve exactly in measurement counts, latencies and
 * simulated measurement seconds (model wall clock is real time and
 * therefore only approximately reproducible).
 */
#pragma once

#include <iosfwd>

#include "hwmodel/measurer.h"
#include "ir/subgraph.h"
#include "models/cost_model.h"
#include "sketch/policy.h"
#include "support/result.h"
#include "tuner/evolution.h"

namespace tlp::tune {

/** Session parameters. */
struct TuneOptions
{
    int rounds = 200;              ///< total rounds across all tasks
    int measures_per_round = 10;   ///< paper: 10 -> 2000 measurements
    EvolutionOptions evolution;
    hw::MeasureOptions measure;
    uint64_t seed = 0x702e;
    bool verbose = false;

    // --- crash safety ---
    /** Checkpoint file path; empty disables checkpointing. */
    std::string checkpoint_path;
    /** Rounds between checkpoint writes (also written after the final
     *  round). */
    int checkpoint_every = 5;
    /** Resume from checkpoint_path when it exists; the session then
     *  continues to a curve bit-identical (in measurements and latency)
     *  to an uninterrupted run. */
    bool resume = false;
};

/** One point of the tuning curve. */
struct CurvePoint
{
    int64_t measurements = 0;
    double search_seconds = 0.0;
    double workload_latency_ms = 0.0;
    /** Simulated measurement seconds only (search_seconds minus the real
     *  model wall clock): the bit-reproducible part of the x axis. */
    double measure_seconds = 0.0;
};

/** Session outcome. */
struct TuneResult
{
    /** Identity of the cost model that drove the search (for a
     *  GuardedCostModel this is the whole ladder, e.g.
     *  "guarded:tlp>ansor-online>random"). */
    std::string cost_model_name;
    std::vector<CurvePoint> curve;
    double best_workload_latency_ms = 0.0;
    std::vector<double> best_per_task_ms;
    int64_t total_measurements = 0;
    double total_search_seconds = 0.0;
    double model_seconds = 0.0;      ///< cost model + features + lowering
    double measure_seconds = 0.0;    ///< simulated hardware time

    // --- measurement robustness accounting ---
    /** Measurement requests that ended in a failure class. */
    int64_t failed_measurements = 0;
    /** Simulated seconds wasted on failed attempts (incl. retries). */
    double wasted_measure_seconds = 0.0;
    /** Final-status counts indexed by hw::MeasureStatus. */
    std::vector<int64_t> status_counts;
    /** Candidates quarantined by the measurer. */
    int64_t quarantined_candidates = 0;

    /** First search time at which the curve reaches @p target latency;
     *  +inf when never reached (or the curve is empty). */
    double timeToReach(double target_latency_ms) const;
};

/** Lifecycle phase of a TuningSession (DESIGN.md §12). */
enum class SessionPhase : uint8_t
{
    Created = 0,    ///< constructed (or resumed at round 0); no round run
    Running,        ///< mid-campaign: rounds done, budget not exhausted
    Finished,       ///< finalized: budget exhausted or finished early
};

/** Short phase name, e.g. "running". */
std::string sessionPhaseName(SessionPhase phase);

/**
 * One tuning session as an explicit, resumable state machine.
 *
 * All loop-carried state lives in members (never in locals of a driver
 * loop): the search rng, per-task bests and measured-hash sets, the
 * measurer's noise stream and quarantine, the measured-round history the
 * online model is replayed from, and the partial TuneResult. step() runs
 * exactly one round and handles the checkpoint cadence; finish()
 * finalizes the result. Checkpoints are written atomically in the "TLPS"
 * format and survive kill -9 at any instant; resumeFromCheckpoint()
 * returns a Status (never aborts) so multi-session drivers can
 * quarantine a damaged checkpoint and keep serving.
 *
 * Phase transitions:
 *
 *    Created --step()--> Running --budget exhausted--> Finished
 *       |                                                 ^
 *       +--- finish() (empty run or early finalize) ------+
 */
class TuningSession
{
  public:
    /** Build a fresh session; no checkpoint I/O happens here. */
    TuningSession(const ir::Workload &workload,
                  const hw::HardwarePlatform &platform,
                  model::CostModel &cost_model,
                  const TuneOptions &options);

    TuningSession(const TuningSession &) = delete;
    TuningSession &operator=(const TuningSession &) = delete;

    SessionPhase phase() const { return phase_; }
    int roundsDone() const { return rounds_done_; }
    int roundBudget() const { return options_.rounds; }

    /** True when the round budget is exhausted (or finished early). */
    bool
    done() const
    {
        return phase_ == SessionPhase::Finished ||
               rounds_done_ >= options_.rounds;
    }

    /** Simulated measurement seconds consumed so far (deterministic,
     *  survives checkpoint/resume bit-exactly). */
    double simulatedSeconds() const;

    /** True when a checkpoint file exists at options.checkpoint_path. */
    bool checkpointExists() const;

    /**
     * Load the checkpoint at options.checkpoint_path and apply it:
     * restores rounds/rng/measurer/result/task state, replays the
     * measured history into the cost model, then applies the v3+ model
     * state blob. Any failure — unreadable, corrupt, truncated,
     * version-skewed, foreign configuration, or mismatched cost model —
     * comes back as a Status with the session untouched enough to start
     * fresh; it never terminates the process.
     */
    Status resumeFromCheckpoint();

    /**
     * Run exactly one tuning round: pick a task, evolve, measure, feed
     * the online model, extend the curve, and write a checkpoint when
     * the cadence (checkpoint_every, or the final round) says so — also
     * on rounds that yielded no candidates, so a checkpoint_every=1
     * session never re-runs a completed round after a crash.
     *
     * @return true while rounds remain in the budget.
     */
    bool step();

    /** Write a checkpoint immediately (step() handles the cadence). */
    Status saveCheckpoint() const;

    /** Status of the cadence-triggered checkpoint write of the most
     *  recent step(): Ok when none was due or it landed; the error
     *  otherwise. A service observes this to retry/degrade without the
     *  session's trajectory ever noticing (DESIGN.md §14). */
    const Status &lastCheckpointStatus() const
    {
        return last_ckpt_status_;
    }

    /** Cadence-triggered checkpoint writes that failed so far. */
    int64_t checkpointFailures() const { return ckpt_failures_; }

    /**
     * Enable/disable checkpoint writes at runtime — the service's
     * Checkpointless degraded mode (DESIGN.md §14). Purely an I/O
     * policy switch: tuning state, rng draws, and the curve are
     * untouched; a crash while disabled costs re-running rounds on
     * resume, never correctness.
     */
    void setCheckpointingEnabled(bool enabled)
    {
        checkpointing_enabled_ = enabled;
    }
    bool checkpointingEnabled() const { return checkpointing_enabled_; }

    /**
     * Finalize the result from the accumulated state and transition to
     * Finished (idempotent; also usable before the budget is exhausted,
     * e.g. by a service-level deadline watchdog).
     */
    const TuneResult &finish();

    /** The (partial until finish()) result accumulated so far. */
    const TuneResult &result() const { return result_; }

  private:
    /** Per-task tuning state. */
    struct TaskState
    {
        ir::SubgraphPtr subgraph;
        int weight = 1;
        double best_ms = std::numeric_limits<double>::infinity();
        int rounds_done = 0;
        double last_improvement = 1.0;
        std::set<uint64_t> measured_hashes;
    };

    /** Successful measurements of one round, kept for model replay. */
    struct RoundHistory
    {
        int task_id = 0;
        std::vector<sched::PrimitiveSeq> seqs;
        std::vector<double> latency_ms;
    };

    /** Sum over tasks of weight x best latency (inf until every task
     *  has a finite best). */
    double workloadLatency() const;

    /** Ansor-style task scheduler: next task to spend a round on. */
    size_t pickTask() const;

    const hw::HardwarePlatform platform_;
    model::CostModel &cost_model_;
    const TuneOptions options_;
    const uint64_t digest_;

    std::vector<TaskState> tasks_;
    std::vector<sketch::SchedulePolicy> policies_;
    hw::Measurer measurer_;

    SessionPhase phase_ = SessionPhase::Created;
    int rounds_done_ = 0;
    Rng rng_;
    TuneResult result_;
    std::vector<RoundHistory> history_;
    bool checkpointing_enabled_ = true;
    Status last_ckpt_status_;
    int64_t ckpt_failures_ = 0;
};

/** Tune @p workload on @p platform guided by @p cost_model. */
TuneResult tuneWorkload(const ir::Workload &workload,
                        const hw::HardwarePlatform &platform,
                        model::CostModel &cost_model,
                        const TuneOptions &options);

/** On-disk header magic of the tuning-checkpoint artifact, "TLPS" —
 *  the artifact audit (src/artifact) keys format detection on it. */
inline constexpr uint32_t kSessionCheckpointMagic = 0x544c5053;

/**
 * Parse and integrity-check a checkpoint file (framing, checksum, every
 * field) without resuming from it. Ok means a resume would accept the
 * file structurally; a corrupt, truncated, or version-skewed file comes
 * back as a Status instead of killing the process.
 */
Status verifyCheckpoint(const std::string &path);

/** Stream variant of verifyCheckpoint, for tests and tools. */
Status verifyCheckpoint(std::istream &is);

} // namespace tlp::tune
