/**
 * @file
 * End-to-end tuning session (the Ansor driver of paper Sec. 6.3).
 *
 * A session tunes every subgraph (task) of a workload on one platform:
 * each round, a task is chosen by the scheduler, one evolution round
 * proposes candidates, the top picks are "measured" on the simulated
 * hardware, the online model (if any) is updated, and the workload
 * latency curve — sum over tasks of weight x best latency — is recorded
 * against both measurement count and accumulated search time.
 *
 * Search time = simulated measurement wall clock (the dominant cost on
 * real hardware) + real wall clock spent in the cost model and feature
 * extraction. The latter is where TLP beats lowering-based baselines
 * (Fig. 10).
 *
 * The session tolerates measurement failures (hw::FaultProfile): failed
 * candidates never update the online model or the best-latency curve —
 * the curve stays monotone under any fault rate — but their wall clock
 * still counts as search time. Sessions can also checkpoint to disk
 * every N rounds and resume after a crash; the resumed run reproduces
 * the uninterrupted run's curve exactly in measurement counts, latencies
 * and simulated measurement seconds (model wall clock is real time and
 * therefore only approximately reproducible).
 */
#pragma once

#include <iosfwd>

#include "hwmodel/measurer.h"
#include "ir/subgraph.h"
#include "models/cost_model.h"
#include "support/result.h"
#include "tuner/evolution.h"

namespace tlp::tune {

/** Session parameters. */
struct TuneOptions
{
    int rounds = 200;              ///< total rounds across all tasks
    int measures_per_round = 10;   ///< paper: 10 -> 2000 measurements
    EvolutionOptions evolution;
    hw::MeasureOptions measure;
    uint64_t seed = 0x702e;
    bool verbose = false;

    // --- crash safety ---
    /** Checkpoint file path; empty disables checkpointing. */
    std::string checkpoint_path;
    /** Rounds between checkpoint writes (also written after the final
     *  round). */
    int checkpoint_every = 5;
    /** Resume from checkpoint_path when it exists; the session then
     *  continues to a curve bit-identical (in measurements and latency)
     *  to an uninterrupted run. */
    bool resume = false;
};

/** One point of the tuning curve. */
struct CurvePoint
{
    int64_t measurements = 0;
    double search_seconds = 0.0;
    double workload_latency_ms = 0.0;
};

/** Session outcome. */
struct TuneResult
{
    /** Identity of the cost model that drove the search (for a
     *  GuardedCostModel this is the whole ladder, e.g.
     *  "guarded:tlp>ansor-online>random"). */
    std::string cost_model_name;
    std::vector<CurvePoint> curve;
    double best_workload_latency_ms = 0.0;
    std::vector<double> best_per_task_ms;
    int64_t total_measurements = 0;
    double total_search_seconds = 0.0;
    double model_seconds = 0.0;      ///< cost model + features + lowering
    double measure_seconds = 0.0;    ///< simulated hardware time

    // --- measurement robustness accounting ---
    /** Measurement requests that ended in a failure class. */
    int64_t failed_measurements = 0;
    /** Simulated seconds wasted on failed attempts (incl. retries). */
    double wasted_measure_seconds = 0.0;
    /** Final-status counts indexed by hw::MeasureStatus. */
    std::vector<int64_t> status_counts;
    /** Candidates quarantined by the measurer. */
    int64_t quarantined_candidates = 0;

    /** First search time at which the curve reaches @p target latency;
     *  +inf when never reached. */
    double timeToReach(double target_latency_ms) const;
};

/** Tune @p workload on @p platform guided by @p cost_model. */
TuneResult tuneWorkload(const ir::Workload &workload,
                        const hw::HardwarePlatform &platform,
                        model::CostModel &cost_model,
                        const TuneOptions &options);

/**
 * Parse and integrity-check a checkpoint file (framing, checksum, every
 * field) without resuming from it. Ok means a resume would accept the
 * file structurally; a corrupt, truncated, or version-skewed file comes
 * back as a Status instead of killing the process.
 */
Status verifyCheckpoint(const std::string &path);

/** Stream variant of verifyCheckpoint, for tests and tools. */
Status verifyCheckpoint(std::istream &is);

} // namespace tlp::tune
