/**
 * @file
 * Crash-safe multi-session tuning service (DESIGN.md §12).
 *
 * TuningService multiplexes many TuningSession state machines over one
 * process: admission control with a bounded FIFO queue and deterministic
 * shedding, cooperative round-robin scheduling (one session round per
 * tick — rounds internally fan out over the global ThreadPool, so the
 * service composes with TLP_NUM_THREADS instead of nesting pools),
 * per-session simulated-seconds deadlines, seeded exponential backoff on
 * injected transient faults, model-snapshot hot-swap behind a health
 * probe, and crash-safe recovery: on restart the service sweeps stale
 * atomic-write temp files, re-adopts every recoverable checkpoint in
 * its directory, quarantines damaged ones (renamed *.quarantined.N,
 * never a process abort, every generation of evidence kept), and
 * resumes each session to a curve bit-identical to an uninterrupted
 * run. Checkpoint-write failures degrade gracefully (DESIGN.md §14):
 * seeded retry-with-backoff first, then a Checkpointless mode where
 * the session keeps tuning without persistence — curves unchanged
 * either way.
 *
 * Determinism contract: a session's trajectory depends only on its spec
 * (workload, platform, model kind, tune options, seed) — never on the
 * interleaving the service chose, the tick a kill landed on, or the
 * thread count. Backoff and deadlines only delay or truncate rounds;
 * they never perturb the rng, measurer, or model state. That is what
 * makes the fleet fault drill (tests/test_service.cc, CI
 * service-recovery) exact instead of approximate.
 */
#pragma once

#include <map>
#include <memory>

#include "models/guarded_model.h"
#include "models/snapshot.h"
#include "tuner/session.h"

namespace tlp::serve {

/** Which cost model a session runs behind. */
enum class ModelKind : uint8_t
{
    Random = 0,     ///< RandomCostModel (fast; baseline)
    Ansor,          ///< AnsorOnlineCostModel (online GBDT)
    GuardedAnsor,   ///< guarded ladder: ansor-online > random
    /** Guarded ladder topped by the hot-swappable TLP snapshot when one
     *  is loaded (tlp > ansor-online > random); without a snapshot it
     *  degrades to GuardedAnsor — the service never refuses a session
     *  just because no snapshot arrived yet. */
    GuardedTlp,
};

/** Parse "random" / "ansor" / "guarded-ansor" / "guarded-tlp". */
Result<ModelKind> parseModelKind(const std::string &name);

/** Short name of @p kind, inverse of parseModelKind. */
std::string modelKindName(ModelKind kind);

/**
 * Deterministic transient-fault injection at the service level (the
 * search-loop analogue of model::TrainFaultProfile): whether session
 * @p session_key faults before running round @p round is a pure
 * function of (seed, key, round, attempt) — never wall clock — so a
 * recovered service replays the exact fault/backoff schedule.
 */
struct ServiceFaultProfile
{
    /** Probability a (session, round, attempt) draw faults, in [0, 1). */
    double transient_rate = 0.0;
    uint64_t seed = 0x5eed;
    /** Poisoned-session drill: the named session faults on EVERY draw
     *  once it reaches poison_after_round — the deterministic stand-in
     *  for a session whose workload or host is simply broken, used to
     *  exercise the circuit breaker (empty = no poison). */
    std::string poison_session;
    int poison_after_round = 0;

    bool draw(uint64_t session_key, int round, int attempt) const;

    /** True when the poisoned-session drill dooms this draw. */
    bool poisons(uint64_t session_key, int round) const;
};

/** One session the service should run. */
struct SessionSpec
{
    /** Unique fleet name; also names the checkpoint (<name>.ckpt) and
     *  curve (<name>.curve) files in the service directory. */
    std::string name;
    std::string network = "resnet-18";   ///< ir::buildNetwork key
    std::string platform = "i7-10510u";  ///< hw::HardwarePlatform preset
    ModelKind model = ModelKind::Random;
    /** Keep only the first N subgraphs of the partitioned network
     *  (0 = all); small fleets stay laptop-fast. */
    int max_subgraphs = 0;
    /** Round budget, rng seed, fault profile, cadence, ... The service
     *  overrides checkpoint_path and resume; rounds are raised to the
     *  task count so the workload latency becomes finite. */
    tune::TuneOptions tune;
    /** Finalize early once the session has consumed this much simulated
     *  measurement time (inf = no deadline). */
    double deadline_simulated_seconds =
        std::numeric_limits<double>::infinity();
};

/** Lifecycle of a submitted session inside the service. */
enum class SessionStatus : uint8_t
{
    Queued = 0,      ///< admitted, waiting for an active slot
    Active,          ///< holds a slot; runs one round per service tick
    BackedOff,       ///< transient fault: sleeping until a future tick
    Finished,        ///< budget exhausted; result final, curve written
    DeadlineExpired, ///< finalized early by the simulated-time deadline
    Shed,            ///< refused at submit: queue was at capacity
    /** Circuit breaker tripped: the session accrued breaker_trip_limit
     *  consecutive faults/degradations, its checkpoint was renamed
     *  aside as evidence, and its slot was freed. Terminal; no curve
     *  file is written — by the isolation invariant every OTHER
     *  session's curve is byte-identical to a fleet without it. */
    PoisonQuarantined,
};

/** Short status name, e.g. "backed-off". */
std::string sessionStatusName(SessionStatus status);

/** submit() verdict. */
enum class AdmitOutcome : uint8_t
{
    Active = 0,   ///< got a slot immediately
    Queued,       ///< bounded queue had room
    Shed,         ///< deterministically refused (queue full)
};

/** What recover() did with one spec's checkpoint. */
enum class RecoveryOutcome : uint8_t
{
    Fresh = 0,    ///< no checkpoint on disk; started from round 0
    Recovered,    ///< checkpoint verified + resumed
    Quarantined,  ///< damaged checkpoint renamed *.quarantined.N; fresh
};

/** Aggregate recover() report. */
struct RecoveryReport
{
    int fresh = 0;
    int recovered = 0;
    int quarantined = 0;
    /** Rounds that did not have to be re-run thanks to checkpoints. */
    int64_t rounds_salvaged = 0;
    /** Stale atomic-write temp files reaped from the service dir. */
    int stale_temps_swept = 0;
    /** Per-session outcome, keyed by spec name. */
    std::map<std::string, RecoveryOutcome> outcomes;
};

/** Service-wide configuration. */
struct ServiceOptions
{
    /** Directory holding <name>.ckpt / <name>.curve files (created on
     *  construction when missing). */
    std::string dir = "/tmp/tlp_serve";
    /** Concurrent sessions holding an active slot. */
    int max_active = 8;
    /** Bounded admission queue; submissions beyond it are shed. */
    int max_queued = 16;
    /** Checkpoint cadence handed to every session (1 = every round,
     *  the crash-safe default for a service). */
    int checkpoint_every = 1;
    /** Backoff after the Nth consecutive fault of a session is
     *  min(backoff_cap_ticks, backoff_base_ticks << N) plus a seeded
     *  jitter tick. */
    int backoff_base_ticks = 1;
    int backoff_cap_ticks = 8;
    /** Checkpoint-write failures tolerated per session before it
     *  degrades to Checkpointless mode (DESIGN.md §14). Each failure
     *  backs the session off (same seeded exponential schedule as
     *  transient faults) and retries the write before the next round;
     *  past the limit the session keeps tuning without persistence. */
    int ckpt_retry_limit = 3;
    /**
     * Per-session circuit breaker (DESIGN.md §15): consecutive strikes
     * — transient round faults, failed checkpoint writes, and a
     * quarantined checkpoint at recover() — a session may accrue
     * before it trips to PoisonQuarantined. A fully clean round resets
     * the count, so the breaker only fires on a session that is
     * failing *forever*, never on the bursty-but-recovering faults the
     * backoff schedule is for. 0 disables the breaker. Trips are a
     * pure function of the seeded fault/IO schedules — never wall
     * clock — so a drill replays exactly.
     */
    int breaker_trip_limit = 12;
    ServiceFaultProfile faults;
    /** Inference hot-path configuration handed to every GuardedTlp
     *  session's TlpCostModel (DESIGN.md §13). Value-neutral: any
     *  setting yields the same curves, only a different speed. */
    model::TlpInferOptions tlp_infer = model::TlpInferOptions::fromEnv();
    bool verbose = false;
};

/** Operating counters (all deterministic given the same submissions). */
struct ServiceStats
{
    int64_t submitted = 0;
    int64_t admitted_active = 0;
    int64_t admitted_queued = 0;
    int64_t shed = 0;
    int64_t ticks = 0;
    int64_t idle_ticks = 0;       ///< every runnable session backed off
    int64_t rounds_run = 0;
    int64_t faults_injected = 0;
    int64_t backoff_ticks_slept = 0;
    int64_t finished = 0;
    int64_t deadline_expired = 0;
    int64_t snapshot_swaps = 0;
    int64_t snapshot_swap_failures = 0;
    int64_t ckpt_write_failures = 0;   ///< failed checkpoint writes seen
    int64_t ckpt_retries = 0;          ///< checkpoint writes retried
    int64_t ckpt_retry_successes = 0;  ///< retries that landed
    int64_t checkpointless_sessions = 0; ///< sessions degraded (ever)
    int64_t curve_write_retries = 0;   ///< curve-file write retries
    int64_t stale_temps_swept = 0;     ///< temp files reaped in recover()
    int64_t breaker_trips = 0;         ///< sessions poison-quarantined
};

/**
 * The multi-session tuning service.
 *
 * Single-threaded by design at the session level (see the file
 * comment); drive it with tick() / runUntilIdle(). Sessions write their
 * own checkpoints through TuningSession's cadence; the service adds the
 * fleet-level concerns on top.
 */
class TuningService
{
  public:
    explicit TuningService(const ServiceOptions &options);

    TuningService(const TuningService &) = delete;
    TuningService &operator=(const TuningService &) = delete;

    /** Admit @p spec (or queue or shed it, deterministically). */
    AdmitOutcome submit(const SessionSpec &spec);

    /**
     * Crash recovery: sweep stale atomic-write temp files, then submit
     * every spec of @p fleet, re-adopting checkpoints left in the
     * service directory by a previous incarnation. Damaged checkpoints
     * are quarantined (renamed "<file>.quarantined.N" with a unique N,
     * mirroring the exit-3 artifact semantics without aborting the
     * service and never overwriting earlier evidence) and their
     * sessions restart fresh, so the fleet still converges to the
     * golden curves.
     */
    RecoveryReport recover(const std::vector<SessionSpec> &fleet);

    /**
     * One scheduling quantum: wake due backoffs, then run one round of
     * the next runnable session (round-robin). @return true while any
     * session still has work (including backed-off and queued ones).
     */
    bool tick();

    /** tick() until idle (or @p max_ticks > 0 is hit); returns ticks. */
    int64_t runUntilIdle(int64_t max_ticks = 0);

    /**
     * Hot-swap the TLP snapshot used by new GuardedTlp sessions. The
     * snapshot is loaded via the §8 checksummed format and must pass
     * model::probeSnapshotHealth; on any failure the previous snapshot
     * (possibly none) stays installed and a Status reports why —
     * in-flight sessions are never touched by a swap, good or bad.
     */
    Status swapModel(const std::string &snapshot_path);

    /** Checkpoint file path for @p name under this service's dir. */
    std::string checkpointPath(const std::string &name) const;

    /** Curve file path for @p name under this service's dir. */
    std::string curvePath(const std::string &name) const;

    const ServiceStats &stats() const { return stats_; }

    /** Status of a submitted (or shed) session; FATAL on unknown name. */
    SessionStatus status(const std::string &name) const;

    /** Final result of a Finished/DeadlineExpired session. */
    const tune::TuneResult &result(const std::string &name) const;

    /** True when no session has runnable or queued work left. */
    bool idle() const;

    /** Names in submission order (shed submissions included). */
    std::vector<std::string> names() const;

  private:
    /** One session slot. */
    struct Slot
    {
        SessionSpec spec;
        SessionStatus status = SessionStatus::Queued;
        uint64_t key = 0;   ///< fnv1a(name), the fault-draw identity
        ir::Workload workload;
        std::shared_ptr<model::CostModel> base_model;
        std::unique_ptr<tune::TuningSession> session;
        int fault_attempts = 0;      ///< consecutive faults this round
        int64_t backoff_until_tick = 0;
        int ckpt_failures = 0;       ///< consecutive failed ckpt writes
        bool ckpt_retry_pending = false; ///< retry write at next wake
        bool checkpointless = false; ///< degraded: persistence disabled
        /** Consecutive circuit-breaker strikes (faults + checkpoint
         *  failures + recover-time quarantine); a clean round zeroes
         *  it, breaker_trip_limit trips it. */
        int breaker_count = 0;
        tune::TuneResult final_result;
    };

    Slot &findSlot(const std::string &name);
    const Slot &findSlot(const std::string &name) const;

    /** Build workload/model/session state for an admitted spec. */
    void instantiate(Slot &slot);

    /** Finalize @p slot, write its curve file, promote the queue. */
    void finalize(Slot &slot, SessionStatus terminal);

    /** Register a failed checkpoint write: back off and schedule a
     *  retry, or degrade the session to Checkpointless past the limit
     *  (DESIGN.md §14). Never touches tuning state. */
    void noteCheckpointFailure(Slot &slot, int64_t tick_now);

    /** One breaker strike against @p slot; trips it at the limit.
     *  @return true when the session was poison-quarantined. */
    bool noteBreakerStrike(Slot &slot);

    /** Trip the circuit breaker: quarantine the session's checkpoint
     *  as evidence, mark it PoisonQuarantined (no curve file), free
     *  its slot for the admission queue. */
    void tripBreaker(Slot &slot);

    /** Move the oldest Queued slot into the freed active slot. */
    void promoteQueued();

    int activeCount() const;

    const ServiceOptions options_;
    std::vector<std::unique_ptr<Slot>> slots_;
    size_t cursor_ = 0;   ///< round-robin position
    std::shared_ptr<model::TlpNet> tlp_net_;   ///< hot-swapped snapshot
    ServiceStats stats_;
};

/**
 * Serialize the deterministic view of @p result (measurement counts,
 * latencies, simulated measurement seconds — never real wall clock) as
 * the text written to <name>.curve; the CI service-recovery drill diffs
 * these files between a golden and a killed-and-recovered run.
 */
std::string formatCurveFile(const std::string &name,
                            SessionStatus terminal,
                            const tune::TuneResult &result);

} // namespace tlp::serve
