#include "tuner/service/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "artifact/audit.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "support/io_env.h"
#include "support/logging.h"

namespace tlp::serve {

namespace {

/** splitmix64 finalizer, the same mixer the measurer's draws use. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
hashUniform(uint64_t key)
{
    return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

/** Domain-separation salt for checkpoint-retry backoff jitter, so the
 *  I/O schedule never correlates with the transient-fault schedule. */
constexpr uint64_t kCkptBackoffSalt = 0xc4e47ull;

/** Bounded retries for the final curve write: each attempt advances the
 *  path's op counter in the chaos env, so under any fault_rate < 1 the
 *  attempt count (and hence success) is a deterministic function of
 *  (seed, path) — timing never enters. */
constexpr int kCurveWriteRetries = 128;

/** First @p keep subgraphs (and weights) of @p workload; 0 keeps all. */
ir::Workload
sliceWorkload(ir::Workload workload, int keep)
{
    if (keep <= 0 ||
        static_cast<size_t>(keep) >= workload.subgraphs.size()) {
        return workload;
    }
    workload.name += "-slice" + std::to_string(keep);
    workload.subgraphs.resize(static_cast<size_t>(keep));
    workload.weights.resize(static_cast<size_t>(keep));
    return workload;
}

} // namespace

Result<ModelKind>
parseModelKind(const std::string &name)
{
    if (name == "random")
        return ModelKind::Random;
    if (name == "ansor")
        return ModelKind::Ansor;
    if (name == "guarded-ansor")
        return ModelKind::GuardedAnsor;
    if (name == "guarded-tlp")
        return ModelKind::GuardedTlp;
    return Status::error(ErrorCode::Invalid,
                         "unknown model kind '" + name +
                             "' (random|ansor|guarded-ansor|guarded-tlp)");
}

std::string
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Random:       return "random";
      case ModelKind::Ansor:        return "ansor";
      case ModelKind::GuardedAnsor: return "guarded-ansor";
      case ModelKind::GuardedTlp:   return "guarded-tlp";
    }
    return "unknown";
}

std::string
sessionStatusName(SessionStatus status)
{
    switch (status) {
      case SessionStatus::Queued:          return "queued";
      case SessionStatus::Active:          return "active";
      case SessionStatus::BackedOff:       return "backed-off";
      case SessionStatus::Finished:        return "finished";
      case SessionStatus::DeadlineExpired: return "deadline-expired";
      case SessionStatus::Shed:            return "shed";
      case SessionStatus::PoisonQuarantined:
          return "poison-quarantined";
    }
    return "unknown";
}

bool
ServiceFaultProfile::draw(uint64_t session_key, int round,
                          int attempt) const
{
    if (transient_rate <= 0.0)
        return false;
    uint64_t h = hashCombine(seed, session_key);
    h = hashCombine(h, static_cast<uint64_t>(round));
    h = hashCombine(h, static_cast<uint64_t>(attempt));
    return hashUniform(h) < transient_rate;
}

bool
ServiceFaultProfile::poisons(uint64_t session_key, int round) const
{
    if (poison_session.empty() || round < poison_after_round)
        return false;
    return session_key ==
           fnv1a(poison_session.data(), poison_session.size());
}

TuningService::TuningService(const ServiceOptions &options)
    : options_(options)
{
    TLP_CHECK(options_.max_active > 0, "max_active must be positive");
    TLP_CHECK(options_.max_queued >= 0, "max_queued must be >= 0");
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    if (ec) {
        TLP_FATAL("cannot create service directory ", options_.dir, ": ",
                  ec.message());
    }
}

std::string
TuningService::checkpointPath(const std::string &name) const
{
    return options_.dir + "/" + name + ".ckpt";
}

std::string
TuningService::curvePath(const std::string &name) const
{
    return options_.dir + "/" + name + ".curve";
}

TuningService::Slot &
TuningService::findSlot(const std::string &name)
{
    for (auto &slot : slots_)
        if (slot->spec.name == name)
            return *slot;
    TLP_FATAL("unknown session '", name, "'");
}

const TuningService::Slot &
TuningService::findSlot(const std::string &name) const
{
    return const_cast<TuningService *>(this)->findSlot(name);
}

void
TuningService::instantiate(Slot &slot)
{
    const SessionSpec &spec = slot.spec;
    const auto platform = hw::HardwarePlatform::preset(spec.platform);
    slot.workload = sliceWorkload(
        ir::partitionGraph(ir::buildNetwork(spec.network)),
        spec.max_subgraphs);

    switch (spec.model) {
      case ModelKind::Random:
        slot.base_model =
            std::make_shared<model::RandomCostModel>(spec.tune.seed);
        break;
      case ModelKind::Ansor:
        slot.base_model = std::make_shared<model::AnsorOnlineCostModel>();
        break;
      case ModelKind::GuardedAnsor: {
        std::vector<std::shared_ptr<model::CostModel>> ladder;
        ladder.push_back(std::make_shared<model::AnsorOnlineCostModel>());
        ladder.push_back(std::make_shared<model::RandomCostModel>());
        slot.base_model =
            std::make_shared<model::GuardedCostModel>(std::move(ladder));
        break;
      }
      case ModelKind::GuardedTlp:
        if (tlp_net_) {
            slot.base_model = model::makeGuardedLadder(
                std::make_shared<model::TlpCostModel>(
                    tlp_net_, feat::TlpFeatureOptions{}, 0,
                    options_.tlp_infer));
        } else {
            // No snapshot installed (yet): degrade to the ansor-topped
            // ladder rather than refusing the session.
            std::vector<std::shared_ptr<model::CostModel>> ladder;
            ladder.push_back(
                std::make_shared<model::AnsorOnlineCostModel>());
            ladder.push_back(std::make_shared<model::RandomCostModel>());
            slot.base_model = std::make_shared<model::GuardedCostModel>(
                std::move(ladder));
        }
        break;
    }

    tune::TuneOptions tune = spec.tune;
    // Every task needs one round before the workload latency is finite.
    tune.rounds =
        std::max(tune.rounds,
                 static_cast<int>(slot.workload.subgraphs.size()));
    tune.checkpoint_path = checkpointPath(spec.name);
    tune.checkpoint_every = options_.checkpoint_every;
    tune.resume = false;
    slot.session = std::make_unique<tune::TuningSession>(
        slot.workload, platform, *slot.base_model, tune);
}

AdmitOutcome
TuningService::submit(const SessionSpec &spec)
{
    TLP_CHECK(!spec.name.empty(), "session spec needs a name");
    for (const auto &slot : slots_) {
        if (slot->spec.name == spec.name)
            TLP_FATAL("duplicate session name '", spec.name, "'");
    }
    stats_.submitted += 1;

    auto slot = std::make_unique<Slot>();
    slot->spec = spec;
    slot->key = fnv1a(spec.name.data(), spec.name.size());

    AdmitOutcome outcome;
    const int queued = static_cast<int>(std::count_if(
        slots_.begin(), slots_.end(), [](const auto &s) {
            return s->status == SessionStatus::Queued;
        }));
    if (activeCount() < options_.max_active) {
        outcome = AdmitOutcome::Active;
        slot->status = SessionStatus::Active;
        stats_.admitted_active += 1;
        instantiate(*slot);
    } else if (queued < options_.max_queued) {
        outcome = AdmitOutcome::Queued;
        slot->status = SessionStatus::Queued;
        stats_.admitted_queued += 1;
        // Instantiated lazily at promotion: a queued session must not
        // pay workload/model construction it may never need.
    } else {
        outcome = AdmitOutcome::Shed;
        slot->status = SessionStatus::Shed;
        stats_.shed += 1;
        if (options_.verbose) {
            inform("shed session '", spec.name,
                   "' (queue at capacity ", options_.max_queued, ")");
        }
    }
    slots_.push_back(std::move(slot));
    return outcome;
}

RecoveryReport
TuningService::recover(const std::vector<SessionSpec> &fleet)
{
    RecoveryReport report;
    // Reap "<name>.tmp.<pid>.<seq>" debris first: a crash between
    // atomicWriteFile's open and rename strands temps forever, and the
    // service owns its directory, so a directory-wide sweep is safe.
    report.stale_temps_swept = sweepStaleTemps(options_.dir);
    stats_.stale_temps_swept += report.stale_temps_swept;
    for (const SessionSpec &spec : fleet) {
        const std::string ckpt = checkpointPath(spec.name);
        const bool exists = std::filesystem::exists(ckpt);
        RecoveryOutcome outcome = RecoveryOutcome::Fresh;
        bool resume = false;
        if (exists) {
            const Status status = tune::verifyCheckpoint(ckpt);
            if (status.ok()) {
                resume = true;
            } else {
                // Damaged artifact: same meaning as CLI exit code 3,
                // but a service quarantines and keeps serving — via
                // the same audit-module policy tlp_fsck uses, so the
                // doctor and the runtime can never drift on where
                // evidence goes.
                artifact::quarantineDamaged(ckpt);
                warn("quarantined damaged checkpoint ", ckpt, ": ",
                     status.toString());
                outcome = RecoveryOutcome::Quarantined;
            }
        }

        const AdmitOutcome admitted = submit(spec);
        if (resume && admitted == AdmitOutcome::Active) {
            Slot &slot = findSlot(spec.name);
            const Status status = slot.session->resumeFromCheckpoint();
            if (status.ok()) {
                outcome = RecoveryOutcome::Recovered;
                report.rounds_salvaged += slot.session->roundsDone();
            } else {
                // Structurally valid but unusable for THIS spec (e.g.
                // foreign configuration): quarantine and rebuild the
                // session from round 0.
                artifact::quarantineDamaged(ckpt);
                warn("quarantined mismatched checkpoint ", ckpt, ": ",
                     status.toString());
                outcome = RecoveryOutcome::Quarantined;
                instantiate(slot);
            }
        }
        report.outcomes[spec.name] = outcome;
        if (outcome == RecoveryOutcome::Quarantined) {
            // A quarantined checkpoint is the session's first breaker
            // strike: a spec that keeps poisoning its own persistence
            // should trip sooner on the next bad round.
            findSlot(spec.name).breaker_count = 1;
        }
        switch (outcome) {
          case RecoveryOutcome::Fresh:       report.fresh += 1; break;
          case RecoveryOutcome::Recovered:   report.recovered += 1; break;
          case RecoveryOutcome::Quarantined: report.quarantined += 1;
                                             break;
        }
    }
    if (options_.verbose) {
        inform("recovery: ", report.recovered, " resumed, ",
               report.fresh, " fresh, ", report.quarantined,
               " quarantined, ", report.rounds_salvaged,
               " rounds salvaged, ", report.stale_temps_swept,
               " stale temps swept");
    }
    return report;
}

int
TuningService::activeCount() const
{
    return static_cast<int>(std::count_if(
        slots_.begin(), slots_.end(), [](const auto &s) {
            return s->status == SessionStatus::Active ||
                   s->status == SessionStatus::BackedOff;
        }));
}

void
TuningService::promoteQueued()
{
    if (activeCount() >= options_.max_active)
        return;
    for (auto &slot : slots_) {
        if (slot->status == SessionStatus::Queued) {
            slot->status = SessionStatus::Active;
            instantiate(*slot);
            if (options_.verbose)
                inform("promoted '", slot->spec.name, "' from the queue");
            return;
        }
    }
}

void
TuningService::finalize(Slot &slot, SessionStatus terminal)
{
    slot.final_result = slot.session->finish();
    slot.status = terminal;
    if (terminal == SessionStatus::Finished)
        stats_.finished += 1;
    else if (terminal == SessionStatus::DeadlineExpired)
        stats_.deadline_expired += 1;

    const std::string text =
        formatCurveFile(slot.spec.name, terminal, slot.final_result);
    // The curve is the drill's ground truth, so its write retries
    // through injected faults (bounded; see kCurveWriteRetries) — the
    // bytes are already final, retrying cannot change them.
    Status status;
    for (int attempt = 0; ; ++attempt) {
        status = atomicWriteFile(
            curvePath(slot.spec.name),
            [&](std::ostream &os) {
                os.write(text.data(),
                         static_cast<std::streamsize>(text.size()));
            });
        if (status.ok() || attempt >= kCurveWriteRetries)
            break;
        stats_.curve_write_retries += 1;
    }
    if (!status.ok())
        warn("cannot write curve file: ", status.toString());
    if (options_.verbose) {
        inform("session '", slot.spec.name, "' ",
               sessionStatusName(terminal), " after ",
               slot.session->roundsDone(), " rounds: ",
               slot.final_result.best_workload_latency_ms, " ms");
    }
    promoteQueued();
}

bool
TuningService::noteBreakerStrike(Slot &slot)
{
    slot.breaker_count += 1;
    if (options_.breaker_trip_limit <= 0 ||
        slot.breaker_count < options_.breaker_trip_limit) {
        return false;
    }
    tripBreaker(slot);
    return true;
}

void
TuningService::tripBreaker(Slot &slot)
{
    stats_.breaker_trips += 1;
    slot.status = SessionStatus::PoisonQuarantined;
    slot.ckpt_retry_pending = false;
    const std::string ckpt = checkpointPath(slot.spec.name);
    // Contain the evidence: the checkpoint (possibly mid-poisoning)
    // moves to "*.quarantined.N" through the shared audit policy, and
    // any temp debris the failing writes stranded is reaped. No curve
    // file is ever written for a poison-quarantined session.
    std::string evidence = "none";
    std::error_code ec;
    if (std::filesystem::exists(ckpt, ec) && !ec) {
        const artifact::QuarantineAction action =
            artifact::quarantineDamaged(ckpt);
        evidence = action.removed ? std::string("removed")
                                  : action.jail;
    }
    artifact::sweepDebrisFor(ckpt);
    warn("circuit breaker tripped: session '", slot.spec.name,
         "' poison-quarantined after ", slot.breaker_count,
         " consecutive strikes (checkpoint evidence: ", evidence, ")");
    promoteQueued();
}

void
TuningService::noteCheckpointFailure(Slot &slot, int64_t tick_now)
{
    stats_.ckpt_write_failures += 1;
    slot.ckpt_failures += 1;
    if (noteBreakerStrike(slot))
        return;
    if (slot.ckpt_failures > options_.ckpt_retry_limit) {
        // Degrade rather than stall: the session keeps tuning without
        // persistence — a crash from here costs re-running rounds on
        // the next recover(), never correctness, and the curve is
        // untouched by construction.
        slot.checkpointless = true;
        slot.ckpt_retry_pending = false;
        slot.session->setCheckpointingEnabled(false);
        stats_.checkpointless_sessions += 1;
        warn("session '", slot.spec.name,
             "' entering checkpointless degraded mode after ",
             slot.ckpt_failures, " failed checkpoint writes");
        return;
    }
    // Same seeded exponential backoff as transient faults, salted so
    // the two schedules stay independent.
    const int shift = std::min(slot.ckpt_failures - 1, 20);
    int64_t delay = static_cast<int64_t>(options_.backoff_base_ticks)
                    << shift;
    delay = std::min<int64_t>(delay, options_.backoff_cap_ticks);
    delay += static_cast<int64_t>(
        mix64(hashCombine(hashCombine(slot.key, kCkptBackoffSalt),
                          static_cast<uint64_t>(slot.ckpt_failures))) %
        2);
    slot.ckpt_retry_pending = true;
    slot.backoff_until_tick = tick_now + std::max<int64_t>(1, delay);
    slot.status = SessionStatus::BackedOff;
    stats_.backoff_ticks_slept += slot.backoff_until_tick - tick_now;
    if (options_.verbose) {
        inform("session '", slot.spec.name,
               "' checkpoint write failed (attempt ",
               slot.ckpt_failures, "); retrying in ",
               slot.backoff_until_tick - tick_now, " ticks");
    }
}

bool
TuningService::tick()
{
    stats_.ticks += 1;
    const int64_t tick_now = stats_.ticks;

    // Wake sessions whose backoff expired.
    for (auto &slot : slots_) {
        if (slot->status == SessionStatus::BackedOff &&
            tick_now >= slot->backoff_until_tick) {
            slot->status = SessionStatus::Active;
        }
    }

    // Round-robin: run one round of the next Active session.
    Slot *picked = nullptr;
    for (size_t i = 0; i < slots_.size() && !picked; ++i) {
        Slot &slot = *slots_[(cursor_ + i) % slots_.size()];
        if (slot.status == SessionStatus::Active) {
            picked = &slot;
            cursor_ = (cursor_ + i + 1) % std::max<size_t>(
                                              1, slots_.size());
        }
    }
    if (!picked) {
        stats_.idle_ticks += 1;
        return !idle();
    }
    Slot &slot = *picked;

    // A backed-off checkpoint write retries BEFORE the session runs its
    // next round (DESIGN.md §14): the round sequence pauses while the
    // write is down, so the trajectory never notices the fault.
    if (slot.ckpt_retry_pending) {
        slot.ckpt_retry_pending = false;
        stats_.ckpt_retries += 1;
        const Status retried = slot.session->saveCheckpoint();
        if (retried.ok()) {
            stats_.ckpt_retry_successes += 1;
            slot.ckpt_failures = 0;
        } else {
            noteCheckpointFailure(slot, tick_now);
            // Anything but Active (backed off for a retry, or the
            // breaker tripped) ends this quantum.
            if (slot.status != SessionStatus::Active)
                return !idle();
        }
    }

    // A session can arrive done (recovered from a checkpoint written
    // after its final round): finalize without re-running anything.
    if (slot.session->done()) {
        finalize(slot, SessionStatus::Finished);
        return !idle();
    }
    if (slot.session->simulatedSeconds() >=
        slot.spec.deadline_simulated_seconds) {
        finalize(slot, SessionStatus::DeadlineExpired);
        return !idle();
    }

    // Transient-fault draw (seeded, keyed by session/round/attempt):
    // back off exponentially; the round itself runs untouched later, so
    // faults shift the schedule but never the trajectory. A poisoned
    // session (drill hook) faults on every draw — only the circuit
    // breaker can end it.
    const int round_now = slot.session->roundsDone();
    if (options_.faults.poisons(slot.key, round_now) ||
        options_.faults.draw(slot.key, round_now,
                             slot.fault_attempts)) {
        stats_.faults_injected += 1;
        if (noteBreakerStrike(slot))
            return !idle();
        const int shift = std::min(slot.fault_attempts, 20);
        int64_t delay = static_cast<int64_t>(options_.backoff_base_ticks)
                        << shift;
        delay = std::min<int64_t>(delay, options_.backoff_cap_ticks);
        delay += static_cast<int64_t>(
            mix64(hashCombine(slot.key, static_cast<uint64_t>(
                                            slot.fault_attempts))) %
            2);
        slot.fault_attempts += 1;
        slot.backoff_until_tick = tick_now + std::max<int64_t>(1, delay);
        slot.status = SessionStatus::BackedOff;
        stats_.backoff_ticks_slept += slot.backoff_until_tick - tick_now;
        if (options_.verbose) {
            inform("session '", slot.spec.name,
                   "' transient fault before round ",
                   slot.session->roundsDone(), "; backing off ",
                   slot.backoff_until_tick - tick_now, " ticks");
        }
        return !idle();
    }

    slot.fault_attempts = 0;
    const bool more = slot.session->step();
    stats_.rounds_run += 1;
    if (!more) {
        // The final curve write below supersedes any failed last
        // checkpoint: once the curve lands, the checkpoint only saves
        // re-running rounds that no longer exist.
        finalize(slot, SessionStatus::Finished);
        return !idle();
    }
    if (!slot.checkpointless &&
        !slot.session->lastCheckpointStatus().ok()) {
        noteCheckpointFailure(slot, tick_now);
    } else {
        // Round ran and persistence (if enabled) landed: the session
        // is healthy, so consecutive-strike accounting starts over.
        slot.breaker_count = 0;
    }
    return !idle();
}

int64_t
TuningService::runUntilIdle(int64_t max_ticks)
{
    int64_t ran = 0;
    while (!idle()) {
        if (max_ticks > 0 && ran >= max_ticks)
            break;
        tick();
        ran += 1;
    }
    return ran;
}

Status
TuningService::swapModel(const std::string &snapshot_path)
{
    stats_.snapshot_swaps += 1;
    auto loaded = model::loadTlpSnapshot(snapshot_path);
    if (!loaded.ok()) {
        stats_.snapshot_swap_failures += 1;
        return Status::error(loaded.status().code(),
                             "snapshot swap rejected (" + snapshot_path +
                                 "): " + loaded.status().message());
    }
    std::shared_ptr<model::TlpNet> net = loaded.take();
    const Status health = model::probeSnapshotHealth(*net);
    if (!health.ok()) {
        stats_.snapshot_swap_failures += 1;
        return Status::error(health.code(),
                             "snapshot swap rejected (" + snapshot_path +
                                 "): " + health.message());
    }
    tlp_net_ = std::move(net);
    if (options_.verbose)
        inform("installed TLP snapshot ", snapshot_path);
    return Status();
}

SessionStatus
TuningService::status(const std::string &name) const
{
    return findSlot(name).status;
}

const tune::TuneResult &
TuningService::result(const std::string &name) const
{
    const Slot &slot = findSlot(name);
    TLP_CHECK(slot.status == SessionStatus::Finished ||
                  slot.status == SessionStatus::DeadlineExpired,
              "session has no final result yet");
    return slot.final_result;
}

bool
TuningService::idle() const
{
    for (const auto &slot : slots_) {
        switch (slot->status) {
          case SessionStatus::Queued:
          case SessionStatus::Active:
          case SessionStatus::BackedOff:
            return false;
          default:
            break;
        }
    }
    return true;
}

std::vector<std::string>
TuningService::names() const
{
    std::vector<std::string> out;
    out.reserve(slots_.size());
    for (const auto &slot : slots_)
        out.push_back(slot->spec.name);
    return out;
}

std::string
formatCurveFile(const std::string &name, SessionStatus terminal,
                const tune::TuneResult &result)
{
    // Deterministic fields only: anything touching real wall clock
    // (search_seconds, model_seconds) would make the golden-vs-recovered
    // diff flaky by construction.
    std::ostringstream os;
    os << "# tlp_serve curve v1\n";
    os << "name " << name << "\n";
    os << "status " << sessionStatusName(terminal) << "\n";
    os << "measurements " << result.total_measurements << "\n";
    os << "points " << result.curve.size() << "\n";
    char line[128];
    for (const tune::CurvePoint &point : result.curve) {
        std::snprintf(line, sizeof(line), "%lld %.17g %.17g\n",
                      static_cast<long long>(point.measurements),
                      point.workload_latency_ms, point.measure_seconds);
        os << line;
    }
    return os.str();
}

} // namespace tlp::serve
