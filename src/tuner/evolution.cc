#include "tuner/evolution.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace tlp::tune {

namespace {

double
now()
{
    return std::chrono::duration<double>(
               // tlp-lint: allow(wallclock) -- reported search-time stats only; candidate ranking stays seeded
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

EvolutionResult
evolveOneRound(const sketch::SchedulePolicy &policy,
               model::CostModel &cost_model, int task_id, int want,
               const std::set<uint64_t> &already_measured,
               const EvolutionOptions &options, Rng &rng)
{
    EvolutionResult result;

    std::vector<sched::State> population =
        policy.sampleInitPopulation(options.population, rng);
    if (population.empty())
        return result;

    std::set<uint64_t> seen;
    for (const auto &state : population)
        seen.insert(state.steps().hash());

    std::vector<double> scores;
    for (int iter = 0; iter < options.iterations; ++iter) {
        const double t0 = now();
        scores = cost_model.predictBatch(task_id, population);
        result.model_seconds += now() - t0;

        // Selection weights: softmax over scores.
        double max_score = *std::max_element(scores.begin(), scores.end());
        std::vector<double> weights(scores.size());
        for (size_t i = 0; i < scores.size(); ++i)
            weights[i] = std::exp(scores[i] - max_score);

        // Mutate selected parents into children.
        std::vector<sched::State> children;
        int attempts = 0;
        while (static_cast<int>(children.size()) <
                   options.children_per_iter &&
               attempts < 4 * options.children_per_iter) {
            ++attempts;
            const size_t parent = rng.weightedIndex(weights);
            auto child = policy.mutate(population[parent], rng);
            if (!child)
                break;
            const uint64_t h = child->steps().hash();
            if (seen.insert(h).second)
                children.push_back(std::move(*child));
        }
        if (children.empty())
            break;

        // Survivor selection: keep the best of the current population,
        // append the children.
        std::vector<size_t> order(population.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return scores[a] > scores[b];
        });
        const size_t keep = std::max<size_t>(
            1, static_cast<size_t>(options.population) -
                   children.size());
        std::vector<sched::State> next;
        for (size_t i = 0; i < keep && i < order.size(); ++i)
            next.push_back(std::move(population[order[i]]));
        for (auto &child : children)
            next.push_back(std::move(child));
        population = std::move(next);
    }

    // Final scoring and ranking.
    const double t0 = now();
    scores = cost_model.predictBatch(task_id, population);
    result.model_seconds += now() - t0;

    std::vector<size_t> order(population.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a] > scores[b];
    });

    // Pick top candidates not yet measured; epsilon-greedy random picks.
    std::vector<size_t> chosen;
    for (size_t i = 0; i < order.size() &&
                       static_cast<int>(chosen.size()) < want; ++i) {
        const size_t idx = order[i];
        const uint64_t h = population[idx].steps().hash();
        if (already_measured.count(h))
            continue;
        if (!chosen.empty() && rng.bernoulli(options.eps_greedy)) {
            // Replace this pick with a random unmeasured candidate.
            const size_t random_idx = order[static_cast<size_t>(
                rng.randint(static_cast<int64_t>(order.size())))];
            const uint64_t rh =
                population[random_idx].steps().hash();
            if (!already_measured.count(rh) &&
                std::find(chosen.begin(), chosen.end(), random_idx) ==
                    chosen.end()) {
                chosen.push_back(random_idx);
                continue;
            }
        }
        if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end())
            chosen.push_back(idx);
    }

    for (size_t idx : chosen) {
        result.candidates.push_back(std::move(population[idx]));
        result.scores.push_back(scores[idx]);
    }
    return result;
}

} // namespace tlp::tune
