/**
 * @file
 * Evolutionary search over schedules, guided by a cost model.
 *
 * One round (paper Sec. 6.3): sample an initial population from the
 * sketch policy, run a few genetic iterations — score with the cost
 * model, select parents proportionally to score, mutate — and return the
 * top candidates for on-hardware measurement (with epsilon-greedy random
 * picks mixed in, as Ansor does).
 */
#pragma once

#include <set>
#include <vector>

#include "models/cost_model.h"
#include "sketch/policy.h"

namespace tlp::tune {

/** Evolution parameters. */
struct EvolutionOptions
{
    int population = 128;
    int iterations = 4;
    int children_per_iter = 64;
    double eps_greedy = 0.05;
};

/** Result of one evolution round. */
struct EvolutionResult
{
    /** Candidates ranked best-first by model score. */
    std::vector<sched::State> candidates;
    /** Model scores aligned with candidates. */
    std::vector<double> scores;
    /** Wall-clock seconds spent in the cost model (incl. features). */
    double model_seconds = 0.0;
};

/**
 * Run one evolution round for @p task_id and return up to @p want
 * candidates to measure, excluding primitive-sequence hashes in
 * @p already_measured.
 */
EvolutionResult evolveOneRound(const sketch::SchedulePolicy &policy,
                               model::CostModel &cost_model, int task_id,
                               int want,
                               const std::set<uint64_t> &already_measured,
                               const EvolutionOptions &options, Rng &rng);

} // namespace tlp::tune
