#include "sketch/policy.h"

#include <algorithm>
#include <set>

#include "sketch/tiles.h"

namespace tlp::sketch {

using sched::Annotation;
using sched::PrimKind;
using sched::Primitive;
using sched::State;

namespace {

/** Index of the first reduction iterator of @p stage; -1 if none. */
int
firstReduction(const State &state, int stage)
{
    const auto &iters = state.stage(stage).iters;
    for (size_t i = 0; i < iters.size(); ++i)
        if (iters[i].is_reduction)
            return static_cast<int>(i);
    return -1;
}

/** Number of leading spatial iterators of @p stage. */
int
numLeadingSpatial(const State &state, int stage)
{
    const auto &iters = state.stage(stage).iters;
    int count = 0;
    for (const auto &iter : iters) {
        if (iter.is_reduction)
            break;
        ++count;
    }
    return count;
}

/** Total extent of the reduction iterators of @p stage. */
int64_t
reductionPoints(const State &state, int stage)
{
    int64_t total = 1;
    for (const auto &iter : state.stage(stage).iters)
        if (iter.is_reduction)
            total *= iter.extent;
    return total;
}

} // namespace

SchedulePolicy::SchedulePolicy(ir::SubgraphPtr subgraph, bool is_gpu)
    : subgraph_(std::move(subgraph)), is_gpu_(is_gpu)
{
    TLP_CHECK(subgraph_ != nullptr, "null subgraph");
    anchor_stage_ = subgraph_->anchorIndex();
    output_stage_ = subgraph_->outputIndex();
}

int
SchedulePolicy::multiLevelTile(State &state, int stage, int s_parts,
                               int r_parts, Rng &rng,
                               std::vector<int> *spatial_split_steps) const
{
    const auto &iters = state.stage(stage).iters;
    const int n = static_cast<int>(iters.size());

    struct IterPlan
    {
        bool is_reduction;
        int64_t extent;
        int parts;
        int split_step = -1;
    };
    std::vector<IterPlan> plan;
    plan.reserve(static_cast<size_t>(n));
    for (const auto &iter : iters) {
        IterPlan p;
        p.is_reduction = iter.is_reduction;
        p.extent = iter.extent;
        const int target = iter.is_reduction ? r_parts : s_parts;
        p.parts = iter.extent > 1 ? target : 1;
        plan.push_back(p);
    }

    // Split right-to-left so earlier indices stay valid.
    for (int i = n - 1; i >= 0; --i) {
        IterPlan &p = plan[static_cast<size_t>(i)];
        if (p.parts <= 1)
            continue;
        const int64_t max_inner = p.is_reduction ? 32 : 16;
        auto lengths =
            sampleTileLengths(rng, p.extent, p.parts - 1, max_inner);
        state.split(stage, i, lengths);
        p.split_step = state.steps().size() - 1;
    }

    // Compute final positions: concat of parts per original iterator.
    std::vector<int> first_pos(static_cast<size_t>(n), 0);
    int pos = 0;
    for (int i = 0; i < n; ++i) {
        first_pos[static_cast<size_t>(i)] = pos;
        pos += plan[static_cast<size_t>(i)].parts;
    }
    const int total = pos;

    // Gather positions per level.
    std::vector<std::vector<int>> s_levels(static_cast<size_t>(s_parts));
    std::vector<std::vector<int>> r_levels(static_cast<size_t>(r_parts));
    std::vector<int> split_steps;
    for (int i = 0; i < n; ++i) {
        const IterPlan &p = plan[static_cast<size_t>(i)];
        auto &levels = p.is_reduction ? r_levels : s_levels;
        for (int j = 0; j < p.parts; ++j)
            levels[static_cast<size_t>(j)].push_back(
                first_pos[static_cast<size_t>(i)] + j);
        if (!p.is_reduction)
            split_steps.push_back(p.split_step);
    }

    // Interleaved order. CPU (s=4, r=2): S0 S1 R0 S2 R1 S3.
    // GPU (s=4, r=2):                    S0 S1 S2 R0 R1 S3.
    std::vector<int> order;
    auto push = [&](const std::vector<int> &level) {
        for (int idx : level)
            order.push_back(idx);
    };
    if (is_gpu_) {
        for (int l = 0; l + 1 < s_parts; ++l)
            push(s_levels[static_cast<size_t>(l)]);
        for (int l = 0; l < r_parts; ++l)
            push(r_levels[static_cast<size_t>(l)]);
        push(s_levels[static_cast<size_t>(s_parts - 1)]);
    } else {
        push(s_levels[0]);
        if (s_parts > 1)
            push(s_levels[1]);
        push(r_levels[0]);
        for (int l = 2; l < s_parts - 1; ++l) {
            push(s_levels[static_cast<size_t>(l)]);
            if (l - 1 < r_parts)
                push(r_levels[static_cast<size_t>(l - 1)]);
        }
        if (s_parts > 2)
            push(s_levels[static_cast<size_t>(s_parts - 1)]);
    }
    TLP_CHECK(static_cast<int>(order.size()) == total,
              "tile order lost loops");
    state.reorder(stage, order);

    if (spatial_split_steps)
        *spatial_split_steps = split_steps;
    return static_cast<int>(s_levels[0].size());
}

void
SchedulePolicy::inlineTails(State &state, Rng &rng, int keep_stage) const
{
    for (int i = 0; i < state.numStages(); ++i) {
        const sched::Stage &st = state.stage(i);
        if (st.is_placeholder || st.is_cache_stage || i == keep_stage ||
            i == anchor_stage_) {
            continue;
        }
        if (st.op_index >= 0 &&
            ir::isFusable(subgraph_->op(st.op_index).kind)) {
            state.computeInline(i);
        }
    }
}

void
SchedulePolicy::scheduleHeavy(State &state, Rng &rng) const
{
    const bool has_tails = output_stage_ != anchor_stage_;
    int compute = anchor_stage_;
    int consumer = -1;

    // A consumer can only follow the compute stage's tiling if its leading
    // spatial iterators match (rank-changing tails such as reshape break
    // the correspondence).
    auto consumerCompatible = [&](int cons) {
        const auto &anchor_iters = state.stage(anchor_stage_).iters;
        const auto &cons_iters = state.stage(cons).iters;
        std::vector<int64_t> anchor_spatial, cons_spatial;
        for (const auto &iter : anchor_iters)
            if (!iter.is_reduction)
                anchor_spatial.push_back(iter.extent);
        for (const auto &iter : cons_iters)
            if (!iter.is_reduction)
                cons_spatial.push_back(iter.extent);
        return anchor_spatial == cons_spatial;
    };

    if (has_tails) {
        inlineTails(state, rng, output_stage_);
        if (consumerCompatible(output_stage_)) {
            consumer = output_stage_;
        } else {
            // Schedule the incompatible output stage on its own.
            const int out = output_stage_;
            const int out_ns = numLeadingSpatial(state, out);
            if (out_ns > 1) {
                std::vector<int> all;
                for (int i = 0; i < out_ns; ++i)
                    all.push_back(i);
                state.fuse(out, all);
            }
            if (out_ns >= 1) {
                if (is_gpu_) {
                    const int64_t threads =
                        static_cast<int64_t>(32) << rng.randint(0, 3);
                    state.split(out, 0, {threads});
                    state.annotate(out, 0, Annotation::BlockX);
                    state.annotate(out, 1, Annotation::ThreadX);
                } else {
                    state.annotate(out, 0, Annotation::Parallel);
                }
            }
        }
    } else {
        const bool use_chw =
            is_gpu_ || (reductionPoints(state, anchor_stage_) >= 4 &&
                        rng.bernoulli(0.8));
        if (use_chw) {
            compute = state.cacheWrite(anchor_stage_);
            consumer = anchor_stage_;
        }
    }

    // Multi-level tile the compute stage.
    std::vector<int> split_steps;
    const int s_parts = 4;
    const int r_parts = 2;
    multiLevelTile(state, compute, s_parts, r_parts, rng, &split_steps);
    const int compute_loops =
        static_cast<int>(state.stage(compute).iters.size());
    const int compute_first_red = firstReduction(state, compute);

    if (consumer >= 0) {
        const int ns = static_cast<int>(split_steps.size());
        if (is_gpu_) {
            // Fuse all consumer spatial loops, split to (block, thread,
            // vec), bind, and attach the compute stage at the thread loop.
            std::vector<int> all;
            const int cons_ns = numLeadingSpatial(state, consumer);
            for (int i = 0; i < cons_ns; ++i)
                all.push_back(i);
            if (all.size() > 1)
                state.fuse(consumer, all);
            const int innermost_step =
                ns > 0 ? split_steps[static_cast<size_t>(ns - 1)] : -1;
            if (innermost_step >= 0 && rng.bernoulli(0.5)) {
                state.followFusedSplit(consumer, 0, innermost_step, 2);
            } else {
                const int64_t threads =
                    static_cast<int64_t>(32)
                    << rng.randint(0, 3);   // 32..256
                state.split(consumer, 0, {threads, 2});
            }
            state.annotate(consumer, 0, Annotation::BlockX);
            state.annotate(consumer, 1, Annotation::ThreadX);
            if (rng.bernoulli(0.5))
                state.annotate(
                    consumer,
                    static_cast<int>(state.stage(consumer).iters.size()) - 1,
                    Annotation::Vectorize);
            state.computeAt(compute, consumer, 1);

            // Stage heavy inputs through shared memory.
            const ir::OpNode &anchor_op = subgraph_->anchor();
            for (int input : anchor_op.inputs) {
                if (!state.stage(input).is_placeholder)
                    continue;
                if (!rng.bernoulli(0.7))
                    continue;
                const int sh = state.cacheRead(input, compute);
                if (compute_first_red >= 0)
                    state.computeAt(sh, compute, compute_first_red);
                if (rng.bernoulli(0.3))
                    state.storageAlign(sh, 32);
            }
        } else {
            // Align consumer tiles with the compute stage's inner tiles.
            for (int i = ns - 1; i >= 0; --i) {
                const int step = split_steps[static_cast<size_t>(i)];
                if (step >= 0)
                    state.followSplit(consumer, i, step, 1);
            }
            // Reorder to [outers..., inners...], then fuse + parallel.
            std::vector<int> parts(static_cast<size_t>(ns), 1);
            for (int i = 0; i < ns; ++i)
                if (split_steps[static_cast<size_t>(i)] >= 0)
                    parts[static_cast<size_t>(i)] = 2;
            std::vector<int> order;
            int base = 0;
            std::vector<int> bases(static_cast<size_t>(ns));
            for (int i = 0; i < ns; ++i) {
                bases[static_cast<size_t>(i)] = base;
                order.push_back(base);
                base += parts[static_cast<size_t>(i)];
            }
            for (int i = 0; i < ns; ++i)
                if (parts[static_cast<size_t>(i)] == 2)
                    order.push_back(bases[static_cast<size_t>(i)] + 1);
            if (order.size() != state.stage(consumer).iters.size()) {
                // Trailing consumer loops (e.g. softmax writes) stay last.
                for (size_t q = order.size();
                     q < state.stage(consumer).iters.size(); ++q)
                    order.push_back(static_cast<int>(q));
            }
            state.reorder(consumer, order);
            std::vector<int> outers;
            for (int i = 0; i < ns; ++i)
                outers.push_back(i);
            if (outers.size() > 1)
                state.fuse(consumer, outers);
            state.annotate(consumer, 0, Annotation::Parallel);
            const int last = static_cast<int>(
                state.stage(consumer).iters.size()) - 1;
            if (last > 0 &&
                state.stage(consumer).iters[static_cast<size_t>(last)]
                        .extent <= 64 &&
                rng.bernoulli(0.9)) {
                state.annotate(consumer, last, Annotation::Vectorize);
            }
            if (rng.bernoulli(0.9)) {
                state.computeAt(compute, consumer, 0);
            } else {
                state.computeRoot(compute);
            }
        }
    } else {
        // Compute stage is the root: fuse + annotate it directly.
        const auto &iters = state.stage(compute).iters;
        int outer_spatial = 0;
        for (const auto &iter : iters) {
            if (iter.is_reduction)
                break;
            ++outer_spatial;
        }
        // The loops before the first reduction include tile levels S0,S1;
        // fuse only level-0 (heuristic: first half of leading spatial).
        const int fuse_count = std::max(1, outer_spatial / 2);
        std::vector<int> outers;
        for (int i = 0; i < fuse_count; ++i)
            outers.push_back(i);
        if (outers.size() > 1)
            state.fuse(compute, outers);
        if (is_gpu_) {
            const int64_t threads = static_cast<int64_t>(32)
                                    << rng.randint(0, 3);
            state.split(compute, 0, {threads});
            state.annotate(compute, 0, Annotation::BlockX);
            state.annotate(compute, 1, Annotation::ThreadX);
        } else {
            state.annotate(compute, 0, Annotation::Parallel);
        }
        const int last =
            static_cast<int>(state.stage(compute).iters.size()) - 1;
        const auto &last_iter =
            state.stage(compute).iters[static_cast<size_t>(last)];
        if (!is_gpu_ && !last_iter.is_reduction && last_iter.extent <= 64 &&
            rng.bernoulli(0.9)) {
            state.annotate(compute, last, Annotation::Vectorize);
        }
    }

    state.pragmaUnroll(compute, sampleUnrollStep(rng));
    (void)compute_loops;
}

void
SchedulePolicy::scheduleMedium(State &state, Rng &rng) const
{
    const bool has_tails = output_stage_ != anchor_stage_;
    if (has_tails)
        inlineTails(state, rng, output_stage_);
    const int stage = anchor_stage_;

    // Optional reduction factoring on CPU (large single reductions).
    int red = firstReduction(state, stage);
    if (!is_gpu_ && red >= 0 &&
        state.stage(stage).iters[static_cast<size_t>(red)].extent >= 256 &&
        rng.bernoulli(0.3)) {
        state.split(stage, red, {64});
        const int rf = state.rfactor(stage, red);
        state.annotate(rf, 0, Annotation::Parallel);
    }

    const int ns = numLeadingSpatial(state, stage);
    if (ns == 0)
        return;
    if (ns > 1) {
        std::vector<int> all;
        for (int i = 0; i < ns; ++i)
            all.push_back(i);
        state.fuse(stage, all);
    }

    if (is_gpu_) {
        red = firstReduction(state, stage);
        const auto &iters = state.stage(stage).iters;
        if (red >= 0 &&
            iters[static_cast<size_t>(red)].extent >= 64 &&
            rng.bernoulli(0.4)) {
            // Cross-thread reduction: block over space, threads over the
            // reduction.
            state.annotate(stage, 0, Annotation::BlockX);
            state.split(stage, red, {64});
            state.annotate(stage, red + 1, Annotation::ThreadX);
        } else {
            const int64_t threads =
                static_cast<int64_t>(32) << rng.randint(0, 3);
            state.split(stage, 0, {threads});
            state.annotate(stage, 0, Annotation::BlockX);
            state.annotate(stage, 1, Annotation::ThreadX);
        }
    } else {
        if (rng.bernoulli(0.5) &&
            state.stage(stage).iters[0].extent > 64) {
            state.split(stage, 0, {static_cast<int64_t>(8)
                                   << rng.randint(0, 3)});
        }
        state.annotate(stage, 0, Annotation::Parallel);
        red = firstReduction(state, stage);
        const int last =
            static_cast<int>(state.stage(stage).iters.size()) - 1;
        if (red < 0 && last > 0 &&
            state.stage(stage).iters[static_cast<size_t>(last)].extent <=
                64) {
            state.annotate(stage, last, Annotation::Vectorize);
        }
    }
    if (rng.bernoulli(0.4))
        state.pragmaUnroll(stage, sampleUnrollStep(rng));

    // Schedule the output stage if distinct from the anchor.
    if (has_tails) {
        const int out = output_stage_;
        const int out_ns = numLeadingSpatial(state, out);
        if (out_ns > 1) {
            std::vector<int> all;
            for (int i = 0; i < out_ns; ++i)
                all.push_back(i);
            state.fuse(out, all);
        }
        if (out_ns >= 1) {
            if (is_gpu_) {
                const int64_t threads =
                    static_cast<int64_t>(32) << rng.randint(0, 3);
                state.split(out, 0, {threads});
                state.annotate(out, 0, Annotation::BlockX);
                state.annotate(out, 1, Annotation::ThreadX);
            } else {
                state.annotate(out, 0, Annotation::Parallel);
            }
        }
    }
}

void
SchedulePolicy::scheduleElementwise(State &state, Rng &rng) const
{
    inlineTails(state, rng, output_stage_);
    const int stage = output_stage_;
    const int ns = numLeadingSpatial(state, stage);
    if (ns == 0)
        return;
    if (ns > 1) {
        std::vector<int> all;
        for (int i = 0; i < ns; ++i)
            all.push_back(i);
        state.fuse(stage, all);
    }
    if (is_gpu_) {
        const int64_t threads = static_cast<int64_t>(32)
                                << rng.randint(0, 3);
        state.split(stage, 0, {threads});
        state.annotate(stage, 0, Annotation::BlockX);
        state.annotate(stage, 1, Annotation::ThreadX);
    } else {
        const int64_t vec = static_cast<int64_t>(4) << rng.randint(0, 3);
        if (state.stage(stage).iters[0].extent > vec) {
            state.split(stage, 0, {vec});
            state.annotate(stage, 1, Annotation::Vectorize);
        }
        state.annotate(stage, 0, Annotation::Parallel);
    }
}

State
SchedulePolicy::sampleRandom(Rng &rng) const
{
    State state(subgraph_, is_gpu_);
    if (anchor_stage_ >= 0 &&
        ir::isHeavyAnchor(subgraph_->anchor().kind)) {
        scheduleHeavy(state, rng);
    } else if (anchor_stage_ >= 0) {
        scheduleMedium(state, rng);
    } else {
        scheduleElementwise(state, rng);
    }
    return state;
}

std::vector<State>
SchedulePolicy::sampleInitPopulation(int n, Rng &rng) const
{
    std::vector<State> population;
    std::set<uint64_t> seen;
    int attempts = 0;
    while (static_cast<int>(population.size()) < n && attempts < 8 * n) {
        ++attempts;
        State state = sampleRandom(rng);
        const uint64_t h = state.steps().hash();
        if (seen.insert(h).second)
            population.push_back(std::move(state));
    }
    return population;
}

std::optional<State>
SchedulePolicy::mutate(const State &state, Rng &rng) const
{
    sched::PrimitiveSeq seq = state.steps();
    std::vector<size_t> mutable_steps;
    for (size_t i = 0; i < seq.prims.size(); ++i) {
        const PrimKind kind = seq.prims[i].kind;
        if (kind == PrimKind::SP || kind == PrimKind::PR)
            mutable_steps.push_back(i);
    }
    if (mutable_steps.empty())
        return std::nullopt;

    const size_t pick =
        mutable_steps[static_cast<size_t>(rng.randint(
            static_cast<int64_t>(mutable_steps.size())))];
    Primitive &prim = seq.prims[pick];
    if (prim.kind == PrimKind::SP) {
        const int64_t extent = std::get<int64_t>(prim.params.at(2));
        const auto count = std::get<int64_t>(prim.params.at(3));
        auto lengths = sampleTileLengths(rng, extent,
                                         static_cast<int>(count));
        for (int64_t j = 0; j < count; ++j)
            prim.params.at(4 + static_cast<size_t>(j)) =
                lengths[static_cast<size_t>(j)];
    } else {
        prim.params.at(1) = sampleUnrollStep(rng);
    }
    return sched::replaySteps(subgraph_, is_gpu_, seq);
}

} // namespace tlp::sketch
