/**
 * @file
 * Tile-size sampling helpers for schedule generation.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace tlp::sketch {

/** All positive divisors of @p value in ascending order. */
std::vector<int64_t> divisorsOf(int64_t value);

/**
 * Sample @p parts inner tile lengths for a loop of @p extent.
 *
 * Lengths multiply to at most @p extent. Divisible tilings are preferred;
 * with small probability a non-divisible length is chosen, mirroring
 * Ansor's imperfect tiling. @p max_inner bounds the innermost length
 * (e.g. a vector-width cap).
 */
std::vector<int64_t> sampleTileLengths(Rng &rng, int64_t extent, int parts,
                                       int64_t max_inner = 64);

/** Sample an auto_unroll_max_step pragma value (Ansor's candidates). */
int64_t sampleUnrollStep(Rng &rng);

} // namespace tlp::sketch
