#include "sketch/tiles.h"

#include <algorithm>

namespace tlp::sketch {

std::vector<int64_t>
divisorsOf(int64_t value)
{
    std::vector<int64_t> small, large;
    for (int64_t d = 1; d * d <= value; ++d) {
        if (value % d == 0) {
            small.push_back(d);
            if (d != value / d)
                large.push_back(value / d);
        }
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}

std::vector<int64_t>
sampleTileLengths(Rng &rng, int64_t extent, int parts, int64_t max_inner)
{
    TLP_CHECK(parts >= 1, "need at least one tile length");
    std::vector<int64_t> lengths(static_cast<size_t>(parts), 1);
    int64_t remaining = std::max<int64_t>(1, extent);

    // Innermost first: bias toward small powers of two (vector-friendly).
    for (int p = parts - 1; p >= 0; --p) {
        const int64_t cap = p == parts - 1
                                ? std::min(remaining, max_inner)
                                : remaining;
        if (cap <= 1) {
            lengths[static_cast<size_t>(p)] = 1;
            continue;
        }
        int64_t len;
        if (rng.bernoulli(0.85)) {
            // Divisor of what remains, biased toward the small end.
            auto divisors = divisorsOf(remaining);
            while (!divisors.empty() && divisors.back() > cap)
                divisors.pop_back();
            if (divisors.empty()) {
                len = 1;
            } else {
                // Square the uniform draw to bias small.
                const double u = rng.uniform();
                const size_t idx = static_cast<size_t>(
                    u * u * static_cast<double>(divisors.size()));
                len = divisors[std::min(idx, divisors.size() - 1)];
            }
        } else {
            // Imperfect tile.
            len = rng.randint(1, std::min<int64_t>(cap, 64));
        }
        lengths[static_cast<size_t>(p)] = len;
        remaining = std::max<int64_t>(1, remaining / std::max<int64_t>(1, len));
    }
    return lengths;
}

int64_t
sampleUnrollStep(Rng &rng)
{
    static const int64_t candidates[] = {0, 16, 64, 512};
    return candidates[rng.randint(4)];
}

} // namespace tlp::sketch
