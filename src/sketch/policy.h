/**
 * @file
 * Schedule generation policy (Ansor-like sketch + random annotation).
 *
 * For each subgraph the policy generates complete schedules:
 *   - heavy anchors (dense/conv/batch_matmul) get multi-level tiling
 *     ("SSRSRS" on CPU; block/vthread/thread binding on GPU), optional
 *     cache_write, consumer fusion via follow_split, parallel/vectorize/
 *     unroll annotations, and inlining of elementwise tails;
 *   - medium anchors (pooling, softmax, reductions) get fused+parallel
 *     schedules with optional rfactor / cross-thread reduction;
 *   - elementwise subgraphs get fuse+split+parallel+vectorize.
 *
 * Random annotation fills tile sizes, unroll pragmas, and structure
 * choices, producing the search space the auto-tuner explores. Mutation
 * rewrites one recorded step and replays, as in Ansor's evolutionary
 * search.
 */
#pragma once

#include <optional>
#include <vector>

#include "schedule/state.h"
#include "support/rng.h"

namespace tlp::sketch {

/** Generates random schedules and mutations for one subgraph. */
class SchedulePolicy
{
  public:
    /** @param is_gpu selects the GPU sketch rules (bindings, shared
     *  staging) instead of CPU rules (parallel, vectorize). */
    SchedulePolicy(ir::SubgraphPtr subgraph, bool is_gpu);

    ir::SubgraphPtr subgraph() const { return subgraph_; }
    bool isGpu() const { return is_gpu_; }

    /** One random complete schedule. */
    sched::State sampleRandom(Rng &rng) const;

    /** @p n random schedules, deduplicated by primitive-sequence hash. */
    std::vector<sched::State> sampleInitPopulation(int n, Rng &rng) const;

    /**
     * Mutate one schedule: resample the lengths of one split step or the
     * unroll pragma, then replay. Returns nullopt when the schedule has
     * no mutable step.
     */
    std::optional<sched::State> mutate(const sched::State &state,
                                       Rng &rng) const;

  private:
    void scheduleHeavy(sched::State &state, Rng &rng) const;
    void scheduleMedium(sched::State &state, Rng &rng) const;
    void scheduleElementwise(sched::State &state, Rng &rng) const;
    void inlineTails(sched::State &state, Rng &rng,
                     int keep_stage) const;

    /**
     * Multi-level tile @p stage: split every spatial iterator into
     * @p s_parts parts and every reduction iterator into @p r_parts
     * parts, then reorder into the interleaved SSRSRS-style order.
     * @param[out] spatial_split_steps recorded SP step index per spatial
     *             iterator (for follow_split on the consumer).
     * @return number of spatial iterators.
     */
    int multiLevelTile(sched::State &state, int stage, int s_parts,
                       int r_parts, Rng &rng,
                       std::vector<int> *spatial_split_steps) const;

    ir::SubgraphPtr subgraph_;
    bool is_gpu_ = false;
    int anchor_stage_ = -1;
    int output_stage_ = -1;
};

} // namespace tlp::sketch
