#include "nn/losses.h"

#include <cmath>
#include <map>

namespace tlp::nn {

Tensor
mseLoss(const Tensor &pred, const std::vector<float> &targets)
{
    const int64_t n = pred.numel();
    TLP_CHECK(static_cast<int64_t>(targets.size()) == n,
              "mse target size mismatch");
    auto node = std::make_shared<Node>();
    node->shape = {1};
    node->value.resize(1);
    node->parents = {pred.node()};
    node->requires_grad = pred.requiresGrad();

    // NaN targets mark missing labels (MTL tuples); they contribute
    // neither loss nor gradient.
    const auto &pv = pred.value();
    double loss = 0.0;
    int64_t valid = 0;
    for (int64_t i = 0; i < n; ++i) {
        const float target = targets[static_cast<size_t>(i)];
        if (std::isnan(target))
            continue;
        const double d = pv[static_cast<size_t>(i)] - target;
        loss += d * d;
        ++valid;
    }
    node->value[0] = valid > 0 ? static_cast<float>(
                                     loss / static_cast<double>(valid))
                               : 0.0f;

    auto targets_copy = std::make_shared<std::vector<float>>(targets);
    const int64_t valid_c = valid;
    node->backward_fn = [targets_copy, n, valid_c](Node &self) {
        if (valid_c == 0)
            return;
        auto &gx = self.parents[0]->grad;
        const auto &pv = self.parents[0]->value;
        const float g = self.grad[0] * 2.0f / static_cast<float>(valid_c);
        for (int64_t i = 0; i < n; ++i) {
            const float target = (*targets_copy)[static_cast<size_t>(i)];
            if (std::isnan(target))
                continue;
            gx[static_cast<size_t>(i)] +=
                g * (pv[static_cast<size_t>(i)] - target);
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
rankLoss(const Tensor &pred, const std::vector<float> &targets,
         const std::vector<int> &groups)
{
    const int64_t n = pred.numel();
    TLP_CHECK(static_cast<int64_t>(targets.size()) == n &&
                  static_cast<int64_t>(groups.size()) == n,
              "rank loss size mismatch");

    // Bucket indices by group.
    std::map<int, std::vector<int64_t>> buckets;
    for (int64_t i = 0; i < n; ++i)
        buckets[groups[static_cast<size_t>(i)]].push_back(i);

    auto node = std::make_shared<Node>();
    node->shape = {1};
    node->value.resize(1);
    node->parents = {pred.node()};
    node->requires_grad = pred.requiresGrad();

    const auto &pv = pred.value();
    auto grad_buffer =
        std::make_shared<std::vector<float>>(static_cast<size_t>(n), 0.0f);
    double loss = 0.0;
    int64_t pairs = 0;
    for (const auto &[group, indices] : buckets) {
        for (size_t a = 0; a < indices.size(); ++a) {
            for (size_t b = 0; b < indices.size(); ++b) {
                const int64_t i = indices[a];
                const int64_t j = indices[b];
                const float li = targets[static_cast<size_t>(i)];
                const float lj = targets[static_cast<size_t>(j)];
                if (std::isnan(li) || std::isnan(lj))
                    continue;   // missing labels contribute nothing
                if (li <= lj)
                    continue;   // only pairs where i should rank above j
                const float weight = li - lj;   // lambda weight
                const double diff =
                    static_cast<double>(pv[static_cast<size_t>(i)]) -
                    pv[static_cast<size_t>(j)];
                // log(1 + exp(-diff)), numerically stable.
                const double softplus =
                    diff > 0 ? std::log1p(std::exp(-diff))
                             : -diff + std::log1p(std::exp(diff));
                loss += weight * softplus;
                const double sig = 1.0 / (1.0 + std::exp(diff));
                (*grad_buffer)[static_cast<size_t>(i)] -=
                    static_cast<float>(weight * sig);
                (*grad_buffer)[static_cast<size_t>(j)] +=
                    static_cast<float>(weight * sig);
                ++pairs;
            }
        }
    }
    const double norm = pairs > 0 ? 1.0 / static_cast<double>(pairs) : 0.0;
    node->value[0] = static_cast<float>(loss * norm);
    for (auto &g : *grad_buffer)
        g *= static_cast<float>(norm);

    node->backward_fn = [grad_buffer](Node &self) {
        auto &gx = self.parents[0]->grad;
        const float g = self.grad[0];
        for (size_t i = 0; i < gx.size(); ++i)
            gx[i] += g * (*grad_buffer)[i];
    };
    return Tensor::fromNode(std::move(node));
}

} // namespace tlp::nn
