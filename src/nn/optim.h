/**
 * @file
 * Adam optimizer with decoupled weight decay.
 */
#pragma once

#include "nn/tensor.h"
#include "support/serialize.h"

namespace tlp::nn {

/** Adam hyper-parameters. */
struct AdamOptions
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
    double grad_clip = 5.0;   ///< global-norm clip (0 disables)
};

/** Adam over a fixed parameter list. */
class Adam
{
  public:
    Adam(std::vector<Tensor> params, AdamOptions options = {});

    /** One update using the parameters' accumulated gradients. */
    void step();

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** Adjust the learning rate (for simple schedules). */
    void setLr(double lr) { options_.lr = lr; }
    double lr() const { return options_.lr; }

    /** Steps taken so far (bias-correction time). */
    int64_t stepCount() const { return t_; }

    /**
     * Persist / restore the optimizer state (moments, step count, lr) —
     * the TrainSupervisor's rollback snapshots and the training
     * checkpoints need the optimizer trajectory, not just the weights.
     * The parameter list itself is not serialized; the restoring Adam
     * must hold tensors of identical sizes, in the same order.
     */
    void serializeState(BinaryWriter &writer) const;
    void deserializeState(BinaryReader &reader);

  private:
    std::vector<Tensor> params_;
    AdamOptions options_;
    std::vector<std::vector<float>> m_, v_;
    int64_t t_ = 0;
};

} // namespace tlp::nn
