#include "nn/modules.h"

#include <cmath>

namespace tlp::nn {

void
Module::zeroGrad()
{
    for (Tensor &param : parameters()) {
        auto &grad = param.grad();
        std::fill(grad.begin(), grad.end(), 0.0f);
    }
}

int64_t
Module::numParameters()
{
    int64_t count = 0;
    for (Tensor &param : parameters())
        count += param.numel();
    return count;
}

void
Module::saveParameters(BinaryWriter &writer)
{
    auto params = parameters();
    writer.writePod<uint32_t>(static_cast<uint32_t>(params.size()));
    for (Tensor &param : params)
        writer.writeVector(param.value());
}

void
Module::loadParameters(BinaryReader &reader)
{
    // Mismatches throw SerializeError (not panic): a snapshot from a
    // different architecture is corrupt input, not an internal bug.
    auto params = parameters();
    const auto count = reader.readPod<uint32_t>();
    if (count != params.size()) {
        throw SerializeError(ErrorCode::Corrupt,
                             "parameter count mismatch: stream has " +
                                 std::to_string(count) + ", model has " +
                                 std::to_string(params.size()));
    }
    for (Tensor &param : params) {
        auto values = reader.readVector<float>();
        if (static_cast<int64_t>(values.size()) != param.numel()) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "parameter shape mismatch: stream has " +
                                     std::to_string(values.size()) +
                                     " elements, model wants " +
                                     std::to_string(param.numel()));
        }
        param.value() = std::move(values);
    }
}

Linear::Linear(int in_features, int out_features, Rng &rng)
    : in_(in_features), out_(out_features)
{
    const double stddev = std::sqrt(2.0 / in_features);
    weight_ = Tensor::randn({in_, out_}, rng, stddev, true);
    bias_ = Tensor::zeros({out_}, true);
}

Tensor
Linear::forward(const Tensor &x)
{
    const auto &shape = x.shape();
    TLP_CHECK(shape.back() == in_, "linear input width mismatch: got ",
              shape.back(), ", want ", in_);
    if (shape.size() == 2)
        return addBias(matmul(x, weight_), bias_);
    // Flatten leading dims, multiply, restore.
    const int rows = static_cast<int>(x.numel() / in_);
    Tensor flat = reshape(x, {rows, in_});
    Tensor out = addBias(matmul(flat, weight_), bias_);
    std::vector<int> out_shape = shape;
    out_shape.back() = out_;
    return reshape(out, out_shape);
}

std::vector<Tensor>
Linear::parameters()
{
    return {weight_, bias_};
}

LayerNormModule::LayerNormModule(int features)
{
    gamma_ = Tensor::fromData({features},
                              std::vector<float>(
                                  static_cast<size_t>(features), 1.0f),
                              true);
    beta_ = Tensor::zeros({features}, true);
}

Tensor
LayerNormModule::forward(const Tensor &x)
{
    return layerNorm(x, gamma_, beta_);
}

std::vector<Tensor>
LayerNormModule::parameters()
{
    return {gamma_, beta_};
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int model_dim, int heads,
                                               Rng &rng)
    : dim_(model_dim), heads_(heads), q_(model_dim, model_dim, rng),
      k_(model_dim, model_dim, rng), v_(model_dim, model_dim, rng),
      out_(model_dim, model_dim, rng), norm_(model_dim)
{
    TLP_CHECK(model_dim % heads == 0, "heads must divide model dim");
}

Tensor
MultiHeadSelfAttention::forward(const Tensor &x, bool causal)
{
    const int n = x.dim(0), l = x.dim(1);
    const int hd = dim_ / heads_;

    auto split = [&](Tensor t) {
        // [N, L, D] -> [N, H, L, hd] -> [N*H, L, hd]
        t = reshape(t, {n, l, heads_, hd});
        t = permute0213(t);
        return reshape(t, {n * heads_, l, hd});
    };
    Tensor q = split(q_.forward(x));
    Tensor k = split(k_.forward(x));
    Tensor v = split(v_.forward(x));

    Tensor scores = bmm(q, transposeLast2(k));
    scores = scale(scores, 1.0f / std::sqrt(static_cast<float>(hd)));
    Tensor probs = causal ? softmaxLastDimCausal(scores)
                          : softmaxLastDim(scores);
    Tensor ctx = bmm(probs, v);                    // [N*H, L, hd]

    ctx = reshape(ctx, {n, heads_, l, hd});
    ctx = permute0213(ctx);                        // [N, L, H, hd]
    ctx = reshape(ctx, {n, l, dim_});
    Tensor out = out_.forward(ctx);
    return norm_.forward(add(out, x));             // residual + layer norm
}

std::vector<Tensor>
MultiHeadSelfAttention::parameters()
{
    std::vector<Tensor> params;
    for (Module *module :
         std::initializer_list<Module *>{&q_, &k_, &v_, &out_, &norm_}) {
        for (Tensor &param : module->parameters())
            params.push_back(param);
    }
    return params;
}

Lstm::Lstm(int input_dim, int hidden_dim, Rng &rng)
    : input_(input_dim), hidden_(hidden_dim)
{
    const double stddev = std::sqrt(1.0 / hidden_dim);
    wx_ = Tensor::randn({input_, 4 * hidden_}, rng, stddev, true);
    wh_ = Tensor::randn({hidden_, 4 * hidden_}, rng, stddev, true);
    // Forget-gate bias initialized positive (standard trick).
    std::vector<float> bias(static_cast<size_t>(4 * hidden_), 0.0f);
    for (int i = hidden_; i < 2 * hidden_; ++i)
        bias[static_cast<size_t>(i)] = 1.0f;
    bias_ = Tensor::fromData({4 * hidden_}, std::move(bias), true);
}

Tensor
Lstm::forward(const Tensor &x)
{
    const int n = x.dim(0), l = x.dim(1);
    TLP_CHECK(x.dim(2) == input_, "lstm input width mismatch");

    Tensor h = Tensor::zeros({n, hidden_});
    Tensor c = Tensor::zeros({n, hidden_});
    std::vector<Tensor> outputs;
    outputs.reserve(static_cast<size_t>(l));
    for (int t = 0; t < l; ++t) {
        Tensor xt = selectAxis1(x, t);                       // [N, D]
        Tensor gates =
            addBias(add(matmul(xt, wx_), matmul(h, wh_)), bias_);
        Tensor i_g = sigmoidT(sliceCols(gates, 0, hidden_));
        Tensor f_g = sigmoidT(sliceCols(gates, hidden_, hidden_));
        Tensor g_g = tanhT(sliceCols(gates, 2 * hidden_, hidden_));
        Tensor o_g = sigmoidT(sliceCols(gates, 3 * hidden_, hidden_));
        c = add(mul(f_g, c), mul(i_g, g_g));
        h = mul(o_g, tanhT(c));
        outputs.push_back(h);
    }
    return stackAxis1(outputs);
}

std::vector<Tensor>
Lstm::parameters()
{
    return {wx_, wh_, bias_};
}

ResidualBlock::ResidualBlock(int dim, Rng &rng)
    : fc1_(dim, dim, rng), fc2_(dim, dim, rng), norm_(dim)
{
}

Tensor
ResidualBlock::forward(const Tensor &x)
{
    Tensor h = relu(fc1_.forward(x));
    h = fc2_.forward(h);
    return norm_.forward(add(h, x));
}

std::vector<Tensor>
ResidualBlock::parameters()
{
    std::vector<Tensor> params;
    for (Module *module :
         std::initializer_list<Module *>{&fc1_, &fc2_, &norm_}) {
        for (Tensor &param : module->parameters())
            params.push_back(param);
    }
    return params;
}

} // namespace tlp::nn
