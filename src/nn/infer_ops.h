/**
 * @file
 * Raw-pointer forward row kernels shared by the autograd ops and the
 * fused inference path (DESIGN.md §13).
 *
 * The fused-forward equivalence contract says FusedTlpInference must
 * reproduce the interpreted TlpNet forward bit-for-bit. For ops whose
 * expression contains a multiply feeding an add (gemm, layer-norm's
 * affine epilogue) the compiler's FMA contraction choice could in
 * principle differ between two source copies, so those loops exist
 * exactly once: the noinline functions here (and kern::gemmRows) are
 * the single compiled instance both paths call. Contraction-free maps
 * (bias add, relu, residual add, scale-by-constant, position sums) are
 * safe to restate at the call site and are provided as plain inline
 * helpers for the fused path's convenience.
 *
 * All functions are serial over their row range — callers own the
 * parallel partitioning (ops.cc via parallelRows, fused_infer via its
 * per-block arena loop) — and rows are independent, which is what makes
 * any batching/blocking of the forward bit-identical.
 */
#pragma once

#include <cstdint>

#include "nn/kernels.h"

namespace tlp::nn::iops {

/**
 * Rows [r0, r1) of a row-wise softmax over @p cols columns, matching
 * ops.cc softmaxLastDim: max over the row, exp(x - max) summed in
 * ascending column order, then one multiply by the reciprocal sum.
 * In-place operation (@p out == @p in) is allowed.
 */
TLP_NOINLINE void softmaxRows(const float *in, float *out, int64_t r0,
                              int64_t r1, int64_t cols);

/**
 * Rows [r0, r1) of layer normalization with affine, matching ops.cc
 * layerNorm: mean and biased variance accumulated in ascending column
 * order, inv_std = 1/sqrt(var + eps), out = (x - mean)*inv_std*g + b.
 * When @p stats is non-null, (mean, inv_std) are recorded at
 * stats[2*r] / stats[2*r+1] for the backward pass.
 */
TLP_NOINLINE void layerNormRows(const float *in, const float *gamma,
                                const float *beta, float *out,
                                float *stats, int64_t r0, int64_t r1,
                                int64_t cols, float eps);

/**
 * Rows [r0, r1) of out = x + bias[c] (contraction-free). In-place
 * operation (@p out == @p x) is allowed, so only @p bias carries the
 * no-alias promise.
 */
inline void
addBiasRows(const float *x, const float *TLP_RESTRICT bias,
            float *out, int64_t r0, int64_t r1, int64_t cols)
{
    for (int64_t r = r0; r < r1; ++r)
        for (int64_t c = 0; c < cols; ++c)
            out[r * cols + c] = x[r * cols + c] + bias[c];
}

/**
 * Rows [r0, r1) of out = relu(x + bias[c]); bitwise equal to
 * addBiasRows followed by an elementwise relu (an add then a compare —
 * nothing the compiler can contract). In-place (@p out == @p x) is
 * allowed.
 */
inline void
addBiasReluRows(const float *x,
                const float *TLP_RESTRICT bias, float *out,
                int64_t r0, int64_t r1, int64_t cols)
{
    for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            const float v = x[r * cols + c] + bias[c];
            out[r * cols + c] = v > 0.0f ? v : 0.0f;
        }
    }
}

/**
 * out[i] = a[i] + b[i] over [0, n) (the residual add). @p out may
 * alias either operand.
 */
inline void
addInto(const float *a, const float *b,
        float *out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] + b[i];
}

/** x[i] *= factor over [0, n) (a single multiply per element). */
inline void
scaleInPlace(float *x, int64_t n, float factor)
{
    for (int64_t i = 0; i < n; ++i)
        x[i] *= factor;
}

/**
 * out[r] = sum over cols of x[r, c], ascending c (matches sumAxis1's
 * add-only accumulation).
 */
inline void
sumRows(const float *TLP_RESTRICT x, float *TLP_RESTRICT out, int64_t r0,
        int64_t r1, int64_t cols)
{
    for (int64_t r = r0; r < r1; ++r) {
        float sum = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            sum += x[r * cols + c];
        out[r] = sum;
    }
}

} // namespace tlp::nn::iops
