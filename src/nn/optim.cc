#include "nn/optim.h"

#include <cmath>

namespace tlp::nn {

Adam::Adam(std::vector<Tensor> params, AdamOptions options)
    : params_(std::move(params)), options_(options)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Tensor &param : params_) {
        m_.emplace_back(static_cast<size_t>(param.numel()), 0.0f);
        v_.emplace_back(static_cast<size_t>(param.numel()), 0.0f);
    }
}

void
Adam::step()
{
    ++t_;
    const double bias1 = 1.0 - std::pow(options_.beta1,
                                        static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(options_.beta2,
                                        static_cast<double>(t_));

    // Optional global-norm gradient clipping.
    double clip_scale = 1.0;
    if (options_.grad_clip > 0.0) {
        double norm_sq = 0.0;
        for (Tensor &param : params_)
            for (float g : param.grad())
                norm_sq += static_cast<double>(g) * g;
        const double norm = std::sqrt(norm_sq);
        if (norm > options_.grad_clip)
            clip_scale = options_.grad_clip / norm;
    }

    for (size_t p = 0; p < params_.size(); ++p) {
        auto &value = params_[p].value();
        auto &grad = params_[p].grad();
        auto &m = m_[p];
        auto &v = v_[p];
        for (size_t i = 0; i < value.size(); ++i) {
            double g = static_cast<double>(grad[i]) * clip_scale;
            if (options_.weight_decay > 0.0)
                value[i] -= static_cast<float>(options_.lr *
                                               options_.weight_decay *
                                               value[i]);
            m[i] = static_cast<float>(options_.beta1 * m[i] +
                                      (1.0 - options_.beta1) * g);
            v[i] = static_cast<float>(options_.beta2 * v[i] +
                                      (1.0 - options_.beta2) * g * g);
            const double m_hat = m[i] / bias1;
            const double v_hat = v[i] / bias2;
            value[i] -= static_cast<float>(
                options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps));
        }
    }
}

void
Adam::serializeState(BinaryWriter &writer) const
{
    writer.writePod<int64_t>(t_);
    writer.writePod<double>(options_.lr);
    writer.writePod<uint32_t>(static_cast<uint32_t>(params_.size()));
    for (size_t p = 0; p < params_.size(); ++p) {
        writer.writeVector(m_[p]);
        writer.writeVector(v_[p]);
    }
}

void
Adam::deserializeState(BinaryReader &reader)
{
    const auto t = reader.readPod<int64_t>();
    const auto lr = reader.readPod<double>();
    const auto count = reader.readPod<uint32_t>();
    if (count != params_.size()) {
        throw SerializeError(ErrorCode::Invalid,
                             "optimizer state holds " +
                                 std::to_string(count) +
                                 " parameters, this Adam has " +
                                 std::to_string(params_.size()));
    }
    std::vector<std::vector<float>> m, v;
    m.reserve(count);
    v.reserve(count);
    for (uint32_t p = 0; p < count; ++p) {
        m.push_back(reader.readVector<float>());
        v.push_back(reader.readVector<float>());
        if (m.back().size() != m_[p].size() ||
            v.back().size() != v_[p].size()) {
            throw SerializeError(ErrorCode::Invalid,
                                 "optimizer moment size mismatch at "
                                 "parameter " +
                                     std::to_string(p));
        }
    }
    // All validated: commit.
    t_ = t;
    options_.lr = lr;
    m_ = std::move(m);
    v_ = std::move(v);
}

void
Adam::zeroGrad()
{
    for (Tensor &param : params_) {
        auto &grad = param.grad();
        std::fill(grad.begin(), grad.end(), 0.0f);
    }
}

} // namespace tlp::nn
