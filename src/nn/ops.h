/**
 * @file
 * Differentiable tensor operations.
 *
 * All functions build autograd graph nodes eagerly. Shapes are validated;
 * broadcasting is intentionally limited to the bias pattern (a 1-D tensor
 * added over the last axis) to keep gradients simple and fast.
 */
#pragma once

#include "nn/tensor.h"

namespace tlp::nn {

/** Elementwise sum of same-shaped tensors. */
Tensor add(const Tensor &a, const Tensor &b);

/** x + bias where bias is 1-D over the last axis of x. */
Tensor addBias(const Tensor &x, const Tensor &bias);

/** Elementwise product of same-shaped tensors. */
Tensor mul(const Tensor &a, const Tensor &b);

/** x * constant. */
Tensor scale(const Tensor &x, float factor);

/** Matrix product: [m, k] x [k, n] -> [m, n]. */
Tensor matmul(const Tensor &a, const Tensor &b);

/** Batched matrix product: [B, m, k] x [B, k, n] -> [B, m, n]. */
Tensor bmm(const Tensor &a, const Tensor &b);

/** Rectified linear unit. */
Tensor relu(const Tensor &x);

/** Hyperbolic tangent. */
Tensor tanhT(const Tensor &x);

/** Logistic sigmoid. */
Tensor sigmoidT(const Tensor &x);

/** Softmax over the last axis. */
Tensor softmaxLastDim(const Tensor &x);

/**
 * Causally masked softmax for square attention scores [..., L, L]: row r
 * only attends to columns <= r (used by the GPT-style pretraining of
 * Table 8).
 */
Tensor softmaxLastDimCausal(const Tensor &x);

/** Swap the last two axes (rank >= 2). */
Tensor transposeLast2(const Tensor &x);

/** Permute a rank-4 tensor [a, b, c, d] -> [a, c, b, d]. */
Tensor permute0213(const Tensor &x);

/** Reshape (copying view). */
Tensor reshape(const Tensor &x, const std::vector<int> &shape);

/** Sum of all elements -> scalar. */
Tensor sumAll(const Tensor &x);

/** Mean of all elements -> scalar. */
Tensor meanAll(const Tensor &x);

/** Row-sum of a 2-D tensor: [n, m] -> [n]. */
Tensor sumAxis1(const Tensor &x);

/** Select index @p t of axis 1: [n, l, d] -> [n, d]. */
Tensor selectAxis1(const Tensor &x, int t);

/** Stack [n, d] slices into [n, len(slices), d]. */
Tensor stackAxis1(const std::vector<Tensor> &slices);

/** Column slice of a 2-D tensor: [n, m] -> [n, len]. */
Tensor sliceCols(const Tensor &x, int start, int len);

/** Inverted dropout; identity when @p training is false or p == 0. */
Tensor dropout(const Tensor &x, double p, Rng &rng, bool training);

/** Layer normalization over the last axis with affine params. */
Tensor layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 float eps = 1e-5f);

} // namespace tlp::nn
