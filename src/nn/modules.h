/**
 * @file
 * Neural-network modules used by the TLP / MTL-TLP architectures.
 *
 * The paper's model (Fig. 7) is: several linear layers up-sampling the
 * embedding, one self-attention (or LSTM) backbone block, two residual
 * blocks, and linear head layers whose per-position outputs are summed
 * into the prediction score. These modules compose that architecture.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/ops.h"
#include "support/serialize.h"

namespace tlp::nn {

/** Base class: parameter registration, gradient reset, serialization. */
class Module
{
  public:
    virtual ~Module() = default;

    /** All trainable leaf tensors. */
    virtual std::vector<Tensor> parameters() = 0;

    /** Zero the gradients of every parameter. */
    void zeroGrad();

    /** Total parameter count. */
    int64_t numParameters();

    /** Serialize all parameters in order. */
    void saveParameters(BinaryWriter &writer);

    /** Load parameters in the same order (shapes must match). */
    void loadParameters(BinaryReader &reader);
};

/** Affine layer y = x W + b, applied over the last axis. */
class Linear : public Module
{
  public:
    /** Kaiming-ish init with fan-in scaling. */
    Linear(int in_features, int out_features, Rng &rng);

    /** x [..., in] -> [..., out]. */
    Tensor forward(const Tensor &x);

    std::vector<Tensor> parameters() override;

    int inFeatures() const { return in_; }
    int outFeatures() const { return out_; }

  private:
    int in_, out_;
    Tensor weight_;   ///< [in, out]
    Tensor bias_;     ///< [out]
};

/** Layer normalization over the last axis. */
class LayerNormModule : public Module
{
  public:
    explicit LayerNormModule(int features);

    Tensor forward(const Tensor &x);

    std::vector<Tensor> parameters() override;

  private:
    Tensor gamma_, beta_;
};

/** Multi-head self-attention with output projection (one block). */
class MultiHeadSelfAttention : public Module
{
  public:
    MultiHeadSelfAttention(int model_dim, int heads, Rng &rng);

    /** x [N, L, D] -> [N, L, D] (residual + layer-norm inside).
     *  @p causal restricts attention to the prefix (GPT pretraining). */
    Tensor forward(const Tensor &x, bool causal = false);

    std::vector<Tensor> parameters() override;

  private:
    int dim_, heads_;
    Linear q_, k_, v_, out_;
    LayerNormModule norm_;
};

/** Single-layer LSTM returning the full hidden sequence. */
class Lstm : public Module
{
  public:
    Lstm(int input_dim, int hidden_dim, Rng &rng);

    /** x [N, L, D] -> [N, L, H]. */
    Tensor forward(const Tensor &x);

    std::vector<Tensor> parameters() override;

    int hiddenDim() const { return hidden_; }

  private:
    int input_, hidden_;
    Tensor wx_;   ///< [D, 4H]
    Tensor wh_;   ///< [H, 4H]
    Tensor bias_; ///< [4H]
};

/** Residual MLP block: x + W2 relu(W1 x), with layer norm. */
class ResidualBlock : public Module
{
  public:
    ResidualBlock(int dim, Rng &rng);

    Tensor forward(const Tensor &x);

    std::vector<Tensor> parameters() override;

  private:
    Linear fc1_, fc2_;
    LayerNormModule norm_;
};

} // namespace tlp::nn
