/**
 * @file
 * Cache-blocked, thread-parallel compute kernels under the autograd ops.
 *
 * Every kernel distributes disjoint output row (or batch) ranges across
 * the global ThreadPool and keeps the per-element floating-point
 * accumulation order identical to the naive i-k-j loops it replaced —
 * k-blocks are visited in increasing order, and each output element is
 * owned by exactly one thread — so results are bit-identical for any
 * thread count (no atomics, no cross-thread reductions) and to the
 * original scalar code.
 *
 * The serial micro-kernels take `__restrict`-qualified pointers (the
 * operands never alias) and unroll the k panel four-wide with a single
 * sequential accumulator chain per output element — the compiler keeps
 * the C row in registers/vectors across four FMA streams instead of a
 * load/store per multiply, without reordering any float addition.
 *
 * The forward micro-kernels (gemmRows / bmm's per-batch body) are
 * exported and marked noinline: the fused inference path (nn/infer_ops,
 * models/fused_infer) calls the *same machine code* as the autograd
 * ops, which is what makes "fused forward == interpreted forward" an
 * exact bitwise statement instead of a numerical-tolerance one.
 */
#pragma once

#include <cstdint>

/** Non-aliasing pointer qualifier (GCC/Clang/MSVC spelling). */
#define TLP_RESTRICT __restrict

/** Force one shared code instance for bit-identity across call sites. */
#if defined(__GNUC__) || defined(__clang__)
#define TLP_NOINLINE __attribute__((noinline))
#else
#define TLP_NOINLINE
#endif

namespace tlp::nn::kern {

/**
 * Scalar work (~flops) a chunk must amortize before a loop is split
 * across threads; small tensors stay on the calling thread.
 */
constexpr int64_t kParallelGrainWork = 16 * 1024;

/** Rows per chunk so each chunk holds ~kParallelGrainWork scalar ops. */
int64_t rowGrain(int64_t work_per_row);

/**
 * Serial micro-kernel: rows [i0, i1) of C[m, n] = A[m, k] * B[k, n],
 * k-blocked, C fully overwritten. Per output element the k accumulation
 * order is globally increasing — identical to naive i-k-j. Exported
 * (and never inlined) so the fused inference path reuses this exact
 * code; all three operands must be disjoint.
 */
TLP_NOINLINE void gemmRows(const float *TLP_RESTRICT a,
                           const float *TLP_RESTRICT b,
                           float *TLP_RESTRICT c, int64_t i0, int64_t i1,
                           int64_t k, int64_t n);

/** C[m, n] = A[m, k] * B[k, n] (C fully overwritten). */
void gemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
          int64_t n);

/** GA[m, k] += GC[m, n] * B[k, n]^T (the dA = dC * B^T update). */
void gemmNT(const float *gc, const float *b, float *ga, int64_t m,
            int64_t k, int64_t n);

/** GB[k, n] += A[m, k]^T * GC[m, n] (the dB = A^T * dC update). */
void gemmTN(const float *a, const float *gc, float *gb, int64_t m,
            int64_t k, int64_t n);

/** C[s] = A[s] * B[s] for s in [0, batch) (C fully overwritten). */
void bmm(const float *a, const float *b, float *c, int64_t batch,
         int64_t m, int64_t k, int64_t n);

/** GA[s] += GC[s] * B[s]^T for s in [0, batch). */
void bmmNT(const float *gc, const float *b, float *ga, int64_t batch,
           int64_t m, int64_t k, int64_t n);

/** GB[s] += A[s]^T * GC[s] for s in [0, batch). */
void bmmTN(const float *a, const float *gc, float *gb, int64_t batch,
           int64_t m, int64_t k, int64_t n);

} // namespace tlp::nn::kern
