/**
 * @file
 * Cache-blocked, thread-parallel compute kernels under the autograd ops.
 *
 * Every kernel distributes disjoint output row (or batch) ranges across
 * the global ThreadPool and keeps the per-element floating-point
 * accumulation order identical to the naive i-k-j loops it replaced —
 * k-blocks are visited in increasing order, and each output element is
 * owned by exactly one thread — so results are bit-identical for any
 * thread count (no atomics, no cross-thread reductions) and to the
 * original scalar code.
 *
 * The scalar micro-kernels are plain i-k-j loops with the A element
 * hoisted, which the compiler auto-vectorizes over the unit-stride j
 * dimension; blocking over k (and i for the transposed update) keeps
 * the streamed B / dC panels resident in L1.
 */
#pragma once

#include <cstdint>

namespace tlp::nn::kern {

/**
 * Scalar work (~flops) a chunk must amortize before a loop is split
 * across threads; small tensors stay on the calling thread.
 */
constexpr int64_t kParallelGrainWork = 16 * 1024;

/** Rows per chunk so each chunk holds ~kParallelGrainWork scalar ops. */
int64_t rowGrain(int64_t work_per_row);

/** C[m, n] = A[m, k] * B[k, n] (C fully overwritten). */
void gemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
          int64_t n);

/** GA[m, k] += GC[m, n] * B[k, n]^T (the dA = dC * B^T update). */
void gemmNT(const float *gc, const float *b, float *ga, int64_t m,
            int64_t k, int64_t n);

/** GB[k, n] += A[m, k]^T * GC[m, n] (the dB = A^T * dC update). */
void gemmTN(const float *a, const float *gc, float *gb, int64_t m,
            int64_t k, int64_t n);

/** C[s] = A[s] * B[s] for s in [0, batch) (C fully overwritten). */
void bmm(const float *a, const float *b, float *c, int64_t batch,
         int64_t m, int64_t k, int64_t n);

/** GA[s] += GC[s] * B[s]^T for s in [0, batch). */
void bmmNT(const float *gc, const float *b, float *ga, int64_t batch,
           int64_t m, int64_t k, int64_t n);

/** GB[s] += A[s]^T * GC[s] for s in [0, batch). */
void bmmTN(const float *a, const float *gc, float *gb, int64_t batch,
           int64_t m, int64_t k, int64_t n);

} // namespace tlp::nn::kern
