/**
 * @file
 * Loss functions: MSE and pairwise lambda-rank (paper Sec. 4.4).
 *
 * The label of a tensor program is min_latency / latency in (0, 1]. MSE
 * regresses it directly; the rank loss only cares about ordering within
 * a subgraph's candidate set, weighting each pair by its label gap as in
 * LambdaRank/TenSet. Both are implemented as single fused graph nodes so
 * the O(n^2) pair loop never materializes intermediate tensors.
 */
#pragma once

#include "nn/tensor.h"

namespace tlp::nn {

/** Mean squared error between pred [n] and targets. */
Tensor mseLoss(const Tensor &pred, const std::vector<float> &targets);

/**
 * Pairwise lambda-rank loss within groups.
 *
 * @param pred    scores [n]
 * @param targets labels [n], higher = better
 * @param groups  group id per element; pairs are formed within a group
 */
Tensor rankLoss(const Tensor &pred, const std::vector<float> &targets,
                const std::vector<int> &groups);

} // namespace tlp::nn
