/**
 * @file
 * A small tape-based autograd tensor.
 *
 * Tensors are dense float32 arrays with dynamic shapes. Operations (see
 * ops.h) eagerly compute values and record a backward closure; calling
 * backward() on a scalar tensor topologically sorts the recorded graph
 * and accumulates gradients into every node with requires_grad set.
 *
 * The library is deliberately minimal — just enough to train the TLP /
 * MTL-TLP architectures (linear layers, multi-head self-attention, LSTM,
 * residual MLP blocks) on CPU — and fully deterministic given an Rng.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"

namespace tlp::nn {

/** Autograd graph node backing a Tensor. */
struct Node
{
    std::vector<int> shape;
    std::vector<float> value;
    std::vector<float> grad;     ///< allocated lazily at backward time
    bool requires_grad = false;
    std::vector<std::shared_ptr<Node>> parents;
    /** Accumulates this node's grad into its parents' grads. */
    std::function<void(Node &)> backward_fn;

    int64_t numel() const { return static_cast<int64_t>(value.size()); }

    /** Ensure the grad buffer exists (zero-filled). */
    void ensureGrad();
};

/** Handle to an autograd node. */
class Tensor
{
  public:
    Tensor() = default;

    /** True when this handle points at a node. */
    bool defined() const { return node_ != nullptr; }

    const std::vector<int> &shape() const;
    int64_t numel() const;
    int dim(int axis) const;

    std::vector<float> &value();
    const std::vector<float> &value() const;
    std::vector<float> &grad();

    bool requiresGrad() const;

    /** Run reverse-mode autodiff from this (scalar) tensor. */
    void backward();

    std::shared_ptr<Node> node() const { return node_; }

    // --- constructors ---

    /** All-zeros tensor. */
    static Tensor zeros(const std::vector<int> &shape,
                        bool requires_grad = false);

    /** Tensor wrapping explicit data. */
    static Tensor fromData(const std::vector<int> &shape,
                           std::vector<float> data,
                           bool requires_grad = false);

    /** Gaussian-initialized tensor (mean 0, given stddev). */
    static Tensor randn(const std::vector<int> &shape, Rng &rng,
                        double stddev, bool requires_grad = true);

    /** Wrap an existing node. */
    static Tensor fromNode(std::shared_ptr<Node> node);

  private:
    std::shared_ptr<Node> node_;
};

/** Number of elements implied by @p shape. */
int64_t shapeNumel(const std::vector<int> &shape);

} // namespace tlp::nn
