#include "nn/infer_ops.h"

#include <algorithm>
#include <cmath>

namespace tlp::nn::iops {

void
softmaxRows(const float *in, float *out, int64_t r0, int64_t r1,
            int64_t cols)
{
    for (int64_t r = r0; r < r1; ++r) {
        const float *row_in = in + r * cols;
        float *row_out = out + r * cols;
        float max_v = row_in[0];
        for (int64_t c = 1; c < cols; ++c)
            max_v = std::max(max_v, row_in[c]);
        float sum = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
            row_out[c] = std::exp(row_in[c] - max_v);
            sum += row_out[c];
        }
        const float inv = 1.0f / sum;
        for (int64_t c = 0; c < cols; ++c)
            row_out[c] *= inv;
    }
}

void
layerNormRows(const float *in, const float *gamma, const float *beta,
              float *out, float *stats, int64_t r0, int64_t r1,
              int64_t cols, float eps)
{
    for (int64_t r = r0; r < r1; ++r) {
        const float *row_in = in + r * cols;
        float mean = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            mean += row_in[c];
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
            const float d = row_in[c] - mean;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float inv_std = 1.0f / std::sqrt(var + eps);
        if (stats) {
            stats[2 * r] = mean;
            stats[2 * r + 1] = inv_std;
        }
        float *row_out = out + r * cols;
        for (int64_t c = 0; c < cols; ++c)
            row_out[c] = (row_in[c] - mean) * inv_std * gamma[c] + beta[c];
    }
}

} // namespace tlp::nn::iops
