#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/infer_ops.h"
#include "nn/kernels.h"
#include "support/thread_pool.h"

namespace tlp::nn {

namespace {

std::shared_ptr<Node>
makeNode(std::vector<int> shape,
         std::vector<std::shared_ptr<Node>> parents)
{
    auto node = std::make_shared<Node>();
    node->shape = std::move(shape);
    node->value.resize(static_cast<size_t>(shapeNumel(node->shape)));
    node->parents = std::move(parents);
    for (const auto &parent : node->parents)
        node->requires_grad |= parent->requires_grad;
    return node;
}

/** Leading dims x last dim factorization. */
std::pair<int64_t, int64_t>
rowsCols(const std::vector<int> &shape)
{
    TLP_CHECK(!shape.empty(), "rank-0 tensor");
    const int64_t cols = shape.back();
    return {shapeNumel(shape) / cols, cols};
}

/** Chunk size for ~1-flop/element maps (add, mul, relu, copies). */
constexpr int64_t kCheapGrain = 32 * 1024;

/** Chunk size for transcendental maps (exp, tanh, sigmoid). */
constexpr int64_t kTranscendentalGrain = 4 * 1024;

/** Elementwise map over [0, n), split across the global pool. */
template <typename Fn>
void
parallelMap(int64_t n, int64_t grain, Fn &&fn)
{
    ThreadPool::global().parallelFor(
        0, n, grain, [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i)
                fn(i);
        });
}

/** Row-range map over [0, rows), split across the global pool. */
template <typename Fn>
void
parallelRows(int64_t rows, int64_t work_per_row, Fn &&fn)
{
    ThreadPool::global().parallelFor(0, rows,
                                     kern::rowGrain(work_per_row),
                                     std::forward<Fn>(fn));
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape() == b.shape(), "add shape mismatch");
    auto node = makeNode(a.shape(), {a.node(), b.node()});
    const float *av = a.value().data();
    const float *bv = b.value().data();
    float *out = node->value.data();
    parallelMap(node->numel(), kCheapGrain,
                [=](int64_t i) { out[i] = av[i] + bv[i]; });
    node->backward_fn = [](Node &self) {
        const float *g = self.grad.data();
        for (int p = 0; p < 2; ++p) {
            float *grad = self.parents[static_cast<size_t>(p)]->grad.data();
            parallelMap(self.numel(), kCheapGrain,
                        [=](int64_t i) { grad[i] += g[i]; });
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
addBias(const Tensor &x, const Tensor &bias)
{
    TLP_CHECK(bias.shape().size() == 1, "bias must be 1-D");
    const auto [rows, cols] = rowsCols(x.shape());
    TLP_CHECK(cols == bias.numel(), "bias width mismatch");
    auto node = makeNode(x.shape(), {x.node(), bias.node()});
    const float *xv = x.value().data();
    const float *bv = bias.value().data();
    float *out = node->value.data();
    const int64_t rows_c = rows, cols_c = cols;
    parallelRows(rows_c, cols_c, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r)
            for (int64_t c = 0; c < cols_c; ++c)
                out[r * cols_c + c] = xv[r * cols_c + c] + bv[c];
    });
    node->backward_fn = [rows_c, cols_c](Node &self) {
        float *gx = self.parents[0]->grad.data();
        float *gb = self.parents[1]->grad.data();
        const float *g = self.grad.data();
        // Partition by columns: each chunk owns a disjoint slice of both
        // gx and gb, and per column the row accumulation order into
        // gb[c] stays the serial 0..rows order.
        ThreadPool::global().parallelFor(
            0, cols_c, kern::rowGrain(rows_c),
            [=](int64_t c0, int64_t c1) {
                for (int64_t r = 0; r < rows_c; ++r) {
                    for (int64_t c = c0; c < c1; ++c) {
                        const float gv = g[r * cols_c + c];
                        gx[r * cols_c + c] += gv;
                        gb[c] += gv;
                    }
                }
            });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape() == b.shape(), "mul shape mismatch");
    auto node = makeNode(a.shape(), {a.node(), b.node()});
    const float *av = a.value().data();
    const float *bv = b.value().data();
    float *out = node->value.data();
    parallelMap(node->numel(), kCheapGrain,
                [=](int64_t i) { out[i] = av[i] * bv[i]; });
    node->backward_fn = [](Node &self) {
        float *ga = self.parents[0]->grad.data();
        float *gb = self.parents[1]->grad.data();
        const float *av = self.parents[0]->value.data();
        const float *bv = self.parents[1]->value.data();
        const float *g = self.grad.data();
        parallelMap(self.numel(), kCheapGrain, [=](int64_t i) {
            ga[i] += g[i] * bv[i];
            gb[i] += g[i] * av[i];
        });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
scale(const Tensor &x, float factor)
{
    auto node = makeNode(x.shape(), {x.node()});
    const float *xv = x.value().data();
    float *out = node->value.data();
    parallelMap(node->numel(), kCheapGrain,
                [=](int64_t i) { out[i] = xv[i] * factor; });
    node->backward_fn = [factor](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *g = self.grad.data();
        parallelMap(self.numel(), kCheapGrain,
                    [=](int64_t i) { gx[i] += g[i] * factor; });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape().size() == 2 && b.shape().size() == 2,
              "matmul expects rank-2 inputs");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    TLP_CHECK(b.dim(0) == k, "matmul contraction mismatch");
    auto node = makeNode({static_cast<int>(m), static_cast<int>(n)},
                         {a.node(), b.node()});
    kern::gemm(a.value().data(), b.value().data(), node->value.data(), m,
               k, n);
    node->backward_fn = [m, k, n](Node &self) {
        const float *av = self.parents[0]->value.data();
        const float *bv = self.parents[1]->value.data();
        float *ga = self.parents[0]->grad.data();
        float *gb = self.parents[1]->grad.data();
        const float *gc = self.grad.data();
        kern::gemmNT(gc, bv, ga, m, k, n);   // dA += dC * B^T
        kern::gemmTN(av, gc, gb, m, k, n);   // dB += A^T * dC
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
bmm(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape().size() == 3 && b.shape().size() == 3,
              "bmm expects rank-3 inputs");
    const int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2),
                  n = b.dim(2);
    TLP_CHECK(b.dim(0) == batch && b.dim(1) == k, "bmm shape mismatch");
    auto node = makeNode({static_cast<int>(batch), static_cast<int>(m),
                          static_cast<int>(n)},
                         {a.node(), b.node()});
    kern::bmm(a.value().data(), b.value().data(), node->value.data(),
              batch, m, k, n);
    node->backward_fn = [batch, m, k, n](Node &self) {
        const float *av = self.parents[0]->value.data();
        const float *bv = self.parents[1]->value.data();
        float *ga = self.parents[0]->grad.data();
        float *gb = self.parents[1]->grad.data();
        const float *gc = self.grad.data();
        kern::bmmNT(gc, bv, ga, batch, m, k, n);
        kern::bmmTN(av, gc, gb, batch, m, k, n);
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
relu(const Tensor &x)
{
    auto node = makeNode(x.shape(), {x.node()});
    const float *xv = x.value().data();
    float *out = node->value.data();
    parallelMap(node->numel(), kCheapGrain, [=](int64_t i) {
        out[i] = xv[i] > 0.0f ? xv[i] : 0.0f;
    });
    node->backward_fn = [](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *xv = self.parents[0]->value.data();
        const float *g = self.grad.data();
        parallelMap(self.numel(), kCheapGrain, [=](int64_t i) {
            gx[i] += xv[i] > 0.0f ? g[i] : 0.0f;
        });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
tanhT(const Tensor &x)
{
    auto node = makeNode(x.shape(), {x.node()});
    const float *xv = x.value().data();
    float *out = node->value.data();
    parallelMap(node->numel(), kTranscendentalGrain,
                [=](int64_t i) { out[i] = std::tanh(xv[i]); });
    node->backward_fn = [](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *y = self.value.data();
        const float *g = self.grad.data();
        parallelMap(self.numel(), kCheapGrain, [=](int64_t i) {
            gx[i] += g[i] * (1.0f - y[i] * y[i]);
        });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
sigmoidT(const Tensor &x)
{
    auto node = makeNode(x.shape(), {x.node()});
    const float *xv = x.value().data();
    float *out = node->value.data();
    parallelMap(node->numel(), kTranscendentalGrain, [=](int64_t i) {
        out[i] = 1.0f / (1.0f + std::exp(-xv[i]));
    });
    node->backward_fn = [](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *y = self.value.data();
        const float *g = self.grad.data();
        parallelMap(self.numel(), kCheapGrain, [=](int64_t i) {
            gx[i] += g[i] * y[i] * (1.0f - y[i]);
        });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
softmaxLastDim(const Tensor &x)
{
    const auto [rows, cols] = rowsCols(x.shape());
    auto node = makeNode(x.shape(), {x.node()});
    const float *xv = x.value().data();
    float *outv = node->value.data();
    const int64_t rows_c = rows, cols_c = cols;
    // exp() dominates the row cost; weight the grain accordingly. The
    // row kernel is shared with the fused inference path (infer_ops.h)
    // so both forwards are literally the same compiled code.
    parallelRows(rows_c, 8 * cols_c, [=](int64_t r0, int64_t r1) {
        iops::softmaxRows(xv, outv, r0, r1, cols_c);
    });
    node->backward_fn = [rows_c, cols_c](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *yv = self.value.data();
        const float *gyv = self.grad.data();
        parallelRows(rows_c, 3 * cols_c, [=](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
                const float *y = yv + r * cols_c;
                const float *gy = gyv + r * cols_c;
                float dot = 0.0f;
                for (int64_t c = 0; c < cols_c; ++c)
                    dot += y[c] * gy[c];
                float *g = gx + r * cols_c;
                for (int64_t c = 0; c < cols_c; ++c)
                    g[c] += y[c] * (gy[c] - dot);
            }
        });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
softmaxLastDimCausal(const Tensor &x)
{
    const auto &shape = x.shape();
    TLP_CHECK(shape.size() >= 2 &&
                  shape.back() == shape[shape.size() - 2],
              "causal softmax needs square trailing dims");
    const int64_t l = shape.back();
    const auto [rows, cols] = rowsCols(shape);
    auto node = makeNode(shape, {x.node()});
    const float *xv = x.value().data();
    float *outv = node->value.data();
    const int64_t rows_c = rows, cols_c = cols;
    parallelRows(rows_c, 8 * cols_c, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const int64_t allowed = (r % l) + 1;   // row index in block
            const float *in = xv + r * cols_c;
            float *out = outv + r * cols_c;
            float max_v = in[0];
            for (int64_t c = 1; c < allowed; ++c)
                max_v = std::max(max_v, in[c]);
            float sum = 0.0f;
            for (int64_t c = 0; c < allowed; ++c) {
                out[c] = std::exp(in[c] - max_v);
                sum += out[c];
            }
            const float inv = 1.0f / sum;
            for (int64_t c = 0; c < allowed; ++c)
                out[c] *= inv;
            for (int64_t c = allowed; c < cols_c; ++c)
                out[c] = 0.0f;
        }
    });
    node->backward_fn = [rows_c, cols_c](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *yv = self.value.data();
        const float *gyv = self.grad.data();
        parallelRows(rows_c, 3 * cols_c, [=](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
                const float *y = yv + r * cols_c;
                const float *gy = gyv + r * cols_c;
                float dot = 0.0f;
                for (int64_t c = 0; c < cols_c; ++c)
                    dot += y[c] * gy[c];
                float *g = gx + r * cols_c;
                // masked positions have y == 0 and receive no gradient
                for (int64_t c = 0; c < cols_c; ++c)
                    g[c] += y[c] * (gy[c] - dot);
            }
        });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
transposeLast2(const Tensor &x)
{
    const auto &shape = x.shape();
    TLP_CHECK(shape.size() >= 2, "transpose needs rank >= 2");
    std::vector<int> out_shape = shape;
    std::swap(out_shape[out_shape.size() - 1],
              out_shape[out_shape.size() - 2]);
    const int64_t rows = shape[shape.size() - 2];
    const int64_t cols = shape[shape.size() - 1];
    const int64_t batch = shapeNumel(shape) / (rows * cols);

    auto node = makeNode(out_shape, {x.node()});
    const float *xv = x.value().data();
    float *outv = node->value.data();
    ThreadPool::global().parallelFor(
        0, batch, kern::rowGrain(rows * cols),
        [=](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
                const float *in = xv + s * rows * cols;
                float *out = outv + s * rows * cols;
                for (int64_t r = 0; r < rows; ++r)
                    for (int64_t c = 0; c < cols; ++c)
                        out[c * rows + r] = in[r * cols + c];
            }
        });
    node->backward_fn = [batch, rows, cols](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *gv = self.grad.data();
        ThreadPool::global().parallelFor(
            0, batch, kern::rowGrain(rows * cols),
            [=](int64_t s0, int64_t s1) {
                for (int64_t s = s0; s < s1; ++s) {
                    const float *gout = gv + s * rows * cols;
                    float *gin = gx + s * rows * cols;
                    for (int64_t r = 0; r < rows; ++r)
                        for (int64_t c = 0; c < cols; ++c)
                            gin[r * cols + c] += gout[c * rows + r];
                }
            });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
permute0213(const Tensor &x)
{
    const auto &shape = x.shape();
    TLP_CHECK(shape.size() == 4, "permute0213 needs rank 4");
    const int64_t a = shape[0], b = shape[1], c = shape[2], d = shape[3];
    auto node = makeNode({shape[0], shape[2], shape[1], shape[3]},
                         {x.node()});
    const float *xv = x.value().data();
    float *outv = node->value.data();
    ThreadPool::global().parallelFor(
        0, a, kern::rowGrain(b * c * d), [=](int64_t a0, int64_t a1) {
            for (int64_t ia = a0; ia < a1; ++ia)
                for (int64_t ib = 0; ib < b; ++ib)
                    for (int64_t ic = 0; ic < c; ++ic) {
                        const float *in =
                            xv + ((ia * b + ib) * c + ic) * d;
                        float *out =
                            outv + ((ia * c + ic) * b + ib) * d;
                        std::copy(in, in + d, out);
                    }
        });
    node->backward_fn = [a, b, c, d](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *gv = self.grad.data();
        ThreadPool::global().parallelFor(
            0, a, kern::rowGrain(b * c * d), [=](int64_t a0, int64_t a1) {
                for (int64_t ia = a0; ia < a1; ++ia)
                    for (int64_t ib = 0; ib < b; ++ib)
                        for (int64_t ic = 0; ic < c; ++ic) {
                            float *gin =
                                gx + ((ia * b + ib) * c + ic) * d;
                            const float *gout =
                                gv + ((ia * c + ic) * b + ib) * d;
                            for (int64_t id = 0; id < d; ++id)
                                gin[id] += gout[id];
                        }
            });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
reshape(const Tensor &x, const std::vector<int> &shape)
{
    TLP_CHECK(shapeNumel(shape) == x.numel(),
              "reshape changes element count");
    auto node = makeNode(shape, {x.node()});
    node->value = x.value();
    node->backward_fn = [](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *g = self.grad.data();
        parallelMap(self.numel(), kCheapGrain,
                    [=](int64_t i) { gx[i] += g[i]; });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
sumAll(const Tensor &x)
{
    auto node = makeNode({1}, {x.node()});
    float sum = 0.0f;
    for (float v : x.value())
        sum += v;
    node->value[0] = sum;
    node->backward_fn = [](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float g = self.grad[0];
        parallelMap(self.parents[0]->numel(), kCheapGrain,
                    [=](int64_t i) { gx[i] += g; });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
meanAll(const Tensor &x)
{
    return scale(sumAll(x), 1.0f / static_cast<float>(x.numel()));
}

Tensor
sumAxis1(const Tensor &x)
{
    TLP_CHECK(x.shape().size() == 2, "sumAxis1 needs rank 2");
    const int64_t n = x.dim(0), m = x.dim(1);
    auto node = makeNode({static_cast<int>(n)}, {x.node()});
    const float *xv = x.value().data();
    float *out = node->value.data();
    parallelRows(n, m, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            float sum = 0.0f;
            for (int64_t c = 0; c < m; ++c)
                sum += xv[r * m + c];
            out[r] = sum;
        }
    });
    node->backward_fn = [n, m](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *g = self.grad.data();
        parallelRows(n, m, [=](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r)
                for (int64_t c = 0; c < m; ++c)
                    gx[r * m + c] += g[r];
        });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
selectAxis1(const Tensor &x, int t)
{
    TLP_CHECK(x.shape().size() == 3, "selectAxis1 needs rank 3");
    const int64_t n = x.dim(0), l = x.dim(1), d = x.dim(2);
    TLP_CHECK(t >= 0 && t < l, "bad time index");
    auto node = makeNode({static_cast<int>(n), static_cast<int>(d)},
                         {x.node()});
    const auto &xv = x.value();
    for (int64_t r = 0; r < n; ++r) {
        const float *in = xv.data() + (r * l + t) * d;
        std::copy(in, in + d, node->value.data() + r * d);
    }
    node->backward_fn = [n, l, d, t](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t r = 0; r < n; ++r) {
            float *gin = gx.data() + (r * l + t) * d;
            const float *gout = self.grad.data() + r * d;
            for (int64_t c = 0; c < d; ++c)
                gin[c] += gout[c];
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
stackAxis1(const std::vector<Tensor> &slices)
{
    TLP_CHECK(!slices.empty(), "stackAxis1 of nothing");
    const int64_t n = slices[0].dim(0), d = slices[0].dim(1);
    const int64_t l = static_cast<int64_t>(slices.size());
    std::vector<std::shared_ptr<Node>> parents;
    for (const auto &slice : slices) {
        TLP_CHECK(slice.dim(0) == n && slice.dim(1) == d,
                  "stack slice shape mismatch");
        parents.push_back(slice.node());
    }
    auto node = makeNode({static_cast<int>(n), static_cast<int>(l),
                          static_cast<int>(d)},
                         std::move(parents));
    for (int64_t t = 0; t < l; ++t) {
        const auto &sv = node->parents[static_cast<size_t>(t)]->value;
        for (int64_t r = 0; r < n; ++r) {
            std::copy(sv.data() + r * d, sv.data() + (r + 1) * d,
                      node->value.data() + (r * l + t) * d);
        }
    }
    node->backward_fn = [n, l, d](Node &self) {
        for (int64_t t = 0; t < l; ++t) {
            auto &gs = self.parents[static_cast<size_t>(t)]->grad;
            for (int64_t r = 0; r < n; ++r) {
                const float *gout = self.grad.data() + (r * l + t) * d;
                float *gin = gs.data() + r * d;
                for (int64_t c = 0; c < d; ++c)
                    gin[c] += gout[c];
            }
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
sliceCols(const Tensor &x, int start, int len)
{
    TLP_CHECK(x.shape().size() == 2, "sliceCols needs rank 2");
    const int64_t n = x.dim(0), m = x.dim(1);
    TLP_CHECK(start >= 0 && start + len <= m, "bad column slice");
    auto node = makeNode({static_cast<int>(n), len}, {x.node()});
    const auto &xv = x.value();
    for (int64_t r = 0; r < n; ++r) {
        std::copy(xv.data() + r * m + start,
                  xv.data() + r * m + start + len,
                  node->value.data() + r * len);
    }
    node->backward_fn = [n, m, start, len](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t r = 0; r < n; ++r) {
            const float *gout = self.grad.data() + r * len;
            float *gin = gx.data() + r * m + start;
            for (int64_t c = 0; c < len; ++c)
                gin[c] += gout[c];
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
dropout(const Tensor &x, double p, Rng &rng, bool training)
{
    if (!training || p <= 0.0)
        return x;
    auto node = makeNode(x.shape(), {x.node()});
    auto mask = std::make_shared<std::vector<float>>(x.value().size());
    const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
    const auto &xv = x.value();
    // Serial: the mask must consume the Rng stream in index order.
    for (size_t i = 0; i < xv.size(); ++i) {
        (*mask)[i] = rng.bernoulli(p) ? 0.0f : keep_scale;
        node->value[i] = xv[i] * (*mask)[i];
    }
    node->backward_fn = [mask](Node &self) {
        float *gx = self.parents[0]->grad.data();
        const float *g = self.grad.data();
        const float *mv = mask->data();
        parallelMap(self.numel(), kCheapGrain,
                    [=](int64_t i) { gx[i] += g[i] * mv[i]; });
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          float eps)
{
    const auto [rows, cols] = rowsCols(x.shape());
    TLP_CHECK(gamma.numel() == cols && beta.numel() == cols,
              "layer-norm affine width mismatch");
    auto node = makeNode(x.shape(), {x.node(), gamma.node(), beta.node()});
    auto stats = std::make_shared<std::vector<float>>(
        static_cast<size_t>(rows * 2));   // (mean, inv_std) per row
    const float *xv = x.value().data();
    const float *gv = gamma.value().data();
    const float *bv = beta.value().data();
    float *outv = node->value.data();
    float *statv = stats->data();
    const int64_t rows_c = rows, cols_c = cols;
    // Shared with the fused inference path (infer_ops.h): the affine
    // epilogue contains a contractible multiply-add, so one compiled
    // instance guarantees fused == interpreted bitwise.
    parallelRows(rows_c, 6 * cols_c, [=](int64_t r0, int64_t r1) {
        iops::layerNormRows(xv, gv, bv, outv, statv, r0, r1, cols_c, eps);
    });
    node->backward_fn = [rows_c, cols_c, stats](Node &self) {
        float *gx = self.parents[0]->grad.data();
        float *gg = self.parents[1]->grad.data();
        float *gb = self.parents[2]->grad.data();
        const float *xv = self.parents[0]->value.data();
        const float *gv = self.parents[1]->value.data();
        const float *gyv = self.grad.data();
        const float *statv = stats->data();
        // Pass 1 — gamma/beta grads, partitioned by columns: each chunk
        // owns disjoint gg/gb entries and accumulates rows in the serial
        // 0..rows order, so sums are bit-identical at any thread count.
        ThreadPool::global().parallelFor(
            0, cols_c, kern::rowGrain(3 * rows_c),
            [=](int64_t c0, int64_t c1) {
                for (int64_t r = 0; r < rows_c; ++r) {
                    const float mean = statv[2 * r];
                    const float inv_std = statv[2 * r + 1];
                    const float *in = xv + r * cols_c;
                    const float *gy = gyv + r * cols_c;
                    for (int64_t c = c0; c < c1; ++c) {
                        const float xhat = (in[c] - mean) * inv_std;
                        gg[c] += gy[c] * xhat;
                        gb[c] += gy[c];
                    }
                }
            });
        // Pass 2 — input grads, partitioned by rows (disjoint gx rows).
        parallelRows(rows_c, 8 * cols_c, [=](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
                const float mean = statv[2 * r];
                const float inv_std = statv[2 * r + 1];
                const float *in = xv + r * cols_c;
                const float *gy = gyv + r * cols_c;
                float sum_gyg = 0.0f, sum_gygx = 0.0f;
                for (int64_t c = 0; c < cols_c; ++c) {
                    const float xhat = (in[c] - mean) * inv_std;
                    const float gyg = gy[c] * gv[c];
                    sum_gyg += gyg;
                    sum_gygx += gyg * xhat;
                }
                float *g = gx + r * cols_c;
                const float inv_n = 1.0f / static_cast<float>(cols_c);
                for (int64_t c = 0; c < cols_c; ++c) {
                    const float xhat = (in[c] - mean) * inv_std;
                    const float gyg = gy[c] * gv[c];
                    g[c] += inv_std *
                            (gyg - inv_n * (sum_gyg + xhat * sum_gygx));
                }
            }
        });
    };
    return Tensor::fromNode(std::move(node));
}

} // namespace tlp::nn
